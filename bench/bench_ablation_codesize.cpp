/**
 * @file
 * Ablation: code-size effect of the null check configurations.
 *
 * Every explicit check is a test+branch sequence in the emitter; an
 * implicit check emits nothing.  The paper focuses on cycles, but the
 * same mechanism shrinks the code — this bench reports emitted bytes
 * per configuration, plus the bytes attributable to explicit checks.
 */

#include <iostream>

#include "bench_util.h"
#include "codegen/emitter.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{

struct Sizes
{
    size_t total = 0;
    size_t checkBytes = 0;
};

Sizes
measure(const Workload &w, const Target &target,
        const PipelineConfig &config)
{
    auto mod = w.build();
    Compiler compiler(target, config);
    compiler.compile(*mod);
    Sizes sizes;
    for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
        EmittedCode code = emitFunction(mod->function(f), target);
        sizes.total += code.bytes.size();
        sizes.checkBytes += code.explicitNullCheckBytes;
    }
    return sizes;
}

} // namespace

int
main()
{
    std::cout << "Ablation: emitted code size per null check "
                 "configuration (bytes)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    struct ArmDef
    {
        const char *label;
        PipelineConfig config;
    };
    std::vector<ArmDef> arms = {
        {"No Null Opt. (No Hardware Trap)", makeNoOptNoTrapConfig()},
        {"No Null Opt. (Hardware Trap)", makeNoOptTrapConfig()},
        {"Old Null Check", makeOldNullCheckConfig()},
        {"New Null Check (Phase1+Phase2)", makeNewFullConfig()},
    };

    std::vector<std::string> headers = {"configuration"};
    for (const Workload &w : jbytemarkWorkloads())
        headers.push_back(w.name + " (chk)");
    TextTable table(headers);

    for (ArmDef &arm : arms) {
        std::vector<std::string> row = {arm.label};
        for (const Workload &w : jbytemarkWorkloads()) {
            Sizes sizes = measure(w, ia32, arm.config);
            row.push_back(std::to_string(sizes.total) + " (" +
                          std::to_string(sizes.checkBytes) + ")");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExplicit-check bytes fall to (near) zero under the "
                 "new algorithm; total code\nsize follows.\n";
    return 0;
}
