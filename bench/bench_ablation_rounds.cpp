/**
 * @file
 * Ablation: how many Figure 2 iterations are needed?
 *
 * The paper says phase 1 "is iterated for a few times" with bounds
 * check optimization and scalar replacement because each unblocks the
 * others (Figure 4).  This bench sweeps the iteration count 0..4 on the
 * multidimensional-array kernels and shows the cascade: round 1 hoists
 * checks and lengths, round 2 can then hoist the row pointers, further
 * rounds change nothing.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Ablation: Figure 2 iteration count (cycles; smaller "
                 "is better)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    const char *names[] = {"Assignment", "LU Decomposition",
                           "Neural Net", "Numeric Sort", "mtrt"};

    TextTable table({"workload", "rounds=0", "rounds=1", "rounds=2",
                     "rounds=3", "rounds=4"});
    for (const char *name : names) {
        const Workload *w = findWorkload(name);
        std::vector<std::string> row = {name};
        for (int rounds = 0; rounds <= 4; ++rounds) {
            PipelineConfig config = makeNewFullConfig();
            config.rounds = rounds;
            Compiler compiler(ia32, config);
            WorkloadRun run = runWorkload(*w, compiler, ia32);
            row.push_back(TextTable::num(run.cycles, 0));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: a large step from 0 to 1, a second "
                 "step from 1 to 2 on the\nmultidimensional kernels "
                 "(the row-pointer cascade), then a fixed point.\n";
    return 0;
}
