/**
 * @file
 * Ablation: when do hardware traps stop paying?
 *
 * An implicit check is free until it fires: a *taken* trap costs an OS
 * signal round trip (~600 cycles in our model) where an explicit check
 * costs 2 cycles every time.  The whole design therefore assumes null
 * dereferences are exceptional.  This bench sweeps the fraction of
 * actually-null receivers in a catch-heavy loop and reports the
 * crossover — the quantified version of the assumption the paper (and
 * every production JVM since) relies on.
 */

#include <iostream>
#include <memory>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "jit/compiler.h"
#include "support/table.h"
#include "workloads/kernel_util.h"

using namespace trapjit;

namespace
{

/**
 * int kernel(Obj o, Obj nil, int n, int nullEveryK):
 *   for i in [0, n):
 *     r = (i % nullEveryK == 0) ? nil : o;
 *     try { acc += r.f; } catch (NPE) { acc += 1; }
 */
std::unique_ptr<Module>
buildProgram()
{
    auto mod = std::make_unique<Module>();
    ClassId cls = mod->addClass("Obj");
    int64_t offF = mod->addField(cls, "f", Type::I32);

    Function &fn = mod->addFunction("kernel", Type::I32);
    fn.setNeverInline(true);
    ValueId o = fn.addParam(Type::Ref, "o", cls);
    ValueId nil = fn.addParam(Type::Ref, "nil", cls);
    ValueId n = fn.addParam(Type::I32, "n");
    ValueId everyK = fn.addParam(Type::I32, "k");
    IRBuilder b(fn);
    b.startBlock();
    ValueId acc = fn.addLocal(Type::I32, "acc");
    ValueId i = fn.addLocal(Type::I32, "i");
    b.move(acc, b.constInt(0));
    CountedLoop loop(b, i, b.constInt(0), n);
    {
        ValueId r = fn.addLocal(Type::Ref, "r", cls);
        ValueId rem = b.binop(Opcode::IRem, i, everyK);
        BasicBlock &pickNull = fn.newBlock();
        BasicBlock &pickObj = fn.newBlock();
        BasicBlock &doTry = fn.newBlock();
        ValueId isZero =
            b.cmp(Opcode::ICmp, CmpPred::EQ, rem, b.constInt(0));
        b.branch(isZero, pickNull, pickObj);
        b.atEnd(pickNull);
        b.move(r, nil);
        b.jump(doTry);
        b.atEnd(pickObj);
        b.move(r, o);
        b.jump(doTry);
        b.atEnd(doTry);

        BasicBlock &handler = fn.newBlock();
        TryRegionId region =
            fn.addTryRegion(handler.id(), ExcKind::NullPointer);
        BasicBlock &body = fn.newBlock(region);
        BasicBlock &join = fn.newBlock();
        b.jump(body);
        b.atEnd(body);
        ValueId v = b.getField(r, offF, Type::I32);
        ValueId acc2 = b.binop(Opcode::IAdd, acc, v);
        b.move(acc, acc2);
        b.jump(join);
        b.atEnd(handler);
        ValueId acc3 = b.binop(Opcode::IAdd, acc, b.constInt(1));
        b.move(acc, acc3);
        b.jump(join);
        b.atEnd(join);
    }
    loop.close();
    b.ret(acc);
    return mod;
}

double
run(const PipelineConfig &config, int nullEveryK)
{
    Target ia32 = makeIA32WindowsTarget();
    auto mod = buildProgram();
    Compiler compiler(ia32, config);
    compiler.compile(*mod);

    Interpreter interp(*mod, ia32);
    Heap &heap = interp.heap();
    Address obj = heap.allocateObject(0, 16);
    heap.writeI32(obj + 8, 2);
    ExecResult r = interp.run(
        mod->findFunction("kernel"),
        {RuntimeValue::ofRef(obj), RuntimeValue::ofRef(0),
         RuntimeValue::ofInt(4000), RuntimeValue::ofInt(nullEveryK)});
    return r.stats.cycles;
}

} // namespace

int
main()
{
    std::cout << "Ablation: explicit checks vs hardware traps as null "
                 "frequency rises\n(cycles for 4000 iterations; 1 NPE "
                 "per K iterations)\n\n";

    int ks[] = {4000, 1000, 300, 100, 30, 10, 3};
    TextTable table({"1 null per K", "explicit (no-trap)",
                     "implicit (new algorithm)", "implicit / explicit"});
    for (int k : ks) {
        double explicitCycles = run(makeNoOptNoTrapConfig(), k);
        double implicitCycles = run(makeNewFullConfig(), k);
        table.addRow({std::to_string(k),
                      TextTable::num(explicitCycles, 0),
                      TextTable::num(implicitCycles, 0),
                      TextTable::num(implicitCycles / explicitCycles,
                                     3)});
    }
    table.print(std::cout);
    std::cout << "\nTraps win while nulls are rare and lose once NPEs "
                 "become frequent — the\nassumption behind the paper's "
                 "design, quantified.  (The trap dispatch costs\n~600 "
                 "cycles in the model; an explicit check costs 2.)\n";
    return 0;
}
