/**
 * @file
 * Regenerates Figure 10: our JIT (with the new null check optimization)
 * against the HotSpot stand-in "AltVM" on the jBYTEmark-like suite.
 * Only the comparison structure is reproducible (HotSpot's absolute
 * scores are not): our pipeline wins the array kernels, and AltVM's
 * missing Math.* instruction selection costs it Fourier/Neural Net —
 * see DESIGN.md section 4 on this substitution.
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Figure 10. jBYTEmark-like scores: our JIT vs the "
                 "HotSpot stand-in (index; larger is better)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    std::vector<Arm> arms = {
        {"Our JIT (Phase1+Phase2)", ia32, ia32, makeNewFullConfig()},
        {"AltVM (HotSpot stand-in)", ia32, ia32, makeAltVMConfig()},
    };
    const auto &suite = jbytemarkWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    TextTable table({"benchmark", arms[0].label, arms[1].label,
                     "ours / altvm"});
    double product = 1.0;
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        double ours = indexScore(suite[wi], results.cycles[wi][0]);
        double theirs = indexScore(suite[wi], results.cycles[wi][1]);
        product *= ours / theirs;
        table.addRow({suite[wi].name, TextTable::num(ours, 2),
                      TextTable::num(theirs, 2),
                      TextTable::num(ours / theirs, 3)});
    }
    table.print(std::cout);
    double geomean =
        std::pow(product, 1.0 / static_cast<double>(suite.size()));
    std::cout << "\nGeometric-mean relative performance (ours/altvm): "
              << TextTable::num(geomean, 3) << " ("
              << TextTable::pct(100.0 * (geomean - 1.0))
              << " better)\n";
    return 0;
}
