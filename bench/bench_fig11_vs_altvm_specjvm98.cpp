/**
 * @file
 * Regenerates Figure 11: our JIT against the HotSpot stand-in "AltVM"
 * on the SPECjvm98-like suite (times; smaller is better).  The paper
 * reports a modest 6% average advantage here, versus the large
 * jBYTEmark gap of Figure 10.
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Figure 11. SPECjvm98-like times: our JIT vs the "
                 "HotSpot stand-in (simulated ms; smaller is better)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    std::vector<Arm> arms = {
        {"Our JIT (Phase1+Phase2)", ia32, ia32, makeNewFullConfig()},
        {"AltVM (HotSpot stand-in)", ia32, ia32, makeAltVMConfig()},
    };
    const auto &suite = specjvmWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    TextTable table({"benchmark", arms[0].label, arms[1].label,
                     "altvm / ours"});
    double product = 1.0;
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        double ours = simulatedMillis(results.cycles[wi][0]);
        double theirs = simulatedMillis(results.cycles[wi][1]);
        product *= theirs / ours;
        table.addRow({suite[wi].name, TextTable::num(ours, 3),
                      TextTable::num(theirs, 3),
                      TextTable::num(theirs / ours, 3)});
    }
    table.print(std::cout);
    double geomean =
        std::pow(product, 1.0 / static_cast<double>(suite.size()));
    std::cout << "\nGeometric-mean relative performance (altvm/ours): "
              << TextTable::num(geomean, 3) << " ("
              << TextTable::pct(100.0 * (geomean - 1.0))
              << " better)\n";
    return 0;
}
