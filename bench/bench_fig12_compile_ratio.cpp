/**
 * @file
 * Regenerates Figure 12: the ratio of our JIT's compilation time over
 * the whole first run (compile + run) per SPECjvm98-like program.
 * Uses the same fixed host->PIII calibration factor as Table 3; the
 * meaningful reproduction target is the *ordering* (javac by far the
 * largest compile share, compress/db negligible).
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{
constexpr double kHostToP3Factor = 40.0;
}

int
main()
{
    std::cout << "Figure 12. Ratio of JIT compilation time over the "
                 "first run (our JIT)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    Compiler ours(ia32, makeNewFullConfig());
    const int reps = 20;

    TextTable table({"benchmark", "compile share of first run"});
    for (const Workload &w : specjvmWorkloads()) {
        double compileSeconds = 0.0;
        for (int r = 0; r < reps; ++r) {
            auto mod = w.build();
            compileSeconds += ours.compile(*mod).timings.total();
        }
        compileSeconds /= reps;
        WorkloadRun run = runWorkload(w, ours, ia32);
        double compileMs = compileSeconds * 1e3 * kHostToP3Factor;
        double runMs = simulatedMillis(run.cycles);
        table.addRow({w.name,
                      TextTable::pct(100.0 * compileMs /
                                     (compileMs + runMs))});
    }
    table.print(std::cout);
    return 0;
}
