/**
 * @file
 * Regenerates Figure 14: percentage improvement over the AIX baseline
 * ("No Null Check Optimization") for the jBYTEmark-like suite.  The
 * paper highlights speculation being particularly effective for
 * Neural Net (reads hoisted across their stuck checks, Figure 6).
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Figure 14. Improvement over the AIX baseline, "
                 "jBYTEmark-like suite (%)\n\n";

    std::vector<Arm> arms = aixArms();
    const auto &suite = jbytemarkWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    const size_t base = 2; // "No Null Check Optimization"

    std::vector<std::string> headers = {"improvement over baseline"};
    for (const auto &w : suite)
        headers.push_back(w.name);
    TextTable table(headers);
    for (size_t a = 0; a < arms.size(); ++a) {
        if (a == base)
            continue;
        std::vector<std::string> row = {arms[a].label};
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            double speedup = results.cycles[wi][base] /
                                 results.cycles[wi][a] -
                             1.0;
            row.push_back(TextTable::pct(100.0 * speedup));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
