/**
 * @file
 * Regenerates Figure 8: percentage performance improvement over the
 * baseline ("No Null Opt. (No Hardware Trap)") for the jBYTEmark-like
 * suite, per configuration.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Figure 8. Improvement over the no-trap baseline, "
                 "jBYTEmark-like suite (%)\n\n";

    std::vector<Arm> arms = ia32Arms(/*include_altvm=*/false);
    const auto &suite = jbytemarkWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    // Baseline is the last arm (No Null Opt. / No Hardware Trap).
    const size_t base = arms.size() - 1;

    std::vector<std::string> headers = {"improvement over baseline"};
    for (const auto &w : suite)
        headers.push_back(w.name);
    TextTable table(headers);

    for (size_t a = 0; a + 1 < arms.size(); ++a) {
        std::vector<std::string> row = {arms[a].label};
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            double speedup = results.cycles[wi][base] /
                                 results.cycles[wi][a] -
                             1.0;
            row.push_back(TextTable::pct(100.0 * speedup));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
