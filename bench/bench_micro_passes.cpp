/**
 * @file
 * google-benchmark micro benchmarks of the optimizer itself: the cost
 * of the dataflow solver and of each null check pass on a realistic
 * function (the javac-like module, the biggest of the suite).  These
 * complement the wall-clock compile-time tables with per-pass
 * throughput numbers.
 */

#include <benchmark/benchmark.h>

#include "analysis/dataflow.h"
#include "analysis/liveness.h"
#include "opt/nullcheck/local_trap_lowering.h"
#include "opt/nullcheck/phase1.h"
#include "opt/nullcheck/phase2.h"
#include "opt/nullcheck/whaley.h"
#include "workloads/workload.h"

namespace
{

using namespace trapjit;

/** Build + pre-clean a module so the measured pass sees realistic IR. */
std::unique_ptr<Module>
prepare(const char *workload)
{
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    for (FunctionId f = 0; f < mod->numFunctions(); ++f)
        mod->function(f).recomputeCFG();
    return mod;
}

template <typename PassT>
void
runPassBenchmark(benchmark::State &state, const char *workload)
{
    Target target = makeIA32WindowsTarget();
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = prepare(workload);
        PassContext ctx{*mod, target, false};
        PassT pass;
        state.ResumeTiming();
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            pass.runOnFunction(mod->function(f), ctx);
        benchmark::ClobberMemory();
    }
}

void
BM_Phase1_javac(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase1>(state, "javac");
}

void
BM_Phase2_javac(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase2>(state, "javac");
}

void
BM_Whaley_javac(benchmark::State &state)
{
    runPassBenchmark<WhaleyNullCheckElimination>(state, "javac");
}

void
BM_Lowering_javac(benchmark::State &state)
{
    runPassBenchmark<LocalTrapLowering>(state, "javac");
}

void
BM_Phase1_assignment(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase1>(state, "Assignment");
}

/**
 * Shared fixture for the solver micro benchmarks: the javac module and
 * one liveness-shaped DataflowSpec per function (backward/union), plus a
 * forward/intersect flip of the same gen/kill sets, all built once so
 * the timed region is pure solving.
 */
struct SolverWorkload
{
    std::unique_ptr<Module> mod;
    std::vector<DataflowSpec> backwardUnion;
    std::vector<DataflowSpec> forwardIntersect;
};

SolverWorkload &
solverWorkload()
{
    static SolverWorkload *w = [] {
        auto *out = new SolverWorkload;
        out->mod = prepare("javac");
        for (FunctionId f = 0; f < out->mod->numFunctions(); ++f) {
            DataflowSpec spec;
            makeLivenessSpec(out->mod->function(f), spec);
            out->backwardUnion.push_back(spec);
            spec.direction = DataflowSpec::Direction::Forward;
            spec.confluence = DataflowSpec::Confluence::Intersect;
            out->forwardIntersect.push_back(std::move(spec));
        }
        return out;
    }();
    return *w;
}

void
runSolverBenchmark(benchmark::State &state,
                   const std::vector<DataflowSpec> &specs, bool worklist)
{
    SolverWorkload &w = solverWorkload();
    DataflowSolver solver; // persistent: the arena warms up once
    for (auto _ : state) {
        for (FunctionId f = 0; f < w.mod->numFunctions(); ++f) {
            const Function &fn = w.mod->function(f);
            if (worklist) {
                const DataflowResult &r = solver.solve(fn, specs[f]);
                benchmark::DoNotOptimize(&r);
            } else {
                DataflowResult r = solveDataflowReference(fn, specs[f]);
                benchmark::DoNotOptimize(&r);
            }
        }
        benchmark::ClobberMemory();
    }
    if (worklist) {
        SolverStats stats = solver.takeStats();
        state.counters["visits_per_solve"] = stats.visitsPerSolve();
    }
}

void
BM_SolveDataflow_Worklist_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().backwardUnion, true);
}

void
BM_SolveDataflow_Reference_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().backwardUnion, false);
}

void
BM_SolveDataflow_WorklistFwd_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().forwardIntersect, true);
}

void
BM_SolveDataflow_ReferenceFwd_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().forwardIntersect, false);
}

void
BM_FullCompile_javac(benchmark::State &state)
{
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeNewFullConfig());
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = prepare("javac");
        state.ResumeTiming();
        compiler.compile(*mod);
        benchmark::ClobberMemory();
    }
}

BENCHMARK(BM_Phase1_javac);
BENCHMARK(BM_Phase2_javac);
BENCHMARK(BM_Whaley_javac);
BENCHMARK(BM_Lowering_javac);
BENCHMARK(BM_Phase1_assignment);
BENCHMARK(BM_SolveDataflow_Worklist_javac);
BENCHMARK(BM_SolveDataflow_Reference_javac);
BENCHMARK(BM_SolveDataflow_WorklistFwd_javac);
BENCHMARK(BM_SolveDataflow_ReferenceFwd_javac);
BENCHMARK(BM_FullCompile_javac);

} // namespace

BENCHMARK_MAIN();
