/**
 * @file
 * google-benchmark micro benchmarks of the optimizer itself: the cost
 * of the dataflow solver and of each null check pass on a realistic
 * function (the javac-like module, the biggest of the suite).  These
 * complement the wall-clock compile-time tables with per-pass
 * throughput numbers.
 */

#include <benchmark/benchmark.h>

#include "analysis/dataflow.h"
#include "analysis/liveness.h"
#include "interp/fast_interpreter.h"
#include "opt/nullcheck/local_trap_lowering.h"
#include "opt/nullcheck/phase1.h"
#include "opt/nullcheck/phase2.h"
#include "opt/nullcheck/whaley.h"
#include "workloads/workload.h"

namespace
{

using namespace trapjit;

/** Build + pre-clean a module so the measured pass sees realistic IR. */
std::unique_ptr<Module>
prepare(const char *workload)
{
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    for (FunctionId f = 0; f < mod->numFunctions(); ++f)
        mod->function(f).recomputeCFG();
    return mod;
}

template <typename PassT>
void
runPassBenchmark(benchmark::State &state, const char *workload)
{
    Target target = makeIA32WindowsTarget();
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = prepare(workload);
        PassContext ctx{*mod, target, false};
        PassT pass;
        state.ResumeTiming();
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            pass.runOnFunction(mod->function(f), ctx);
        benchmark::ClobberMemory();
    }
}

void
BM_Phase1_javac(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase1>(state, "javac");
}

void
BM_Phase2_javac(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase2>(state, "javac");
}

void
BM_Whaley_javac(benchmark::State &state)
{
    runPassBenchmark<WhaleyNullCheckElimination>(state, "javac");
}

void
BM_Lowering_javac(benchmark::State &state)
{
    runPassBenchmark<LocalTrapLowering>(state, "javac");
}

void
BM_Phase1_assignment(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase1>(state, "Assignment");
}

/**
 * Shared fixture for the solver micro benchmarks: the javac module and
 * one liveness-shaped DataflowSpec per function (backward/union), plus a
 * forward/intersect flip of the same gen/kill sets, all built once so
 * the timed region is pure solving.
 */
struct SolverWorkload
{
    std::unique_ptr<Module> mod;
    std::vector<DataflowSpec> backwardUnion;
    std::vector<DataflowSpec> forwardIntersect;
};

SolverWorkload &
solverWorkload()
{
    static SolverWorkload *w = [] {
        auto *out = new SolverWorkload;
        out->mod = prepare("javac");
        for (FunctionId f = 0; f < out->mod->numFunctions(); ++f) {
            DataflowSpec spec;
            makeLivenessSpec(out->mod->function(f), spec);
            out->backwardUnion.push_back(spec);
            spec.direction = DataflowSpec::Direction::Forward;
            spec.confluence = DataflowSpec::Confluence::Intersect;
            out->forwardIntersect.push_back(std::move(spec));
        }
        return out;
    }();
    return *w;
}

void
runSolverBenchmark(benchmark::State &state,
                   const std::vector<DataflowSpec> &specs, bool worklist)
{
    SolverWorkload &w = solverWorkload();
    DataflowSolver solver; // persistent: the arena warms up once
    for (auto _ : state) {
        for (FunctionId f = 0; f < w.mod->numFunctions(); ++f) {
            const Function &fn = w.mod->function(f);
            if (worklist) {
                const DataflowResult &r = solver.solve(fn, specs[f]);
                benchmark::DoNotOptimize(&r);
            } else {
                DataflowResult r = solveDataflowReference(fn, specs[f]);
                benchmark::DoNotOptimize(&r);
            }
        }
        benchmark::ClobberMemory();
    }
    if (worklist) {
        SolverStats stats = solver.takeStats();
        state.counters["visits_per_solve"] = stats.visitsPerSolve();
    }
}

void
BM_SolveDataflow_Worklist_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().backwardUnion, true);
}

void
BM_SolveDataflow_Reference_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().backwardUnion, false);
}

void
BM_SolveDataflow_WorklistFwd_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().forwardIntersect, true);
}

void
BM_SolveDataflow_ReferenceFwd_javac(benchmark::State &state)
{
    runSolverBenchmark(state, solverWorkload().forwardIntersect, false);
}

void
BM_FullCompile_javac(benchmark::State &state)
{
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeNewFullConfig());
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = prepare("javac");
        state.ResumeTiming();
        compiler.compile(*mod);
        benchmark::ClobberMemory();
    }
}

// ---------------------------------------------------------------------------
// Execution engines
// ---------------------------------------------------------------------------
//
// Dispatch-cost comparison of the three interpreter shapes on jBYTEmark
// kernels: the reference switch interpreter re-reading Instruction
// records, the pre-decoded direct-threaded engine, and the same engine
// with superinstruction fusion.  The modules are the unoptimized
// front-end form (every check explicit), i.e. what an interpreter tier
// executes before the JIT kicks in — the shape with the most
// NullCheck+access fusion pairs.  Interpreters are built once per
// benchmark and reset() between iterations so the timed region is pure
// execution (constructing one would zero the 32 MiB heap every
// iteration; decoding happens once, on the first run).

enum class InterpMode
{
    Reference,
    Decoded,
    DecodedFused,
};

void
runInterpBenchmark(benchmark::State &state, const char *workload,
                   InterpMode mode)
{
    Target target = makeIA32WindowsTarget();
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    ExecStats stats;
    auto loop = [&](auto &interp) {
        for (auto _ : state) {
            interp.reset();
            ExecResult r = interp.run(entry, {});
            benchmark::DoNotOptimize(r.value.i);
            stats = r.stats;
        }
    };
    if (mode == InterpMode::Reference) {
        Interpreter interp(*mod, target, options);
        loop(interp);
    } else {
        DecodeOptions decode;
        decode.fuse = mode == InterpMode::DecodedFused;
        FastInterpreter interp(*mod, target, options, nullptr, decode);
        loop(interp);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(stats.instructions) * state.iterations());
    if (mode != InterpMode::Reference) {
        state.counters["dispatches"] =
            static_cast<double>(stats.dispatches);
        state.counters["fused_pairs"] =
            static_cast<double>(stats.fusedPairsExecuted);
    }
}

#define TRAPJIT_INTERP_BENCH(kernel, workload)                           \
    void BM_Interp_Reference_##kernel(benchmark::State &state)           \
    {                                                                    \
        runInterpBenchmark(state, workload, InterpMode::Reference);      \
    }                                                                    \
    void BM_Interp_Decoded_##kernel(benchmark::State &state)             \
    {                                                                    \
        runInterpBenchmark(state, workload, InterpMode::Decoded);        \
    }                                                                    \
    void BM_Interp_DecodedFused_##kernel(benchmark::State &state)        \
    {                                                                    \
        runInterpBenchmark(state, workload, InterpMode::DecodedFused);   \
    }                                                                    \
    BENCHMARK(BM_Interp_Reference_##kernel);                             \
    BENCHMARK(BM_Interp_Decoded_##kernel);                               \
    BENCHMARK(BM_Interp_DecodedFused_##kernel)

TRAPJIT_INTERP_BENCH(numsort, "Numeric Sort");
TRAPJIT_INTERP_BENCH(assignment, "Assignment");
TRAPJIT_INTERP_BENCH(idea, "IDEA encryption");

#undef TRAPJIT_INTERP_BENCH

BENCHMARK(BM_Phase1_javac);
BENCHMARK(BM_Phase2_javac);
BENCHMARK(BM_Whaley_javac);
BENCHMARK(BM_Lowering_javac);
BENCHMARK(BM_Phase1_assignment);
BENCHMARK(BM_SolveDataflow_Worklist_javac);
BENCHMARK(BM_SolveDataflow_Reference_javac);
BENCHMARK(BM_SolveDataflow_WorklistFwd_javac);
BENCHMARK(BM_SolveDataflow_ReferenceFwd_javac);
BENCHMARK(BM_FullCompile_javac);

} // namespace

BENCHMARK_MAIN();
