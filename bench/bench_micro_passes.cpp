/**
 * @file
 * google-benchmark micro benchmarks of the optimizer itself: the cost
 * of the dataflow solver and of each null check pass on a realistic
 * function (the javac-like module, the biggest of the suite).  These
 * complement the wall-clock compile-time tables with per-pass
 * throughput numbers.
 */

#include <benchmark/benchmark.h>

#include "opt/nullcheck/local_trap_lowering.h"
#include "opt/nullcheck/phase1.h"
#include "opt/nullcheck/phase2.h"
#include "opt/nullcheck/whaley.h"
#include "workloads/workload.h"

namespace
{

using namespace trapjit;

/** Build + pre-clean a module so the measured pass sees realistic IR. */
std::unique_ptr<Module>
prepare(const char *workload)
{
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    for (FunctionId f = 0; f < mod->numFunctions(); ++f)
        mod->function(f).recomputeCFG();
    return mod;
}

template <typename PassT>
void
runPassBenchmark(benchmark::State &state, const char *workload)
{
    Target target = makeIA32WindowsTarget();
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = prepare(workload);
        PassContext ctx{*mod, target, false};
        PassT pass;
        state.ResumeTiming();
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            pass.runOnFunction(mod->function(f), ctx);
        benchmark::ClobberMemory();
    }
}

void
BM_Phase1_javac(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase1>(state, "javac");
}

void
BM_Phase2_javac(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase2>(state, "javac");
}

void
BM_Whaley_javac(benchmark::State &state)
{
    runPassBenchmark<WhaleyNullCheckElimination>(state, "javac");
}

void
BM_Lowering_javac(benchmark::State &state)
{
    runPassBenchmark<LocalTrapLowering>(state, "javac");
}

void
BM_Phase1_assignment(benchmark::State &state)
{
    runPassBenchmark<NullCheckPhase1>(state, "Assignment");
}

void
BM_FullCompile_javac(benchmark::State &state)
{
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeNewFullConfig());
    for (auto _ : state) {
        state.PauseTiming();
        auto mod = prepare("javac");
        state.ResumeTiming();
        compiler.compile(*mod);
        benchmark::ClobberMemory();
    }
}

BENCHMARK(BM_Phase1_javac);
BENCHMARK(BM_Phase2_javac);
BENCHMARK(BM_Whaley_javac);
BENCHMARK(BM_Lowering_javac);
BENCHMARK(BM_Phase1_assignment);
BENCHMARK(BM_FullCompile_javac);

} // namespace

BENCHMARK_MAIN();
