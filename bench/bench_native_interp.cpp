/**
 * @file
 * Execution-tier comparison on real wall time: reference switch
 * interpreter vs pre-decoded fused interpreter vs the native x86-64
 * tier, on jBYTEmark kernels (BM_Native_* — CI uploads the results as
 * BENCH_native.json next to BENCH_interp.json).
 *
 * Three families:
 *
 *  - BM_Native_{Reference,Fast,Jit}_<kernel>: the same unoptimized
 *    module (every check explicit, the interpreter benches' shape)
 *    under all three engines.  The native tier's claim is >= 5x over
 *    the fused interpreter on these kernels — dispatch disappears
 *    entirely; what remains is the slot traffic.
 *
 *  - BM_Native_{ImplicitChecks,ExplicitChecks}_<kernel>: the paper's
 *    actual experiment on real hardware.  The same kernel compiled
 *    under the hardware-trap arm (implicit checks: zero instructions,
 *    the guard page does the checking) and the no-trap arm (explicit
 *    compare-and-branch per check), both executed natively.  On
 *    null-heavy kernels the trap arm must be at least as fast in wall
 *    time — the win the paper measures in Table 1.
 *
 *  - BM_Tiered_{Fast,Native,Cold,Warm,WarmNoLink}_<preset>: the
 *    profile-guided tiering story on call-heavy workload-gen presets
 *    (CI uploads these as BENCH_tiering.json).  Cold start vs warmed
 *    steady state, direct block linking vs trampoline-only, against
 *    the fused interpreter and per-call-dispatch native baselines.
 *
 * Native benches skip (with a notice in the JSON) on hosts without the
 * native tier; the interpreter baselines run everywhere.
 */

#include <benchmark/benchmark.h>

#include "codegen/native/native_engine.h"
#include "codegen/native/tiered_engine.h"
#include "interp/fast_interpreter.h"
#include "interp/interpreter.h"
#include "jit/compiler.h"
#include "testing/workload_gen/workload_gen.h"
#include "workloads/workload.h"

namespace trapjit
{
namespace
{

enum class Tier
{
    Reference,
    Fast,
    Native,
};

void
runEngineBenchmark(benchmark::State &state, const char *workload, Tier tier)
{
    Target target = makeIA32WindowsTarget();
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    ExecStats stats;
    auto loop = [&](auto &engine) {
        for (auto _ : state) {
            engine.reset();
            ExecResult r = engine.run(entry, {});
            benchmark::DoNotOptimize(r.value.i);
            stats = r.stats;
        }
    };
    switch (tier) {
      case Tier::Reference: {
        Interpreter interp(*mod, target, options);
        loop(interp);
        break;
      }
      case Tier::Fast: {
        FastInterpreter interp(*mod, target, options);
        loop(interp);
        break;
      }
      case Tier::Native: {
        if (!nativeTierSupported()) {
            state.SkipWithError("native tier requires x86-64 Linux");
            return;
        }
        NativeEngine engine(*mod, target, options);
        // Compile outside the timed region and fail loudly on
        // fallback: a silently interpreted "native" number would make
        // the comparison meaningless.
        if (engine.nativeCode(entry) == nullptr) {
            state.SkipWithError("main did not compile natively");
            return;
        }
        loop(engine);
        break;
      }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(stats.instructions) * state.iterations());
}

/**
 * The trap experiment: compile under @p makeConfig, execute natively,
 * and report the check mix so the JSON shows what was measured.
 */
void
runCheckArmBenchmark(benchmark::State &state, const char *workload,
                     PipelineConfig (*makeConfig)())
{
    if (!nativeTierSupported()) {
        state.SkipWithError("native tier requires x86-64 Linux");
        return;
    }
    Target target = makeIA32WindowsTarget();
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    Compiler compiler(target, makeConfig());
    compiler.compile(*mod);
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    NativeEngine engine(*mod, target, options);
    const NativeCode *nc = engine.nativeCode(entry);
    if (nc == nullptr) {
        state.SkipWithError("main did not compile natively");
        return;
    }
    ExecStats stats;
    for (auto _ : state) {
        engine.reset();
        ExecResult r = engine.run(entry, {});
        benchmark::DoNotOptimize(r.value.i);
        stats = r.stats;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(stats.instructions) * state.iterations());
    state.counters["implicit_checks"] =
        static_cast<double>(nc->implicitChecksCompiled);
    state.counters["explicit_checks"] =
        static_cast<double>(nc->explicitChecksCompiled);
    state.counters["explicit_check_bytes"] =
        static_cast<double>(nc->explicitNullCheckBytes);
    state.counters["traps_taken"] = static_cast<double>(stats.trapsTaken);
}

#define TRAPJIT_NATIVE_BENCH(kernel, workload)                            \
    void BM_Native_Reference_##kernel(benchmark::State &state)            \
    {                                                                     \
        runEngineBenchmark(state, workload, Tier::Reference);             \
    }                                                                     \
    void BM_Native_Fast_##kernel(benchmark::State &state)                 \
    {                                                                     \
        runEngineBenchmark(state, workload, Tier::Fast);                  \
    }                                                                     \
    void BM_Native_Jit_##kernel(benchmark::State &state)                  \
    {                                                                     \
        runEngineBenchmark(state, workload, Tier::Native);                \
    }                                                                     \
    void BM_Native_ImplicitChecks_##kernel(benchmark::State &state)       \
    {                                                                     \
        runCheckArmBenchmark(state, workload, makeNoOptTrapConfig);       \
    }                                                                     \
    void BM_Native_ExplicitChecks_##kernel(benchmark::State &state)       \
    {                                                                     \
        runCheckArmBenchmark(state, workload, makeNoOptNoTrapConfig);     \
    }                                                                     \
    BENCHMARK(BM_Native_Reference_##kernel);                              \
    BENCHMARK(BM_Native_Fast_##kernel);                                   \
    BENCHMARK(BM_Native_Jit_##kernel);                                    \
    BENCHMARK(BM_Native_ImplicitChecks_##kernel);                         \
    BENCHMARK(BM_Native_ExplicitChecks_##kernel)

TRAPJIT_NATIVE_BENCH(numsort, "Numeric Sort");
TRAPJIT_NATIVE_BENCH(assignment, "Assignment");
TRAPJIT_NATIVE_BENCH(idea, "IDEA encryption");

#undef TRAPJIT_NATIVE_BENCH

// ---------------------------------------------------------------------------
// Profile-guided tiering (BM_Tiered_* — CI uploads BENCH_tiering.json)
// ---------------------------------------------------------------------------
//
// Call-heavy workload-gen presets (call_web, pointer_chase) under the
// tiering policies the engine supports:
//
//  - BM_Tiered_Fast:       fused-interpreter baseline
//  - BM_Tiered_Native:     classic native tier — every call bounces
//                          through C++ dispatch (vector frame, argv
//                          copy, sigsetjmp) per frame
//  - BM_Tiered_Cold:       cold start — a fresh engine per iteration
//                          pays interpretation, promotion compiles and
//                          publishing inside the measured region
//  - BM_Tiered_Warm:       everything published and direct-linked;
//                          hot call chains never leave native code.
//                          The tiering acceptance line: >= 1.3x over
//                          BM_Tiered_Native on these presets
//  - BM_Tiered_WarmNoLink: published but trampoline-only (linkBlocks
//                          off) — isolates the value of the rel32
//                          direct patches from the rest of the tier

enum class TieredMode
{
    Fast,
    NativeDispatch,
    Cold,
    Warm,
    WarmNoLink,
};

/** Build + compile one workload-gen preset (fixed preset seed). */
std::unique_ptr<Module>
buildTieredPresetModule(const char *preset)
{
    const WorkloadProfile *p = findWorkloadProfile(preset);
    auto mod = generateWorkloadModule(*p);
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeNewFullConfig());
    compiler.compile(*mod);
    return mod;
}

void
runTieredBenchmark(benchmark::State &state, const char *preset,
                   TieredMode mode)
{
    Target target = makeIA32WindowsTarget();
    auto mod = buildTieredPresetModule(preset);
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    // Serving-loop shape: many requests per heap recycle.  The bump
    // arena hands out pre-zeroed memory, so runs are back to back and
    // the periodic wipe (identical across engines, proportional to the
    // workload's allocation volume rather than engine speed) happens
    // off the timed path, as a server would recycle between batches.
    constexpr int kRunsPerReset = 64;

    auto timeRuns = [&](auto &engine) {
        // ExecStats accumulate until reset(); report per-run deltas.
        uint64_t instructionsPerRun = 0;
        uint64_t instructionsSeen = 0;
        int sinceReset = 0;
        for (auto _ : state) {
            if (++sinceReset > kRunsPerReset) {
                state.PauseTiming();
                engine.reset();
                sinceReset = 1;
                instructionsSeen = 0;
                state.ResumeTiming();
            }
            ExecResult r = engine.run(entry, {});
            benchmark::DoNotOptimize(r.value.i);
            instructionsPerRun = r.stats.instructions - instructionsSeen;
            instructionsSeen = r.stats.instructions;
        }
        state.SetItemsProcessed(static_cast<int64_t>(instructionsPerRun) *
                                state.iterations());
    };

    if (mode == TieredMode::Fast) {
        FastInterpreter interp(*mod, target, options);
        timeRuns(interp);
        return;
    }

    if (!nativeTierSupported()) {
        state.SkipWithError("native tier requires x86-64 Linux");
        return;
    }

    if (mode == TieredMode::NativeDispatch) {
        NativeEngine engine(*mod, target, options);
        if (engine.nativeCode(entry) == nullptr) {
            state.SkipWithError("main did not compile natively");
            return;
        }
        timeRuns(engine);
        return;
    }

    TieredOptions topts;
    topts.threshold = 1;
    topts.synchronous = true;
    topts.linkBlocks = mode != TieredMode::WarmNoLink;

    if (mode == TieredMode::Cold) {
        // The whole first-run story per iteration: construct, interpret,
        // cross the threshold, compile, audit, publish, finish native.
        ExecStats stats;
        for (auto _ : state) {
            TieredEngine engine(*mod, target, options, nullptr, {},
                                topts);
            ExecResult r = engine.run(entry, {});
            benchmark::DoNotOptimize(r.value.i);
            stats = r.stats;
        }
        state.SetItemsProcessed(
            static_cast<int64_t>(stats.instructions) *
            state.iterations());
        return;
    }

    TieredEngine engine(*mod, target, options, nullptr, {}, topts);
    // Warm outside the timed region: after one run every touched
    // function is published (threshold 1, synchronous); reset() keeps
    // the published blocks.
    engine.run(entry, {});
    engine.drainPromotions();
    engine.reset();
    timeRuns(engine);

    ServiceCounters tiering;
    engine.addTieringCounters(tiering);
    state.counters["functions_promoted"] =
        static_cast<double>(tiering.functionsPromoted);
    state.counters["blocks_linked"] =
        static_cast<double>(tiering.blocksLinked);
    state.counters["slots_patched"] =
        static_cast<double>(tiering.slotsPatched);
    state.counters["tier_up_ms"] = tiering.tierUpLatencySeconds * 1e3;
}

#define TRAPJIT_TIERED_BENCH(kernel, preset)                              \
    void BM_Tiered_Fast_##kernel(benchmark::State &state)                 \
    {                                                                     \
        runTieredBenchmark(state, preset, TieredMode::Fast);              \
    }                                                                     \
    void BM_Tiered_Native_##kernel(benchmark::State &state)               \
    {                                                                     \
        runTieredBenchmark(state, preset, TieredMode::NativeDispatch);    \
    }                                                                     \
    void BM_Tiered_Cold_##kernel(benchmark::State &state)                 \
    {                                                                     \
        runTieredBenchmark(state, preset, TieredMode::Cold);              \
    }                                                                     \
    void BM_Tiered_Warm_##kernel(benchmark::State &state)                 \
    {                                                                     \
        runTieredBenchmark(state, preset, TieredMode::Warm);              \
    }                                                                     \
    void BM_Tiered_WarmNoLink_##kernel(benchmark::State &state)           \
    {                                                                     \
        runTieredBenchmark(state, preset, TieredMode::WarmNoLink);        \
    }                                                                     \
    BENCHMARK(BM_Tiered_Fast_##kernel);                                   \
    BENCHMARK(BM_Tiered_Native_##kernel);                                 \
    BENCHMARK(BM_Tiered_Cold_##kernel);                                   \
    BENCHMARK(BM_Tiered_Warm_##kernel);                                   \
    BENCHMARK(BM_Tiered_WarmNoLink_##kernel)

TRAPJIT_TIERED_BENCH(call_web, "call_web");
TRAPJIT_TIERED_BENCH(pointer_chase, "pointer_chase");

#undef TRAPJIT_TIERED_BENCH

} // namespace
} // namespace trapjit

BENCHMARK_MAIN();
