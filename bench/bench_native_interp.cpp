/**
 * @file
 * Execution-tier comparison on real wall time: reference switch
 * interpreter vs pre-decoded fused interpreter vs the native x86-64
 * tier, on jBYTEmark kernels (BM_Native_* — CI uploads the results as
 * BENCH_native.json next to BENCH_interp.json).
 *
 * Two families:
 *
 *  - BM_Native_{Reference,Fast,Jit}_<kernel>: the same unoptimized
 *    module (every check explicit, the interpreter benches' shape)
 *    under all three engines.  The native tier's claim is >= 5x over
 *    the fused interpreter on these kernels — dispatch disappears
 *    entirely; what remains is the slot traffic.
 *
 *  - BM_Native_{ImplicitChecks,ExplicitChecks}_<kernel>: the paper's
 *    actual experiment on real hardware.  The same kernel compiled
 *    under the hardware-trap arm (implicit checks: zero instructions,
 *    the guard page does the checking) and the no-trap arm (explicit
 *    compare-and-branch per check), both executed natively.  On
 *    null-heavy kernels the trap arm must be at least as fast in wall
 *    time — the win the paper measures in Table 1.
 *
 * Native benches skip (with a notice in the JSON) on hosts without the
 * native tier; the interpreter baselines run everywhere.
 */

#include <benchmark/benchmark.h>

#include "codegen/native/native_engine.h"
#include "interp/fast_interpreter.h"
#include "interp/interpreter.h"
#include "jit/compiler.h"
#include "workloads/workload.h"

namespace trapjit
{
namespace
{

enum class Tier
{
    Reference,
    Fast,
    Native,
};

void
runEngineBenchmark(benchmark::State &state, const char *workload, Tier tier)
{
    Target target = makeIA32WindowsTarget();
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    ExecStats stats;
    auto loop = [&](auto &engine) {
        for (auto _ : state) {
            engine.reset();
            ExecResult r = engine.run(entry, {});
            benchmark::DoNotOptimize(r.value.i);
            stats = r.stats;
        }
    };
    switch (tier) {
      case Tier::Reference: {
        Interpreter interp(*mod, target, options);
        loop(interp);
        break;
      }
      case Tier::Fast: {
        FastInterpreter interp(*mod, target, options);
        loop(interp);
        break;
      }
      case Tier::Native: {
        if (!nativeTierSupported()) {
            state.SkipWithError("native tier requires x86-64 Linux");
            return;
        }
        NativeEngine engine(*mod, target, options);
        // Compile outside the timed region and fail loudly on
        // fallback: a silently interpreted "native" number would make
        // the comparison meaningless.
        if (engine.nativeCode(entry) == nullptr) {
            state.SkipWithError("main did not compile natively");
            return;
        }
        loop(engine);
        break;
      }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(stats.instructions) * state.iterations());
}

/**
 * The trap experiment: compile under @p makeConfig, execute natively,
 * and report the check mix so the JSON shows what was measured.
 */
void
runCheckArmBenchmark(benchmark::State &state, const char *workload,
                     PipelineConfig (*makeConfig)())
{
    if (!nativeTierSupported()) {
        state.SkipWithError("native tier requires x86-64 Linux");
        return;
    }
    Target target = makeIA32WindowsTarget();
    const Workload *w = findWorkload(workload);
    auto mod = w->build();
    Compiler compiler(target, makeConfig());
    compiler.compile(*mod);
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    NativeEngine engine(*mod, target, options);
    const NativeCode *nc = engine.nativeCode(entry);
    if (nc == nullptr) {
        state.SkipWithError("main did not compile natively");
        return;
    }
    ExecStats stats;
    for (auto _ : state) {
        engine.reset();
        ExecResult r = engine.run(entry, {});
        benchmark::DoNotOptimize(r.value.i);
        stats = r.stats;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(stats.instructions) * state.iterations());
    state.counters["implicit_checks"] =
        static_cast<double>(nc->implicitChecksCompiled);
    state.counters["explicit_checks"] =
        static_cast<double>(nc->explicitChecksCompiled);
    state.counters["explicit_check_bytes"] =
        static_cast<double>(nc->explicitNullCheckBytes);
    state.counters["traps_taken"] = static_cast<double>(stats.trapsTaken);
}

#define TRAPJIT_NATIVE_BENCH(kernel, workload)                            \
    void BM_Native_Reference_##kernel(benchmark::State &state)            \
    {                                                                     \
        runEngineBenchmark(state, workload, Tier::Reference);             \
    }                                                                     \
    void BM_Native_Fast_##kernel(benchmark::State &state)                 \
    {                                                                     \
        runEngineBenchmark(state, workload, Tier::Fast);                  \
    }                                                                     \
    void BM_Native_Jit_##kernel(benchmark::State &state)                  \
    {                                                                     \
        runEngineBenchmark(state, workload, Tier::Native);                \
    }                                                                     \
    void BM_Native_ImplicitChecks_##kernel(benchmark::State &state)       \
    {                                                                     \
        runCheckArmBenchmark(state, workload, makeNoOptTrapConfig);       \
    }                                                                     \
    void BM_Native_ExplicitChecks_##kernel(benchmark::State &state)       \
    {                                                                     \
        runCheckArmBenchmark(state, workload, makeNoOptNoTrapConfig);     \
    }                                                                     \
    BENCHMARK(BM_Native_Reference_##kernel);                              \
    BENCHMARK(BM_Native_Fast_##kernel);                                   \
    BENCHMARK(BM_Native_Jit_##kernel);                                    \
    BENCHMARK(BM_Native_ImplicitChecks_##kernel);                         \
    BENCHMARK(BM_Native_ExplicitChecks_##kernel)

TRAPJIT_NATIVE_BENCH(numsort, "Numeric Sort");
TRAPJIT_NATIVE_BENCH(assignment, "Assignment");
TRAPJIT_NATIVE_BENCH(idea, "IDEA encryption");

#undef TRAPJIT_NATIVE_BENCH

} // namespace
} // namespace trapjit

BENCHMARK_MAIN();
