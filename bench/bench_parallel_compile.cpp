/**
 * @file
 * Parallel-compilation scaling and cache-effectiveness benchmark.
 *
 * Builds a workload batch from the jBYTEmark- and SPECjvm98-like
 * suites (replicated to give the queue real depth), compiles it with
 * the CompileService at 1/2/4/8 workers, and reports:
 *
 *  - cold wall-clock per worker count, plus speedup vs 1 worker —
 *    actual scaling depends on the host's core count (a 1-core
 *    container will show ~1.0x at every width);
 *  - busy/wall utilization (aggregate worker-seconds over wall time);
 *  - warm-cache wall time and hit rate for an identical second batch.
 *
 * Units are host seconds; every arm compiles an identical batch, so
 * the relative columns are meaningful on any machine.
 */

#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "jit/compile_service.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{

constexpr int kReplicas = 4; ///< copies of each workload in the batch

std::vector<std::unique_ptr<Module>>
buildBatch()
{
    std::vector<std::unique_ptr<Module>> mods;
    for (int r = 0; r < kReplicas; ++r) {
        for (const Workload &w : jbytemarkWorkloads())
            mods.push_back(w.build());
        for (const Workload &w : specjvmWorkloads())
            mods.push_back(w.build());
    }
    return mods;
}

std::vector<Module *>
pointers(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<Module *> out;
    for (const auto &mod : mods)
        out.push_back(mod.get());
    return out;
}

} // namespace

int
main()
{
    Target ia32 = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    {
        auto probe = buildBatch();
        size_t fns = 0;
        for (const auto &mod : probe)
            fns += mod->numFunctions();
        std::cout << "Parallel compilation scaling, "
                  << probe.size() << " modules / " << fns
                  << " functions (" << kReplicas
                  << "x jBYTEmark+SPECjvm98 suites), pipeline "
                  << config.name << "\n"
                  << "Host reports "
                  << std::thread::hardware_concurrency()
                  << " hardware thread(s); speedup saturates there.\n\n";
    }

    TextTable table({"workers", "cold wall (s)", "speedup", "busy/wall",
                     "warm wall (s)", "warm hit rate"});

    double baseline = 0.0;
    for (size_t workers : {1u, 2u, 4u, 8u}) {
        CompileServiceOptions options;
        options.numWorkers = workers;
        CompileService service(ia32, options);

        // Cold: fresh cache, every function compiles.
        auto cold = buildBatch();
        auto coldPtrs = pointers(cold);
        ServiceReport coldReport =
            service.compileModules(coldPtrs, config);
        if (workers == 1)
            baseline = coldReport.wallSeconds;

        // Warm: identical fresh batch against the now-full cache.
        auto warm = buildBatch();
        auto warmPtrs = pointers(warm);
        ServiceReport warmReport =
            service.compileModules(warmPtrs, config);

        table.addRow(
            {std::to_string(workers),
             TextTable::num(coldReport.wallSeconds, 3),
             TextTable::num(baseline / coldReport.wallSeconds, 2) + "x",
             TextTable::num(
                 coldReport.busySeconds /
                     (coldReport.wallSeconds > 0.0
                          ? coldReport.wallSeconds
                          : 1.0),
                 2),
             TextTable::num(warmReport.wallSeconds, 3),
             TextTable::pct(100.0 * warmReport.counters.hitRate())});
    }
    table.print(std::cout);
    return 0;
}
