/**
 * @file
 * Parallel-compilation scaling and cache-effectiveness benchmark.
 *
 * Builds a workload batch from the jBYTEmark- and SPECjvm98-like
 * suites (replicated to give the queue real depth), compiles it with
 * the CompileService at 1/2/4/8 workers, and reports:
 *
 *  - cold wall-clock per worker count, plus speedup vs 1 worker —
 *    actual scaling depends on the host's core count (a 1-core
 *    container will show ~1.0x at every width);
 *  - busy/wall utilization (aggregate worker-seconds over wall time);
 *  - warm-cache wall time and hit rate for an identical second batch.
 *
 * A second section measures raw cache contention: the sharded
 * lock-free CompileCache against a single-mutex unordered_map baseline
 * (the pre-sharding design) under a reader-mostly mix at 1/2/4/8
 * threads.
 *
 * Units are host seconds; every arm compiles an identical batch, so
 * the relative columns are meaningful on any machine.
 */

#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "jit/compile_service.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{

constexpr int kReplicas = 4; ///< copies of each workload in the batch

std::vector<std::unique_ptr<Module>>
buildBatch()
{
    std::vector<std::unique_ptr<Module>> mods;
    for (int r = 0; r < kReplicas; ++r) {
        for (const Workload &w : jbytemarkWorkloads())
            mods.push_back(w.build());
        for (const Workload &w : specjvmWorkloads())
            mods.push_back(w.build());
    }
    return mods;
}

std::vector<Module *>
pointers(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<Module *> out;
    for (const auto &mod : mods)
        out.push_back(mod.get());
    return out;
}

// ---- Cache-contention micro-benchmark ---------------------------------

/** The pre-sharding cache design: one mutex around an unordered_map. */
class SingleMutexCache
{
  public:
    using Value = CompileCache::Value;

    Value
    lookup(const Hash128 &key) const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second;
    }

    Value
    insert(const Hash128 &key, std::string compiled_ir)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        auto [it, fresh] = map_.try_emplace(key, nullptr);
        if (fresh)
            it->second = std::make_shared<const std::string>(
                std::move(compiled_ir));
        return it->second;
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<Hash128, Value, Hash128Hasher> map_;
};

constexpr size_t kContentionKeys = 4096; ///< prepopulated entries
constexpr size_t kOpsPerThread = 400000; ///< ops per worker per arm

Hash128
contentionKey(uint64_t n)
{
    // Mix so keys spread over the shard-selecting top bits.
    Hasher h;
    h.update(n);
    return h.digest();
}

/**
 * Reader-mostly mix over @p cache: ~90% lookups of prepopulated keys,
 * ~10% inserts of fresh per-thread keys — the serving-tier steady
 * state.  Returns aggregate operations per second.
 */
template <typename Cache>
double
contentionOpsPerSecond(Cache &cache, size_t threads)
{
    for (size_t k = 0; k < kContentionKeys; ++k)
        cache.insert(contentionKey(k), "ir");

    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&cache, t] {
            uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
            uint64_t fresh = (t + 1) << 32;
            for (size_t op = 0; op < kOpsPerThread; ++op) {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                if (rng % 10 != 0) {
                    cache.lookup(contentionKey(rng % kContentionKeys));
                } else {
                    cache.insert(contentionKey(fresh++), "ir");
                }
            }
        });
    }
    for (auto &worker : pool)
        worker.join();
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return seconds > 0.0
               ? static_cast<double>(threads * kOpsPerThread) / seconds
               : 0.0;
}

} // namespace

int
main()
{
    Target ia32 = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    {
        auto probe = buildBatch();
        size_t fns = 0;
        for (const auto &mod : probe)
            fns += mod->numFunctions();
        std::cout << "Parallel compilation scaling, "
                  << probe.size() << " modules / " << fns
                  << " functions (" << kReplicas
                  << "x jBYTEmark+SPECjvm98 suites), pipeline "
                  << config.name << "\n"
                  << "Host reports "
                  << std::thread::hardware_concurrency()
                  << " hardware thread(s); speedup saturates there.\n\n";
    }

    TextTable table({"workers", "cold wall (s)", "speedup", "busy/wall",
                     "warm wall (s)", "warm hit rate"});

    double baseline = 0.0;
    for (size_t workers : {1u, 2u, 4u, 8u}) {
        CompileServiceOptions options;
        options.numWorkers = workers;
        CompileService service(ia32, options);

        // Cold: fresh cache, every function compiles.
        auto cold = buildBatch();
        auto coldPtrs = pointers(cold);
        ServiceReport coldReport =
            service.compileModules(coldPtrs, config);
        if (workers == 1)
            baseline = coldReport.wallSeconds;

        // Warm: identical fresh batch against the now-full cache.
        auto warm = buildBatch();
        auto warmPtrs = pointers(warm);
        ServiceReport warmReport =
            service.compileModules(warmPtrs, config);

        table.addRow(
            {std::to_string(workers),
             TextTable::num(coldReport.wallSeconds, 3),
             TextTable::num(baseline / coldReport.wallSeconds, 2) + "x",
             TextTable::num(
                 coldReport.busySeconds /
                     (coldReport.wallSeconds > 0.0
                          ? coldReport.wallSeconds
                          : 1.0),
                 2),
             TextTable::num(warmReport.wallSeconds, 3),
             TextTable::pct(100.0 * warmReport.counters.hitRate())});
    }
    table.print(std::cout);

    // ---- Cache contention: sharded lock-free vs single mutex ----------
    std::cout << "\nCache contention, ~90% lookup / 10% insert over "
              << kContentionKeys << " hot keys, " << kOpsPerThread
              << " ops/thread (single-mutex unordered_map baseline vs "
                 "the sharded lock-free CompileCache):\n\n";

    TextTable contention({"threads", "mutex Mops/s", "sharded Mops/s",
                          "sharded/mutex"});
    CompileCacheStats lastStats;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
        SingleMutexCache baseline;
        double mutexOps = contentionOpsPerSecond(baseline, threads);
        CompileCache sharded;
        double shardedOps = contentionOpsPerSecond(sharded, threads);
        lastStats = sharded.stats();
        contention.addRow(
            {std::to_string(threads), TextTable::num(mutexOps / 1e6, 2),
             TextTable::num(shardedOps / 1e6, 2),
             TextTable::num(
                 mutexOps > 0.0 ? shardedOps / mutexOps : 0.0, 2) +
                 "x"});
    }
    contention.print(std::cout);
    std::cout << "\nSharded cache counters at 8 threads: "
              << lastStats.hits << " hits, " << lastStats.misses
              << " misses, " << lastStats.inserts << " inserts, "
              << lastStats.insertRaces << " insert races\n";
    return 0;
}
