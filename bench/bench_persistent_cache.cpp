/**
 * @file
 * Persistent cross-run cache benchmark: cold service start vs warm
 * start from the on-disk cache (CI uploads the results as
 * BENCH_persistent.json).
 *
 * Each arm builds an identical batch of call_web workload modules
 * (testing/workload_gen/ — the call-graph-heavy preset, so the job
 * keys carry real inliner closures) and compiles it twice through the
 * CompileService at 1/2/4/8 workers:
 *
 *  - cold: a fresh cache directory — every function runs the pipeline
 *    and is appended to the segment file;
 *  - warm: a brand-new service (fresh in-memory cache) on the same
 *    directory — a production restart.  The warm run must perform
 *    ZERO pipeline compiles (asserted), serving everything from disk.
 *
 * Pre-decoding and native pre-compilation are disabled so the columns
 * isolate the compile path the persistent tier short-circuits.  Units
 * are host seconds; cold and warm compile identical batches, so the
 * speedup column is meaningful on any machine.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "jit/compile_service.h"
#include "testing/workload_gen/workload_gen.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{

constexpr int kModules = 24; ///< call_web modules (distinct seeds)

std::vector<std::unique_ptr<Module>>
buildBatch()
{
    const WorkloadProfile *preset = findWorkloadProfile("call_web");
    TRAPJIT_ASSERT(preset, "call_web preset missing");
    std::vector<std::unique_ptr<Module>> mods;
    for (int i = 0; i < kModules; ++i) {
        WorkloadProfile p = *preset;
        p.seed = 1000 + i;
        // Scale the preset up so pipeline time (superlinear in function
        // size: inlining, then solving over deeper try nesting)
        // dominates the linear per-job snapshot/install cost both arms
        // pay — the production shape, where compilation is worth
        // persisting in the first place.
        p.numKernels = 4;
        p.statementsPerKernel = 40;
        p.tryDepth = 5;
        p.callFanout = 3;
        mods.push_back(generateWorkloadModule(p));
    }
    return mods;
}

std::vector<Module *>
pointers(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<Module *> out;
    for (const auto &mod : mods)
        out.push_back(mod.get());
    return out;
}

CompileServiceOptions
serviceOptions(size_t workers, const std::string &dir)
{
    CompileServiceOptions options;
    options.numWorkers = workers;
    options.predecode = false;
    options.precompileNative = false;
    options.cacheDir = dir;
    return options;
}

struct ArmResult
{
    size_t workers = 0;
    double coldSeconds = 0.0;
    double warmSeconds = 0.0;
    size_t coldCompiled = 0;
    size_t warmCompiled = 0;
    size_t warmPersistentHits = 0;
    uint64_t bytesMapped = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_persistent.json";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--json")
            jsonPath = argv[i + 1];

    Target ia32 = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    {
        auto probe = buildBatch();
        size_t fns = 0;
        for (const auto &mod : probe)
            fns += mod->numFunctions();
        std::cout << "Persistent cross-run cache: cold vs warm service "
                     "start, "
                  << probe.size() << " call_web modules / " << fns
                  << " functions, pipeline " << config.name << "\n"
                  << "Warm arm restarts the service on the same cache "
                     "directory and must compile nothing.\n\n";
    }

    std::filesystem::path base =
        std::filesystem::temp_directory_path() /
        ("trapjit-bench-pcache-" + std::to_string(::getpid()));

    TextTable table({"workers", "cold wall (s)", "warm wall (s)",
                     "warm speedup", "warm compiles", "persistent hits",
                     "cache bytes"});
    std::vector<ArmResult> results;

    for (size_t workers : {1u, 2u, 4u, 8u}) {
        std::filesystem::path dir =
            base / ("w" + std::to_string(workers));
        std::filesystem::create_directories(dir);

        ArmResult r;
        r.workers = workers;
        {
            // Cold: fresh directory, every function compiles and is
            // persisted.
            CompileService service(
                ia32, serviceOptions(workers, dir.string()));
            TRAPJIT_ASSERT(service.persistentCache(),
                           "persistent cache failed to open in ",
                           dir.string());
            auto cold = buildBatch();
            auto coldPtrs = pointers(cold);
            ServiceReport rep = service.compileModules(coldPtrs, config);
            r.coldSeconds = rep.wallSeconds;
            r.coldCompiled = rep.counters.functionsCompiled;
            TRAPJIT_ASSERT(r.coldCompiled > 0,
                           "cold run compiled nothing");
        }
        {
            // Warm: new service, fresh in-memory cache, same directory
            // — the restart path.  Zero compiles or the tier is broken.
            CompileService service(
                ia32, serviceOptions(workers, dir.string()));
            auto warm = buildBatch();
            auto warmPtrs = pointers(warm);
            ServiceReport rep = service.compileModules(warmPtrs, config);
            r.warmSeconds = rep.wallSeconds;
            r.warmCompiled = rep.counters.functionsCompiled;
            r.warmPersistentHits = rep.counters.persistentHits;
            r.bytesMapped = rep.counters.bytesMapped;
            TRAPJIT_ASSERT(r.warmCompiled == 0,
                           "warm service start compiled ",
                           r.warmCompiled,
                           " function(s); the persistent cache must "
                           "serve all of them");
        }
        results.push_back(r);

        table.addRow(
            {std::to_string(workers), TextTable::num(r.coldSeconds, 3),
             TextTable::num(r.warmSeconds, 3),
             TextTable::num(r.warmSeconds > 0.0
                                ? r.coldSeconds / r.warmSeconds
                                : 0.0,
                            2) +
                 "x",
             std::to_string(r.warmCompiled),
             std::to_string(r.warmPersistentHits),
             std::to_string(r.bytesMapped)});
    }
    table.print(std::cout);
    std::cout << "\nWarm starts served every job from "
              << (base / "w1").string()
              << "-style directories without running the pipeline.\n";

    std::ofstream json(jsonPath);
    json << "{\n  \"benchmark\": \"persistent_cache\",\n  \"arms\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ArmResult &r = results[i];
        json << "    {\"workers\": " << r.workers
             << ", \"cold_seconds\": " << r.coldSeconds
             << ", \"warm_seconds\": " << r.warmSeconds
             << ", \"warm_speedup\": "
             << (r.warmSeconds > 0.0 ? r.coldSeconds / r.warmSeconds
                                     : 0.0)
             << ", \"cold_compiled\": " << r.coldCompiled
             << ", \"warm_compiled\": " << r.warmCompiled
             << ", \"warm_persistent_hits\": " << r.warmPersistentHits
             << ", \"bytes_mapped\": " << r.bytesMapped << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "Wrote " << jsonPath << "\n";

    std::error_code ec;
    std::filesystem::remove_all(base, ec);
    return 0;
}
