/**
 * @file
 * Optimized-backend benchmarks: linear-scan register allocation and
 * section-5.4 load speculation against the slot-machine baseline
 * native tier (BM_Regalloc_* / BM_Speculate_* — CI uploads the
 * results as BENCH_regalloc.json).
 *
 * Two families:
 *
 *  - BM_Regalloc_{Fast,Baseline,Optimized}_<preset>: the same fully
 *    optimized module under the fused interpreter, the baseline
 *    native tier (every IR value lives in its stack slot) and the
 *    optimized backend (hot values promoted to callee-/caller-saved
 *    GPRs, budget checks batched per straight-line run).  The
 *    acceptance line: warmed Optimized beats Baseline on the
 *    pointer_chase and array_stream presets.
 *
 *  - BM_Speculate_{On,Off}_<preset> and BM_Speculate_DeoptStorm: the
 *    paper's section-5.4 experiment on the optimized backend.  With
 *    speculation on, loads are hoisted above their explicit null
 *    checks (the check compiles to zero bytes); a null base takes the
 *    guard-page trap and side-exits into the interpreter.  The storm
 *    bench runs the null_storm preset, where speculated loads
 *    actually fault, and reports deopts_taken so the JSON shows the
 *    side-exit path was really measured.
 *
 * All benches skip (with a notice in the JSON) on hosts without the
 * native tier.
 */

#include <benchmark/benchmark.h>

#include "codegen/native/native_engine.h"
#include "interp/fast_interpreter.h"
#include "jit/compiler.h"
#include "testing/workload_gen/workload_gen.h"

namespace trapjit
{
namespace
{

enum class RegallocMode
{
    Fast,      ///< fused-interpreter baseline
    Baseline,  ///< native tier, slots only
    Optimized, ///< regalloc + batched budget + speculation
    NoSpec,    ///< optimized backend with speculation forced off
};

std::unique_ptr<Module>
buildPresetModule(const char *preset, PipelineConfig (*makeConfig)())
{
    const WorkloadProfile *p = findWorkloadProfile(preset);
    auto mod = generateWorkloadModule(*p);
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeConfig());
    compiler.compile(*mod);
    return mod;
}

void
runRegallocBenchmark(benchmark::State &state, const char *preset,
                     PipelineConfig (*makeConfig)(), RegallocMode mode)
{
    Target target = makeIA32WindowsTarget();
    auto mod = buildPresetModule(preset, makeConfig);
    FunctionId entry = mod->findFunction("main");
    InterpOptions options;
    options.recordTrace = false;

    // Serving-loop shape (same as the tiering benches): many requests
    // per heap recycle, the periodic arena wipe off the timed path.
    constexpr int kRunsPerReset = 64;

    auto timeRuns = [&](auto &engine) {
        uint64_t instructionsPerRun = 0;
        uint64_t instructionsSeen = 0;
        int sinceReset = 0;
        for (auto _ : state) {
            if (++sinceReset > kRunsPerReset) {
                state.PauseTiming();
                engine.reset();
                sinceReset = 1;
                instructionsSeen = 0;
                state.ResumeTiming();
            }
            ExecResult r = engine.run(entry, {});
            benchmark::DoNotOptimize(r.value.i);
            instructionsPerRun = r.stats.instructions - instructionsSeen;
            instructionsSeen = r.stats.instructions;
        }
        state.SetItemsProcessed(static_cast<int64_t>(instructionsPerRun) *
                                state.iterations());
    };

    if (mode == RegallocMode::Fast) {
        FastInterpreter interp(*mod, target, options);
        timeRuns(interp);
        return;
    }

    if (!nativeTierSupported()) {
        state.SkipWithError("native tier requires x86-64 Linux");
        return;
    }

    NativeEngineOptions eopts;
    switch (mode) {
      case RegallocMode::Baseline:
        eopts.backend = NativeBackend::Baseline;
        break;
      case RegallocMode::Optimized:
        eopts.backend = NativeBackend::Optimized;
        eopts.speculate = 1;
        break;
      case RegallocMode::NoSpec:
        eopts.backend = NativeBackend::Optimized;
        eopts.speculate = 0;
        break;
      case RegallocMode::Fast:
        break;
    }

    NativeEngine engine(*mod, target, options, nullptr, {}, nullptr,
                        eopts);
    // Warm (compile) outside the timed region and fail loudly on
    // fallback: a silently interpreted "native" number would make the
    // comparison meaningless.
    if (engine.nativeCode(entry) == nullptr) {
        state.SkipWithError("main did not compile natively");
        return;
    }
    engine.run(entry, {});
    engine.reset();
    timeRuns(engine);

    ServiceCounters c;
    engine.addOptimizedCounters(c);
    state.counters["functions_regalloc"] =
        static_cast<double>(c.functionsRegalloc);
    state.counters["spills_emitted"] =
        static_cast<double>(c.spillsEmitted);
    state.counters["loads_speculated"] =
        static_cast<double>(c.loadsSpeculated);
    state.counters["deopts_taken"] = static_cast<double>(c.deoptsTaken);
    state.counters["regalloc_ms"] = c.regallocSeconds * 1e3;
}

// Regalloc family: fully optimized modules (the IR the backend is
// named for), interpreter / baseline-native / optimized-native.
#define TRAPJIT_REGALLOC_BENCH(kernel, preset)                            \
    void BM_Regalloc_Fast_##kernel(benchmark::State &state)               \
    {                                                                     \
        runRegallocBenchmark(state, preset, makeNewFullConfig,            \
                             RegallocMode::Fast);                         \
    }                                                                     \
    void BM_Regalloc_Baseline_##kernel(benchmark::State &state)           \
    {                                                                     \
        runRegallocBenchmark(state, preset, makeNewFullConfig,            \
                             RegallocMode::Baseline);                     \
    }                                                                     \
    void BM_Regalloc_Optimized_##kernel(benchmark::State &state)          \
    {                                                                     \
        runRegallocBenchmark(state, preset, makeNewFullConfig,            \
                             RegallocMode::Optimized);                    \
    }                                                                     \
    BENCHMARK(BM_Regalloc_Fast_##kernel);                                 \
    BENCHMARK(BM_Regalloc_Baseline_##kernel);                             \
    BENCHMARK(BM_Regalloc_Optimized_##kernel)

TRAPJIT_REGALLOC_BENCH(pointer_chase, "pointer_chase");
TRAPJIT_REGALLOC_BENCH(array_stream, "array_stream");

#undef TRAPJIT_REGALLOC_BENCH

// Speculation family: no-opt NO-trap modules — the trap arm already
// turns coverable checks implicit (zero bytes, nothing left for §5.4
// to do), so the §5.4 experiment is the arm where every check is
// still an explicit compare-and-branch the speculated load can elide.
#define TRAPJIT_SPECULATE_BENCH(kernel, preset)                           \
    void BM_Speculate_On_##kernel(benchmark::State &state)                \
    {                                                                     \
        runRegallocBenchmark(state, preset, makeNoOptNoTrapConfig,        \
                             RegallocMode::Optimized);                    \
    }                                                                     \
    void BM_Speculate_Off_##kernel(benchmark::State &state)               \
    {                                                                     \
        runRegallocBenchmark(state, preset, makeNoOptNoTrapConfig,        \
                             RegallocMode::NoSpec);                       \
    }                                                                     \
    BENCHMARK(BM_Speculate_On_##kernel);                                  \
    BENCHMARK(BM_Speculate_Off_##kernel)

TRAPJIT_SPECULATE_BENCH(pointer_chase, "pointer_chase");
TRAPJIT_SPECULATE_BENCH(array_stream, "array_stream");

#undef TRAPJIT_SPECULATE_BENCH

// The deopt storm: null_storm dereferences null bases constantly, so
// speculated loads fault and replay in the interpreter every few
// records — the worst case for speculation and the bench that proves
// the side-exit path is on the measured profile (deopts_taken > 0).
void
BM_Speculate_DeoptStorm(benchmark::State &state)
{
    runRegallocBenchmark(state, "null_storm", makeNoOptNoTrapConfig,
                         RegallocMode::Optimized);
}
BENCHMARK(BM_Speculate_DeoptStorm);

} // namespace
} // namespace trapjit

BENCHMARK_MAIN();
