/**
 * @file
 * Static check counts per configuration: how many null checks remain in
 * the compiled code, of which flavor — the compiler's-eye view
 * complementing the dynamic counts of the performance tables.
 */

#include <iostream>

#include "bench_util.h"
#include "jit/stats.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Static null check counts after compilation "
                 "(explicit / implicit / marked sites), summed over "
                 "each suite\n\n";

    Target ia32 = makeIA32WindowsTarget();
    struct ArmDef
    {
        const char *label;
        PipelineConfig config;
    };
    std::vector<ArmDef> arms = {
        {"No Null Opt. (No Hardware Trap)", makeNoOptNoTrapConfig()},
        {"No Null Opt. (Hardware Trap)", makeNoOptTrapConfig()},
        {"Old Null Check", makeOldNullCheckConfig()},
        {"New Null Check (Phase1 only)", makeNewPhase1OnlyConfig()},
        {"New Null Check (Phase1+Phase2)", makeNewFullConfig()},
    };

    TextTable table({"configuration", "jBYTEmark expl", "impl",
                     "marked", "SPECjvm98 expl", "impl", "marked"});
    for (ArmDef &arm : arms) {
        Compiler compiler(ia32, arm.config);
        CheckStats jb, sj;
        for (const Workload &w : jbytemarkWorkloads()) {
            auto mod = w.build();
            compiler.compile(*mod);
            jb += collectCheckStats(*mod);
        }
        for (const Workload &w : specjvmWorkloads()) {
            auto mod = w.build();
            compiler.compile(*mod);
            sj += collectCheckStats(*mod);
        }
        table.addRow({arm.label, std::to_string(jb.explicitNullChecks),
                      std::to_string(jb.implicitNullChecks),
                      std::to_string(jb.markedExceptionSites),
                      std::to_string(sj.explicitNullChecks),
                      std::to_string(sj.implicitNullChecks),
                      std::to_string(sj.markedExceptionSites)});
    }
    table.print(std::cout);
    std::cout << "\nReading guide: the trap column converts explicit to "
                 "implicit where an access\nis adjacent; the old "
                 "algorithm deletes forward-redundant checks; phase 1\n"
                 "hoists and deletes more; phase 2 converts nearly "
                 "everything that remains.\n";
    return 0;
}
