/**
 * @file
 * Regenerates Table 1: jBYTEmark v0.9 scores (index, larger is better)
 * under the five null-check configurations plus the HotSpot stand-in,
 * on the IA32/Windows model.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Table 1. Performance for the jBYTEmark-like suite "
                 "(index; larger is better)\n"
                 "Model: IA32/Windows (reads and writes trap)\n\n";

    std::vector<Arm> arms = ia32Arms(/*include_altvm=*/true);
    const auto &suite = jbytemarkWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    std::vector<std::string> headers = {"(unit: index)"};
    for (const auto &w : suite)
        headers.push_back(w.name);
    TextTable table(headers);

    for (size_t a = 0; a < arms.size(); ++a) {
        std::vector<std::string> row = {arms[a].label};
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            row.push_back(TextTable::num(
                indexScore(suite[wi], results.cycles[wi][a]), 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
