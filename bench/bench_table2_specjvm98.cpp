/**
 * @file
 * Regenerates Table 2: SPECjvm98 execution times (simulated
 * milliseconds at 600 MHz; smaller is better) under the five null-check
 * configurations plus the HotSpot stand-in.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Table 2. Performance for the SPECjvm98-like suite "
                 "(simulated ms; smaller is better)\n"
                 "Model: IA32/Windows (reads and writes trap)\n\n";

    std::vector<Arm> arms = ia32Arms(/*include_altvm=*/true);
    const auto &suite = specjvmWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    std::vector<std::string> headers = {"(unit: ms)"};
    for (const auto &w : suite)
        headers.push_back(w.name);
    TextTable table(headers);

    for (size_t a = 0; a < arms.size(); ++a) {
        std::vector<std::string> row = {arms[a].label};
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            row.push_back(TextTable::num(
                simulatedMillis(results.cycles[wi][a]), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
