/**
 * @file
 * Regenerates Table 3: JIT compilation time of the SPECjvm98-like suite
 * for our JIT and the AltVM stand-in, plus first-run / best-run style
 * accounting.
 *
 * Units: pass wall-clock time is measured on the host; the simulated
 * run time is model cycles at 600 MHz.  To express the paper's "ratio
 * of compilation time over the first run" (Figure 12-style column) the
 * host time is converted to PIII-equivalent time with a fixed,
 * documented calibration factor — the absolute ratio is therefore
 * indicative only, but the *relative* comparisons (our JIT compiles
 * several times faster than the AltVM; javac dominates compile time)
 * are unit-consistent and meaningful.
 */

#include <iostream>

#include "bench_util.h"
#include "jit/timing.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{

/** Host-to-PIII-600 equivalent throughput factor (documented estimate). */
constexpr double kHostToP3Factor = 40.0;

/** Average the pass timings over @p reps fresh compilations. */
PassTimings
averageCompileTimings(const Workload &w, const Compiler &compiler,
                      int reps)
{
    PassTimings sum;
    for (int r = 0; r < reps; ++r) {
        auto mod = w.build();
        CompileReport report = compiler.compile(*mod);
        sum.nullCheckSeconds += report.timings.nullCheckSeconds;
        sum.otherSeconds += report.timings.otherSeconds;
        sum.solver += report.timings.solver;
        sum.functionsAudited += report.timings.functionsAudited;
        sum.auditFindings += report.timings.auditFindings;
        sum.auditSeconds += report.timings.auditSeconds;
    }
    sum.nullCheckSeconds /= reps;
    sum.otherSeconds /= reps;
    return sum;
}

} // namespace

int
main()
{
    std::cout << "Table 3. JIT compilation time, SPECjvm98-like suite\n"
                 "(compile: host ms averaged over repetitions; run: "
                 "simulated ms at 600 MHz;\n ratio: compile share of the "
                 "first run using a fixed x"
              << kHostToP3Factor << " host->PIII calibration)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    Compiler ours(ia32, makeNewFullConfig());
    Compiler altvm(ia32, makeAltVMConfig());
    const int reps = 20;

    TextTable table({"benchmark", "ours compile (ms)", "ours run (ms)",
                     "ours ratio", "altvm compile (ms)",
                     "altvm run (ms)", "altvm ratio",
                     "altvm/ours compile"});

    double oursTotal = 0.0;
    double altvmTotal = 0.0;
    SolverStats oursSolver;
    uint64_t oursAudited = 0;
    uint64_t oursAuditFindings = 0;
    double oursAuditSeconds = 0.0;
    ExecStats engineTotals;
    ServiceCounters tieringTotals;
    for (const Workload &w : specjvmWorkloads()) {
        PassTimings oursT = averageCompileTimings(w, ours, reps);
        PassTimings altvmT = averageCompileTimings(w, altvm, reps);
        WorkloadRun oursRun = runWorkload(w, ours, ia32);
        WorkloadRun altvmRun = runWorkload(w, altvm, ia32);

        double oursCompileMs = oursT.total() * 1e3;
        double altvmCompileMs = altvmT.total() * 1e3;
        double oursRunMs = simulatedMillis(oursRun.cycles);
        double altvmRunMs = simulatedMillis(altvmRun.cycles);
        double oursRatio = oursCompileMs * kHostToP3Factor /
                           (oursCompileMs * kHostToP3Factor + oursRunMs);
        double altvmRatio =
            altvmCompileMs * kHostToP3Factor /
            (altvmCompileMs * kHostToP3Factor + altvmRunMs);
        oursTotal += oursCompileMs;
        altvmTotal += altvmCompileMs;
        oursSolver += oursT.solver;
        oursAudited += oursT.functionsAudited;
        oursAuditFindings += oursT.auditFindings;
        oursAuditSeconds += oursT.auditSeconds;
        engineTotals.instructions += oursRun.stats.instructions;
        engineTotals.dispatches += oursRun.stats.dispatches;
        engineTotals.fusedPairsExecuted +=
            oursRun.stats.fusedPairsExecuted;
        engineTotals.functionsDecoded += oursRun.stats.functionsDecoded;
        engineTotals.decodeSeconds += oursRun.stats.decodeSeconds;
        engineTotals.functionsNativeCompiled +=
            oursRun.stats.functionsNativeCompiled;
        engineTotals.nativeCompileSeconds +=
            oursRun.stats.nativeCompileSeconds;
        tieringTotals += oursRun.tiering;

        table.addRow({w.name, TextTable::num(oursCompileMs, 3),
                      TextTable::num(oursRunMs, 3),
                      TextTable::pct(100.0 * oursRatio),
                      TextTable::num(altvmCompileMs, 3),
                      TextTable::num(altvmRunMs, 3),
                      TextTable::pct(100.0 * altvmRatio),
                      TextTable::num(altvmCompileMs / oursCompileMs, 2)});
    }
    table.print(std::cout);
    std::cout << "\nTotal compile time: ours "
              << TextTable::num(oursTotal, 3) << " ms, altvm "
              << TextTable::num(altvmTotal, 3) << " ms ("
              << TextTable::num(altvmTotal / oursTotal, 2)
              << "x ours — the paper reports HotSpot spending several "
                 "times our compile time)\n";
    std::cout << "Dataflow solver convergence (ours, all reps): "
              << oursSolver.solves << " solves, "
              << oursSolver.blockVisits << " block visits ("
              << TextTable::num(oursSolver.visitsPerSolve(), 2)
              << " visits/solve), " << oursSolver.edgeFastPathSolves
              << " edge-map fast-path solves\n";
    if (oursAudited > 0) {
        std::cout << "Null-check soundness audit (ours, all reps): "
                  << oursAudited << " functions audited, "
                  << oursAuditFindings << " findings, "
                  << TextTable::num(oursAuditSeconds * 1e3, 3)
                  << " ms\n";
    }

    // Simulation-side accounting, kept apart from the compile columns
    // above: pre-decoding for the fast engine is host time the
    // interpreter spends before the first dispatch, not compile time.
    std::cout << "Execution engine (ours runs): "
              << interpEngineName(interpEngineFromEnv()) << "; "
              << engineTotals.instructions << " instructions retired";
    if (interpEngineFromEnv() == InterpEngineKind::Fast)
        std::cout << ", " << engineTotals.dispatches << " dispatches, "
                  << engineTotals.fusedPairsExecuted
                  << " fused pairs executed, "
                  << engineTotals.functionsDecoded
                  << " functions decoded in "
                  << TextTable::num(engineTotals.decodeSeconds * 1e3, 3)
                  << " ms (excluded from compile columns)";
    if (interpEngineFromEnv() == InterpEngineKind::Native)
        std::cout << ", " << engineTotals.functionsNativeCompiled
                  << " functions native-compiled in "
                  << TextTable::num(
                         engineTotals.nativeCompileSeconds * 1e3, 3)
                  << " ms (excluded from compile columns)";
    std::cout << "\n";
    if (tieringTotals.functionsRegalloc > 0) {
        // Only nonzero under TRAPJIT_NATIVE_BACKEND=optimized: the
        // regalloc+speculation backend's compile- and run-side story.
        std::cout << "Optimized native backend (ours runs): "
                  << tieringTotals.functionsRegalloc
                  << " functions register-allocated in "
                  << TextTable::num(
                         tieringTotals.regallocSeconds * 1e3, 3)
                  << " ms, " << tieringTotals.spillsEmitted
                  << " spills emitted, " << tieringTotals.loadsSpeculated
                  << " loads speculated, " << tieringTotals.deoptsTaken
                  << " deopts taken (regalloc time is native-compile "
                     "host time, excluded from compile columns)\n";
    }
    if (tieringTotals.persistentHits + tieringTotals.persistentMisses >
            0 ||
        tieringTotals.blocksEvicted > 0 ||
        tieringTotals.codeBytesLive > 0) {
        // Serving-tier governance: the persistent cross-run cache and
        // the W^X memory budget (DESIGN.md section 16).
        std::cout << "Serving tier (ours runs): "
                  << tieringTotals.persistentHits
                  << " persistent hits, "
                  << tieringTotals.persistentMisses
                  << " persistent misses, "
                  << tieringTotals.bytesMapped
                  << " cache bytes mapped, "
                  << tieringTotals.blocksEvicted
                  << " blocks evicted over budget, "
                  << tieringTotals.codeBytesLive
                  << " code bytes live\n";
    }
    if (interpEngineFromEnv() == InterpEngineKind::Tiered) {
        std::cout << "Profile-guided tiering (ours runs): "
                  << tieringTotals.functionsPromoted
                  << " functions promoted in "
                  << TextTable::num(
                         tieringTotals.tierUpLatencySeconds * 1e3, 3)
                  << " ms request-to-publish, "
                  << tieringTotals.blocksLinked << " blocks linked, "
                  << tieringTotals.slotsPatched << " call slots patched, "
                  << tieringTotals.blocksInvalidated
                  << " blocks invalidated (tier-up time is background "
                     "host time, excluded from compile columns)\n";
    }
    return 0;
}
