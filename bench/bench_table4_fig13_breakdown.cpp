/**
 * @file
 * Regenerates Table 4 and Figure 13: the breakdown of JIT compilation
 * time into "null check optimization" versus "others", for the NEW
 * pipeline (phase 1 iterated + phase 2) and the OLD one (Whaley).
 * The paper reports the new null check optimization taking about 3x the
 * old one's time while remaining a small share (~2%) of the total.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

namespace
{

PassTimings
averageCompileTimings(const Workload &w, const Compiler &compiler,
                      int reps)
{
    PassTimings sum;
    for (int r = 0; r < reps; ++r) {
        auto mod = w.build();
        CompileReport report = compiler.compile(*mod);
        sum.nullCheckSeconds += report.timings.nullCheckSeconds;
        sum.otherSeconds += report.timings.otherSeconds;
    }
    sum.nullCheckSeconds /= reps;
    sum.otherSeconds /= reps;
    return sum;
}

} // namespace

int
main()
{
    std::cout << "Table 4 / Figure 13. Breakdown of JIT compilation "
                 "time (host ms, averaged)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    Compiler newJit(ia32, makeNewFullConfig());
    Compiler oldJit(ia32, makeOldNullCheckConfig());
    const int reps = 20;

    TextTable table({"benchmark", "pipeline", "null check opt (ms)",
                     "null check opt (%)", "others (ms)", "total (ms)"});

    auto addRows = [&](const std::string &name, const Workload &w) {
        PassTimings n = averageCompileTimings(w, newJit, reps);
        PassTimings o = averageCompileTimings(w, oldJit, reps);
        table.addRow({name, "NEW",
                      TextTable::num(n.nullCheckSeconds * 1e3, 4),
                      TextTable::pct(100.0 * n.nullCheckSeconds /
                                     n.total()),
                      TextTable::num(n.otherSeconds * 1e3, 4),
                      TextTable::num(n.total() * 1e3, 4)});
        table.addRow({"", "OLD",
                      TextTable::num(o.nullCheckSeconds * 1e3, 4),
                      TextTable::pct(100.0 * o.nullCheckSeconds /
                                     o.total()),
                      TextTable::num(o.otherSeconds * 1e3, 4),
                      TextTable::num(o.total() * 1e3, 4)});
    };

    for (const Workload &w : specjvmWorkloads())
        addRows(w.name, w);
    for (const Workload &w : jbytemarkWorkloads())
        addRows("jBYTEmark:" + w.name, w);

    table.print(std::cout);
    return 0;
}
