/**
 * @file
 * Regenerates Table 5: the increase in total JIT compilation time from
 * the old null check algorithm to the new one.  The paper's headline
 * number is a 2.3% average increase.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Table 5. Increase in total JIT compilation time, new "
                 "algorithm vs old (host ms, averaged)\n\n";

    Target ia32 = makeIA32WindowsTarget();
    Compiler newJit(ia32, makeNewFullConfig());
    Compiler oldJit(ia32, makeOldNullCheckConfig());
    const int reps = 25;

    auto totalOf = [&](const Workload &w, const Compiler &c) {
        double total = 0.0;
        for (int r = 0; r < reps; ++r) {
            auto mod = w.build();
            total += c.compile(*mod).timings.total();
        }
        return total / reps;
    };

    TextTable table({"benchmark", "increase (ms)", "increase (%)"});
    double sumNew = 0.0;
    double sumOld = 0.0;
    auto addRow = [&](const std::string &name, const Workload &w) {
        double n = totalOf(w, newJit);
        double o = totalOf(w, oldJit);
        sumNew += n;
        sumOld += o;
        table.addRow({name, TextTable::num((n - o) * 1e3, 4),
                      TextTable::pct(100.0 * (n - o) / o)});
    };
    for (const Workload &w : specjvmWorkloads())
        addRow(w.name, w);
    for (const Workload &w : jbytemarkWorkloads())
        addRow("jBYTEmark:" + w.name, w);
    table.print(std::cout);

    std::cout << "\nAverage total increase: "
              << TextTable::pct(100.0 * (sumNew - sumOld) / sumOld)
              << " (paper: 2.3%)\n";
    return 0;
}
