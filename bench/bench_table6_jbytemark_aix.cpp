/**
 * @file
 * Regenerates Table 6: jBYTEmark scores on the PowerPC/AIX model under
 * the Section 5.4 configurations — Speculation, No Speculation, No Null
 * Check Optimization, and the deliberately illegal Illegal Implicit arm
 * (compiled against a target that claims reads trap; executed on the
 * honest AIX model).
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Table 6. jBYTEmark-like scores on the PowerPC/AIX "
                 "model (index; larger is better)\n"
                 "Writes to the protected page trap; reads of page zero "
                 "silently succeed.\n\n";

    std::vector<Arm> arms = aixArms();
    const auto &suite = jbytemarkWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    std::vector<std::string> headers = {"(unit: index)"};
    for (const auto &w : suite)
        headers.push_back(w.name);
    TextTable table(headers);
    for (size_t a = 0; a < arms.size(); ++a) {
        std::vector<std::string> row = {arms[a].label};
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            row.push_back(TextTable::num(
                indexScore(suite[wi], results.cycles[wi][a]), 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
