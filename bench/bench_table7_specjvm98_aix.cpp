/**
 * @file
 * Regenerates Table 7: SPECjvm98 times on the PowerPC/AIX model under
 * the Section 5.4 configurations.
 */

#include <iostream>

#include "bench_util.h"

using namespace trapjit;
using namespace trapjit::bench;

int
main()
{
    std::cout << "Table 7. SPECjvm98-like times on the PowerPC/AIX "
                 "model (simulated ms at 332 MHz; smaller is better)\n\n";

    std::vector<Arm> arms = aixArms();
    const auto &suite = specjvmWorkloads();
    SuiteCycles results = runSuite(suite, arms);

    std::vector<std::string> headers = {"(unit: ms)"};
    for (const auto &w : suite)
        headers.push_back(w.name);
    TextTable table(headers);
    for (size_t a = 0; a < arms.size(); ++a) {
        std::vector<std::string> row = {arms[a].label};
        for (size_t wi = 0; wi < suite.size(); ++wi) {
            row.push_back(TextTable::num(
                results.cycles[wi][a] / 332.0e3, 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
