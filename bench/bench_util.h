#ifndef TRAPJIT_BENCH_BENCH_UTIL_H_
#define TRAPJIT_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared harness code for the table/figure benchmarks.
 *
 * Every bench binary regenerates one table or figure of the paper's
 * Section 5 by running the synthetic suites under the experiment arms
 * and printing the same rows the paper reports.  jBYTEmark-style scores
 * are an index (bigger is better, indexScale / cycles); SPECjvm98-style
 * results are simulated milliseconds (smaller is better).
 */

#include <iostream>
#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace trapjit::bench
{

/** One experiment arm: a pipeline compiled for / run on a target. */
struct Arm
{
    std::string label;
    Target compileTarget;
    Target runtimeTarget;
    PipelineConfig config;
};

/** The five IA32 arms of Tables 1 and 2, plus the AltVM stand-in. */
inline std::vector<Arm>
ia32Arms(bool include_altvm)
{
    Target ia32 = makeIA32WindowsTarget();
    std::vector<Arm> arms = {
        {"New Null Check (Phase1+Phase2)", ia32, ia32,
         makeNewFullConfig()},
        {"New Null Check (Phase1 only)", ia32, ia32,
         makeNewPhase1OnlyConfig()},
        {"Old Null Check", ia32, ia32, makeOldNullCheckConfig()},
        {"No Null Opt. (Hardware Trap)", ia32, ia32,
         makeNoOptTrapConfig()},
        {"No Null Opt. (No Hardware Trap)", ia32, ia32,
         makeNoOptNoTrapConfig()},
    };
    if (include_altvm)
        arms.push_back({"AltVM (HotSpot stand-in)", ia32, ia32,
                        makeAltVMConfig()});
    return arms;
}

/** The four PowerPC/AIX arms of Tables 6 and 7. */
inline std::vector<Arm>
aixArms()
{
    Target aix = makePPCAIXTarget();
    Target lying = makeIllegalImplicitAIXTarget();
    return {
        {"Speculation", aix, aix, makeAIXSpeculationConfig()},
        {"No Speculation", aix, aix, makeAIXNoSpeculationConfig()},
        {"No Null Check Optimization", aix, aix, makeAIXNoOptConfig()},
        {"Illegal Implicit (No Speculation)", lying, aix,
         makeAIXIllegalImplicitConfig()},
    };
}

/** cycles for every workload (rows) under every arm (columns). */
struct SuiteCycles
{
    std::vector<std::string> workloadNames;
    std::vector<std::string> armLabels;
    /** cycles[workload][arm] */
    std::vector<std::vector<double>> cycles;
};

inline SuiteCycles
runSuite(const std::vector<Workload> &suite, const std::vector<Arm> &arms)
{
    SuiteCycles result;
    for (const Arm &arm : arms)
        result.armLabels.push_back(arm.label);
    for (const Workload &w : suite) {
        result.workloadNames.push_back(w.name);
        std::vector<double> row;
        for (const Arm &arm : arms) {
            Compiler compiler(arm.compileTarget, arm.config);
            WorkloadRun run =
                runWorkload(w, compiler, arm.runtimeTarget);
            TRAPJIT_ASSERT(run.ok, w.name, " under ", arm.label,
                           " threw");
            row.push_back(run.cycles);
        }
        result.cycles.push_back(std::move(row));
    }
    return result;
}

/** jBYTEmark index for a run: indexScale / cycles (larger = faster). */
inline double
indexScore(const Workload &w, double cycles)
{
    return w.indexScale / cycles;
}

/** SPECjvm98-style simulated milliseconds at 600 MHz. */
inline double
simulatedMillis(double cycles)
{
    return cycles / 600.0e3;
}

} // namespace trapjit::bench

#endif // TRAPJIT_BENCH_BENCH_UTIL_H_
