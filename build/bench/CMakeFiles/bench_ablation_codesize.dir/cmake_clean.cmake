file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_codesize.dir/bench_ablation_codesize.cpp.o"
  "CMakeFiles/bench_ablation_codesize.dir/bench_ablation_codesize.cpp.o.d"
  "bench_ablation_codesize"
  "bench_ablation_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
