# Empty compiler generated dependencies file for bench_ablation_codesize.
# This may be replaced when dependencies are built.
