file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vs_altvm_jbytemark.dir/bench_fig10_vs_altvm_jbytemark.cpp.o"
  "CMakeFiles/bench_fig10_vs_altvm_jbytemark.dir/bench_fig10_vs_altvm_jbytemark.cpp.o.d"
  "bench_fig10_vs_altvm_jbytemark"
  "bench_fig10_vs_altvm_jbytemark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vs_altvm_jbytemark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
