# Empty dependencies file for bench_fig10_vs_altvm_jbytemark.
# This may be replaced when dependencies are built.
