# Empty compiler generated dependencies file for bench_fig11_vs_altvm_specjvm98.
# This may be replaced when dependencies are built.
