# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig11_vs_altvm_specjvm98.
