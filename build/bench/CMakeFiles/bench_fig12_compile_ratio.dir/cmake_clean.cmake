file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_compile_ratio.dir/bench_fig12_compile_ratio.cpp.o"
  "CMakeFiles/bench_fig12_compile_ratio.dir/bench_fig12_compile_ratio.cpp.o.d"
  "bench_fig12_compile_ratio"
  "bench_fig12_compile_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_compile_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
