# Empty compiler generated dependencies file for bench_fig12_compile_ratio.
# This may be replaced when dependencies are built.
