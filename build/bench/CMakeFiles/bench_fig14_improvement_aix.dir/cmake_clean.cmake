file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_improvement_aix.dir/bench_fig14_improvement_aix.cpp.o"
  "CMakeFiles/bench_fig14_improvement_aix.dir/bench_fig14_improvement_aix.cpp.o.d"
  "bench_fig14_improvement_aix"
  "bench_fig14_improvement_aix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_improvement_aix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
