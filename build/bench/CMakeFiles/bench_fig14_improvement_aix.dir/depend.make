# Empty dependencies file for bench_fig14_improvement_aix.
# This may be replaced when dependencies are built.
