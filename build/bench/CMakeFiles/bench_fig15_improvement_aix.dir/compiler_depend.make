# Empty compiler generated dependencies file for bench_fig15_improvement_aix.
# This may be replaced when dependencies are built.
