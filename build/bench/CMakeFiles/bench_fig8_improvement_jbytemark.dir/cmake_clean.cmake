file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_improvement_jbytemark.dir/bench_fig8_improvement_jbytemark.cpp.o"
  "CMakeFiles/bench_fig8_improvement_jbytemark.dir/bench_fig8_improvement_jbytemark.cpp.o.d"
  "bench_fig8_improvement_jbytemark"
  "bench_fig8_improvement_jbytemark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_improvement_jbytemark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
