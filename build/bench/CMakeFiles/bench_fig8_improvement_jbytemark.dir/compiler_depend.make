# Empty compiler generated dependencies file for bench_fig8_improvement_jbytemark.
# This may be replaced when dependencies are built.
