file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_improvement_specjvm98.dir/bench_fig9_improvement_specjvm98.cpp.o"
  "CMakeFiles/bench_fig9_improvement_specjvm98.dir/bench_fig9_improvement_specjvm98.cpp.o.d"
  "bench_fig9_improvement_specjvm98"
  "bench_fig9_improvement_specjvm98.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_improvement_specjvm98.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
