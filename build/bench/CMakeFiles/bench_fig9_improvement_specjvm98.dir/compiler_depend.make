# Empty compiler generated dependencies file for bench_fig9_improvement_specjvm98.
# This may be replaced when dependencies are built.
