# Empty dependencies file for bench_micro_passes.
# This may be replaced when dependencies are built.
