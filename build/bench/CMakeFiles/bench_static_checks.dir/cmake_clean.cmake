file(REMOVE_RECURSE
  "CMakeFiles/bench_static_checks.dir/bench_static_checks.cpp.o"
  "CMakeFiles/bench_static_checks.dir/bench_static_checks.cpp.o.d"
  "bench_static_checks"
  "bench_static_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
