# Empty compiler generated dependencies file for bench_static_checks.
# This may be replaced when dependencies are built.
