file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_jbytemark.dir/bench_table1_jbytemark.cpp.o"
  "CMakeFiles/bench_table1_jbytemark.dir/bench_table1_jbytemark.cpp.o.d"
  "bench_table1_jbytemark"
  "bench_table1_jbytemark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_jbytemark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
