# Empty dependencies file for bench_table1_jbytemark.
# This may be replaced when dependencies are built.
