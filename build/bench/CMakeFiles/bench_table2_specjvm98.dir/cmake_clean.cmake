file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_specjvm98.dir/bench_table2_specjvm98.cpp.o"
  "CMakeFiles/bench_table2_specjvm98.dir/bench_table2_specjvm98.cpp.o.d"
  "bench_table2_specjvm98"
  "bench_table2_specjvm98.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_specjvm98.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
