# Empty compiler generated dependencies file for bench_table2_specjvm98.
# This may be replaced when dependencies are built.
