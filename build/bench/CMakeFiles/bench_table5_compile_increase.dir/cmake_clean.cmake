file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_compile_increase.dir/bench_table5_compile_increase.cpp.o"
  "CMakeFiles/bench_table5_compile_increase.dir/bench_table5_compile_increase.cpp.o.d"
  "bench_table5_compile_increase"
  "bench_table5_compile_increase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_compile_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
