# Empty dependencies file for bench_table5_compile_increase.
# This may be replaced when dependencies are built.
