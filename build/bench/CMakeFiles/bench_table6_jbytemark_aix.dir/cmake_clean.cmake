file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_jbytemark_aix.dir/bench_table6_jbytemark_aix.cpp.o"
  "CMakeFiles/bench_table6_jbytemark_aix.dir/bench_table6_jbytemark_aix.cpp.o.d"
  "bench_table6_jbytemark_aix"
  "bench_table6_jbytemark_aix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_jbytemark_aix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
