# Empty dependencies file for bench_table6_jbytemark_aix.
# This may be replaced when dependencies are built.
