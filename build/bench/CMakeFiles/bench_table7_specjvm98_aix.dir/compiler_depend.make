# Empty compiler generated dependencies file for bench_table7_specjvm98_aix.
# This may be replaced when dependencies are built.
