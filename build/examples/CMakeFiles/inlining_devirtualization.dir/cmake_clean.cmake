file(REMOVE_RECURSE
  "CMakeFiles/inlining_devirtualization.dir/inlining_devirtualization.cpp.o"
  "CMakeFiles/inlining_devirtualization.dir/inlining_devirtualization.cpp.o.d"
  "inlining_devirtualization"
  "inlining_devirtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlining_devirtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
