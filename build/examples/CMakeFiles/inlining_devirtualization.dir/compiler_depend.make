# Empty compiler generated dependencies file for inlining_devirtualization.
# This may be replaced when dependencies are built.
