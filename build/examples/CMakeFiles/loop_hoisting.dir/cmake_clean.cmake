file(REMOVE_RECURSE
  "CMakeFiles/loop_hoisting.dir/loop_hoisting.cpp.o"
  "CMakeFiles/loop_hoisting.dir/loop_hoisting.cpp.o.d"
  "loop_hoisting"
  "loop_hoisting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_hoisting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
