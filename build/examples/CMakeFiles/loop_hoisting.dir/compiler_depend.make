# Empty compiler generated dependencies file for loop_hoisting.
# This may be replaced when dependencies are built.
