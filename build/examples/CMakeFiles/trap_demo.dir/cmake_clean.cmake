file(REMOVE_RECURSE
  "CMakeFiles/trap_demo.dir/trap_demo.cpp.o"
  "CMakeFiles/trap_demo.dir/trap_demo.cpp.o.d"
  "trap_demo"
  "trap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
