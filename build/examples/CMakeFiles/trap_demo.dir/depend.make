# Empty dependencies file for trap_demo.
# This may be replaced when dependencies are built.
