
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dataflow.cpp" "src/CMakeFiles/trapjit.dir/analysis/dataflow.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/analysis/dataflow.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/CMakeFiles/trapjit.dir/analysis/dominators.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/analysis/dominators.cpp.o.d"
  "/root/repo/src/analysis/liveness.cpp" "src/CMakeFiles/trapjit.dir/analysis/liveness.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/analysis/liveness.cpp.o.d"
  "/root/repo/src/analysis/loops.cpp" "src/CMakeFiles/trapjit.dir/analysis/loops.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/analysis/loops.cpp.o.d"
  "/root/repo/src/analysis/rpo.cpp" "src/CMakeFiles/trapjit.dir/analysis/rpo.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/analysis/rpo.cpp.o.d"
  "/root/repo/src/arch/target.cpp" "src/CMakeFiles/trapjit.dir/arch/target.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/arch/target.cpp.o.d"
  "/root/repo/src/codegen/codegen_pass.cpp" "src/CMakeFiles/trapjit.dir/codegen/codegen_pass.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/codegen/codegen_pass.cpp.o.d"
  "/root/repo/src/codegen/emitter.cpp" "src/CMakeFiles/trapjit.dir/codegen/emitter.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/codegen/emitter.cpp.o.d"
  "/root/repo/src/codegen/linear_scan.cpp" "src/CMakeFiles/trapjit.dir/codegen/linear_scan.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/codegen/linear_scan.cpp.o.d"
  "/root/repo/src/codegen/scheduler.cpp" "src/CMakeFiles/trapjit.dir/codegen/scheduler.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/codegen/scheduler.cpp.o.d"
  "/root/repo/src/interp/cost_model.cpp" "src/CMakeFiles/trapjit.dir/interp/cost_model.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/interp/cost_model.cpp.o.d"
  "/root/repo/src/interp/event_trace.cpp" "src/CMakeFiles/trapjit.dir/interp/event_trace.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/interp/event_trace.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/CMakeFiles/trapjit.dir/interp/interpreter.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/interp/interpreter.cpp.o.d"
  "/root/repo/src/ir/basic_block.cpp" "src/CMakeFiles/trapjit.dir/ir/basic_block.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/basic_block.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/trapjit.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/trapjit.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/instruction.cpp" "src/CMakeFiles/trapjit.dir/ir/instruction.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/instruction.cpp.o.d"
  "/root/repo/src/ir/module.cpp" "src/CMakeFiles/trapjit.dir/ir/module.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/module.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/trapjit.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/serializer.cpp" "src/CMakeFiles/trapjit.dir/ir/serializer.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/serializer.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/CMakeFiles/trapjit.dir/ir/type.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/type.cpp.o.d"
  "/root/repo/src/ir/value.cpp" "src/CMakeFiles/trapjit.dir/ir/value.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/value.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/trapjit.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/ir/verifier.cpp.o.d"
  "/root/repo/src/jit/compiler.cpp" "src/CMakeFiles/trapjit.dir/jit/compiler.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/jit/compiler.cpp.o.d"
  "/root/repo/src/jit/pipeline.cpp" "src/CMakeFiles/trapjit.dir/jit/pipeline.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/jit/pipeline.cpp.o.d"
  "/root/repo/src/jit/stats.cpp" "src/CMakeFiles/trapjit.dir/jit/stats.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/jit/stats.cpp.o.d"
  "/root/repo/src/jit/timing.cpp" "src/CMakeFiles/trapjit.dir/jit/timing.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/jit/timing.cpp.o.d"
  "/root/repo/src/opt/bounds/bounds_check_elimination.cpp" "src/CMakeFiles/trapjit.dir/opt/bounds/bounds_check_elimination.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/bounds/bounds_check_elimination.cpp.o.d"
  "/root/repo/src/opt/bounds/bounds_facts.cpp" "src/CMakeFiles/trapjit.dir/opt/bounds/bounds_facts.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/bounds/bounds_facts.cpp.o.d"
  "/root/repo/src/opt/copy_propagation.cpp" "src/CMakeFiles/trapjit.dir/opt/copy_propagation.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/copy_propagation.cpp.o.d"
  "/root/repo/src/opt/dead_code.cpp" "src/CMakeFiles/trapjit.dir/opt/dead_code.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/dead_code.cpp.o.d"
  "/root/repo/src/opt/inliner/class_hierarchy.cpp" "src/CMakeFiles/trapjit.dir/opt/inliner/class_hierarchy.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/inliner/class_hierarchy.cpp.o.d"
  "/root/repo/src/opt/inliner/inliner.cpp" "src/CMakeFiles/trapjit.dir/opt/inliner/inliner.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/inliner/inliner.cpp.o.d"
  "/root/repo/src/opt/local_cse.cpp" "src/CMakeFiles/trapjit.dir/opt/local_cse.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/local_cse.cpp.o.d"
  "/root/repo/src/opt/nullcheck/check_coverage.cpp" "src/CMakeFiles/trapjit.dir/opt/nullcheck/check_coverage.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/nullcheck/check_coverage.cpp.o.d"
  "/root/repo/src/opt/nullcheck/facts.cpp" "src/CMakeFiles/trapjit.dir/opt/nullcheck/facts.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/nullcheck/facts.cpp.o.d"
  "/root/repo/src/opt/nullcheck/local_trap_lowering.cpp" "src/CMakeFiles/trapjit.dir/opt/nullcheck/local_trap_lowering.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/nullcheck/local_trap_lowering.cpp.o.d"
  "/root/repo/src/opt/nullcheck/phase1.cpp" "src/CMakeFiles/trapjit.dir/opt/nullcheck/phase1.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/nullcheck/phase1.cpp.o.d"
  "/root/repo/src/opt/nullcheck/phase2.cpp" "src/CMakeFiles/trapjit.dir/opt/nullcheck/phase2.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/nullcheck/phase2.cpp.o.d"
  "/root/repo/src/opt/nullcheck/whaley.cpp" "src/CMakeFiles/trapjit.dir/opt/nullcheck/whaley.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/nullcheck/whaley.cpp.o.d"
  "/root/repo/src/opt/pass.cpp" "src/CMakeFiles/trapjit.dir/opt/pass.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/pass.cpp.o.d"
  "/root/repo/src/opt/pass_manager.cpp" "src/CMakeFiles/trapjit.dir/opt/pass_manager.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/pass_manager.cpp.o.d"
  "/root/repo/src/opt/scalar/scalar_replacement.cpp" "src/CMakeFiles/trapjit.dir/opt/scalar/scalar_replacement.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/opt/scalar/scalar_replacement.cpp.o.d"
  "/root/repo/src/runtime/exceptions.cpp" "src/CMakeFiles/trapjit.dir/runtime/exceptions.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/runtime/exceptions.cpp.o.d"
  "/root/repo/src/runtime/heap.cpp" "src/CMakeFiles/trapjit.dir/runtime/heap.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/runtime/heap.cpp.o.d"
  "/root/repo/src/runtime/trap_runtime.cpp" "src/CMakeFiles/trapjit.dir/runtime/trap_runtime.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/runtime/trap_runtime.cpp.o.d"
  "/root/repo/src/support/bitset.cpp" "src/CMakeFiles/trapjit.dir/support/bitset.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/support/bitset.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/trapjit.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/trapjit.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/support/table.cpp.o.d"
  "/root/repo/src/testing/equivalence.cpp" "src/CMakeFiles/trapjit.dir/testing/equivalence.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/testing/equivalence.cpp.o.d"
  "/root/repo/src/testing/random_program.cpp" "src/CMakeFiles/trapjit.dir/testing/random_program.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/testing/random_program.cpp.o.d"
  "/root/repo/src/workloads/jbytemark.cpp" "src/CMakeFiles/trapjit.dir/workloads/jbytemark.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/workloads/jbytemark.cpp.o.d"
  "/root/repo/src/workloads/kernel_util.cpp" "src/CMakeFiles/trapjit.dir/workloads/kernel_util.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/workloads/kernel_util.cpp.o.d"
  "/root/repo/src/workloads/specjvm.cpp" "src/CMakeFiles/trapjit.dir/workloads/specjvm.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/workloads/specjvm.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/trapjit.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/trapjit.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
