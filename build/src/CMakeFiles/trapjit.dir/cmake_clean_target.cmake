file(REMOVE_RECURSE
  "libtrapjit.a"
)
