# Empty dependencies file for trapjit.
# This may be replaced when dependencies are built.
