# Empty compiler generated dependencies file for test_cleanup.
# This may be replaced when dependencies are built.
