file(REMOVE_RECURSE
  "CMakeFiles/test_phase1.dir/test_phase1.cpp.o"
  "CMakeFiles/test_phase1.dir/test_phase1.cpp.o.d"
  "test_phase1"
  "test_phase1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
