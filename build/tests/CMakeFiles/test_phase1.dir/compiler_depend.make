# Empty compiler generated dependencies file for test_phase1.
# This may be replaced when dependencies are built.
