file(REMOVE_RECURSE
  "CMakeFiles/test_phase2.dir/test_phase2.cpp.o"
  "CMakeFiles/test_phase2.dir/test_phase2.cpp.o.d"
  "test_phase2"
  "test_phase2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
