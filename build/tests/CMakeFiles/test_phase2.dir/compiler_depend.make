# Empty compiler generated dependencies file for test_phase2.
# This may be replaced when dependencies are built.
