file(REMOVE_RECURSE
  "CMakeFiles/test_scalar_bounds.dir/test_scalar_bounds.cpp.o"
  "CMakeFiles/test_scalar_bounds.dir/test_scalar_bounds.cpp.o.d"
  "test_scalar_bounds"
  "test_scalar_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalar_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
