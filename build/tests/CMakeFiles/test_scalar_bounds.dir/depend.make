# Empty dependencies file for test_scalar_bounds.
# This may be replaced when dependencies are built.
