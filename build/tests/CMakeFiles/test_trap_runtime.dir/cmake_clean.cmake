file(REMOVE_RECURSE
  "CMakeFiles/test_trap_runtime.dir/test_trap_runtime.cpp.o"
  "CMakeFiles/test_trap_runtime.dir/test_trap_runtime.cpp.o.d"
  "test_trap_runtime"
  "test_trap_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trap_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
