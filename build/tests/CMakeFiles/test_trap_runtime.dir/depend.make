# Empty dependencies file for test_trap_runtime.
# This may be replaced when dependencies are built.
