file(REMOVE_RECURSE
  "CMakeFiles/test_whaley_lowering.dir/test_whaley_lowering.cpp.o"
  "CMakeFiles/test_whaley_lowering.dir/test_whaley_lowering.cpp.o.d"
  "test_whaley_lowering"
  "test_whaley_lowering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whaley_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
