# Empty dependencies file for test_whaley_lowering.
# This may be replaced when dependencies are built.
