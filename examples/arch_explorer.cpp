/**
 * @file
 * Architecture explorer: run one workload across every target model and
 * configuration, printing dynamic check counts, cycles, and emitted
 * code size — a compact view of the whole design space the paper's
 * Section 5 explores (pass a workload name to choose; default mtrt).
 */

#include <iostream>

#include "codegen/emitter.h"
#include "support/table.h"
#include "workloads/workload.h"

using namespace trapjit;

namespace
{

size_t
codeBytes(const Module &mod, const Target &target)
{
    size_t total = 0;
    for (FunctionId f = 0; f < mod.numFunctions(); ++f)
        total += emitFunction(mod.function(f), target).bytes.size();
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mtrt";
    const Workload *w = findWorkload(name);
    if (!w) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }

    struct Row
    {
        const char *label;
        Target compileTarget;
        Target runtimeTarget;
        PipelineConfig config;
    };
    Target ia32 = makeIA32WindowsTarget();
    Target aix = makePPCAIXTarget();
    Target sparc = makeSPARCTarget();
    Target lying = makeIllegalImplicitAIXTarget();
    std::vector<Row> rows = {
        {"ia32 / no opt, no trap", ia32, ia32, makeNoOptNoTrapConfig()},
        {"ia32 / no opt, trap", ia32, ia32, makeNoOptTrapConfig()},
        {"ia32 / old (Whaley)", ia32, ia32, makeOldNullCheckConfig()},
        {"ia32 / new phase 1", ia32, ia32, makeNewPhase1OnlyConfig()},
        {"ia32 / new phase 1+2", ia32, ia32, makeNewFullConfig()},
        {"sparc / new phase 1+2", sparc, sparc, makeNewFullConfig()},
        {"aix / speculation", aix, aix, makeAIXSpeculationConfig()},
        {"aix / no speculation", aix, aix, makeAIXNoSpeculationConfig()},
        {"aix / illegal implicit", lying, aix,
         makeAIXIllegalImplicitConfig()},
    };

    std::cout << "Workload: " << w->name << " (" << w->suite << ")\n\n";
    TextTable table({"configuration", "cycles", "explicit checks",
                     "implicit", "spec reads", "code bytes"});
    for (Row &row : rows) {
        Compiler compiler(row.compileTarget, row.config);
        auto mod = w->build();
        compiler.compile(*mod);
        size_t bytes = codeBytes(*mod, row.compileTarget);
        // Re-run on a fresh module so compile+run use identical code.
        WorkloadRun run = runWorkload(*w, compiler, row.runtimeTarget);
        table.addRow({row.label, TextTable::num(run.cycles, 0),
                      std::to_string(run.stats.explicitNullChecks),
                      std::to_string(run.stats.implicitNullChecks),
                      std::to_string(run.stats.speculativeReadsOfNull),
                      std::to_string(bytes)});
    }
    table.print(std::cout);
    std::cout << "\nNote how explicit-check counts collapse from top to "
                 "bottom on ia32,\nand how only the speculation arm "
                 "moves reads on aix.\n";
    return 0;
}
