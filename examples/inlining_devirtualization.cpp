/**
 * @file
 * The Figure 1 / Figure 7 story, end to end.
 *
 * A virtual accessor is devirtualized and inlined, which leaves an
 * explicit null check for a receiver whose slots are only touched on
 * one branch.  Phase 2 then pushes the check forward: the accessing
 * path absorbs it into the hardware trap, the other path keeps a
 * single explicit check at its latest point.
 */

#include <iostream>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "jit/compiler.h"

using namespace trapjit;

namespace
{

std::unique_ptr<Module>
buildProgram()
{
    auto mod = std::make_unique<Module>();

    ClassId cls = mod->addClass("Box");
    int64_t offField = mod->addField(cls, "field1", Type::I32);

    // int Box.func(int s1):  if (s1 < 0) return s1; return this.field1;
    // — exactly the method of Figure 1.
    Function &func = mod->addFunction("Box.func", Type::I32, true);
    {
        ValueId self = func.addParam(Type::Ref, "this", cls);
        ValueId s1 = func.addParam(Type::I32, "s1");
        IRBuilder b(func);
        BasicBlock &entry = b.startBlock();
        BasicBlock &negative = func.newBlock();
        BasicBlock &positive = func.newBlock();
        b.atEnd(entry);
        ValueId zero = b.constInt(0);
        ValueId isNeg = b.cmp(Opcode::ICmp, CmpPred::LT, s1, zero);
        b.branch(isNeg, negative, positive);
        b.atEnd(negative);
        b.ret(s1);
        b.atEnd(positive);
        ValueId v = b.getField(self, offField, Type::I32);
        b.ret(v);
    }
    uint32_t slot = mod->addVirtualMethod(cls, func.id());

    // int call(Box a, int i): result = a.func(i);
    Function &caller = mod->addFunction("call", Type::I32);
    {
        ValueId a = caller.addParam(Type::Ref, "a", cls);
        ValueId i = caller.addParam(Type::I32, "i");
        IRBuilder b(caller);
        b.startBlock();
        ValueId result = b.callVirtual(slot, {a, i}, Type::I32);
        b.ret(result);
    }
    return mod;
}

void
show(const char *label, const PipelineConfig &config)
{
    Target target = makeIA32WindowsTarget();
    auto mod = buildProgram();
    Compiler compiler(target, config);
    compiler.compile(*mod);
    std::cout << "==== " << label << " ====\n";
    printFunction(std::cout, mod->function(mod->findFunction("call")));

    // Dynamic check counts for a negative argument (the branch that
    // never touches the receiver's slots — the interesting path).
    Target runtime = makeIA32WindowsTarget();
    Interpreter interp(*mod, runtime);
    Heap &heap = interp.heap();
    Address box = heap.allocateObject(0, 16);
    heap.writeI32(box + 8, 777);
    ExecResult r = interp.run(
        mod->findFunction("call"),
        {RuntimeValue::ofRef(box), RuntimeValue::ofInt(-5)});
    std::cout << "call(box, -5) = " << r.value.i
              << "  [explicit checks executed: "
              << r.stats.explicitNullChecks
              << ", trap-carried: " << r.stats.implicitNullChecks
              << "]\n";
    ExecResult r2 = interp.run(
        mod->findFunction("call"),
        {RuntimeValue::ofRef(box), RuntimeValue::ofInt(5)});
    std::cout << "call(box, +5) = " << r2.value.i << "\n";
    // A null receiver must still throw, whichever path implements it.
    ExecResult r3 = interp.run(
        mod->findFunction("call"),
        {RuntimeValue::ofRef(0), RuntimeValue::ofInt(-5)});
    std::cout << "call(null, -5) -> "
              << (r3.outcome == ExecResult::Outcome::Threw
                      ? excName(r3.exception)
                      : "no exception (BUG)")
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "Devirtualization + inlining and the Figure 1 explicit "
                 "check\n\n";
    show("Phase 1 only: the inlined check stays explicit",
         makeNewPhase1OnlyConfig());
    show("Phase 1 + Phase 2: implicit on the accessing path, explicit "
         "at the latest point of the other",
         makeNewFullConfig());
    return 0;
}
