/**
 * @file
 * The Figure 4 / Figure 6 story: the iterated pipeline on a loop, and
 * read speculation on a write-only-trap target (AIX).
 *
 * The loop is the Figure 6 shape:
 *
 *     do { total += b[a.I++]; } while (cond);
 *
 * The store a.I = ... pins checks inside the loop; on AIX only
 * speculation can hoist `arraylength b` and the read of a.I.
 */

#include <iostream>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "jit/compiler.h"
#include "workloads/kernel_util.h"

using namespace trapjit;

namespace
{

std::unique_ptr<Module>
buildProgram()
{
    auto mod = std::make_unique<Module>();
    ClassId cls = mod->addClass("Cursor");
    int64_t offI = mod->addField(cls, "I", Type::I32);

    // int walk(Cursor a, int[] b, int n)
    Function &walk = mod->addFunction("walk", Type::I32);
    walk.setNeverInline(true);
    {
        ValueId a = walk.addParam(Type::Ref, "a", cls);
        ValueId arr = walk.addParam(Type::Ref, "b");
        ValueId n = walk.addParam(Type::I32, "n");
        IRBuilder b(walk);
        b.startBlock();
        ValueId total = walk.addLocal(Type::I32, "total");
        ValueId k = walk.addLocal(Type::I32, "k");
        b.move(total, b.constInt(0));
        CountedLoop loop(b, k, b.constInt(0), n);
        // T1 = a.I; T2 = T1 + 1; a.I = T2  (the write is the barrier)
        ValueId t1 = b.getField(a, offI, Type::I32);
        ValueId one = b.constInt(1);
        ValueId t2 = b.binop(Opcode::IAdd, t1, one);
        b.putField(a, offI, t2);
        // total += b[T1]
        ValueId v = b.arrayLoad(arr, t1, Type::I32);
        ValueId total2 = b.binop(Opcode::IAdd, total, v);
        b.move(total, total2);
        loop.close();
        b.ret(total);
    }
    return mod;
}

void
show(const char *label, const Target &target,
     const PipelineConfig &config)
{
    auto mod = buildProgram();
    Compiler compiler(target, config);
    compiler.compile(*mod);
    std::cout << "==== " << label << " ====\n";
    printFunction(std::cout, mod->function(mod->findFunction("walk")));

    Interpreter interp(*mod, target);
    Heap &heap = interp.heap();
    Address cursor = heap.allocateObject(0, 16);
    Address arr = heap.allocateArray(Type::I32, 32);
    for (int i = 0; i < 32; ++i)
        heap.writeI32(arr + kArrayDataOffset + 4 * i, i);
    ExecResult r = interp.run(mod->findFunction("walk"),
                              {RuntimeValue::ofRef(cursor),
                               RuntimeValue::ofRef(arr),
                               RuntimeValue::ofInt(16)});
    std::cout << "walk(...) = " << r.value.i
              << ", cycles = " << r.stats.cycles
              << ", heap reads = " << r.stats.heapReads << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "Loop hoisting and speculation (Figures 4 and 6)\n\n";
    Target ia32 = makeIA32WindowsTarget();
    Target aix = makePPCAIXTarget();
    show("IA32, new algorithm (checks hoisted, traps used)", ia32,
         makeNewFullConfig());
    show("AIX, no speculation (reads pinned by the store)", aix,
         makeAIXNoSpeculationConfig());
    show("AIX, speculation (reads hoisted past their checks)", aix,
         makeAIXSpeculationConfig());
    return 0;
}
