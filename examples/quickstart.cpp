/**
 * @file
 * Quickstart: build a small method with the IR builder, run the paper's
 * two-phase null check optimization, and execute it before and after.
 *
 *     int sum(int[] arr, int n) {
 *         int acc = 0;
 *         do { acc += arr[i]; i++; } while (i < n);
 *         return acc;
 *     }
 *
 * Watch the per-access null checks disappear from the loop (phase 1)
 * and the remaining ones turn into hardware traps (phase 2), and the
 * dynamic check counts drop accordingly.
 */

#include <iostream>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "jit/compiler.h"
#include "workloads/kernel_util.h"

using namespace trapjit;

namespace
{

std::unique_ptr<Module>
buildProgram()
{
    auto mod = std::make_unique<Module>();

    // int sum(int[] arr, int n)
    Function &sum = mod->addFunction("sum", Type::I32);
    sum.setNeverInline(true);
    {
        ValueId arr = sum.addParam(Type::Ref, "arr");
        ValueId n = sum.addParam(Type::I32, "n");
        IRBuilder b(sum);
        b.startBlock();
        ValueId acc = sum.addLocal(Type::I32, "acc");
        ValueId i = sum.addLocal(Type::I32, "i");
        b.move(acc, b.constInt(0));
        CountedLoop loop(b, i, b.constInt(0), n);
        ValueId v = b.arrayLoad(arr, i, Type::I32); // checked access
        ValueId acc2 = b.binop(Opcode::IAdd, acc, v);
        b.move(acc, acc2);
        loop.close();
        b.ret(acc);
    }

    // int main(): fill a 10-element array with 1..10 and sum it.
    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId len = b.constInt(10);
    ValueId arr = b.newArray(len, Type::I32);
    ValueId i = fn.addLocal(Type::I32, "i");
    CountedLoop fill(b, i, b.constInt(0), len);
    ValueId one = b.constInt(1);
    ValueId v = b.binop(Opcode::IAdd, i, one);
    b.arrayStore(arr, i, v, Type::I32);
    fill.close();
    ValueId got = b.callStatic(sum.id(), {arr, len}, Type::I32);
    b.ret(got);
    return mod;
}

void
report(const char *label, const PipelineConfig &config)
{
    Target target = makeIA32WindowsTarget();
    auto mod = buildProgram();
    Compiler compiler(target, config);
    compiler.compile(*mod);

    std::cout << "==== " << label << " ====\n";
    printFunction(std::cout, mod->function(mod->findFunction("sum")));

    Interpreter interp(*mod, target);
    ExecResult result = interp.run(mod->findFunction("main"), {});
    std::cout << "result = " << result.value.i
              << ", cycles = " << result.stats.cycles
              << ", explicit checks executed = "
              << result.stats.explicitNullChecks
              << ", implicit = " << result.stats.implicitNullChecks
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "trapjit quickstart: the sum(arr, n) loop under three "
                 "null check configurations\n\n";
    report("No null check optimization (all explicit)",
           makeNoOptNoTrapConfig());
    report("Old algorithm (Whaley) + naive trap use",
           makeOldNullCheckConfig());
    report("New algorithm (Phase 1 + Phase 2)", makeNewFullConfig());
    return 0;
}
