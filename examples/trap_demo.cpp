/**
 * @file
 * Real hardware-trap null checking on this machine.
 *
 * Everything else in the repository models OS page protection inside
 * the interpreter; this demo uses the actual mechanism: an mprotect'ed
 * page stands in for the null page, a SIGSEGV handler converts faulting
 * accesses into "NullPointerException" results, and in-page/out-of-page
 * offsets demonstrate why big-offset fields need explicit checks
 * (Figure 5).
 */

#include <iomanip>
#include <iostream>

#include "runtime/trap_runtime.h"

using namespace trapjit;

int
main()
{
    TrapRuntime runtime;
    std::cout << "Protected page mapped at 0x" << std::hex
              << runtime.simNull() << std::dec << " ("
              << runtime.trapAreaBytes() << " bytes)\n\n";

    // A "non-null object": a little real memory with a field at +8.
    int32_t object[16] = {};
    object[2] = 4242; // field at byte offset 8
    uintptr_t obj = reinterpret_cast<uintptr_t>(object);
    uintptr_t nil = runtime.simNull();

    auto access = [&](const char *what, uintptr_t base, int64_t offset) {
        auto result = runtime.guardedReadI32(base + offset);
        std::cout << std::left << std::setw(44) << what;
        if (result)
            std::cout << "-> value " << *result << "\n";
        else
            std::cout << "-> SIGSEGV caught: NullPointerException\n";
    };

    std::cout << "Implicit null checks (no compare-and-branch "
                 "executed):\n";
    access("read obj.field (offset 8), obj non-null", obj, 8);
    access("read obj.field (offset 8), obj null", nil, 8);
    access("read arraylength (offset 4), null array", nil, 4);

    std::cout << "\nWhy big offsets need explicit checks (Figure 5):\n";
    int64_t bigOffset =
        static_cast<int64_t>(runtime.trapAreaBytes()) + 4096;
    std::cout << "  offset " << bigOffset << " trap-covered? "
              << (runtime.trapCoversAddress(nil + bigOffset) ? "yes"
                                                             : "NO")
              << " -> the compiler must emit an explicit check\n";

    std::cout << "\nTraps taken in this demo: " << runtime.trapsTaken()
              << " (each recovered via siglongjmp, the way the paper's "
                 "VM turns the fault into an NPE)\n";
    return 0;
}
