#include "analysis/audit/audit.h"

#include <deque>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/audit/nonnull_oracle.h"
#include "analysis/dominators.h"
#include "codegen/native/native_compiler.h"
#include "codegen/native/x64_emitter.h"
#include "interp/decoded_program.h"
#include "runtime/heap.h"
#include "support/bitset.h"

namespace trapjit
{

namespace
{

/**
 * A check may not move across this instruction (the paper's Kill_bwd
 * side-effect condition plus the try-region local-write rule).
 * Re-stated here from the IR classification queries so the auditor does
 * not depend on the optimizer's helpers.
 */
bool
isAuditBarrier(const Function &func, const Instruction &inst, bool inTry)
{
    if (inst.isSideEffecting())
        return true;
    return inTry && inst.hasDst() && func.value(inst.dst).isLocal();
}

/** Legally speculated read: executing it with null cannot fault. */
bool
speculationExempt(const Instruction &inst, const Target &target)
{
    return inst.speculative && inst.slotAccess() == SlotAccess::Read &&
           target.readIsSpeculationSafe(inst.slotOffset());
}

/**
 * Executing this instruction with a null (congruent) reference raises a
 * NullPointerException: an explicit check, or a trap-covered exception
 * site.  Implicit check markers raise nothing themselves, and a plain
 * access with a null base is a VM-level hard fault, not an NPE.
 */
bool
raisesNpe(const Instruction &inst, const Target &target)
{
    if (inst.op == Opcode::NullCheck)
        return inst.flavor == CheckFlavor::Explicit;
    return inst.exceptionSite && target.trapCovers(inst);
}

/** Targets of the terminator: the normal (non-exceptional) successors. */
void
normalSuccsOf(const Instruction &term, std::vector<BlockId> &out)
{
    out.clear();
    switch (term.op) {
      case Opcode::Jump:
        out.push_back(static_cast<BlockId>(term.imm));
        break;
      case Opcode::Branch:
      case Opcode::IfNull:
        out.push_back(static_cast<BlockId>(term.imm));
        if (term.imm2 != term.imm)
            out.push_back(static_cast<BlockId>(term.imm2));
        break;
      default:
        break;
    }
}

AuditFinding
makeFinding(AuditSeverity severity, AuditObligation obligation,
            const Function &func, const std::string &passName, BlockId b,
            size_t instIndex, ValueId ref, std::string message)
{
    AuditFinding f;
    f.severity = severity;
    f.obligation = obligation;
    f.function = func.name();
    f.passName = passName;
    f.block = b;
    f.instIndex = instIndex;
    f.ref = ref;
    f.message = std::move(message);
    return f;
}

/** Why trapCovers() rejects @p inst, for a trap-safety message. */
std::string
trapGapReason(const Instruction &inst, const Target &target)
{
    const SlotAccess access = inst.slotAccess();
    if (access == SlotAccess::None)
        return "the instruction performs no slot access";
    const int64_t offset = inst.slotOffset();
    if (offset < 0 || offset >= target.trapAreaBytes) {
        std::ostringstream os;
        os << "slot offset " << offset
           << " is not statically below the protected area ("
           << target.trapAreaBytes << " bytes)";
        return os.str();
    }
    std::ostringstream os;
    os << "a null " << (access == SlotAccess::Read ? "read" : "write")
       << " does not trap on " << target.name;
    return os.str();
}

/**
 * Diagnostics aid: does some dominator of @p b contain an establishing
 * instruction for exactly @p ref?  If so the check exists but is killed
 * on some path, which is the actionable hint.
 */
std::string
dominatingHint(const Function &func, const DominatorTree &dom,
               const NonNullOracle &oracle, BlockId b, ValueId ref)
{
    for (BlockId d = b;;) {
        for (const Instruction &inst : func.block(d).insts()) {
            if (oracle.establishes(inst) && inst.checkedRef() == ref) {
                std::ostringstream os;
                os << " (an establishing check or trap site in block "
                   << d << " does not reach it on every path)";
                return os.str();
            }
        }
        if (d == 0) // the entry block's idom is itself
            break;
        d = dom.idom(d);
    }
    return " (no dominating check or trap site exists)";
}

/**
 * Validate that the implicit check marker at @p bb[@p i] is anchored:
 * scanning forward, the first NPE point for a value congruent with its
 * operand must be a covered trapping access, reached before any side
 * effect, loss of the value, or the end of the block.  Returns "" when
 * anchored, else the failure detail.
 */
std::string
implicitAnchorGap(const Function &func, const Target &target,
                  const NonNullOracle &oracle, const BasicBlock &bb,
                  size_t i, const BitSet &state)
{
    const Instruction &marker = bb.insts()[i];
    const bool inTry = bb.tryRegion() != 0;

    std::vector<bool> congruent(func.numValues(), false);
    size_t liveCongruent = 0;
    for (size_t idx : oracle.congruentWith(state, marker.a)) {
        congruent[oracle.refAt(idx)] = true;
        ++liveCongruent;
    }

    for (size_t j = i + 1; j < bb.insts().size(); ++j) {
        const Instruction &inst = bb.insts()[j];
        const ValueId ref = inst.checkedRef();
        if (ref != kNoValue && ref < congruent.size() && congruent[ref]) {
            if (inst.op == Opcode::NullCheck) {
                if (inst.flavor == CheckFlavor::Explicit)
                    return ""; // re-checked explicitly before any access
                continue;      // sibling marker, shares this anchor
            }
            if (inst.exceptionSite && target.trapCovers(inst))
                return ""; // anchored to the trapping access
            if (speculationExempt(inst, target))
                continue;  // null-safe read, the NPE is still owed
            std::ostringstream os;
            os << "the first consuming access (" << inst.name()
               << " at index " << j << ") is not a covered trap site";
            return os.str();
        }
        if (isAuditBarrier(func, inst, inTry)) {
            std::ostringstream os;
            os << "a side-effecting " << inst.name() << " at index " << j
               << " executes before any covered access";
            return os.str();
        }
        if (inst.hasDst() && inst.dst < congruent.size()) {
            const bool extends = inst.op == Opcode::Move &&
                                 inst.a < congruent.size() &&
                                 congruent[inst.a];
            if (congruent[inst.dst] && !extends) {
                congruent[inst.dst] = false;
                if (--liveCongruent == 0)
                    return "every congruent value is overwritten before "
                           "any covered access";
            } else if (!congruent[inst.dst] && extends) {
                congruent[inst.dst] = true;
                ++liveCongruent;
            }
        }
    }
    return "the block ends before any covered access";
}

} // namespace

// -----------------------------------------------------------------------
// Final audit
// -----------------------------------------------------------------------

AuditReport
auditFunction(const Function &func, const Target &target)
{
    AuditReport report;
    NonNullOracle oracle(func, target);
    oracle.solve();
    DominatorTree dom(func);

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BlockId block = static_cast<BlockId>(b);
        if (!dom.reachable(block))
            continue;
        const BasicBlock &bb = func.block(block);
        BitSet now = oracle.entryState(block);

        for (size_t i = 0; i < bb.insts().size(); ++i) {
            const Instruction &inst = bb.insts()[i];

            if (inst.exceptionSite && !target.trapCovers(inst)) {
                report.findings.push_back(makeFinding(
                    AuditSeverity::Error, AuditObligation::TrapSafety,
                    func, "", block, i, inst.checkedRef(),
                    std::string(inst.name()) +
                        " is marked as an exception site but cannot "
                        "trap: " +
                        trapGapReason(inst, target)));
            }

            const ValueId ref = inst.checkedRef();
            if (ref != kNoValue && inst.op != Opcode::NullCheck) {
                const bool guarded =
                    (inst.exceptionSite && target.trapCovers(inst)) ||
                    speculationExempt(inst, target) ||
                    oracle.isNonNull(now, ref);
                if (!guarded) {
                    report.findings.push_back(makeFinding(
                        AuditSeverity::Error, AuditObligation::Coverage,
                        func, "", block, i, ref,
                        "unguarded " + std::string(inst.name()) +
                            " of " + func.value(ref).name +
                            dominatingHint(func, dom, oracle, block,
                                           ref)));
                }
            }

            if (inst.op == Opcode::NullCheck &&
                inst.flavor == CheckFlavor::Implicit &&
                !oracle.isNonNull(now, inst.a)) {
                std::string gap = implicitAnchorGap(func, target, oracle,
                                                   bb, i, now);
                if (!gap.empty()) {
                    report.findings.push_back(makeFinding(
                        AuditSeverity::Error,
                        AuditObligation::TrapSafety, func, "", block, i,
                        inst.a,
                        "implicit check of " + func.value(inst.a).name +
                            " has no anchoring trap site: " + gap));
                }
            }

            oracle.apply(inst, now);
        }
    }
    return report;
}

// -----------------------------------------------------------------------
// Translation validation of one pass run
// -----------------------------------------------------------------------

namespace
{

/**
 * Check-run ("slot") structure of a block: skeleton[k] is the index of
 * the k-th non-check instruction, slotStart[k] the index of the first
 * check in the run immediately preceding it.  Null-check passes may
 * only redistribute checks between slots; the skeleton sequence is the
 * alignment key between the pre- and post-pass function.
 */
struct BlockSlots
{
    std::vector<size_t> skeleton;
    std::vector<size_t> slotStart;
};

BlockSlots
slotsOf(const BasicBlock &bb)
{
    BlockSlots slots;
    size_t start = 0;
    for (size_t i = 0; i < bb.insts().size(); ++i) {
        if (bb.insts()[i].op == Opcode::NullCheck)
            continue;
        slots.skeleton.push_back(i);
        slots.slotStart.push_back(start);
        start = i + 1;
    }
    return slots;
}

/** "" when the skeleton instructions match, else what changed. */
std::string
skeletonMismatch(const Instruction &pre, const Instruction &post)
{
    if (pre.op != post.op)
        return "opcode changed from " + std::string(pre.name());
    if (pre.dst != post.dst || pre.a != post.a || pre.b != post.b ||
        pre.c != post.c || pre.args != post.args) {
        return "operands changed";
    }
    if (pre.imm != post.imm || pre.imm2 != post.imm2 ||
        pre.fimm != post.fimm || pre.elemType != post.elemType) {
        return "immediates changed";
    }
    if (pre.pred != post.pred || pre.callKind != post.callKind)
        return "predicate/call kind changed";
    if (pre.site != post.site)
        return "site id changed";
    if (pre.speculative != post.speculative)
        return "speculative flag changed";
    if (pre.exceptionSite && !post.exceptionSite)
        return "exception-site marking dropped";
    return "";
}

/**
 * Per-instruction dataflow facts of one function version:
 *
 *  - fwdBefore[b][i]: the oracle's must-non-null/congruence state on
 *    entry to instruction i of block b;
 *  - antBefore[b][i]: the values whose NullPointerException is
 *    *anticipated* there — on every normal path an explicit check or a
 *    covered trap site of a congruent value executes before any side
 *    effect, redefinition, try-region boundary, or function exit.
 *
 * Established ∪ anticipated is exactly the set of values a check may
 * legally guard at that point: established means the NPE can no longer
 * fire, anticipated means it is about to fire anyway (Section 4.1.1).
 */
struct FlowView
{
    const Function &func;
    const Target &target;
    NonNullOracle oracle;
    std::vector<bool> reachable;
    std::vector<std::vector<BitSet>> fwdBefore;
    std::vector<std::vector<BitSet>> antBefore;

    /**
     * Equality-strength twin of `oracle` (conditional pairs off), built
     * only when the redundancy lint is on.  The soundness obligations
     * use the full oracle; redundancy must be judged at the strength of
     * the optimizer's own domain, or the lint flags checks the pass
     * could never have eliminated.
     */
    std::optional<NonNullOracle> strictOracle;
    std::vector<std::vector<BitSet>> strictBefore;

    FlowView(const Function &f, const Target &t, bool withStrict = false)
        : func(f), target(t), oracle(f, t)
    {
        if (withStrict)
            strictOracle.emplace(f, t, /*conditional_pairs=*/false);
        build();
    }

    bool
    established(BlockId b, size_t i, ValueId v) const
    {
        return oracle.isNonNull(fwdBefore[b][i], v);
    }

    /** Establishment the optimizer's equality-only domain can also see. */
    bool
    establishedStrict(BlockId b, size_t i, ValueId v) const
    {
        return strictOracle->isNonNull(strictBefore[b][i], v);
    }

    bool
    anticipated(BlockId b, size_t i, ValueId v) const
    {
        int idx = oracle.indexOf(v);
        return idx >= 0 &&
               antBefore[b][i].test(static_cast<size_t>(idx));
    }

  private:
    void build();
    BitSet antOut(const std::vector<BitSet> &antIn, BlockId b) const;
    BitSet scanBackward(BlockId b, BitSet state,
                        std::vector<BitSet> *record) const;
};

BitSet
FlowView::antOut(const std::vector<BitSet> &antIn, BlockId b) const
{
    const size_t numRefs = oracle.numRefs();
    const Instruction &term = func.block(b).terminator();
    BitSet out(numRefs);
    if (term.op == Opcode::Return || term.op == Opcode::Throw)
        return out; // nothing is anticipated past a function exit
    std::vector<BlockId> succs;
    normalSuccsOf(term, succs);
    out.setAll();
    for (BlockId s : succs) {
        // Anticipation may not cross an Edge_try boundary: a check
        // moved over it would raise the NPE under the wrong handler.
        if (func.block(s).tryRegion() != func.block(b).tryRegion())
            out.clearAll();
        else
            out.meetInto(antIn[s], /*intersect=*/true);
    }
    return out;
}

BitSet
FlowView::scanBackward(BlockId b, BitSet state,
                       std::vector<BitSet> *record) const
{
    const BasicBlock &bb = func.block(b);
    const bool inTry = bb.tryRegion() != 0;
    if (record)
        record->assign(bb.insts().size(), BitSet(oracle.numRefs()));
    for (size_t j = bb.insts().size(); j-- > 0;) {
        const Instruction &inst = bb.insts()[j];
        if (isAuditBarrier(func, inst, inTry)) {
            state.clearAll();
        } else if (inst.hasDst()) {
            int idx = oracle.indexOf(inst.dst);
            if (idx >= 0)
                state.reset(static_cast<size_t>(idx));
        }
        if (raisesNpe(inst, target)) {
            // The NPE fires before the instruction's own effect, so the
            // gen applies even across its barrier/redef role.
            for (size_t idx : oracle.congruentWith(fwdBefore[b][j],
                                                   inst.checkedRef()))
                state.set(idx);
        }
        if (record)
            (*record)[j].assign(state);
    }
    return state;
}

void
FlowView::build()
{
    const size_t numBlocks = func.numBlocks();
    oracle.solve();

    reachable.assign(numBlocks, false);
    std::vector<BlockId> order;
    std::vector<BlockId> stack{0};
    reachable[0] = true; // block 0 is the entry
    while (!stack.empty()) {
        BlockId b = stack.back();
        stack.pop_back();
        order.push_back(b);
        for (BlockId succ : func.block(b).succs()) {
            if (!reachable[succ]) {
                reachable[succ] = true;
                stack.push_back(succ);
            }
        }
    }

    // Forward per-instruction states: replay from the block entry.
    fwdBefore.assign(numBlocks, {});
    if (strictOracle) {
        strictOracle->solve();
        strictBefore.assign(numBlocks, {});
    }
    for (BlockId b : order) {
        const BasicBlock &bb = func.block(b);
        fwdBefore[b].assign(bb.insts().size(),
                            BitSet(oracle.stateBits()));
        BitSet now = oracle.entryState(b);
        for (size_t i = 0; i < bb.insts().size(); ++i) {
            fwdBefore[b][i].assign(now);
            oracle.apply(bb.insts()[i], now);
        }
        if (strictOracle) {
            strictBefore[b].assign(bb.insts().size(),
                                   BitSet(strictOracle->stateBits()));
            BitSet snow = strictOracle->entryState(b);
            for (size_t i = 0; i < bb.insts().size(); ++i) {
                strictBefore[b][i].assign(snow);
                strictOracle->apply(bb.insts()[i], snow);
            }
        }
    }

    // Backward anticipation to a fixed point (optimistic start at the
    // universal set; intersection confluence shrinks it monotonically).
    const size_t numRefs = oracle.numRefs();
    BitSet universal(numRefs);
    universal.setAll();
    std::vector<BitSet> antIn(numBlocks, universal);

    std::deque<BlockId> work(order.rbegin(), order.rend());
    std::vector<bool> queued(numBlocks, false);
    for (BlockId b : order)
        queued[b] = true;
    while (!work.empty()) {
        BlockId b = work.front();
        work.pop_front();
        queued[b] = false;
        BitSet newIn = scanBackward(b, antOut(antIn, b), nullptr);
        if (antIn[b].assignAndReport(newIn)) {
            for (BlockId pred : func.block(b).preds()) {
                if (reachable[pred] && !queued[pred]) {
                    queued[pred] = true;
                    work.push_back(pred);
                }
            }
        }
    }

    antBefore.assign(numBlocks, {});
    for (BlockId b : order)
        scanBackward(b, antOut(antIn, b), &antBefore[b]);
}

} // namespace

AuditReport
auditTransformation(const Function &pre, const Function &post,
                    const Target &target, const std::string &passName,
                    const AuditOptions &options)
{
    AuditReport report;

    // ---- Structure: the non-check skeleton must be unchanged ----------
    if (pre.numBlocks() != post.numBlocks()) {
        report.findings.push_back(makeFinding(
            AuditSeverity::Error, AuditObligation::Structure, post,
            passName, kNoBlock, 0, kNoValue,
            "block count changed from " +
                std::to_string(pre.numBlocks()) + " to " +
                std::to_string(post.numBlocks())));
        return report;
    }

    std::vector<BlockSlots> preSlots(pre.numBlocks());
    std::vector<BlockSlots> postSlots(post.numBlocks());
    bool aligned = true;
    for (size_t b = 0; b < pre.numBlocks(); ++b) {
        const BlockId block = static_cast<BlockId>(b);
        const BasicBlock &preBB = pre.block(block);
        const BasicBlock &postBB = post.block(block);
        preSlots[b] = slotsOf(preBB);
        postSlots[b] = slotsOf(postBB);
        if (preBB.tryRegion() != postBB.tryRegion()) {
            report.findings.push_back(makeFinding(
                AuditSeverity::Error, AuditObligation::Structure, post,
                passName, block, 0, kNoValue, "try region changed"));
            aligned = false;
            continue;
        }
        if (preSlots[b].skeleton.size() != postSlots[b].skeleton.size()) {
            report.findings.push_back(makeFinding(
                AuditSeverity::Error, AuditObligation::Structure, post,
                passName, block, 0, kNoValue,
                "non-check instruction count changed from " +
                    std::to_string(preSlots[b].skeleton.size()) +
                    " to " +
                    std::to_string(postSlots[b].skeleton.size())));
            aligned = false;
            continue;
        }
        for (size_t k = 0; k < preSlots[b].skeleton.size(); ++k) {
            const std::string why = skeletonMismatch(
                preBB.insts()[preSlots[b].skeleton[k]],
                postBB.insts()[postSlots[b].skeleton[k]]);
            if (!why.empty()) {
                report.findings.push_back(makeFinding(
                    AuditSeverity::Error, AuditObligation::Structure,
                    post, passName, block, postSlots[b].skeleton[k],
                    kNoValue, why));
                aligned = false;
            }
        }
    }
    if (!aligned)
        return report; // no 1:1 coordinates; flow obligations undefined

    // ---- Flow obligations ---------------------------------------------
    FlowView preView(pre, target, options.checkRedundancy);
    FlowView postView(post, target, options.checkRedundancy);

    for (size_t b = 0; b < pre.numBlocks(); ++b) {
        const BlockId block = static_cast<BlockId>(b);
        if (!preView.reachable[block])
            continue;
        const BasicBlock &preBB = pre.block(block);
        const BasicBlock &postBB = post.block(block);

        for (size_t k = 0; k < preSlots[b].skeleton.size(); ++k) {
            const size_t preStart = preSlots[b].slotStart[k];
            const size_t postStart = postSlots[b].slotStart[k];

            // Completeness: each check present before the pass is still
            // established or anticipated at its old position.
            for (size_t i = preStart; i < preSlots[b].skeleton[k]; ++i) {
                const ValueId v = preBB.insts()[i].a;
                if (postView.established(block, postStart, v) ||
                    postView.anticipated(block, postStart, v))
                    continue;
                report.findings.push_back(makeFinding(
                    AuditSeverity::Error, AuditObligation::Completeness,
                    post, passName, block, postStart, v,
                    "check of " + pre.value(v).name +
                        " present before the pass is neither "
                        "established nor anticipated afterwards: a "
                        "NullPointerException may be lost"));
            }

            // Ordering (and redundancy): each check present after the
            // pass was already legal at its new position beforehand.
            for (size_t i = postStart; i < postSlots[b].skeleton[k];
                 ++i) {
                const Instruction &chk = postBB.insts()[i];
                if (chk.flavor != CheckFlavor::Explicit)
                    continue; // markers raise nothing themselves
                const ValueId v = chk.a;
                if (!preView.established(block, preStart, v) &&
                    !preView.anticipated(block, preStart, v)) {
                    report.findings.push_back(makeFinding(
                        AuditSeverity::Error, AuditObligation::Ordering,
                        post, passName, block, i, v,
                        "check of " + post.value(v).name +
                            " was neither established nor anticipated "
                            "at this point before the pass: it may "
                            "raise a NullPointerException early"));
                }
                // Redundancy is gated on the PRE state too: a check the
                // pass's own insertions made redundant is a transient
                // the next elimination round removes, not a miss.  Both
                // queries run at equality strength — flagging a check
                // only a conditional-pair fact proves redundant would
                // blame the pass for a proof outside its domain.
                if (options.checkRedundancy &&
                    postView.establishedStrict(block, i, v) &&
                    preView.establishedStrict(block, preStart, v)) {
                    report.findings.push_back(makeFinding(
                        AuditSeverity::Warning,
                        AuditObligation::Redundancy, post, passName,
                        block, i, v,
                        "explicit check of " + post.value(v).name +
                            " survives although recomputed "
                            "non-nullness proves it redundant"));
                }
            }

            // Ordering for a newly designated trap site: the access's
            // NPE point must have been legal before the pass too.
            const Instruction &preSkel =
                preBB.insts()[preSlots[b].skeleton[k]];
            const Instruction &postSkel =
                postBB.insts()[postSlots[b].skeleton[k]];
            if (postSkel.exceptionSite && !preSkel.exceptionSite) {
                const ValueId v = postSkel.checkedRef();
                if (v != kNoValue &&
                    !preView.established(block, preSlots[b].skeleton[k],
                                         v) &&
                    !preView.anticipated(block, preSlots[b].skeleton[k],
                                         v)) {
                    report.findings.push_back(makeFinding(
                        AuditSeverity::Error, AuditObligation::Ordering,
                        post, passName, block,
                        postSlots[b].skeleton[k], v,
                        "access of " + post.value(v).name +
                            " newly marked as an exception site was "
                            "neither established nor anticipated "
                            "there before the pass"));
                }
            }
        }
    }
    return report;
}

// -----------------------------------------------------------------------
// Native tier trap-site lint
// -----------------------------------------------------------------------

AuditReport
auditNativeTrapSites(const Function &func, const Target &target,
                     const DecodedFunction &df, const NativeCode &code)
{
    AuditReport report;
    auto fail = [&](size_t record, ValueId ref, const std::string &msg) {
        report.findings.push_back(
            makeFinding(AuditSeverity::Error, AuditObligation::TrapSafety,
                        func, "native", kNoBlock, record, ref, msg));
    };

    // Record table shape: one offset per decoded record plus the end
    // sentinel, monotonically non-decreasing within the code.
    if (code.recordOffsets.size() != df.code.size() + 1) {
        fail(0, kNoValue,
             "record offset table has " +
                 std::to_string(code.recordOffsets.size()) +
                 " entries for " + std::to_string(df.code.size()) +
                 " records");
        return report;
    }
    for (size_t i = 0; i + 1 < code.recordOffsets.size(); ++i) {
        if (code.recordOffsets[i] > code.recordOffsets[i + 1] ||
            code.recordOffsets[i + 1] > code.codeSize) {
            fail(i, kNoValue, "record offsets are not monotone within "
                              "the code buffer");
            return report;
        }
    }

    // Site table shape: sorted, pairwise disjoint, inside the code, and
    // resuming strictly after the faulting instruction (a resume point
    // inside it would re-fault forever).
    uint32_t prevEnd = 0;
    for (size_t s = 0; s < code.sites.size(); ++s) {
        const NativeTrapSite &site = code.sites[s];
        if (site.accessBegin >= site.accessEnd ||
            site.accessEnd > code.codeSize) {
            fail(site.recordIndex, kNoValue,
                 "trap site " + std::to_string(s) +
                     " has an empty or out-of-range access window");
            continue;
        }
        if (site.accessBegin < prevEnd) {
            fail(site.recordIndex, kNoValue,
                 "trap site " + std::to_string(s) +
                     " overlaps its predecessor (fault-PC lookup is a "
                     "binary search over disjoint windows)");
        }
        prevEnd = site.accessEnd;
        if (site.recordIndex >= df.code.size()) {
            fail(site.recordIndex, kNoValue,
                 "trap site " + std::to_string(s) +
                     " references a non-existent record");
            continue;
        }
        if (site.resumeNext != code.recordOffsets[site.recordIndex + 1]) {
            fail(site.recordIndex, kNoValue,
                 "trap site " + std::to_string(s) +
                     " does not resume at the next record boundary");
        }
        if (site.resumeNext < site.accessEnd) {
            fail(site.recordIndex, kNoValue,
                 "trap site " + std::to_string(s) +
                     " resumes inside the faulting instruction");
        }
    }

    // ---- Optimized-backend obligations --------------------------------
    // Deopt metadata and register homes are load-bearing: a wrong
    // deoptRecord replays the wrong instruction, a wrong budgetAdjust
    // desynchronizes the instruction budget, and a home on a reserved
    // register silently corrupts the pinned engine state.
    for (size_t s = 0; s < code.sites.size(); ++s) {
        const NativeTrapSite &site = code.sites[s];
        if (site.recordIndex >= df.code.size())
            continue; // already reported above
        if (!code.optimized) {
            if (site.deoptIndex != -1) {
                fail(site.recordIndex, kNoValue,
                     "trap site " + std::to_string(s) +
                         " carries deopt metadata in the baseline "
                         "backend");
            }
            continue;
        }
        if (site.deoptIndex < 0 ||
            static_cast<size_t>(site.deoptIndex) >= code.deopts.size()) {
            fail(site.recordIndex, kNoValue,
                 "optimized trap site " + std::to_string(s) +
                     " has no in-range deopt record");
            continue;
        }
        const NativeDeoptInfo &info =
            code.deopts[static_cast<size_t>(site.deoptIndex)];
        if (info.budgetAdjust > df.code.size() ||
            info.deoptRecord > site.recordIndex) {
            fail(site.recordIndex, kNoValue,
                 "trap site " + std::to_string(s) +
                     " has an implausible deopt target or budget "
                     "refund");
            continue;
        }
        if (info.speculated) {
            // A speculated access runs *above* its explicit NullCheck:
            // the deopt must point back at that check, which guards the
            // same reference, immediately precedes the access, and is a
            // GetField / ArrayLength the guard region covers.
            const DecodedInst &acc = df.code[site.recordIndex];
            bool ok = info.deoptRecord + 1 == site.recordIndex &&
                      (acc.srcOp == Opcode::GetField ||
                       acc.srcOp == Opcode::ArrayLength);
            if (ok) {
                const DecodedInst &chk = df.code[info.deoptRecord];
                ok = chk.srcOp == Opcode::NullCheck &&
                     chk.flavor == CheckFlavor::Explicit &&
                     chk.a == acc.a;
            }
            if (!ok) {
                fail(site.recordIndex,
                     df.code[site.recordIndex].a,
                     "speculated trap site " + std::to_string(s) +
                         " does not deopt to the explicit NullCheck "
                         "guarding its base");
            }
        } else if (info.deoptRecord != site.recordIndex) {
            fail(site.recordIndex, kNoValue,
                 "non-speculated trap site " + std::to_string(s) +
                     " deopts to a different record than it faults in");
        }
    }

    if (code.optimized) {
        // Register homes: only allocatable scratch GPRs, one value per
        // register, one register per value.  RBX/R12/R13/R14 carry the
        // slot base, context, heap bias and budget; RAX/RCX/RDX are the
        // lowering's scratch; RSP is the stack.
        auto allocatable = [](uint8_t reg) {
            switch (static_cast<X64Reg>(reg)) {
              case X64Reg::RBP: case X64Reg::RSI: case X64Reg::RDI:
              case X64Reg::R8: case X64Reg::R9: case X64Reg::R10:
              case X64Reg::R11: case X64Reg::R15:
                return true;
              default:
                return false;
            }
        };
        std::vector<bool> valueSeen(df.numValues, false);
        std::vector<bool> regSeen(16, false);
        for (const NativeRegLoc &loc : code.regLocs) {
            if (loc.value >= df.numValues) {
                fail(0, kNoValue,
                     "register home names a non-existent value " +
                         std::to_string(loc.value));
                continue;
            }
            if (!allocatable(loc.reg)) {
                fail(0, static_cast<ValueId>(loc.value),
                     "value " + std::to_string(loc.value) +
                         " is homed in a reserved register (encoding " +
                         std::to_string(loc.reg) + ")");
            } else if (regSeen[loc.reg]) {
                fail(0, static_cast<ValueId>(loc.value),
                     "register encoding " + std::to_string(loc.reg) +
                         " is assigned to two values");
            }
            if (loc.reg < regSeen.size())
                regSeen[loc.reg] = true;
            if (valueSeen[loc.value]) {
                fail(0, static_cast<ValueId>(loc.value),
                     "value " + std::to_string(loc.value) +
                         " has two register homes");
            }
            valueSeen[loc.value] = true;
        }

        // A zero-byte explicit NullCheck is only sound as the elided
        // half of a speculation pair: some site must deopt back to it
        // with the speculated flag set, or its NPE is simply lost.
        for (size_t i = 0; i < df.code.size(); ++i) {
            const DecodedInst &rec = df.code[i];
            if (rec.srcOp != Opcode::NullCheck ||
                rec.flavor != CheckFlavor::Explicit ||
                code.recordOffsets[i] != code.recordOffsets[i + 1])
                continue;
            bool covered = false;
            for (const NativeTrapSite &site : code.sites) {
                if (site.deoptIndex < 0 ||
                    static_cast<size_t>(site.deoptIndex) >=
                        code.deopts.size())
                    continue;
                const NativeDeoptInfo &info =
                    code.deopts[static_cast<size_t>(site.deoptIndex)];
                if (info.speculated && info.deoptRecord == i) {
                    covered = true;
                    break;
                }
            }
            if (!covered) {
                fail(i, rec.a,
                     "explicit NullCheck compiled to zero bytes but no "
                     "speculated trap site deopts back to it");
            }
        }
    }

    // Every reachable implicit-check access must be mapped: its static
    // offset must land in the heap guard region and a site must cover
    // its record — unless its base is provably non-null, in which case
    // the native tier may have elided the access's checks entirely.
    std::vector<bool> recordHasSite(df.code.size(), false);
    for (const NativeTrapSite &site : code.sites) {
        if (site.recordIndex < recordHasSite.size())
            recordHasSite[site.recordIndex] = true;
    }

    NonNullOracle oracle(func, target);
    oracle.solve();

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BlockId block = static_cast<BlockId>(b);
        if (b >= df.blockStart.size())
            break;
        const BasicBlock &bb = func.block(block);
        BitSet now = oracle.entryState(block);
        for (size_t i = 0; i < bb.insts().size(); ++i) {
            const size_t record = df.blockStart[b] + i;
            const Instruction &inst = bb.insts()[i];
            // Calls are exempt: both backends lower them to the call
            // helper, which re-checks a null virtual receiver in
            // software (decideNullAccess) — no hardware trap is
            // involved, so no NativeTrapSite exists or is needed.
            if (inst.exceptionSite && inst.op != Opcode::Call &&
                record < df.code.size()) {
                const DecodedInst &rec = df.code[record];
                const int64_t offset = inst.slotOffset();
                if (offset < 0 ||
                    offset >= static_cast<int64_t>(kHeapBase)) {
                    fail(record, inst.checkedRef(),
                         "implicit-check access offset " +
                             std::to_string(offset) +
                             " is not statically inside the heap guard "
                             "region");
                } else if (!(rec.flags & kDecodedExceptionSite)) {
                    fail(record, inst.checkedRef(),
                         "exception-site access lost its flag in "
                         "decoding");
                } else if (!recordHasSite[record] &&
                           !oracle.isNonNull(now, inst.checkedRef())) {
                    fail(record, inst.checkedRef(),
                         "implicit-check access has no NativeTrapSite "
                         "entry: a null base would be an unrecoverable "
                         "fault");
                }
            }
            oracle.apply(inst, now);
        }
    }
    return report;
}

} // namespace trapjit
