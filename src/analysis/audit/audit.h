#ifndef TRAPJIT_ANALYSIS_AUDIT_AUDIT_H_
#define TRAPJIT_ANALYSIS_AUDIT_AUDIT_H_

/**
 * @file
 * The null-check soundness auditor: an optimizer-independent static
 * analysis that certifies, per function, that the null-check passes
 * (Phase 1, Phase 2, Whaley, local trap lowering) preserved exception
 * semantics.  See DESIGN.md section 12.
 *
 * Two entry points, validating complementary obligations:
 *
 *  - auditFunction() — *final* audit of a fully optimized function:
 *      Coverage    every potentially-faulting access is covered on all
 *                  paths by an equivalent explicit check, a designated
 *                  implicit trap site, or a legal speculation exemption
 *                  (recomputed from scratch by analysis/audit's own
 *                  dominator + dataflow walk over value congruence, not
 *                  by the optimizer's machinery);
 *      TrapSafety  every exception-site marking can actually trap
 *                  (right access kind, statically bounded offset below
 *                  the protected-area size) and every implicit check
 *                  marker is anchored to a covered access before any
 *                  side effect.
 *
 *  - auditTransformation() — *translation validation* of one pass run,
 *    comparing the function before and after:
 *      Structure     the pass only inserted/deleted/moved/re-flavored
 *                    checks and marked trap sites — the non-check
 *                    instruction skeleton is unchanged;
 *      Completeness  every check present before the pass is, at its old
 *                    position, still established or anticipated after
 *                    the pass (no NullPointerException was lost);
 *      Ordering      every check present after the pass was, at its new
 *                    position, already established or anticipated
 *                    before the pass — i.e. it was not hoisted above a
 *                    side-effecting instruction or across an Edge_try
 *                    boundary (the Section 4.1.1 legality conditions);
 *      Redundancy    (elimination passes, warning only) a surviving
 *                    explicit check is provably redundant at its own
 *                    point.
 *
 *  - auditNativeTrapSites() — trap-safety lint of the native tier's
 *    fault-PC tables: every implicit-check access has a complete
 *    NativeTrapSite entry whose resume point cannot re-execute the
 *    faulting instruction, and its static offset stays inside the
 *    heap's guard region.  For optimized-backend blocks it additionally
 *    validates the deopt metadata (every site names an in-range deopt
 *    record; speculated sites deopt back to the adjacent explicit
 *    NullCheck guarding the same base; a zero-byte explicit check is
 *    covered by some speculated site) and the published register homes
 *    (allocatable scratch GPRs only, injective both ways).
 */

#include <string>

#include "analysis/audit/finding.h"
#include "arch/target.h"
#include "ir/function.h"

namespace trapjit
{

struct DecodedFunction;
struct NativeCode;

/** Knobs for the transformation audit. */
struct AuditOptions
{
    /**
     * Also report surviving-but-provably-redundant explicit checks
     * (warning severity).  Only meaningful after elimination passes;
     * motion passes legitimately leave facts the direct solve re-proves.
     */
    bool checkRedundancy = false;
};

/** Final audit of an optimized function (coverage + trap safety). */
AuditReport auditFunction(const Function &func, const Target &target);

/**
 * Translation validation of one null-check pass run: @p pre is the
 * function before the pass, @p post after.  @p passName labels the
 * findings.
 */
AuditReport auditTransformation(const Function &pre, const Function &post,
                                const Target &target,
                                const std::string &passName,
                                const AuditOptions &options = {});

/**
 * Trap-safety lint of the native tier's fault-PC map for one compiled
 * function.  @p df must be the unfused decoded form @p code was
 * compiled from, and @p target the trap model the decode used.
 */
AuditReport auditNativeTrapSites(const Function &func, const Target &target,
                                 const DecodedFunction &df,
                                 const NativeCode &code);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_AUDIT_AUDIT_H_
