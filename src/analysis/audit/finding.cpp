#include "analysis/audit/finding.h"

#include <sstream>

namespace trapjit
{

const char *
auditObligationName(AuditObligation obligation)
{
    switch (obligation) {
      case AuditObligation::Coverage: return "coverage";
      case AuditObligation::Ordering: return "ordering";
      case AuditObligation::Completeness: return "completeness";
      case AuditObligation::Structure: return "structure";
      case AuditObligation::TrapSafety: return "trap-safety";
      case AuditObligation::Redundancy: return "redundancy";
    }
    return "?";
}

const char *
auditSeverityName(AuditSeverity severity)
{
    return severity == AuditSeverity::Error ? "error" : "warning";
}

std::string
AuditFinding::format() const
{
    std::ostringstream os;
    os << auditSeverityName(severity) << " ["
       << auditObligationName(obligation) << "] " << function;
    if (!passName.empty())
        os << " (after " << passName << ")";
    os << " block " << block << " inst " << instIndex;
    if (ref != kNoValue)
        os << " ref v" << ref;
    os << ": " << message;
    return os.str();
}

size_t
AuditReport::errorCount() const
{
    size_t n = 0;
    for (const AuditFinding &f : findings)
        n += f.severity == AuditSeverity::Error;
    return n;
}

size_t
AuditReport::warningCount() const
{
    return findings.size() - errorCount();
}

std::string
AuditReport::format() const
{
    std::ostringstream os;
    for (const AuditFinding &f : findings)
        os << f.format() << "\n";
    return os.str();
}

AuditReport &
AuditReport::operator+=(const AuditReport &other)
{
    findings.insert(findings.end(), other.findings.begin(),
                    other.findings.end());
    return *this;
}

} // namespace trapjit
