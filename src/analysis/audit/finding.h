#ifndef TRAPJIT_ANALYSIS_AUDIT_FINDING_H_
#define TRAPJIT_ANALYSIS_AUDIT_FINDING_H_

/**
 * @file
 * Structured diagnostics of the null-check soundness auditor.
 *
 * Every auditor entry point (analysis/audit/audit.h) reports its
 * verdicts as AuditFindings: one record per violated obligation, with
 * enough location context (function, block, instruction, checked value)
 * to act on without re-running the audit.  The PassManager hook panics
 * on Error findings, `trapjit-lint` prints them one per line, and the
 * counters flow into PassTimings / ServiceCounters for the compile-time
 * benches.
 */

#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace trapjit
{

/** Which soundness obligation a finding violates. */
enum class AuditObligation : uint8_t
{
    /**
     * A potentially-faulting access (field/array/vcall) is not covered
     * on every path by an equivalent explicit check, a designated
     * implicit trap site, or a legal speculation exemption.
     */
    Coverage,

    /**
     * A check appears at a point where the pre-pass function neither
     * established nor anticipated it: it was hoisted above a
     * side-effecting instruction or across an Edge_try boundary into a
     * different handler region (the Section 4.1.1 legality conditions).
     */
    Ordering,

    /**
     * A check present before a null-check pass is neither established
     * nor anticipated after it: the pass lost an NPE (the access it
     * guarded can now execute, or complete, unchecked).
     */
    Completeness,

    /**
     * A null-check pass changed the non-check instruction skeleton of
     * the function (these passes may only insert, delete, move and
     * re-flavor checks and mark trap sites).
     */
    Structure,

    /**
     * An implicit check or marked exception site does not satisfy the
     * target's trap contract: the faulting access is missing, not
     * statically bounded below the guard size, of the wrong access
     * kind for the trap model, or (native tier) lacks a complete
     * NativeTrapSite entry.
     */
    TrapSafety,

    /**
     * An explicit check survives an elimination pass even though the
     * recomputed non-nullness proves it redundant at its own program
     * point (an effectiveness regression, not a soundness bug).
     */
    Redundancy,
};

/** Printable obligation name. */
const char *auditObligationName(AuditObligation obligation);

/** How bad a finding is. */
enum class AuditSeverity : uint8_t
{
    Error,   ///< soundness violation: exception semantics can change
    Warning, ///< effectiveness/hygiene issue: semantics preserved
};

/** Printable severity name. */
const char *auditSeverityName(AuditSeverity severity);

/** One violated obligation at one program point. */
struct AuditFinding
{
    AuditSeverity severity = AuditSeverity::Error;
    AuditObligation obligation = AuditObligation::Coverage;

    std::string function;   ///< function name
    std::string passName;   ///< pass audited ("" for a final audit)
    BlockId block = kNoBlock;
    size_t instIndex = 0;   ///< index within the block (post state)
    ValueId ref = kNoValue; ///< the checked reference, when applicable

    std::string message;

    /** One-line rendering: severity obligation func block:inst message. */
    std::string format() const;
};

/** What one audit produced. */
struct AuditReport
{
    std::vector<AuditFinding> findings;

    size_t errorCount() const;
    size_t warningCount() const;
    bool clean() const { return findings.empty(); }

    /** All findings, one format() line each. */
    std::string format() const;

    /** Append another report's findings. */
    AuditReport &operator+=(const AuditReport &other);
};

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_AUDIT_FINDING_H_
