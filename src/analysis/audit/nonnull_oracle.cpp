#include "analysis/audit/nonnull_oracle.h"

#include <algorithm>
#include <deque>

namespace trapjit
{

NonNullOracle::NonNullOracle(const Function &func, const Target &target,
                             bool conditional_pairs)
    : func_(func), target_(target), conditionalPairs_(conditional_pairs)
{
    indexOf_.assign(func.numValues(), -1);
    for (ValueId v = 0; v < func.numValues(); ++v) {
        if (!func.value(v).isRef())
            continue;
        indexOf_[v] = static_cast<int>(refs_.size());
        refs_.push_back(v);
    }

    // Collect the reference-copy pairs the function can ever create;
    // each gets one liveness bit so congruence is flow-sensitive.
    copiesOf_.resize(func.numValues());
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            if (inst.op != Opcode::Move || inst.dst == inst.a ||
                indexOf(inst.dst) < 0) {
                continue;
            }
            auto pair = std::make_pair(inst.dst, inst.a);
            bool known = false;
            for (size_t p : copiesOf_[inst.dst])
                known |= copies_[p] == pair;
            if (known)
                continue;
            size_t p = copies_.size();
            copies_.push_back(pair);
            copiesOf_[inst.dst].push_back(p);
            copiesOf_[inst.a].push_back(p);
        }
    }
}

void
NonNullOracle::establish(BitSet &state, ValueId v) const
{
    int idx = indexOf(v);
    if (idx < 0)
        return;
    state.set(static_cast<size_t>(idx));
    // Keep congruent values in lockstep: propagate non-nullness across
    // live copy pairs until nothing changes.  A conditional pair fires
    // one way only: `dst == src OR dst non-null` plus `src non-null`
    // gives `dst non-null`, nothing about `src` from `dst`.
    bool changed = !copies_.empty();
    while (changed) {
        changed = false;
        for (size_t p = 0; p < copies_.size(); ++p) {
            size_t d = static_cast<size_t>(indexOf(copies_[p].first));
            size_t s = static_cast<size_t>(indexOf(copies_[p].second));
            if (state.test(copyBit(p)) &&
                state.test(d) != state.test(s)) {
                state.set(d);
                state.set(s);
                changed = true;
            }
            if (state.test(condBit(p)) && state.test(s) &&
                !state.test(d)) {
                state.set(d);
                changed = true;
            }
        }
    }
}

void
NonNullOracle::kill(BitSet &state, ValueId v) const
{
    int idx = indexOf(v);
    if (idx >= 0)
        state.reset(static_cast<size_t>(idx));
    // Redefining either side invalidates the equality and with it the
    // conditional fact (whose `dst == src` disjunct names both values).
    if (v < copiesOf_.size()) {
        for (size_t p : copiesOf_[v]) {
            state.reset(copyBit(p));
            state.reset(condBit(p));
        }
    }
}

void
NonNullOracle::widenConditionals(BitSet &state) const
{
    if (!conditionalPairs_)
        return;
    for (size_t p = 0; p < copies_.size(); ++p) {
        if (state.test(static_cast<size_t>(indexOf(copies_[p].first))))
            state.set(condBit(p));
    }
}

bool
NonNullOracle::establishes(const Instruction &inst) const
{
    if (inst.op == Opcode::NullCheck)
        return inst.flavor == CheckFlavor::Explicit;
    return inst.exceptionSite && target_.trapCovers(inst);
}

void
NonNullOracle::apply(const Instruction &inst, BitSet &state) const
{
    if (establishes(inst))
        establish(state, inst.checkedRef());

    if (!inst.hasDst() || indexOf(inst.dst) < 0)
        return;
    switch (inst.op) {
      case Opcode::NewObject:
      case Opcode::NewArray:
        kill(state, inst.dst);
        establish(state, inst.dst);
        break;
      case Opcode::Move: {
        if (inst.a == inst.dst)
            break;
        bool srcNonNull = isNonNull(state, inst.a);
        kill(state, inst.dst);
        for (size_t p : copiesOf_[inst.dst]) {
            if (copies_[p] == std::make_pair(inst.dst, inst.a)) {
                state.set(copyBit(p));
                if (conditionalPairs_)
                    state.set(condBit(p)); // equality implies the weaker fact
            }
        }
        if (srcNonNull)
            establish(state, inst.dst);
        break;
      }
      default:
        kill(state, inst.dst);
        break;
    }
}

bool
NonNullOracle::sameReference(const BitSet &state, ValueId a,
                             ValueId b) const
{
    if (a == b)
        return true;
    std::deque<ValueId> frontier{a};
    std::vector<bool> seen(func_.numValues(), false);
    if (a >= seen.size() || b >= seen.size())
        return false;
    seen[a] = true;
    while (!frontier.empty()) {
        ValueId cur = frontier.front();
        frontier.pop_front();
        for (size_t p : copiesOf_[cur]) {
            if (!state.test(copyBit(p)))
                continue;
            ValueId other = copies_[p].first == cur ? copies_[p].second
                                                    : copies_[p].first;
            if (other == b)
                return true;
            if (!seen[other]) {
                seen[other] = true;
                frontier.push_back(other);
            }
        }
    }
    return false;
}

std::vector<size_t>
NonNullOracle::congruentWith(const BitSet &state, ValueId v) const
{
    std::vector<size_t> result;
    if (v >= func_.numValues() || indexOf(v) < 0)
        return result;
    std::deque<ValueId> frontier{v};
    std::vector<bool> seen(func_.numValues(), false);
    seen[v] = true;
    result.push_back(static_cast<size_t>(indexOf(v)));
    while (!frontier.empty()) {
        ValueId cur = frontier.front();
        frontier.pop_front();
        for (size_t p : copiesOf_[cur]) {
            if (!state.test(copyBit(p)))
                continue;
            ValueId other = copies_[p].first == cur ? copies_[p].second
                                                    : copies_[p].first;
            if (!seen[other]) {
                seen[other] = true;
                result.push_back(static_cast<size_t>(indexOf(other)));
                frontier.push_back(other);
            }
        }
    }
    return result;
}

void
NonNullOracle::edgeState(BlockId from, BlockId to, BitSet &scratch) const
{
    scratch.assign(out_[from]);
    const Instruction &term = func_.block(from).terminator();
    // The fall-through edge of `ifnull` carries a not-null fact for the
    // tested value (unless both edges lead to the same block).
    if (term.op == Opcode::IfNull && term.imm != term.imm2 &&
        static_cast<BlockId>(term.imm2) == to) {
        establish(scratch, term.a);
    }
    // Close the state under `dst non-null implies the conditional fact`
    // before the caller intersects edges: a pair live on one edge and a
    // directly-established dst on the other leaves the conditional fact
    // standing at the merge, which is exactly what lets a later check of
    // the copied-from value prove the copy.
    widenConditionals(scratch);
}

void
NonNullOracle::solve()
{
    const size_t numBlocks = func_.numBlocks();
    const size_t numBits = stateBits();

    BitSet universal(numBits);
    universal.setAll();
    BitSet boundary(numBits);
    if (func_.isInstanceMethod() && func_.numParams() > 0 &&
        func_.value(0).isRef()) {
        establish(boundary, 0);
    }
    widenConditionals(boundary);

    in_.assign(numBlocks, universal);
    out_.assign(numBlocks, universal);

    // Depth-first preorder over the reachable CFG seeds the worklist;
    // unreachable blocks keep the universal state and are never queried.
    std::vector<bool> reachable(numBlocks, false);
    std::vector<BlockId> order;
    std::vector<BlockId> stack{0};
    reachable[0] = true; // block 0 is the entry
    while (!stack.empty()) {
        BlockId b = stack.back();
        stack.pop_back();
        order.push_back(b);
        for (BlockId succ : func_.block(b).succs()) {
            if (!reachable[succ]) {
                reachable[succ] = true;
                stack.push_back(succ);
            }
        }
    }

    std::deque<BlockId> work(order.begin(), order.end());
    std::vector<bool> queued(numBlocks, false);
    for (BlockId b : order)
        queued[b] = true;

    BitSet meet(numBits);
    BitSet contribution(numBits);
    BitSet next(numBits);

    while (!work.empty()) {
        BlockId block = work.front();
        work.pop_front();
        queued[block] = false;
        const BasicBlock &bb = func_.block(block);

        if (bb.preds().empty()) {
            meet.assign(boundary);
        } else {
            meet.assign(universal);
            for (BlockId pred : bb.preds()) {
                // Nothing flows along factored exception edges: a fact
                // established mid-block need not hold when an earlier
                // instruction of the block threw.
                if (func_.isExceptionalEdge(pred, block)) {
                    meet.clearAll();
                    continue;
                }
                edgeState(pred, block, contribution);
                meet.meetInto(contribution, /*intersect=*/true);
            }
        }

        next.assign(meet);
        for (const Instruction &inst : bb.insts())
            apply(inst, next);

        in_[block].assign(meet);
        if (out_[block].assignAndReport(next)) {
            for (BlockId succ : bb.succs()) {
                if (!queued[succ]) {
                    queued[succ] = true;
                    work.push_back(succ);
                }
            }
        }
    }
}

} // namespace trapjit
