#ifndef TRAPJIT_ANALYSIS_AUDIT_NONNULL_ORACLE_H_
#define TRAPJIT_ANALYSIS_AUDIT_NONNULL_ORACLE_H_

/**
 * @file
 * Independent recomputation of must-non-nullness for the auditor.
 *
 * This is deliberately NOT the optimizer's engine (opt/nullcheck/facts.h)
 * and shares no code with it: the whole point of the audit is that a bug
 * in the shared machinery cannot silently certify itself.  The oracle
 * re-derives, from the IR and the target trap model alone, the facts the
 * null-check passes are allowed to rely on:
 *
 *  - `v` is must-non-null at a program point when on every non-exceptional
 *    path an *explicit* nullcheck of `v` (or of a value congruent with it),
 *    a trap-covered exception-site access of it, an allocation defining
 *    it, or the not-null edge of an `ifnull` has executed since the last
 *    redefinition of `v`; the receiver `this` is non-null on entry.
 *  - two values are *congruent* when a chain of still-live `move`s
 *    connects them (value congruence in the GVN sense, restricted to
 *    copies — the only value identities the IR can create for refs).
 *  - each copy pair additionally carries a weaker *conditional* fact
 *    `dst == src OR dst non-null`.  Unlike the equality, it survives a
 *    merge where the other path established `dst` directly, so a later
 *    check of `src` still proves `dst` (the shape the optimizer builds
 *    when it guards one path with a check and the other with a trap on
 *    the copied-from value).
 *
 * Nothing propagates along factored exception edges: a fact established
 * mid-block need not hold when an earlier instruction of the block threw.
 */

#include <vector>

#include "arch/target.h"
#include "ir/function.h"
#include "support/bitset.h"

namespace trapjit
{

/**
 * Forward must-non-null solver over value congruence, with per-point
 * replay: solve() computes block-entry states; walk a block by calling
 * apply() per instruction to get the state at any interior point.
 */
class NonNullOracle
{
  public:
    /**
     * @param conditional_pairs track the `dst == src OR dst non-null`
     *        facts.  Soundness obligations want them (the optimizer
     *        composes exactly such split-path guards); the redundancy
     *        lint turns them off so it only flags checks the optimizer's
     *        own equality-strength domain could have eliminated.
     */
    NonNullOracle(const Function &func, const Target &target,
                  bool conditional_pairs = true);

    /** Number of tracked (reference-typed) values. */
    size_t numRefs() const { return refs_.size(); }

    /** Tracked value at dense index @p idx. */
    ValueId refAt(size_t idx) const { return refs_[idx]; }

    /** Dense index of @p v, or -1 when not reference-typed. */
    int
    indexOf(ValueId v) const
    {
        return v < indexOf_.size() ? indexOf_[v] : -1;
    }

    /** State bits: non-null facts + live-copy facts + conditional facts. */
    size_t stateBits() const { return refs_.size() + 2 * copies_.size(); }

    /** Run the dataflow to a fixed point over the reachable CFG. */
    void solve();

    /** Must-non-null state on entry to @p block (after solve()). */
    const BitSet &entryState(BlockId block) const { return in_[block]; }

    /** Apply one instruction's effect to @p state (forward replay). */
    void apply(const Instruction &inst, BitSet &state) const;

    /** True if @p v is proven non-null in @p state. */
    bool
    isNonNull(const BitSet &state, ValueId v) const
    {
        int idx = indexOf(v);
        return idx >= 0 && state.test(static_cast<size_t>(idx));
    }

    /** True if @p a and @p b provably hold the same reference. */
    bool sameReference(const BitSet &state, ValueId a, ValueId b) const;

    /**
     * Every tracked value congruent with @p v in @p state (including
     * @p v itself), as dense indices.
     */
    std::vector<size_t> congruentWith(const BitSet &state,
                                      ValueId v) const;

    /**
     * Does executing @p inst prove its checked reference non-null
     * afterwards?  Mirrors what the optimizer may rely on: an explicit
     * nullcheck, or a trap-covered exception-site access.  An *implicit*
     * nullcheck marker proves nothing by itself — only the trapping
     * access it is anchored to does.
     */
    bool establishes(const Instruction &inst) const;

    const Target &target() const { return target_; }

  private:
    void establish(BitSet &state, ValueId v) const;
    void kill(BitSet &state, ValueId v) const;
    size_t copyBit(size_t pair) const { return refs_.size() + pair; }
    /** Bit of the weaker `dst == src OR dst non-null` fact of @p pair. */
    size_t
    condBit(size_t pair) const
    {
        return refs_.size() + copies_.size() + pair;
    }
    /** Set every conditional bit its non-null bit already implies. */
    void widenConditionals(BitSet &state) const;

    /** Out-state of @p from along the normal edge to @p to. */
    void edgeState(BlockId from, BlockId to, BitSet &scratch) const;

    const Function &func_;
    const Target &target_;
    bool conditionalPairs_;

    std::vector<ValueId> refs_;
    std::vector<int> indexOf_;

    /** (dst, src) pairs of reference moves; one liveness bit each. */
    std::vector<std::pair<ValueId, ValueId>> copies_;
    std::vector<std::vector<size_t>> copiesOf_; ///< value -> pair indices

    std::vector<BitSet> in_;
    std::vector<BitSet> out_;
};

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_AUDIT_NONNULL_ORACLE_H_
