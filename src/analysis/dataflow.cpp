#include "analysis/dataflow.h"

#include "analysis/rpo.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

/** Apply edge add/kill to a copy of @p src flowing over (from, to). */
BitSet
flowEdge(const DataflowSpec &spec, BlockId from, BlockId to, BitSet value)
{
    uint64_t key = DataflowSpec::edgeKey(from, to);
    auto addIt = spec.edgeAdd.find(key);
    if (addIt != spec.edgeAdd.end())
        value.unionWith(addIt->second);
    auto killIt = spec.edgeKill.find(key);
    if (killIt != spec.edgeKill.end())
        value.subtract(killIt->second);
    return value;
}

} // namespace

DataflowResult
solveDataflow(const Function &func, const DataflowSpec &spec)
{
    const size_t numBlocks = func.numBlocks();
    TRAPJIT_ASSERT(spec.gen.size() == numBlocks &&
                       spec.kill.size() == numBlocks,
                   "gen/kill must have one entry per block");

    const bool forward = spec.direction == DataflowSpec::Direction::Forward;
    const bool intersect =
        spec.confluence == DataflowSpec::Confluence::Intersect;

    BitSet identity(spec.numFacts);
    if (intersect)
        identity.setAll();

    BitSet boundary = spec.boundary;
    if (boundary.size() != spec.numFacts)
        boundary.resize(spec.numFacts);

    DataflowResult result;
    result.in.assign(numBlocks, identity);
    result.out.assign(numBlocks, identity);

    // Iterate in RPO for forward problems, postorder for backward ones.
    std::vector<BlockId> order =
        forward ? reversePostorder(func) : postorder(func);

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId block : order) {
            const BasicBlock &bb = func.block(block);
            const auto &inputs = forward ? bb.preds() : bb.succs();

            // Confluence over incoming edges.
            BitSet meet(spec.numFacts);
            if (inputs.empty()) {
                meet = boundary;
            } else {
                meet = identity;
                for (BlockId other : inputs) {
                    BitSet value =
                        forward ? flowEdge(spec, other, block,
                                           result.out[other])
                                : flowEdge(spec, block, other,
                                           result.in[other]);
                    if (intersect)
                        meet.intersectWith(value);
                    else
                        meet.unionWith(value);
                }
            }

            BitSet transfer = meet;
            transfer.subtract(spec.kill[block]);
            transfer.unionWith(spec.gen[block]);

            BitSet &entrySide = forward ? result.in[block]
                                        : result.out[block];
            BitSet &exitSide = forward ? result.out[block]
                                       : result.in[block];
            if (entrySide != meet) {
                entrySide = std::move(meet);
                changed = true;
            }
            if (exitSide != transfer) {
                exitSide = std::move(transfer);
                changed = true;
            }
        }
    }
    return result;
}

void
addTryBoundaryKills(const Function &func, DataflowSpec &spec)
{
    BitSet all(spec.numFacts);
    all.setAll();
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        for (BlockId succ : bb.succs()) {
            if (func.block(succ).tryRegion() != bb.tryRegion()) {
                spec.edgeKill[DataflowSpec::edgeKey(bb.id(), succ)] = all;
            }
        }
    }
}

void
addExceptionEdgeKills(const Function &func, DataflowSpec &spec)
{
    BitSet all(spec.numFacts);
    all.setAll();
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        for (TryRegionId r = bb.tryRegion(); r != 0;
             r = func.tryRegion(r).parent) {
            BlockId handler = func.tryRegion(r).handlerBlock;
            spec.edgeKill[DataflowSpec::edgeKey(bb.id(), handler)] = all;
        }
    }
}

} // namespace trapjit
