#include "analysis/dataflow.h"

#include <algorithm>

#include "analysis/rpo.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

/** Apply edge add/kill to a copy of @p src flowing over (from, to). */
BitSet
flowEdge(const DataflowSpec &spec, BlockId from, BlockId to, BitSet value)
{
    uint64_t key = DataflowSpec::edgeKey(from, to);
    auto addIt = spec.edgeAdd.find(key);
    if (addIt != spec.edgeAdd.end())
        value.unionWith(addIt->second);
    auto killIt = spec.edgeKill.find(key);
    if (killIt != spec.edgeKill.end())
        value.subtract(killIt->second);
    return value;
}

} // namespace

// ---------------------------------------------------------------------
// WorklistScheduler
// ---------------------------------------------------------------------

void
WorklistScheduler::prepare(const Function &func, bool forward)
{
    order_ = forward ? reversePostorder(func) : postorder(func);
    orderIndex_.assign(func.numBlocks(), kNotInOrder);
    for (uint32_t i = 0; i < order_.size(); ++i)
        orderIndex_[order_[i]] = i;

    // Seed every reachable block, in priority order.  An ascending run
    // of priorities is already a valid min-heap.
    heap_.resize(order_.size());
    for (uint32_t i = 0; i < heap_.size(); ++i)
        heap_[i] = i;
    pending_.assign(order_.size(), 1);
}

BlockId
WorklistScheduler::pop()
{
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<uint32_t>());
    uint32_t priority = heap_.back();
    heap_.pop_back();
    pending_[priority] = 0;
    return order_[priority];
}

void
WorklistScheduler::push(BlockId block)
{
    uint32_t priority = orderIndex_[block];
    if (priority == kNotInOrder || pending_[priority])
        return;
    pending_[priority] = 1;
    heap_.push_back(priority);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<uint32_t>());
}

// ---------------------------------------------------------------------
// DataflowSolver
// ---------------------------------------------------------------------

const DataflowResult &
DataflowSolver::solve(const Function &func, const DataflowSpec &spec)
{
    const size_t numBlocks = func.numBlocks();
    TRAPJIT_ASSERT(spec.gen.size() == numBlocks &&
                       spec.kill.size() == numBlocks,
                   "gen/kill must have one entry per block");

    const bool forward = spec.direction == DataflowSpec::Direction::Forward;
    const bool intersect =
        spec.confluence == DataflowSpec::Confluence::Intersect;
    const bool hasEdgeEffects =
        !spec.edgeAdd.empty() || !spec.edgeKill.empty();

    ++stats_.solves;
    if (!hasEdgeEffects)
        ++stats_.edgeFastPathSolves;

    identity_.resize(spec.numFacts);
    if (intersect)
        identity_.setAll();
    else
        identity_.clearAll();

    boundary_.resize(spec.numFacts);
    boundary_.clearAll();
    if (spec.boundary.size() == spec.numFacts)
        boundary_.assignAndReport(spec.boundary);
    else if (spec.boundary.size() != 0) {
        BitSet widened = spec.boundary;
        widened.resize(spec.numFacts);
        boundary_.assignAndReport(widened);
    }

    meet_.resize(spec.numFacts);
    edgeScratch_.resize(spec.numFacts);

    // (Re)initialize the result arrays: every block — including
    // unreachable ones, which are never visited — starts at the
    // confluence identity.  The vectors and each element's word storage
    // persist across solves; only growth allocates.
    result_.in.resize(numBlocks);
    result_.out.resize(numBlocks);
    for (size_t b = 0; b < numBlocks; ++b) {
        result_.in[b].resize(spec.numFacts);
        result_.out[b].resize(spec.numFacts);
        result_.in[b].assignAndReport(identity_);
        result_.out[b].assignAndReport(identity_);
    }

    sched_.prepare(func, forward);

    while (!sched_.empty()) {
        const BlockId block = sched_.pop();
        ++stats_.blockVisits;
        const BasicBlock &bb = func.block(block);
        const auto &inputs = forward ? bb.preds() : bb.succs();

        // Confluence over incoming edges, into the meet_ scratch.
        if (inputs.empty()) {
            meet_.assignAndReport(boundary_);
        } else {
            meet_.assignAndReport(identity_);
            for (BlockId other : inputs) {
                const BitSet &source =
                    forward ? result_.out[other] : result_.in[other];
                if (!hasEdgeEffects) {
                    // Fast path: flow the neighbor's set straight into
                    // the meet, no copy, no hash lookups.
                    meet_.meetInto(source, intersect);
                    continue;
                }
                uint64_t key = forward
                                   ? DataflowSpec::edgeKey(other, block)
                                   : DataflowSpec::edgeKey(block, other);
                auto addIt = spec.edgeAdd.find(key);
                auto killIt = spec.edgeKill.find(key);
                if (addIt == spec.edgeAdd.end() &&
                    killIt == spec.edgeKill.end()) {
                    meet_.meetInto(source, intersect);
                    continue;
                }
                edgeScratch_.assignAndReport(source);
                if (addIt != spec.edgeAdd.end())
                    edgeScratch_.unionWith(addIt->second);
                if (killIt != spec.edgeKill.end())
                    edgeScratch_.subtract(killIt->second);
                meet_.meetInto(edgeScratch_, intersect);
            }
        }

        BitSet &entrySide =
            forward ? result_.in[block] : result_.out[block];
        BitSet &exitSide =
            forward ? result_.out[block] : result_.in[block];
        entrySide.assignAndReport(meet_);
        if (exitSide.assignTransferAndReport(meet_, spec.kill[block],
                                             spec.gen[block])) {
            // Only the exit side feeds neighbors; re-examine them.
            const auto &outputs = forward ? bb.succs() : bb.preds();
            for (BlockId next : outputs)
                sched_.push(next);
        }
    }
    return result_;
}

DataflowResult
solveDataflow(const Function &func, const DataflowSpec &spec)
{
    DataflowSolver solver;
    return solver.solve(func, spec);
}

// ---------------------------------------------------------------------
// Reference solver (differential-testing oracle, benchmark baseline)
// ---------------------------------------------------------------------

DataflowResult
solveDataflowReference(const Function &func, const DataflowSpec &spec)
{
    const size_t numBlocks = func.numBlocks();
    TRAPJIT_ASSERT(spec.gen.size() == numBlocks &&
                       spec.kill.size() == numBlocks,
                   "gen/kill must have one entry per block");

    const bool forward = spec.direction == DataflowSpec::Direction::Forward;
    const bool intersect =
        spec.confluence == DataflowSpec::Confluence::Intersect;

    BitSet identity(spec.numFacts);
    if (intersect)
        identity.setAll();

    BitSet boundary = spec.boundary;
    if (boundary.size() != spec.numFacts)
        boundary.resize(spec.numFacts);

    DataflowResult result;
    result.in.assign(numBlocks, identity);
    result.out.assign(numBlocks, identity);

    // Iterate in RPO for forward problems, postorder for backward ones.
    std::vector<BlockId> order =
        forward ? reversePostorder(func) : postorder(func);

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId block : order) {
            const BasicBlock &bb = func.block(block);
            const auto &inputs = forward ? bb.preds() : bb.succs();

            // Confluence over incoming edges.
            BitSet meet(spec.numFacts);
            if (inputs.empty()) {
                meet = boundary;
            } else {
                meet = identity;
                for (BlockId other : inputs) {
                    BitSet value =
                        forward ? flowEdge(spec, other, block,
                                           result.out[other])
                                : flowEdge(spec, block, other,
                                           result.in[other]);
                    if (intersect)
                        meet.intersectWith(value);
                    else
                        meet.unionWith(value);
                }
            }

            BitSet transfer = meet;
            transfer.subtract(spec.kill[block]);
            transfer.unionWith(spec.gen[block]);

            BitSet &entrySide = forward ? result.in[block]
                                        : result.out[block];
            BitSet &exitSide = forward ? result.out[block]
                                       : result.in[block];
            if (entrySide != meet) {
                entrySide = std::move(meet);
                changed = true;
            }
            if (exitSide != transfer) {
                exitSide = std::move(transfer);
                changed = true;
            }
        }
    }
    return result;
}

// ---------------------------------------------------------------------
// Edge kill helpers
// ---------------------------------------------------------------------

namespace
{

/**
 * Union @p kills into the spec's kill set for @p key.  A set another
 * caller already registered is merged into, not clobbered; a set of a
 * different width is resized to the spec's fact count first.
 */
void
mergeEdgeKill(DataflowSpec &spec, uint64_t key, const BitSet &kills)
{
    BitSet &slot = spec.edgeKill[key];
    if (slot.size() != spec.numFacts)
        slot.resize(spec.numFacts);
    slot.unionWith(kills);
}

} // namespace

void
addTryBoundaryKills(const Function &func, DataflowSpec &spec)
{
    BitSet all(spec.numFacts);
    all.setAll();
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        for (BlockId succ : bb.succs()) {
            if (func.block(succ).tryRegion() != bb.tryRegion()) {
                mergeEdgeKill(spec, DataflowSpec::edgeKey(bb.id(), succ),
                              all);
            }
        }
    }
}

void
addExceptionEdgeKills(const Function &func, DataflowSpec &spec)
{
    BitSet all(spec.numFacts);
    all.setAll();
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        for (TryRegionId r = bb.tryRegion(); r != 0;
             r = func.tryRegion(r).parent) {
            BlockId handler = func.tryRegion(r).handlerBlock;
            mergeEdgeKill(spec, DataflowSpec::edgeKey(bb.id(), handler),
                          all);
        }
    }
}

} // namespace trapjit
