#ifndef TRAPJIT_ANALYSIS_DATAFLOW_H_
#define TRAPJIT_ANALYSIS_DATAFLOW_H_

/**
 * @file
 * Generic iterative bit-vector dataflow solving.
 *
 * All six analyses of the paper are instances of one scheme:
 *
 *   forward:   In(n)  = CONF over preds m of
 *                         ((Out(m) | edgeAdd(m,n)) - edgeKill(m,n))
 *              Out(n) = (In(n) - kill(n)) | gen(n)
 *   backward:  Out(n) = CONF over succs m of
 *                         ((In(m) | edgeAdd(n,m)) - edgeKill(n,m))
 *              In(n)  = (Out(n) - kill(n)) | gen(n)
 *
 * with CONF either set-intersection (must/anticipation problems: the
 * paper's backward motion 4.1.1, forward motion 4.2.1, substitutability
 * 4.2.2, and the non-nullness elimination analyses) or set-union (may
 * problems).  The per-edge kill sets realize Edge_try(m, n); the per-edge
 * add sets realize the Earliest(m) and Edge(m, n) terms of Section 4.1.2.
 *
 * Blocks without the relevant boundary edges (the entry for forward, the
 * exit blocks for backward) start from `boundary`; everything else starts
 * from the confluence identity (universal set for intersection, empty for
 * union).
 *
 * Two solvers implement the scheme:
 *
 *  - DataflowSolver — the production engine.  A sparse worklist seeded in
 *    RPO (forward) / postorder (backward) and popped in that priority
 *    order, so loop bodies stabilize before the header is re-examined;
 *    on-worklist dedup bits; scratch BitSets and worklist storage that
 *    persist across solve() calls (a pass solving N functions or K
 *    problems reuses one arena); a fast path that skips the edge-map hash
 *    lookups entirely when edgeAdd/edgeKill are empty; and fused BitSet
 *    kernels (meetInto, assignTransferAndReport) so the inner loop is
 *    straight word-array arithmetic with zero allocation.
 *  - solveDataflowReference — the original dense round-robin sweep,
 *    retained as the oracle for differential testing and as the baseline
 *    the BM_SolveDataflow_* micro benchmarks compare against.
 *
 * Both converge to the same fixed point: every transfer in the framework
 * is monotone, so the limit reached from the identity initialization does
 * not depend on the visit order (the differential test in
 * tests/test_dataflow_random.cpp asserts bit-identical In/Out).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "support/bitset.h"

namespace trapjit
{

/** Specification of a dataflow problem over one function. */
struct DataflowSpec
{
    enum class Direction : uint8_t { Forward, Backward };
    enum class Confluence : uint8_t { Intersect, Union };

    Direction direction = Direction::Forward;
    Confluence confluence = Confluence::Intersect;

    /** Number of facts (bits). */
    size_t numFacts = 0;

    /** Per-block gen/kill, indexed by BlockId; sized numFacts each. */
    std::vector<BitSet> gen;
    std::vector<BitSet> kill;

    /** Value at the boundary (entry In / exit Out).  Empty if unset. */
    BitSet boundary;

    /** Facts removed on a CFG edge (Edge_try).  Key = edgeKey(m, n). */
    std::unordered_map<uint64_t, BitSet> edgeKill;

    /** Facts added on a CFG edge (Earliest/Edge of 4.1.2). */
    std::unordered_map<uint64_t, BitSet> edgeAdd;

    /** Encode an edge for the edgeKill/edgeAdd maps. */
    static uint64_t
    edgeKey(BlockId from, BlockId to)
    {
        return (static_cast<uint64_t>(from) << 32) | to;
    }
};

/** Fixed-point solution: one In and Out set per block. */
struct DataflowResult
{
    std::vector<BitSet> in;
    std::vector<BitSet> out;
};

/**
 * Convergence counters of one or more solves.  Passes fold these into
 * PassContext::solverStats; the pass manager and the compile service
 * carry them to PassTimings / ServiceCounters so benchmarks can report
 * convergence behavior, not just wall clock.
 */
struct SolverStats
{
    size_t solves = 0;      ///< solve() calls
    size_t blockVisits = 0; ///< worklist pops (= block equations applied)
    size_t edgeFastPathSolves = 0; ///< solves with empty edge maps

    /** Average worklist pops per solve; 0 when nothing ran. */
    double
    visitsPerSolve() const
    {
        return solves == 0 ? 0.0
                           : static_cast<double>(blockVisits) /
                                 static_cast<double>(solves);
    }

    SolverStats &
    operator+=(const SolverStats &other)
    {
        solves += other.solves;
        blockVisits += other.blockVisits;
        edgeFastPathSolves += other.edgeFastPathSolves;
        return *this;
    }
};

/**
 * Priority worklist over the blocks of one function, reused across
 * solves (no allocation once warmed up).
 *
 * Priorities are static: the block's position in RPO (forward problems)
 * or postorder (backward problems).  pop() always returns the pending
 * block earliest in that order, so within a loop the body re-stabilizes
 * before the header is re-examined — the visit pattern that makes
 * reducible graphs converge in near-linear work.  Unreachable blocks are
 * not part of the order; push() ignores them (they keep their identity
 * initialization, matching the reference solver's sweep over reachable
 * blocks only).
 */
class WorklistScheduler
{
  public:
    /**
     * Recompute the priority order for @p func and seed the worklist
     * with every reachable block, in order.
     */
    void prepare(const Function &func, bool forward);

    bool empty() const { return heap_.empty(); }

    /** Pop the pending block earliest in the priority order. */
    BlockId pop();

    /** Enqueue @p block unless unreachable or already pending. */
    void push(BlockId block);

    /** True if @p block is in the priority order (reachable). */
    bool
    reachable(BlockId block) const
    {
        return orderIndex_[block] != kNotInOrder;
    }

    /** The priority order itself (RPO or postorder). */
    const std::vector<BlockId> &order() const { return order_; }

  private:
    static constexpr uint32_t kNotInOrder = UINT32_MAX;

    std::vector<BlockId> order_;      ///< priority -> block
    std::vector<uint32_t> orderIndex_; ///< block -> priority
    std::vector<uint32_t> heap_;       ///< min-heap of priorities
    std::vector<uint8_t> pending_;     ///< dedup bit per priority
};

/**
 * Reusable sparse worklist engine for DataflowSpec problems.
 *
 * Hold one instance per pass (or per analysis layer) and call solve()
 * once per problem: the scratch BitSets, the worklist storage and the
 * result arrays persist across calls, so solving K problems over N
 * functions allocates only while the arena grows to the high-water mark.
 *
 * solve() returns a reference to solver-owned storage: the result is
 * valid until the next solve() on the same instance.  Callers that need
 * two live results at once either use two solver instances or copy.
 */
class DataflowSolver
{
  public:
    /**
     * Solve @p spec over @p func.  CFG edges must be current.
     * Unreachable blocks converge to the confluence identity; callers
     * that transform code should ignore them (they are never executed).
     */
    const DataflowResult &solve(const Function &func,
                                const DataflowSpec &spec);

    /** Counters accumulated since construction or the last takeStats. */
    const SolverStats &stats() const { return stats_; }

    /** Return and reset the accumulated counters. */
    SolverStats
    takeStats()
    {
        SolverStats out = stats_;
        stats_ = SolverStats{};
        return out;
    }

  private:
    WorklistScheduler sched_;
    DataflowResult result_;
    BitSet identity_;
    BitSet boundary_;
    BitSet meet_;
    BitSet edgeScratch_;
    SolverStats stats_;
};

/**
 * One-shot convenience wrapper: solves with a local DataflowSolver.
 * Hot paths hold a DataflowSolver instance instead, to reuse its arena.
 */
DataflowResult solveDataflow(const Function &func, const DataflowSpec &spec);

/**
 * The retained reference solver: dense round-robin sweeps over the block
 * order until a full quiet pass.  Kept verbatim (allocating inner loop
 * included) as the differential-testing oracle and the benchmark
 * baseline; production code uses DataflowSolver.
 */
DataflowResult solveDataflowReference(const Function &func,
                                      const DataflowSpec &spec);

/**
 * Build the Edge_try kill map for null-check motion: every fact is killed
 * on any edge whose endpoints are in different try regions (checks may
 * not move across a try boundary, Section 4.1.1).  Kill sets a caller
 * already registered for an edge are merged into (never clobbered), and
 * narrower sets are resized to the spec's fact width first.
 */
void addTryBoundaryKills(const Function &func, DataflowSpec &spec);

/**
 * Kill every fact on factored exception edges (block -> its try region's
 * handler).  Facts established mid-block do not necessarily hold when an
 * instruction earlier in the block throws, so forward availability
 * analyses must not propagate anything along these edges.  Merges with
 * (never clobbers) existing per-edge kill sets.
 */
void addExceptionEdgeKills(const Function &func, DataflowSpec &spec);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_DATAFLOW_H_
