#ifndef TRAPJIT_ANALYSIS_DATAFLOW_H_
#define TRAPJIT_ANALYSIS_DATAFLOW_H_

/**
 * @file
 * Generic iterative bit-vector dataflow solver.
 *
 * All six analyses of the paper are instances of one scheme:
 *
 *   forward:   In(n)  = CONF over preds m of
 *                         ((Out(m) | edgeAdd(m,n)) - edgeKill(m,n))
 *              Out(n) = (In(n) - kill(n)) | gen(n)
 *   backward:  Out(n) = CONF over succs m of
 *                         ((In(m) | edgeAdd(n,m)) - edgeKill(n,m))
 *              In(n)  = (Out(n) - kill(n)) | gen(n)
 *
 * with CONF either set-intersection (must/anticipation problems: the
 * paper's backward motion 4.1.1, forward motion 4.2.1, substitutability
 * 4.2.2, and the non-nullness elimination analyses) or set-union (may
 * problems).  The per-edge kill sets realize Edge_try(m, n); the per-edge
 * add sets realize the Earliest(m) and Edge(m, n) terms of Section 4.1.2.
 *
 * Blocks without the relevant boundary edges (the entry for forward, the
 * exit blocks for backward) start from `boundary`; everything else starts
 * from the confluence identity (universal set for intersection, empty for
 * union) and the solver sweeps in (reverse) postorder to a fixed point.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "support/bitset.h"

namespace trapjit
{

/** Specification of a dataflow problem over one function. */
struct DataflowSpec
{
    enum class Direction : uint8_t { Forward, Backward };
    enum class Confluence : uint8_t { Intersect, Union };

    Direction direction = Direction::Forward;
    Confluence confluence = Confluence::Intersect;

    /** Number of facts (bits). */
    size_t numFacts = 0;

    /** Per-block gen/kill, indexed by BlockId; sized numFacts each. */
    std::vector<BitSet> gen;
    std::vector<BitSet> kill;

    /** Value at the boundary (entry In / exit Out).  Empty if unset. */
    BitSet boundary;

    /** Facts removed on a CFG edge (Edge_try).  Key = edgeKey(m, n). */
    std::unordered_map<uint64_t, BitSet> edgeKill;

    /** Facts added on a CFG edge (Earliest/Edge of 4.1.2). */
    std::unordered_map<uint64_t, BitSet> edgeAdd;

    /** Encode an edge for the edgeKill/edgeAdd maps. */
    static uint64_t
    edgeKey(BlockId from, BlockId to)
    {
        return (static_cast<uint64_t>(from) << 32) | to;
    }
};

/** Fixed-point solution: one In and Out set per block. */
struct DataflowResult
{
    std::vector<BitSet> in;
    std::vector<BitSet> out;
};

/**
 * Solve @p spec over @p func.  CFG edges must be current.
 * Unreachable blocks converge to the confluence identity; callers that
 * transform code should ignore them (they are never executed).
 */
DataflowResult solveDataflow(const Function &func, const DataflowSpec &spec);

/**
 * Build the Edge_try kill map for null-check motion: every fact is killed
 * on any edge whose endpoints are in different try regions (checks may
 * not move across a try boundary, Section 4.1.1).
 */
void addTryBoundaryKills(const Function &func, DataflowSpec &spec);

/**
 * Kill every fact on factored exception edges (block -> its try region's
 * handler).  Facts established mid-block do not necessarily hold when an
 * instruction earlier in the block throws, so forward availability
 * analyses must not propagate anything along these edges.
 */
void addExceptionEdgeKills(const Function &func, DataflowSpec &spec);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_DATAFLOW_H_
