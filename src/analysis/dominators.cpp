#include "analysis/dominators.h"

#include "analysis/rpo.h"
#include "support/diagnostics.h"

namespace trapjit
{

DominatorTree::DominatorTree(const Function &func)
    : idom_(func.numBlocks(), kNoBlock),
      rpoIndex_(func.numBlocks(), UINT32_MAX)
{
    std::vector<BlockId> rpo = reversePostorder(func);
    for (uint32_t i = 0; i < rpo.size(); ++i)
        rpoIndex_[rpo[i]] = i;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId block : rpo) {
            if (block == 0)
                continue;
            BlockId newIdom = kNoBlock;
            for (BlockId pred : func.block(block).preds()) {
                if (idom_[pred] == kNoBlock)
                    continue; // unreachable or not yet processed
                newIdom = (newIdom == kNoBlock) ? pred
                                                : intersect(pred, newIdom);
            }
            if (newIdom != kNoBlock && idom_[block] != newIdom) {
                idom_[block] = newIdom;
                changed = true;
            }
        }
    }
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    TRAPJIT_ASSERT(reachable(a) && reachable(b),
                   "dominance query on unreachable block");
    while (true) {
        if (a == b)
            return true;
        if (b == 0)
            return false;
        b = idom_[b];
    }
}

} // namespace trapjit
