#ifndef TRAPJIT_ANALYSIS_DOMINATORS_H_
#define TRAPJIT_ANALYSIS_DOMINATORS_H_

/**
 * @file
 * Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
 * Used by the loop analysis (back-edge detection) and by scalar
 * replacement (an access may only be hoisted out of a loop if its block
 * dominates every latch, i.e. it executes on every iteration).
 */

#include <vector>

#include "ir/function.h"

namespace trapjit
{

/** Immediate-dominator tree over the reachable CFG. */
class DominatorTree
{
  public:
    /** Build for @p func; CFG edges must be current. */
    explicit DominatorTree(const Function &func);

    /** Immediate dominator of @p block (entry's idom is itself). */
    BlockId idom(BlockId block) const { return idom_[block]; }

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

    /** True if @p block is reachable from the entry. */
    bool reachable(BlockId block) const
    {
        return idom_[block] != kNoBlock;
    }

  private:
    std::vector<BlockId> idom_;
    std::vector<uint32_t> rpoIndex_;
};

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_DOMINATORS_H_
