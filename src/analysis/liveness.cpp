#include "analysis/liveness.h"

#include <vector>

namespace trapjit
{

void
makeLivenessSpec(const Function &func, DataflowSpec &spec)
{
    const size_t numValues = func.numValues();
    const size_t numBlocks = func.numBlocks();

    spec.direction = DataflowSpec::Direction::Backward;
    spec.confluence = DataflowSpec::Confluence::Union;
    spec.numFacts = numValues;
    spec.gen.assign(numBlocks, BitSet(numValues));
    spec.kill.assign(numBlocks, BitSet(numValues));
    spec.boundary = BitSet();
    spec.edgeAdd.clear();
    spec.edgeKill.clear();

    std::vector<ValueId> uses;
    for (size_t b = 0; b < numBlocks; ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool defsKill = bb.tryRegion() == 0;
        BitSet &gen = spec.gen[b];
        BitSet &kill = spec.kill[b];
        for (auto it = bb.insts().rbegin(); it != bb.insts().rend(); ++it) {
            if (it->hasDst() && defsKill) {
                gen.reset(it->dst);
                kill.set(it->dst);
            }
            uses.clear();
            it->forEachUse(uses);
            for (ValueId u : uses) {
                gen.set(u);
                kill.reset(u);
            }
        }
    }
}

DataflowResult
solveLiveness(const Function &func)
{
    DataflowSpec spec;
    makeLivenessSpec(func, spec);
    return solveDataflow(func, spec);
}

const DataflowResult &
solveLiveness(const Function &func, DataflowSolver &solver)
{
    DataflowSpec spec;
    makeLivenessSpec(func, spec);
    return solver.solve(func, spec);
}

} // namespace trapjit
