#ifndef TRAPJIT_ANALYSIS_LIVENESS_H_
#define TRAPJIT_ANALYSIS_LIVENESS_H_

/**
 * @file
 * Value liveness at block boundaries.
 *
 * Used by the linear-scan register allocator (live intervals) and
 * available to other back-end passes.  Inside try regions a definition
 * does not end liveness: the handler may observe the previous value of
 * a local at any throwing instruction of the block.
 */

#include "analysis/dataflow.h"
#include "ir/function.h"

namespace trapjit
{

/** Solve backward liveness over all values of @p func. */
DataflowResult solveLiveness(const Function &func);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_LIVENESS_H_
