#ifndef TRAPJIT_ANALYSIS_LIVENESS_H_
#define TRAPJIT_ANALYSIS_LIVENESS_H_

/**
 * @file
 * Value liveness at block boundaries.
 *
 * Used by the linear-scan register allocator (live intervals) and
 * available to other back-end passes.  Inside try regions a definition
 * does not end liveness: the handler may observe the previous value of
 * a local at any throwing instruction of the block.
 */

#include "analysis/dataflow.h"
#include "ir/function.h"

namespace trapjit
{

/**
 * Fill @p spec with the backward/union liveness problem over all values
 * of @p func (gen = upward-exposed uses, kill = defs outside try
 * regions).  Exposed separately so callers with a reusable
 * DataflowSolver — and the solver micro benchmarks — can build the spec
 * once and solve it on their own arena.
 */
void makeLivenessSpec(const Function &func, DataflowSpec &spec);

/** Solve backward liveness over all values of @p func. */
DataflowResult solveLiveness(const Function &func);

/** Same, on a caller-owned solver arena; valid until its next solve. */
const DataflowResult &solveLiveness(const Function &func,
                                    DataflowSolver &solver);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_LIVENESS_H_
