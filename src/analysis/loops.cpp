#include "analysis/loops.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace trapjit
{

bool
Loop::contains(BlockId block) const
{
    return std::find(blocks.begin(), blocks.end(), block) != blocks.end();
}

LoopForest::LoopForest(const Function &func, const DominatorTree &domtree)
    : blockLoop_(func.numBlocks(), -1)
{
    // Find back edges and collect one loop per header.
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        BlockId block = static_cast<BlockId>(b);
        if (!domtree.reachable(block))
            continue;
        for (BlockId succ : func.block(block).succs()) {
            if (!domtree.dominates(succ, block))
                continue;
            // block -> succ is a back edge; succ is a loop header.
            auto it = std::find_if(loops_.begin(), loops_.end(),
                                   [succ](const Loop &loop) {
                                       return loop.header == succ;
                                   });
            if (it == loops_.end()) {
                loops_.push_back(Loop{});
                it = loops_.end() - 1;
                it->header = succ;
                it->blocks.push_back(succ);
            }
            it->latches.push_back(block);

            // Walk predecessors from the latch up to the header.
            std::vector<BlockId> work{block};
            while (!work.empty()) {
                BlockId cur = work.back();
                work.pop_back();
                if (it->contains(cur))
                    continue;
                it->blocks.push_back(cur);
                for (BlockId pred : func.block(cur).preds())
                    if (domtree.reachable(pred))
                        work.push_back(pred);
            }
        }
    }

    // Establish nesting: the parent of L is the smallest other loop that
    // contains L's header.
    for (size_t i = 0; i < loops_.size(); ++i) {
        size_t bestSize = SIZE_MAX;
        for (size_t j = 0; j < loops_.size(); ++j) {
            if (i == j || !loops_[j].contains(loops_[i].header))
                continue;
            if (loops_[j].blocks.size() < bestSize) {
                bestSize = loops_[j].blocks.size();
                loops_[i].parent = static_cast<int>(j);
            }
        }
    }
    for (auto &loop : loops_) {
        int depth = 1;
        for (int p = loop.parent; p != -1; p = loops_[p].parent)
            ++depth;
        loop.depth = depth;
    }

    // Innermost loop per block = deepest loop containing it.
    for (size_t i = 0; i < loops_.size(); ++i) {
        for (BlockId block : loops_[i].blocks) {
            int cur = blockLoop_[block];
            if (cur == -1 || loops_[cur].depth < loops_[i].depth)
                blockLoop_[block] = static_cast<int>(i);
        }
    }
}

BlockId
ensurePreheader(Function &func, const Loop &loop)
{
    TRAPJIT_ASSERT(loop.header != 0,
                   "entry block must not be a loop header");

    std::vector<BlockId> outsidePreds;
    for (BlockId pred : func.block(loop.header).preds())
        if (!loop.contains(pred))
            outsidePreds.push_back(pred);
    TRAPJIT_ASSERT(!outsidePreds.empty(), "loop without an entering edge");

    // An existing block qualifies as preheader if it is the only outside
    // predecessor and falls through to the header unconditionally.
    if (outsidePreds.size() == 1) {
        const BasicBlock &cand = func.block(outsidePreds[0]);
        if (cand.terminator().op == Opcode::Jump && cand.succs().size() <= 2)
            return outsidePreds[0];
    }

    BasicBlock &pre =
        func.newBlock(func.block(loop.header).tryRegion());
    Instruction jump;
    jump.op = Opcode::Jump;
    jump.imm = loop.header;
    pre.insts().push_back(jump);

    for (BlockId predId : outsidePreds) {
        Instruction &term = func.block(predId).terminator();
        switch (term.op) {
          case Opcode::Jump:
            term.imm = pre.id();
            break;
          case Opcode::Branch:
          case Opcode::IfNull:
            if (term.imm == static_cast<int64_t>(loop.header))
                term.imm = pre.id();
            if (term.imm2 == static_cast<int64_t>(loop.header))
                term.imm2 = pre.id();
            break;
          default:
            TRAPJIT_PANIC("unexpected terminator entering a loop header");
        }
    }

    func.recomputeCFG();
    return pre.id();
}

} // namespace trapjit
