#ifndef TRAPJIT_ANALYSIS_LOOPS_H_
#define TRAPJIT_ANALYSIS_LOOPS_H_

/**
 * @file
 * Natural loop detection from dominator back edges.
 *
 * Loops are what the whole paper is about operationally: the architecture
 * independent phase exists to move loop-invariant null checks out of loop
 * bodies, and scalar replacement hoists the accesses they guard.  The
 * loop analysis also provides ensurePreheader(), which gives the hoisting
 * passes a block that executes exactly once before the loop.
 */

#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace trapjit
{

/** One natural loop. */
struct Loop
{
    BlockId header = kNoBlock;

    /** Blocks of the loop body, header included. */
    std::vector<BlockId> blocks;

    /** Blocks with a back edge to the header. */
    std::vector<BlockId> latches;

    /** Index of the enclosing loop in LoopForest::loops, or -1. */
    int parent = -1;

    /** Loop nesting depth (outermost = 1). */
    int depth = 1;

    /** True if @p block is in the loop body. */
    bool contains(BlockId block) const;
};

/** All natural loops of a function. */
class LoopForest
{
  public:
    /** Detect loops; CFG edges must be current. */
    LoopForest(const Function &func, const DominatorTree &domtree);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loop containing @p block, or -1. */
    int innermostLoopOf(BlockId block) const
    {
        return blockLoop_[block];
    }

  private:
    std::vector<Loop> loops_;
    std::vector<int> blockLoop_;
};

/**
 * Return the unique preheader of @p loop — the single block outside the
 * loop whose only successor is the header and which is the header's only
 * predecessor from outside — creating one (and retargeting entering
 * edges) if necessary.  Mutates the CFG; the caller must recompute
 * analyses afterwards.  The loop header must not be the entry block.
 */
BlockId ensurePreheader(Function &func, const Loop &loop);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_LOOPS_H_
