#include "analysis/rpo.h"

#include <algorithm>

namespace trapjit
{

namespace
{

void
dfs(const Function &func, BlockId block, std::vector<bool> &seen,
    std::vector<BlockId> &order)
{
    // Iterative DFS to stay safe on deep graphs.
    struct Frame
    {
        BlockId block;
        size_t nextSucc;
    };
    std::vector<Frame> stack;
    seen[block] = true;
    stack.push_back({block, 0});
    while (!stack.empty()) {
        Frame &frame = stack.back();
        const auto &succs = func.block(frame.block).succs();
        if (frame.nextSucc < succs.size()) {
            BlockId succ = succs[frame.nextSucc++];
            if (!seen[succ]) {
                seen[succ] = true;
                stack.push_back({succ, 0});
            }
        } else {
            order.push_back(frame.block);
            stack.pop_back();
        }
    }
}

} // namespace

std::vector<BlockId>
postorder(const Function &func)
{
    std::vector<bool> seen(func.numBlocks(), false);
    std::vector<BlockId> order;
    order.reserve(func.numBlocks());
    dfs(func, 0, seen, order);
    return order;
}

std::vector<BlockId>
reversePostorder(const Function &func)
{
    std::vector<BlockId> order = postorder(func);
    std::reverse(order.begin(), order.end());
    return order;
}

std::vector<bool>
reachableBlocks(const Function &func)
{
    std::vector<bool> seen(func.numBlocks(), false);
    std::vector<BlockId> order;
    dfs(func, 0, seen, order);
    return seen;
}

} // namespace trapjit
