#ifndef TRAPJIT_ANALYSIS_RPO_H_
#define TRAPJIT_ANALYSIS_RPO_H_

/**
 * @file
 * Block orderings: depth-first postorder and reverse postorder over the
 * CFG (following both normal and factored exception edges).  Forward
 * dataflow iterates in RPO, backward dataflow in postorder, which makes
 * the round-robin solver converge in a handful of sweeps on reducible
 * graphs.
 */

#include <vector>

#include "ir/function.h"

namespace trapjit
{

/** Postorder of the blocks reachable from the entry. */
std::vector<BlockId> postorder(const Function &func);

/** Reverse postorder of the blocks reachable from the entry. */
std::vector<BlockId> reversePostorder(const Function &func);

/** Per-block reachability from the entry (indexed by BlockId). */
std::vector<bool> reachableBlocks(const Function &func);

} // namespace trapjit

#endif // TRAPJIT_ANALYSIS_RPO_H_
