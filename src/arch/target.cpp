#include "arch/target.h"

#include <sstream>

namespace trapjit
{

std::string
targetFingerprint(const Target &target)
{
    std::ostringstream os;
    os << "name=" << target.name
       << ";traparea=" << target.trapAreaBytes
       << ";rdtrap=" << target.trapsOnRead
       << ";wrtrap=" << target.trapsOnWrite
       << ";nullzero=" << target.readOfNullPageYieldsZero
       << ";exp=" << target.hasExpInstruction
       << ";c.nullchk=" << target.explicitNullCheckCycles
       << ";c.boundchk=" << target.boundCheckCycles
       << ";c.move=" << target.moveCycles
       << ";c.const=" << target.constCycles
       << ";c.alu=" << target.intAluCycles
       << ";c.imul=" << target.intMulCycles
       << ";c.idiv=" << target.intDivCycles
       << ";c.falu=" << target.floatAluCycles
       << ";c.fmul=" << target.floatMulCycles
       << ";c.fdiv=" << target.floatDivCycles
       << ";c.math=" << target.mathIntrinsicCycles
       << ";c.load=" << target.loadCycles
       << ";c.store=" << target.storeCycles
       << ";c.array=" << target.arrayAccessExtraCycles
       << ";c.branch=" << target.branchCycles
       << ";c.jump=" << target.jumpCycles
       << ";c.call=" << target.callOverheadCycles
       << ";c.virt=" << target.virtualDispatchExtraCycles
       << ";c.alloc=" << target.allocBaseCycles
       << ";c.allocb=" << target.allocPerByteCycles
       << ";c.throw=" << target.throwCycles
       << ";c.trap=" << target.trapDispatchCycles;
    return os.str();
}

bool
Target::trapCovers(const Instruction &inst) const
{
    SlotAccess access = inst.slotAccess();
    if (access == SlotAccess::None)
        return false;
    int64_t offset = inst.slotOffset();
    if (offset < 0 || offset >= trapAreaBytes)
        return false;
    return access == SlotAccess::Read ? trapsOnRead : trapsOnWrite;
}

bool
Target::readIsSpeculationSafe(int64_t offset) const
{
    return allowsReadSpeculation() && offset >= 0 &&
           offset < trapAreaBytes;
}

Target
makeIA32WindowsTarget()
{
    Target t;
    t.name = "ia32-winnt";
    t.trapAreaBytes = 4096;
    t.trapsOnRead = true;
    t.trapsOnWrite = true;
    t.readOfNullPageYieldsZero = false;
    t.hasExpInstruction = true;
    t.explicitNullCheckCycles = 2.0; // test reg,reg + jz
    return t;
}

Target
makePPCAIXTarget()
{
    Target t;
    t.name = "ppc-aix";
    t.trapAreaBytes = 4096;
    t.trapsOnRead = false;
    t.trapsOnWrite = true;
    t.readOfNullPageYieldsZero = true;
    t.hasExpInstruction = false;
    // A conditional trap (tweqi) costs a single cycle when not taken.
    t.explicitNullCheckCycles = 1.0;
    // The 604e at 332 MHz is roughly half as fast per cycle budget as the
    // PIII; model that with slightly slower memory operations.
    t.loadCycles = 5.0;
    t.storeCycles = 4.0;
    return t;
}

Target
makeS390Target()
{
    Target t;
    t.name = "s390";
    t.trapAreaBytes = 8192;
    t.trapsOnRead = true;
    t.trapsOnWrite = true;
    t.hasExpInstruction = false;
    t.explicitNullCheckCycles = 2.0;
    return t;
}

Target
makeSPARCTarget()
{
    Target t;
    t.name = "sparc";
    t.trapAreaBytes = 4096;
    t.trapsOnRead = true;
    t.trapsOnWrite = true;
    t.hasExpInstruction = false;
    t.explicitNullCheckCycles = 2.0;
    return t;
}

Target
makeIllegalImplicitAIXTarget()
{
    Target t = makePPCAIXTarget();
    t.name = "ppc-aix-illegal-implicit";
    // Lie to the compiler: pretend reads trap.  The interpreter is always
    // driven by the honest makePPCAIXTarget() model, so programs compiled
    // against this target silently read zero where an NPE was due.
    t.trapsOnRead = true;
    return t;
}

} // namespace trapjit
