#ifndef TRAPJIT_ARCH_TARGET_H_
#define TRAPJIT_ARCH_TARGET_H_

/**
 * @file
 * Target architecture / operating system descriptions.
 *
 * The architecture dependent optimization (Section 3.3) is parameterized
 * by exactly the properties modeled here:
 *
 *  - how large the protected area at address zero is (an access at a
 *    larger offset — Figure 5's "BigOffset" — cannot rely on the trap);
 *  - whether *reads* through a null reference trap (Windows/IA32: yes;
 *    AIX: no — reads of the first page silently succeed, which both
 *    forbids implicit checks on reads and *enables* speculation of reads
 *    above their checks, Section 5.4);
 *  - whether writes trap;
 *  - the cycle cost of an explicit check (compare-and-branch on IA32,
 *    a 1-cycle conditional trap instruction on PowerPC);
 *  - whether the CPU has a native exponential instruction (the inliner
 *    can then intrinsify Math.exp; Section 5.4 explains how its absence
 *    on PowerPC limits scalar replacement for Neural Net).
 */

#include <cstdint>
#include <string>

#include "ir/instruction.h"

namespace trapjit
{

/** Description of a target platform (architecture + OS trap behavior). */
struct Target
{
    std::string name;

    // -- Hardware trap model -------------------------------------------------

    /** Bytes of protected address space starting at 0. */
    int64_t trapAreaBytes = 4096;

    /** A read of the protected area raises a trap the VM can catch. */
    bool trapsOnRead = true;

    /** A write to the protected area raises a trap the VM can catch. */
    bool trapsOnWrite = true;

    /**
     * Reads of the first page silently yield zero instead of trapping
     * (the AIX behavior the paper describes).  Only meaningful when
     * trapsOnRead is false; it is what makes read speculation legal.
     */
    bool readOfNullPageYieldsZero = false;

    /** Native exponential instruction (see FExp). */
    bool hasExpInstruction = false;

    // -- Cycle cost model -----------------------------------------------------

    double explicitNullCheckCycles = 2.0; ///< cmp+branch (IA32) or trap insn
    double boundCheckCycles = 2.0;
    double moveCycles = 1.0;
    double constCycles = 1.0;
    double intAluCycles = 1.0;
    double intMulCycles = 4.0;
    double intDivCycles = 20.0;
    double floatAluCycles = 3.0;
    double floatMulCycles = 4.0;
    double floatDivCycles = 20.0;
    double mathIntrinsicCycles = 40.0; ///< native exp/sqrt/sin/...
    double loadCycles = 4.0;
    double storeCycles = 3.0;
    double arrayAccessExtraCycles = 2.0; ///< index scaling + AGU
    double branchCycles = 2.0;
    double jumpCycles = 1.0;
    double callOverheadCycles = 20.0;
    double virtualDispatchExtraCycles = 6.0;
    double allocBaseCycles = 40.0;
    double allocPerByteCycles = 0.125;
    double throwCycles = 200.0;
    double trapDispatchCycles = 600.0; ///< OS signal round trip when a
                                       ///< *taken* implicit check traps

    // -- Queries used by the optimizer ---------------------------------------

    /**
     * True if executing @p inst with a null base reference is guaranteed
     * to raise a trap the VM can convert into a NullPointerException —
     * i.e. the instruction can carry an implicit null check.
     */
    bool trapCovers(const Instruction &inst) const;

    /**
     * True if a *read* at @p offset through a null reference is
     * guaranteed not to fault, so it may be executed speculatively ahead
     * of its null check (Figure 6).
     */
    bool readIsSpeculationSafe(int64_t offset) const;

    /** Read speculation is usable at all on this target. */
    bool
    allowsReadSpeculation() const
    {
        return !trapsOnRead && readOfNullPageYieldsZero;
    }
};

/**
 * Stable fingerprint of every field of @p target (trap model and cycle
 * costs; the name is included too since it identifies the model).
 * Part of the compile-cache key: pipelines over targets with equal
 * fingerprints generate identical code.
 */
std::string targetFingerprint(const Target &target);

/** Pentium III / Windows NT: reads and writes trap; no trap instruction. */
Target makeIA32WindowsTarget();

/**
 * PowerPC 604e / AIX: only writes to the protected page trap; reads of
 * page zero silently succeed; explicit checks cost one conditional-trap
 * cycle; no native exponential instruction.
 */
Target makePPCAIXTarget();

/** S/390-like: reads and writes trap, wider protected area. */
Target makeS390Target();

/** SPARC / LaTTe-like: reads and writes trap. */
Target makeSPARCTarget();

/**
 * The deliberately illegal "AIX but pretend reads trap" model used by the
 * paper's Illegal Implicit experiment (Section 5.4): the *compiler* is
 * told reads trap, while the *interpreter* keeps real AIX semantics.
 */
Target makeIllegalImplicitAIXTarget();

} // namespace trapjit

#endif // TRAPJIT_ARCH_TARGET_H_
