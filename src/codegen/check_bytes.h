#ifndef TRAPJIT_CODEGEN_CHECK_BYTES_H_
#define TRAPJIT_CODEGEN_CHECK_BYTES_H_

/**
 * @file
 * The single source of truth for check byte costs.
 *
 * Two emitters measure the code-size effect of the paper's mechanism:
 * the pseudo emitter (codegen/emitter.h, feeding bench_ablation_codesize)
 * and the native x86-64 tier (codegen/native/).  Both must agree that an
 * explicit check costs real bytes and an implicit one costs exactly
 * zero, and neither may silently drift from the other's accounting.
 * The byte sequences and their sizes therefore live here, once:
 *
 *  - the *model* sequences are the pseudo encoding the emitter has
 *    always produced (test+jz / cmp+jae with one-byte registers and
 *    one-byte stub displacements);
 *  - the *native* sizes are what the x86-64 baseline tier emits for the
 *    same checks (64-bit test + jz rel32 / cmp r64,m64 + jae rel32);
 *    codegen/native/native_compiler.cpp asserts its measured emission
 *    against these constants on every check it compiles.
 *
 * An implicit check emits no bytes in either tier — that is the paper's
 * entire point — so it needs no sequence, only the zero constant that
 * tests pin.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/value.h"

namespace trapjit
{

/** Model explicit null check: test r, r ; jz <npe stub>. */
constexpr size_t kModelExplicitNullCheckBytes = 4;

/** Model bound check: cmp idx, len ; jae <aioobe stub>. */
constexpr size_t kModelBoundCheckBytes = 5;

/** Native x86-64 explicit null check: test r64, r64 ; jz rel32. */
constexpr size_t kNativeExplicitNullCheckBytes = 9;

/** Native x86-64 bound check: cmp r64, [slot] ; jae rel32. */
constexpr size_t kNativeBoundCheckBytes = 13;

/** An implicit check emits nothing — the following access traps. */
constexpr size_t kNativeImplicitNullCheckBytes = 0;

namespace model
{

/** Operand register byte of the pseudo encoding (id, truncated). */
inline void
putReg(std::vector<uint8_t> &bytes, ValueId v)
{
    bytes.push_back(static_cast<uint8_t>(v == kNoValue ? 0xff : v & 0xff));
}

/**
 * Append the model explicit-null-check sequence for register @p ref;
 * returns the bytes appended (always kModelExplicitNullCheckBytes).
 */
inline size_t
emitExplicitNullCheck(std::vector<uint8_t> &bytes, ValueId ref)
{
    size_t before = bytes.size();
    bytes.push_back(0x85); // test r, r
    putReg(bytes, ref);
    bytes.push_back(0x74); // jz <npe stub>
    bytes.push_back(0x00); // stub displacement
    size_t emitted = bytes.size() - before;
    static_assert(kModelExplicitNullCheckBytes == 4,
                  "keep the constant in sync with the sequence");
    return emitted;
}

/**
 * Append the model bound-check sequence for (index, length); returns
 * the bytes appended (always kModelBoundCheckBytes).
 */
inline size_t
emitBoundCheck(std::vector<uint8_t> &bytes, ValueId idx, ValueId len)
{
    size_t before = bytes.size();
    bytes.push_back(0x39); // cmp idx, len
    putReg(bytes, idx);
    putReg(bytes, len);
    bytes.push_back(0x73); // jae <aioobe stub>
    bytes.push_back(0x00);
    size_t emitted = bytes.size() - before;
    static_assert(kModelBoundCheckBytes == 5,
                  "keep the constant in sync with the sequence");
    return emitted;
}

} // namespace model

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_CHECK_BYTES_H_
