#include "codegen/codegen_pass.h"

namespace trapjit
{

bool
CodegenPass::runOnFunction(Function &func, PassContext &ctx)
{
    allocations_[func.id()] = allocateRegisters(func);
    emitted_[func.id()] = emitFunction(func, ctx.target);
    return false; // analysis + emission only, the IR is unchanged
}

} // namespace trapjit
