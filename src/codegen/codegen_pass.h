#ifndef TRAPJIT_CODEGEN_CODEGEN_PASS_H_
#define TRAPJIT_CODEGEN_CODEGEN_PASS_H_

/**
 * @file
 * Back-end pass: register allocation + code emission.
 *
 * Runs after all optimizations (and after the local scheduler).  The
 * results are kept per function id so benches and tests can inspect
 * code size and spill statistics; the interpreter keeps executing
 * virtual registers, so this pass never changes behavior — it exists
 * because a JIT's compile-time profile is dominated by its back end,
 * which the compile-time tables (Tables 3-5) account for.
 */

#include <map>

#include "codegen/emitter.h"
#include "codegen/linear_scan.h"
#include "opt/pass.h"

namespace trapjit
{

/** Register allocation + emission, with retrievable per-function data. */
class CodegenPass : public Pass
{
  public:
    const char *name() const override { return "codegen"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    /** Allocation of a compiled function (empty map if never run). */
    const std::map<FunctionId, RegAllocation> &allocations() const
    {
        return allocations_;
    }

    /** Emitted code per compiled function. */
    const std::map<FunctionId, EmittedCode> &emitted() const
    {
        return emitted_;
    }

  private:
    std::map<FunctionId, RegAllocation> allocations_;
    std::map<FunctionId, EmittedCode> emitted_;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_CODEGEN_PASS_H_
