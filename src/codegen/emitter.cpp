#include "codegen/emitter.h"

#include <cstring>
#include <map>

#include "codegen/check_bytes.h"

namespace trapjit
{

namespace
{

/** Append a little-endian 32-bit immediate. */
void
putU32(std::vector<uint8_t> &bytes, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &bytes, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** Operand register byte (virtual register id, truncated). */
void
putReg(std::vector<uint8_t> &bytes, ValueId v)
{
    bytes.push_back(static_cast<uint8_t>(v == kNoValue ? 0xff : v & 0xff));
}

} // namespace

EmittedCode
emitFunction(const Function &func, const Target &target)
{
    EmittedCode code;
    // Block start offsets, for branch fixups.
    std::vector<uint32_t> blockOffset(func.numBlocks(), 0);
    struct Fixup
    {
        size_t at;
        BlockId block;
    };
    std::vector<Fixup> fixups;

    auto emitBranchTarget = [&](BlockId block) {
        fixups.push_back(Fixup{code.bytes.size(), block});
        putU32(code.bytes, 0);
    };

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        blockOffset[b] = static_cast<uint32_t>(code.bytes.size());
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            switch (inst.op) {
              case Opcode::NullCheck:
                // The check sequences live in codegen/check_bytes.h so
                // this emitter and the native tier account identically.
                if (inst.flavor == CheckFlavor::Explicit)
                    code.explicitNullCheckBytes +=
                        model::emitExplicitNullCheck(code.bytes, inst.a);
                // Implicit: no bytes at all — the following access traps.
                break;
              case Opcode::BoundCheck:
                code.boundCheckBytes +=
                    model::emitBoundCheck(code.bytes, inst.a, inst.b);
                break;
              case Opcode::ConstInt:
                code.bytes.push_back(0xb8);
                putReg(code.bytes, inst.dst);
                putU64(code.bytes, static_cast<uint64_t>(inst.imm));
                break;
              case Opcode::ConstFloat: {
                code.bytes.push_back(0xb9);
                putReg(code.bytes, inst.dst);
                uint64_t bits;
                std::memcpy(&bits, &inst.fimm, sizeof(bits));
                putU64(code.bytes, bits);
                break;
              }
              case Opcode::GetField:
              case Opcode::PutField:
                code.bytes.push_back(0x8b);
                putReg(code.bytes, inst.dst);
                putReg(code.bytes, inst.a);
                putU32(code.bytes, static_cast<uint32_t>(inst.imm));
                break;
              case Opcode::ArrayLoad:
              case Opcode::ArrayStore:
                code.bytes.push_back(0x8a);
                putReg(code.bytes, inst.dst);
                putReg(code.bytes, inst.a);
                putReg(code.bytes, inst.b);
                putReg(code.bytes, inst.c);
                break;
              case Opcode::Call: {
                code.bytes.push_back(0xe8);
                putU32(code.bytes, static_cast<uint32_t>(inst.imm));
                for (ValueId arg : inst.args)
                    putReg(code.bytes, arg);
                break;
              }
              case Opcode::Jump:
                code.bytes.push_back(0xe9);
                emitBranchTarget(static_cast<BlockId>(inst.imm));
                break;
              case Opcode::Branch:
              case Opcode::IfNull:
                code.bytes.push_back(0x0f);
                putReg(code.bytes, inst.a);
                emitBranchTarget(static_cast<BlockId>(inst.imm));
                emitBranchTarget(static_cast<BlockId>(inst.imm2));
                break;
              case Opcode::Return:
                code.bytes.push_back(0xc3);
                putReg(code.bytes, inst.a);
                break;
              default:
                // Generic three-address encoding.
                code.bytes.push_back(
                    static_cast<uint8_t>(inst.op) + 0x10);
                putReg(code.bytes, inst.dst);
                putReg(code.bytes, inst.a);
                putReg(code.bytes, inst.b);
                break;
            }
            ++code.instructionsEmitted;
        }
    }

    for (const Fixup &fixup : fixups) {
        uint32_t offset = blockOffset[fixup.block];
        for (int i = 0; i < 4; ++i)
            code.bytes[fixup.at + i] =
                static_cast<uint8_t>(offset >> (8 * i));
    }
    (void)target;
    return code;
}

} // namespace trapjit
