#ifndef TRAPJIT_CODEGEN_EMITTER_H_
#define TRAPJIT_CODEGEN_EMITTER_H_

/**
 * @file
 * Pseudo machine-code emission.
 *
 * Produces a flat byte encoding of a function the way the final JIT
 * phase would: every instruction gets an opcode byte plus operand
 * bytes, branch targets are fixed up after layout, and — the point the
 * paper's whole mechanism turns on — an *explicit* null check costs
 * real bytes (test + conditional branch) while an *implicit* one emits
 * nothing at all.  The emitter therefore exposes code-size effects of
 * the null check configurations in addition to the cycle effects the
 * interpreter measures.
 */

#include <cstdint>
#include <vector>

#include "arch/target.h"
#include "ir/function.h"

namespace trapjit
{

/** Result of emitting one function. */
struct EmittedCode
{
    std::vector<uint8_t> bytes;
    size_t instructionsEmitted = 0;

    /** Bytes spent on explicit null check sequences. */
    size_t explicitNullCheckBytes = 0;

    /** Bytes spent on bound check sequences. */
    size_t boundCheckBytes = 0;
};

/** Encode @p func for @p target.  CFG must be current. */
EmittedCode emitFunction(const Function &func, const Target &target);

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_EMITTER_H_
