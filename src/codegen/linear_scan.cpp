#include "codegen/linear_scan.h"

#include <algorithm>

#include "analysis/liveness.h"
#include "analysis/rpo.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

bool
isFloatValue(const Function &func, ValueId v)
{
    return func.value(v).type == Type::F64;
}

} // namespace

RegAllocation
allocateRegisters(const Function &func, size_t int_regs,
                  size_t float_regs)
{
    const size_t numValues = func.numValues();
    RegAllocation result;
    result.assignment.assign(numValues, -2);
    result.intervalStart.assign(numValues, -1);
    result.intervalEnd.assign(numValues, -1);
    if (numValues == 0)
        return result;

    DataflowResult live = solveLiveness(func);
    std::vector<BlockId> order = reversePostorder(func);

    // Build conservative live intervals over the linearized order.
    int cursor = 0;
    std::vector<ValueId> uses;
    auto touch = [&result](ValueId v, int at) {
        if (result.intervalStart[v] < 0)
            result.intervalStart[v] = at;
        result.intervalStart[v] = std::min(result.intervalStart[v], at);
        result.intervalEnd[v] = std::max(result.intervalEnd[v], at);
    };

    // Parameters are live from index 0.
    for (ValueId p = 0; p < func.numParams(); ++p)
        touch(p, 0);

    for (BlockId block : order) {
        const BasicBlock &bb = func.block(block);
        const int blockStart = cursor;
        live.in[block].forEach(
            [&](size_t v) { touch(static_cast<ValueId>(v), blockStart); });
        for (const Instruction &inst : bb.insts()) {
            uses.clear();
            inst.forEachUse(uses);
            for (ValueId u : uses)
                touch(u, cursor);
            if (inst.hasDst())
                touch(inst.dst, cursor);
            ++cursor;
        }
        const int blockEnd = cursor;
        live.out[block].forEach(
            [&](size_t v) { touch(static_cast<ValueId>(v), blockEnd); });
    }

    // Classic linear scan, one pool per register class.
    struct Interval
    {
        ValueId value;
        int start;
        int end;
    };
    std::vector<Interval> intervals;
    for (ValueId v = 0; v < numValues; ++v)
        if (result.intervalStart[v] >= 0)
            intervals.push_back(
                Interval{v, result.intervalStart[v],
                         result.intervalEnd[v]});
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });

    struct Pool
    {
        size_t numRegs;
        std::vector<int> freeRegs;
        std::vector<Interval> active; // sorted by end ascending
        size_t maxPressure = 0;
    };
    auto makePool = [](size_t n) {
        Pool pool;
        pool.numRegs = n;
        for (int r = static_cast<int>(n) - 1; r >= 0; --r)
            pool.freeRegs.push_back(r);
        return pool;
    };
    Pool intPool = makePool(int_regs);
    Pool floatPool = makePool(float_regs);

    auto expire = [&](Pool &pool, int start) {
        while (!pool.active.empty() && pool.active.front().end < start) {
            int reg = result.assignment[pool.active.front().value];
            TRAPJIT_ASSERT(reg >= 0, "active interval without register");
            pool.freeRegs.push_back(reg);
            pool.active.erase(pool.active.begin());
        }
    };
    auto insertActive = [](Pool &pool, Interval interval) {
        auto it = std::lower_bound(
            pool.active.begin(), pool.active.end(), interval,
            [](const Interval &a, const Interval &b) {
                return a.end < b.end;
            });
        pool.active.insert(it, interval);
    };

    for (const Interval &interval : intervals) {
        Pool &pool = isFloatValue(func, interval.value) ? floatPool
                                                        : intPool;
        expire(intPool, interval.start);
        expire(floatPool, interval.start);

        if (!pool.freeRegs.empty()) {
            int reg = pool.freeRegs.back();
            pool.freeRegs.pop_back();
            result.assignment[interval.value] = reg;
            insertActive(pool, interval);
        } else if (!pool.active.empty() &&
                   pool.active.back().end > interval.end) {
            // Spill the furthest-ending active interval instead.
            Interval victim = pool.active.back();
            pool.active.pop_back();
            int reg = result.assignment[victim.value];
            result.assignment[victim.value] = -1;
            ++result.spilledValues;
            result.assignment[interval.value] = reg;
            insertActive(pool, interval);
        } else {
            result.assignment[interval.value] = -1;
            ++result.spilledValues;
        }
        pool.maxPressure = std::max(
            pool.maxPressure, pool.numRegs - pool.freeRegs.size());
    }
    result.maxIntPressure = intPool.maxPressure;
    result.maxFloatPressure = floatPool.maxPressure;

    // Count the implied spill memory operations.
    std::vector<ValueId> operands;
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            operands.clear();
            inst.forEachUse(operands);
            for (ValueId u : operands)
                if (result.assignment[u] == -1)
                    ++result.spillOps; // reload before use
            if (inst.hasDst() && result.assignment[inst.dst] == -1)
                ++result.spillOps; // store after def
        }
    }
    return result;
}

} // namespace trapjit
