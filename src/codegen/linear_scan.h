#ifndef TRAPJIT_CODEGEN_LINEAR_SCAN_H_
#define TRAPJIT_CODEGEN_LINEAR_SCAN_H_

/**
 * @file
 * Linear-scan register allocation (Poletto/Sarkar style, the algorithm
 * JITs of the paper's era used — LaTTe's distinguishing feature was
 * exactly this).  Values are linearized in reverse postorder, live
 * intervals are derived from block liveness, and intervals compete for
 * a fixed pool of integer (incl. reference) and float registers; when
 * the pool is exhausted the interval with the furthest end is spilled.
 *
 * The allocator is an analysis here — the interpreter executes virtual
 * registers directly — but it is a real allocator: its assignments are
 * verified non-overlapping by the test suite, and it contributes the
 * realistic back-end share of the compile-time accounting (Tables 3-5).
 */

#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace trapjit
{

/** Result of allocating one function. */
struct RegAllocation
{
    /** Physical register per value, or -1 = spilled, -2 = never live. */
    std::vector<int> assignment;

    /** Live interval per value: [start, end] linear indices (or -1). */
    std::vector<int> intervalStart;
    std::vector<int> intervalEnd;

    size_t spilledValues = 0;
    size_t maxIntPressure = 0;
    size_t maxFloatPressure = 0;

    /** Spill memory operations implied at spilled defs/uses. */
    size_t spillOps = 0;
};

/**
 * Allocate @p func onto @p int_regs integer/reference registers and
 * @p float_regs float registers.  CFG must be current.
 */
RegAllocation allocateRegisters(const Function &func,
                                size_t int_regs = 12,
                                size_t float_regs = 8);

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_LINEAR_SCAN_H_
