#include "codegen/native/code_buffer.h"

#include <sys/mman.h>
#include <unistd.h>

#include "support/diagnostics.h"

namespace trapjit
{

CodeBuffer::CodeBuffer(size_t capacity)
{
    size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    if (capacity == 0)
        capacity = 1;
    capacity_ = (capacity + page - 1) & ~(page - 1);
    void *mem = mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        TRAPJIT_FATAL("mmap of a code buffer failed");
    base_ = static_cast<uint8_t *>(mem);
}

CodeBuffer::CodeBuffer(CodeBuffer &&other) noexcept
    : base_(other.base_), capacity_(other.capacity_),
      executable_(other.executable_), patchable_(other.patchable_)
{
    other.base_ = nullptr;
    other.capacity_ = 0;
    other.executable_ = false;
    other.patchable_ = false;
}

CodeBuffer::~CodeBuffer()
{
    if (base_ != nullptr)
        munmap(base_, capacity_);
}

void
CodeBuffer::finalize()
{
    if (executable_)
        return;
    if (mprotect(base_, capacity_, PROT_READ | PROT_EXEC) != 0)
        TRAPJIT_FATAL("mprotect(PROT_EXEC) on a code buffer failed");
    executable_ = true;
}

bool
CodeBuffer::finalizePatchable()
{
    if (mprotect(base_, capacity_,
                 PROT_READ | PROT_WRITE | PROT_EXEC) == 0) {
        executable_ = true;
        patchable_ = true;
        return true;
    }
    finalize(); // RWX refused: fall back to RX (runs, can't be patched)
    return false;
}

void
CodeBuffer::makeWritable()
{
    if (!executable_)
        return;
    if (mprotect(base_, capacity_, PROT_READ | PROT_WRITE) != 0)
        TRAPJIT_FATAL("mprotect(PROT_WRITE) on a code buffer failed");
    executable_ = false;
    patchable_ = false;
}

} // namespace trapjit
