#ifndef TRAPJIT_CODEGEN_NATIVE_CODE_BUFFER_H_
#define TRAPJIT_CODEGEN_NATIVE_CODE_BUFFER_H_

/**
 * @file
 * W^X executable code buffer.
 *
 * One mmap'd, page-rounded region that is writable *or* executable,
 * never both: the compiler fills it under PROT_READ|PROT_WRITE, then
 * finalize() flips it to PROT_READ|PROT_EXEC before the first call.
 * makeWritable() flips it back for patching or reuse across
 * recompiles — the lifecycle tests (tests/test_code_buffer.cpp) drive
 * a buffer through several write/execute cycles.
 *
 * The buffer never moves once allocated (entry addresses and the
 * absolute handler-table entries inside it would dangle), so it is
 * non-copyable and non-movable past finalization; size must be chosen
 * up front.
 */

#include <cstddef>
#include <cstdint>

namespace trapjit
{

/** RAII owner of one executable region. */
class CodeBuffer
{
  public:
    /** Maps at least @p capacity bytes PROT_READ|PROT_WRITE. */
    explicit CodeBuffer(size_t capacity);
    ~CodeBuffer();

    CodeBuffer(const CodeBuffer &) = delete;
    CodeBuffer &operator=(const CodeBuffer &) = delete;
    CodeBuffer(CodeBuffer &&other) noexcept;
    CodeBuffer &operator=(CodeBuffer &&) = delete;

    uint8_t *base() const { return base_; }
    size_t capacity() const { return capacity_; }

    /** True while the mapping is PROT_READ|PROT_EXEC. */
    bool executable() const { return executable_; }

    /** Flip to PROT_READ|PROT_EXEC; idempotent. */
    void finalize();

    /**
     * Flip to PROT_READ|PROT_WRITE|PROT_EXEC for code that stays
     * patchable while other threads execute it (the tiered tier's
     * call-slot linking).  Returns false — leaving the buffer RX, so
     * it still runs, just unpatchable — when the platform forbids RWX
     * mappings (hardened kernels, some sandboxes).
     */
    bool finalizePatchable();

    /** True when finalizePatchable() succeeded. */
    bool patchable() const { return patchable_; }

    /** Flip back to PROT_READ|PROT_WRITE for patching; idempotent. */
    void makeWritable();

  private:
    uint8_t *base_ = nullptr;
    size_t capacity_ = 0; ///< page-rounded mapping size
    bool executable_ = false;
    bool patchable_ = false;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_CODE_BUFFER_H_
