#include "codegen/native/code_buffer_pool.h"

#include <cctype>
#include <cstdlib>

namespace trapjit
{

namespace
{

/** Idle retention when TRAPJIT_CODE_BUDGET is unset. */
constexpr uint64_t kDefaultRetainBudget = 64ull << 20;

constexpr size_t kMinClass = 4096;

} // namespace

uint64_t
codeBudgetFromEnv()
{
    const char *raw = std::getenv("TRAPJIT_CODE_BUDGET");
    if (raw == nullptr || *raw == '\0')
        return 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(raw, &end, 10);
    if (end == raw)
        return 0;
    switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k':
        value <<= 10;
        break;
    case 'm':
        value <<= 20;
        break;
    case 'g':
        value <<= 30;
        break;
    default:
        break;
    }
    return static_cast<uint64_t>(value);
}

CodeBufferPool &
globalCodeBufferPool()
{
    // Leaky singleton: buffers released during static destruction (a
    // registry graveyard draining at exit) must still find the pool.
    uint64_t env = codeBudgetFromEnv();
    static CodeBufferPool *pool =
        new CodeBufferPool(env != 0 ? env : kDefaultRetainBudget);
    return *pool;
}

CodeBufferPool::CodeBufferPool(uint64_t retainBudget)
    : retainBudget_(retainBudget)
{
}

size_t
CodeBufferPool::sizeClass(size_t minCapacity)
{
    size_t cls = kMinClass;
    while (cls < minCapacity)
        cls *= 2;
    return cls;
}

CodeBuffer
CodeBufferPool::acquire(size_t minCapacity)
{
    size_t cls = sizeClass(minCapacity);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++acquires_;
        for (auto &bucket : classes_) {
            if (bucket.first != cls || bucket.second.empty())
                continue;
            CodeBuffer buf = std::move(bucket.second.back());
            bucket.second.pop_back();
            ++reuses_;
            bytesPooled_ -= buf.capacity();
            bytesLoaned_ += buf.capacity();
            return buf;
        }
        // Construct outside the lock? The mmap is cheap relative to a
        // compile; keeping it here keeps the accounting exact.
        CodeBuffer buf(cls);
        bytesLoaned_ += buf.capacity();
        return buf;
    }
}

void
CodeBufferPool::release(CodeBuffer buf)
{
    if (buf.base() == nullptr)
        return; // moved-from shell
    std::lock_guard<std::mutex> lock(mutex_);
    ++releases_;
    // Clamp: a buffer constructed outside the pool (tests build
    // CodeBuffers directly) may still be routed here at destruction.
    uint64_t cap = buf.capacity();
    bytesLoaned_ -= cap < bytesLoaned_ ? cap : bytesLoaned_;
    if (bytesPooled_ + buf.capacity() > retainBudget_) {
        ++drops_;
        return; // CodeBuffer dtor unmaps on scope exit
    }
    buf.makeWritable();
    bytesPooled_ += buf.capacity();
    size_t cls = buf.capacity();
    for (auto &bucket : classes_) {
        if (bucket.first == cls) {
            bucket.second.push_back(std::move(buf));
            return;
        }
    }
    classes_.emplace_back(cls, std::vector<CodeBuffer>{});
    classes_.back().second.push_back(std::move(buf));
}

uint64_t
CodeBufferPool::bytesLive() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytesPooled_ + bytesLoaned_;
}

CodeBufferPoolStats
CodeBufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CodeBufferPoolStats s;
    s.acquires = acquires_;
    s.reuses = reuses_;
    s.releases = releases_;
    s.drops = drops_;
    s.bytesPooled = bytesPooled_;
    s.bytesLoaned = bytesLoaned_;
    return s;
}

} // namespace trapjit
