#ifndef TRAPJIT_CODEGEN_NATIVE_CODE_BUFFER_POOL_H_
#define TRAPJIT_CODEGEN_NATIVE_CODE_BUFFER_POOL_H_

/**
 * @file
 * Size-classed pool of W^X code buffers.
 *
 * Every native compile allocates a CodeBuffer (an mmap + two mprotect
 * flips); under a compile service churning thousands of functions that
 * is real syscall traffic and real RSS.  The pool recycles retired
 * buffers by power-of-two size class: acquire() hands back a pooled
 * mapping (flipped writable) when one fits, release() returns a
 * buffer — NativeCode's destructor routes every buffer here — and
 * retains it while the pool's retained bytes stay under budget.
 *
 * The retention budget comes from TRAPJIT_CODE_BUDGET (bytes, with
 * optional k/m/g suffix); unset, the pool keeps at most 64 MiB of idle
 * mappings.  The same variable drives CodeRegistry's published-block
 * eviction (codegen/native/code_registry.h) — one knob for both faces
 * of code-memory governance.
 *
 * Safety: a buffer must only be released once no thread can execute
 * it.  NativeCode destruction already guarantees that (blocks owned by
 * a CodeRegistry sit in its graveyard until the registry itself dies;
 * cache-owned blocks die with the cache), so the pool adds no new
 * lifetime rules.
 */

#include <cstdint>
#include <mutex>
#include <vector>

#include "codegen/native/code_buffer.h"

namespace trapjit
{

/** Snapshot of a pool's accounting. */
struct CodeBufferPoolStats
{
    uint64_t acquires = 0;    ///< total acquire() calls
    uint64_t reuses = 0;      ///< acquires served from the pool
    uint64_t releases = 0;    ///< total release() calls
    uint64_t drops = 0;       ///< releases unmapped (over budget)
    uint64_t bytesPooled = 0; ///< idle mappings retained
    uint64_t bytesLoaned = 0; ///< mappings currently handed out
};

/** Thread-safe recycler of CodeBuffer mappings. */
class CodeBufferPool
{
  public:
    /** @p retainBudget caps idle retained bytes; 0 = pool nothing. */
    explicit CodeBufferPool(uint64_t retainBudget);

    /** A writable buffer of at least @p minCapacity bytes. */
    CodeBuffer acquire(size_t minCapacity);

    /** Return @p buf; retained under budget, unmapped otherwise. */
    void release(CodeBuffer buf);

    /** Bytes in live code mappings: loaned out + idle in the pool. */
    uint64_t bytesLive() const;

    CodeBufferPoolStats stats() const;

  private:
    static size_t sizeClass(size_t minCapacity);

    mutable std::mutex mutex_;
    /** class size -> idle buffers of exactly that capacity. */
    std::vector<std::pair<size_t, std::vector<CodeBuffer>>> classes_;
    uint64_t retainBudget_;
    uint64_t bytesPooled_ = 0;
    uint64_t bytesLoaned_ = 0;
    uint64_t acquires_ = 0;
    uint64_t reuses_ = 0;
    uint64_t releases_ = 0;
    uint64_t drops_ = 0;
};

/** The process-wide pool both native backends allocate from. */
CodeBufferPool &globalCodeBufferPool();

/** TRAPJIT_CODE_BUDGET in bytes (k/m/g suffixes), or 0 when unset. */
uint64_t codeBudgetFromEnv();

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_CODE_BUFFER_POOL_H_
