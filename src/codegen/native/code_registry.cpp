#include "codegen/native/code_registry.h"

#include <algorithm>
#include <limits>

#include "codegen/native/code_buffer_pool.h"
#include "support/diagnostics.h"

namespace trapjit
{

CodeRegistry::CodeRegistry(size_t numFunctions)
    : published_(numFunctions), states_(numFunctions),
      publishEpoch_(numFunctions, 0)
{
    for (size_t i = 0; i < numFunctions; ++i) {
        published_[i].store(nullptr, std::memory_order_relaxed);
        states_[i].store(static_cast<uint32_t>(TierState::Cold),
                         std::memory_order_relaxed);
    }
    codeBudget_.store(codeBudgetFromEnv(), std::memory_order_relaxed);
}

void
CodeRegistry::setCodeBudget(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    codeBudget_.store(bytes, std::memory_order_relaxed);
    // A budget below the current total takes effect at the next
    // publish (eviction needs a just-published anchor to protect).
}

bool
CodeRegistry::tryBeginPromotion(FunctionId fn)
{
    uint32_t expected = static_cast<uint32_t>(TierState::Cold);
    return states_[fn].compare_exchange_strong(
        expected, static_cast<uint32_t>(TierState::Requested),
        std::memory_order_acq_rel, std::memory_order_acquire);
}

void
CodeRegistry::patchSlot(const NativeCode &block,
                        const NativeCallSlot &slot,
                        const NativeCode *callee)
{
    if (!block.buffer.patchable())
        return; // RWX refused at finalize: the block runs stub-only
    uint8_t *base = block.buffer.base();
    TRAPJIT_ASSERT(slot.rel32Offset % 4 == 0,
                   "call slot displacement is not 4-byte aligned");
    int32_t rel;
    if (callee != nullptr) {
        intptr_t delta =
            reinterpret_cast<intptr_t>(callee->buffer.base()) -
            reinterpret_cast<intptr_t>(base + slot.rel32Offset + 4);
        if (delta < std::numeric_limits<int32_t>::min() ||
            delta > std::numeric_limits<int32_t>::max())
            return; // out of rel32 range: stay on the slow stub
        rel = static_cast<int32_t>(delta);
    } else {
        rel = static_cast<int32_t>(slot.stubOffset) -
              static_cast<int32_t>(slot.rel32Offset + 4);
    }
    // Both targets are valid at every instant, so an executing thread
    // may observe either displacement; the store only needs to be
    // indivisible, which the 4-byte alignment guarantees on x86-64.
    __atomic_store_n(
        reinterpret_cast<int32_t *>(base + slot.rel32Offset), rel,
        __ATOMIC_RELEASE);
    slotsPatched_.fetch_add(1, std::memory_order_relaxed);
}

void
CodeRegistry::publish(FunctionId fn,
                      std::shared_ptr<const NativeCode> code,
                      std::shared_ptr<const DecodedFunction> df,
                      bool linkBlocks)
{
    TRAPJIT_ASSERT(code != nullptr && code->tiered,
                   "only tiered blocks enter the registry");
    TRAPJIT_ASSERT(state(fn) == TierState::Requested,
                   "publish without a matching promotion request");
    const NativeCode *nc = code.get();
    std::lock_guard<std::mutex> lock(mutex_);

    // 1. Make the block's faults resolvable before anything can enter
    //    it: swap in a fresh pc-map snapshot containing its range.
    auto map = std::make_unique<TieredPcMap>();
    const TieredPcMap *old = pcMap_.load(std::memory_order_relaxed);
    if (old != nullptr)
        map->blocks = old->blocks;
    uintptr_t lo = reinterpret_cast<uintptr_t>(nc->buffer.base());
    map->blocks.push_back(
        TieredBlockRange{lo, lo + nc->codeSize, nc, df.get()});
    std::sort(map->blocks.begin(), map->blocks.end(),
              [](const TieredBlockRange &a, const TieredBlockRange &b) {
                  return a.lo < b.lo;
              });
    pcMap_.store(map.get(), std::memory_order_release);
    pcMapHistory_.push_back(std::move(map));

    // 2. Register the block's outbound static slots and link the ones
    //    whose callee is already published.
    bool linkedAny = false;
    for (uint32_t s = 0; s < nc->callSlots.size(); ++s) {
        const NativeCallSlot &slot = nc->callSlots[s];
        if (slot.callee == kNoFunction)
            continue;
        linkSites_[slot.callee].push_back(SlotRef{nc, s});
        if (!linkBlocks)
            continue;
        const NativeCode *callee =
            published_[slot.callee].load(std::memory_order_relaxed);
        if (callee != nullptr) {
            patchSlot(*nc, slot, callee);
            linkedAny = true;
        }
    }

    // 3. Callers may enter the block from this store on.
    published_[fn].store(nc, std::memory_order_release);
    states_[fn].store(static_cast<uint32_t>(TierState::Published),
                      std::memory_order_release);
    keepalive_.emplace_back(std::move(code), std::move(df));

    // 4. Link inbound slots from every block ever published (including
    //    invalidated ones: their code may still be on some stack).
    if (linkBlocks) {
        auto it = linkSites_.find(fn);
        if (it != linkSites_.end()) {
            for (const SlotRef &ref : it->second) {
                patchSlot(*ref.block,
                          ref.block->callSlots[ref.slotIndex], nc);
                linkedAny = true;
            }
        }
    }
    if (linkedAny)
        blocksLinked_.fetch_add(1, std::memory_order_relaxed);

    // 5. Memory governance: account the new block and, if the budget
    //    is now exceeded, retire the oldest published blocks.
    publishedBytes_.fetch_add(nc->codeSize, std::memory_order_relaxed);
    lruOrder_.emplace_back(fn, ++publishEpoch_[fn]);
    evictOverBudgetLocked(fn);
}

void
CodeRegistry::evictOverBudgetLocked(FunctionId justPublished)
{
    uint64_t budget = codeBudget_.load(std::memory_order_relaxed);
    if (budget == 0)
        return;
    while (publishedBytes_.load(std::memory_order_relaxed) > budget &&
           !lruOrder_.empty()) {
        auto [fn, epoch] = lruOrder_.front();
        if (fn == justPublished)
            break; // never evict the block we are publishing
        lruOrder_.pop_front();
        // Stale row: the function re-published since (a newer row
        // exists further back) or is no longer published at all.
        if (epoch != publishEpoch_[fn] ||
            static_cast<TierState>(states_[fn].load(
                std::memory_order_relaxed)) != TierState::Published)
            continue;
        invalidateLocked(fn);
        blocksEvicted_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
CodeRegistry::markUnsupported(FunctionId fn)
{
    states_[fn].store(static_cast<uint32_t>(TierState::Unsupported),
                      std::memory_order_release);
}

void
CodeRegistry::invalidate(FunctionId fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    invalidateLocked(fn);
}

void
CodeRegistry::invalidateLocked(FunctionId fn)
{
    if (static_cast<TierState>(states_[fn].load(
            std::memory_order_relaxed)) != TierState::Published)
        return;
    // Unlink inbound sites first: once the published pointer clears,
    // the slow-call helper would interpret the callee, and a stale
    // direct link must not race past that decision.
    auto it = linkSites_.find(fn);
    if (it != linkSites_.end())
        for (const SlotRef &ref : it->second)
            patchSlot(*ref.block, ref.block->callSlots[ref.slotIndex],
                      nullptr);
    const NativeCode *nc =
        published_[fn].load(std::memory_order_relaxed);
    if (nc != nullptr)
        publishedBytes_.fetch_sub(nc->codeSize,
                                  std::memory_order_relaxed);
    published_[fn].store(nullptr, std::memory_order_release);
    states_[fn].store(static_cast<uint32_t>(TierState::Cold),
                      std::memory_order_release);
    blocksInvalidated_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace trapjit
