#ifndef TRAPJIT_CODEGEN_NATIVE_CODE_REGISTRY_H_
#define TRAPJIT_CODEGEN_NATIVE_CODE_REGISTRY_H_

/**
 * @file
 * The tiered tier's code-block registry: function id -> published
 * tiered NativeCode, plus the direct-call link graph between blocks.
 *
 * Lifecycle of one function (TierState):
 *
 *   Cold ──tryBeginPromotion──▶ Requested ──publish──▶ Published
 *     ▲                             │                      │
 *     └──────── invalidate ◀────────┴── markUnsupported ──▶ Unsupported
 *
 * Publishing order matters and is fixed: (1) the block enters the
 * immutable pc-map snapshot (the SIGSEGV handler can resolve its
 * faults from this instant), (2) its *outbound* static call slots are
 * linked to already-published callees, (3) the published pointer is
 * release-stored (callers may now enter it), (4) *inbound* slots of
 * already-published callers are linked to it.  Invalidation reverses
 * only the linking: inbound slots go back to their per-site slow
 * stubs, the published pointer clears, state returns to Cold — but the
 * block itself, its decoded function and its pc-map entry live for the
 * registry's whole lifetime, because a frame of the invalidated block
 * may still be on some thread's stack (graveyard semantics).
 *
 * Patching protocol (DESIGN.md section 14): every patchable rel32
 * field is 4-byte aligned (the compiler NOP-pads call sites), both the
 * stub target and the direct target are valid at every instant, and
 * each retarget is a single aligned 32-bit release store into the RWX
 * buffer.  Readers (executing threads) need no ordering: whichever
 * displacement the fetch observes leads somewhere correct.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "codegen/native/native_compiler.h"
#include "codegen/native/native_runtime.h"
#include "interp/decoded_program.h"

namespace trapjit
{

/** Promotion state of one function (see the diagram above). */
enum class TierState : uint32_t
{
    Cold = 0,
    Requested = 1,
    Published = 2,
    Unsupported = 3,
};

/**
 * Thread-safe registry of published tiered blocks for one module.
 * Shareable between engines (the blocks are engine-independent); the
 * registry must outlive every frame executing one of its blocks.
 */
class CodeRegistry
{
  public:
    explicit CodeRegistry(size_t numFunctions);

    /**
     * Cold -> Requested CAS; true when this caller won the right to
     * compile the function.  Dedups concurrent promotion requests.
     */
    bool tryBeginPromotion(FunctionId fn);

    /**
     * Install @p code (a tiered block compiled from @p df, which it
     * keeps alive) as @p fn's published block and link call slots both
     * ways when @p linkBlocks.  Requires state Requested.
     */
    void publish(FunctionId fn, std::shared_ptr<const NativeCode> code,
                 std::shared_ptr<const DecodedFunction> df,
                 bool linkBlocks);

    /** Requested -> Unsupported (compile failed or audit findings). */
    void markUnsupported(FunctionId fn);

    /**
     * Unlink every inbound call slot (back to the slow stubs), clear
     * the published pointer and return @p fn to Cold so it can re-tier.
     * No-op unless currently Published.
     */
    void invalidate(FunctionId fn);

    /** Lock-free: the published block, or null.  Never dangles. */
    const NativeCode *
    published(FunctionId fn) const
    {
        return published_[fn].load(std::memory_order_acquire);
    }

    TierState
    state(FunctionId fn) const
    {
        return static_cast<TierState>(
            states_[fn].load(std::memory_order_acquire));
    }

    /**
     * Cap the bytes of *published* (reachable-by-call) code.  When a
     * publish pushes the total past the budget, the registry invalidates
     * the oldest-published blocks (publish-order LRU) through the normal
     * invalidation path until the total fits again — their functions
     * drop back to Cold and may re-tier later.  The blocks themselves
     * stay in the graveyard (frames may still be executing them), so
     * this governs *linkable* code, and their memory returns to the
     * CodeBufferPool when the registry dies.  0 = unlimited.  The
     * constructor seeds this from TRAPJIT_CODE_BUDGET.
     */
    void setCodeBudget(uint64_t bytes);

    /** Bytes of currently published code (the evictor's gauge). */
    uint64_t
    publishedCodeBytes() const
    {
        return publishedBytes_.load(std::memory_order_relaxed);
    }

    /** The atomic pc-map slot TieredRun descriptors point at. */
    const std::atomic<const TieredPcMap *> *
    pcMapSlot() const
    {
        return &pcMap_;
    }

    size_t numFunctions() const { return published_.size(); }

    // ---- tiering counters (monotonic, for ServiceCounters) ----------
    uint64_t slotsPatched() const { return slotsPatched_.load(); }
    uint64_t blocksLinked() const { return blocksLinked_.load(); }
    uint64_t blocksInvalidated() const
    {
        return blocksInvalidated_.load();
    }
    uint64_t blocksEvicted() const { return blocksEvicted_.load(); }

  private:
    struct SlotRef
    {
        const NativeCode *block; ///< the block owning the slot
        uint32_t slotIndex;      ///< index into block->callSlots
    };

    /** Retarget one slot; direct to @p callee, or back to its stub. */
    void patchSlot(const NativeCode &block, const NativeCallSlot &slot,
                   const NativeCode *callee);

    /** invalidate() without taking mutex_ (the evictor holds it). */
    void invalidateLocked(FunctionId fn);

    /** Evict oldest-published blocks until the budget fits;
     *  @p justPublished is never evicted.  Caller holds mutex_. */
    void evictOverBudgetLocked(FunctionId justPublished);

    std::vector<std::atomic<const NativeCode *>> published_;
    std::vector<std::atomic<uint32_t>> states_;

    mutable std::mutex mutex_; ///< serializes publish/invalidate
    /** Blocks + decoded functions, alive for the registry's lifetime. */
    std::vector<std::pair<std::shared_ptr<const NativeCode>,
                          std::shared_ptr<const DecodedFunction>>>
        keepalive_;
    /** Every static call slot targeting a given callee, ever. */
    std::unordered_map<FunctionId, std::vector<SlotRef>> linkSites_;
    /** All pc-map snapshots ever swapped in (handler-safety). */
    std::vector<std::unique_ptr<TieredPcMap>> pcMapHistory_;
    std::atomic<const TieredPcMap *> pcMap_{nullptr};

    std::atomic<uint64_t> slotsPatched_{0};
    std::atomic<uint64_t> blocksLinked_{0};
    std::atomic<uint64_t> blocksInvalidated_{0};
    std::atomic<uint64_t> blocksEvicted_{0};

    // ---- code-budget governance (all mutated under mutex_) ----------
    std::atomic<uint64_t> codeBudget_{0}; ///< 0 = unlimited
    std::atomic<uint64_t> publishedBytes_{0};
    /** Publish order, stale entries skipped via the epoch check. */
    std::deque<std::pair<FunctionId, uint64_t>> lruOrder_;
    /** Bumped every publish of fn; identifies the live lruOrder_ row. */
    std::vector<uint64_t> publishEpoch_;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_CODE_REGISTRY_H_
