#include "codegen/native/native_compiler.h"

#include <algorithm>
#include <cstring>

#include "codegen/check_bytes.h"
#include "codegen/native/code_buffer_pool.h"
#include "codegen/native/native_runtime.h"
#include "codegen/native/x64_emitter.h"
#include "ir/layout.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

using R = X64Reg;
using CC = X64Cond;

/** Cold stub raising a statically known exception kind. */
struct RaiseStub
{
    int label;
    ExcKind kind;
    SiteId site;
    TryRegionId tryRegion;
};

/** Cold stub decoding a helper's nonzero status. */
struct StatusStub
{
    int label;
    TryRegionId tryRegion;
};

/**
 * Ops with no side effect beyond their destination slot: when linear
 * scan proves the destination is never live (assignment -2), the whole
 * body can be elided — only the budget preamble remains, because the
 * interpreters still retire the instruction.  Anything that can raise,
 * fault, allocate, touch the heap or the trace stays.
 */
bool
isElidablePureOp(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::ConstNull:
      case Opcode::Move:
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::INeg:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::IShl:
      case Opcode::IShr:
      case Opcode::IUshr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FNeg:
      case Opcode::FExp:
      case Opcode::FSqrt:
      case Opcode::FSin:
      case Opcode::FCos:
      case Opcode::FAbs:
      case Opcode::FLog:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::I2L:
      case Opcode::L2I:
      case Opcode::ICmp:
      case Opcode::FCmp:
        return true;
      default:
        return false;
    }
}

/**
 * Ops eligible for integer-chain fusion: pure two-address ALU records
 * whose result can stay live in rax for the next record.  Shifts are
 * excluded (they need the count in cl, which would clobber the
 * accumulator protocol), as is everything that can raise.
 */
bool
isIntChainOp(Opcode op)
{
    switch (op) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::INeg:
        return true;
      default:
        return false;
    }
}

bool
isCommutativeAlu(Opcode op)
{
    switch (op) {
      case Opcode::IAdd:
      case Opcode::IMul:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
        return true;
      default:
        return false;
    }
}

X64Cond
icmpCond(CmpPred pred)
{
    switch (pred) {
      case CmpPred::EQ: return CC::E;
      case CmpPred::NE: return CC::NE;
      case CmpPred::LT: return CC::L;
      case CmpPred::LE: return CC::LE;
      case CmpPred::GT: return CC::G;
      case CmpPred::GE: return CC::GE;
    }
    TRAPJIT_PANIC("bad predicate");
}

/** Condition after swapping the compare's operands (a<b ⟺ b>a). */
X64Cond
swapIcmpCond(X64Cond cond)
{
    switch (cond) {
      case CC::L: return CC::G;
      case CC::G: return CC::L;
      case CC::LE: return CC::GE;
      case CC::GE: return CC::LE;
      default: return cond; // E / NE are symmetric
    }
}

uint64_t
helperAddr(uint32_t (*fn)(NativeContext *, uint32_t))
{
    return reinterpret_cast<uint64_t>(fn);
}

} // namespace

NativeCode::~NativeCode()
{
    globalCodeBufferPool().release(std::move(buffer));
}

const NativeTrapSite *
NativeCode::findSite(uint32_t off) const
{
    auto it = std::upper_bound(
        sites.begin(), sites.end(), off,
        [](uint32_t o, const NativeTrapSite &s) {
            return o < s.accessBegin;
        });
    if (it == sites.begin())
        return nullptr;
    --it;
    return (off >= it->accessBegin && off < it->accessEnd) ? &*it
                                                           : nullptr;
}

Hash128
nativeCodeKey(const Function &fn, const Target &target,
              const DecodeOptions &decode_options,
              const NativeCompileOptions &native_options)
{
    Hash128 base = decodedProgramKey(fn, target, decode_options);
    Hasher h;
    h.update(std::string_view("native-code-v1"));
    h.update(base.hi);
    h.update(base.lo);
    h.update(static_cast<uint64_t>(native_options.recordTrace ? 1 : 0));
    h.update(static_cast<uint64_t>(native_options.tiered ? 1 : 0));
    h.update(static_cast<uint64_t>(native_options.optimized ? 1 : 0));
    h.update(static_cast<uint64_t>(
        native_options.optimized && native_options.speculate ? 1 : 0));
    return h.digest();
}

NativeCompileResult
compileNative(const Function &fn, const DecodedFunction &df,
              const NativeCompileOptions &options)
{
    if (options.optimized)
        return compileNativeOptimized(fn, df, options);
    (void)fn; // identity lives in the cache key; codegen is decode-only
    NativeCompileResult out;
    if (!nativeTierSupported()) {
        out.unsupportedReason = "native tier requires x86-64 Linux";
        return out;
    }

    // Every srcOp the decoder can produce is lowerable today; the scan
    // stays so a future opcode degrades to fallback, not miscompilation.
    for (const DecodedInst &rec : df.code) {
        switch (rec.srcOp) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
          case Opcode::ConstNull:
          case Opcode::Move:
          case Opcode::IAdd:
          case Opcode::ISub:
          case Opcode::IMul:
          case Opcode::IDiv:
          case Opcode::IRem:
          case Opcode::INeg:
          case Opcode::IAnd:
          case Opcode::IOr:
          case Opcode::IXor:
          case Opcode::IShl:
          case Opcode::IShr:
          case Opcode::IUshr:
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
          case Opcode::FNeg:
          case Opcode::FExp:
          case Opcode::FSqrt:
          case Opcode::FSin:
          case Opcode::FCos:
          case Opcode::FAbs:
          case Opcode::FLog:
          case Opcode::I2F:
          case Opcode::F2I:
          case Opcode::I2L:
          case Opcode::L2I:
          case Opcode::ICmp:
          case Opcode::FCmp:
          case Opcode::NullCheck:
          case Opcode::BoundCheck:
          case Opcode::GetField:
          case Opcode::PutField:
          case Opcode::ArrayLength:
          case Opcode::ArrayLoad:
          case Opcode::ArrayStore:
          case Opcode::NewObject:
          case Opcode::NewArray:
          case Opcode::Call:
          case Opcode::Jump:
          case Opcode::Branch:
          case Opcode::IfNull:
          case Opcode::Return:
          case Opcode::Throw:
          case Opcode::Nop:
            break;
          default:
            out.unsupportedReason = std::string("unsupported opcode ") +
                                    opcodeName(rec.srcOp);
            return out;
        }
    }

    // A destination no record ever reads lets a pure record shrink to
    // its preamble.  Deadness comes from the decoded stream itself (one
    // scan over every operand and call-argument slot), not from the IR
    // liveness analysis: the latter walks the CFG, which is only
    // current after a pipeline ran, and the native tier also compiles
    // freshly built, never-optimized modules.
    std::vector<uint32_t> useCount(df.numValues, 0);
    auto markUse = [&](ValueId v) {
        if (v != kNoValue)
            ++useCount[v];
    };
    for (const DecodedInst &rec : df.code) {
        markUse(rec.a);
        markUse(rec.b);
        markUse(rec.c);
        for (uint32_t k = 0; k < rec.argsCount; ++k)
            markUse(df.argPool[rec.argsBegin + k]);
    }

    // Records that control flow can enter other than by fall-through
    // from the predecessor record.  A compare whose sole consumer is
    // the branch right after it fuses into jcc only when nothing can
    // enter at the branch (the flags would be stale there).
    std::vector<bool> jumpTarget(df.code.size(), false);
    for (const DecodedInst &rec : df.code) {
        if (rec.srcOp == Opcode::Jump) {
            jumpTarget[rec.target] = true;
        } else if (rec.srcOp == Opcode::Branch ||
                   rec.srcOp == Opcode::IfNull) {
            jumpTarget[rec.target] = true;
            jumpTarget[rec.target2] = true;
        }
    }
    for (const DecodedTryRegion &r : df.tryRegions)
        if (r.handlerIndex < jumpTarget.size())
            jumpTarget[r.handlerIndex] = true;

    // Single-def integer constants (the builder's mutable locals are
    // multi-def and excluded).  A use may read the constant as an
    // immediate only when no jump entry point lies strictly between
    // the defining ConstInt and the use — the def then executes on
    // every path reaching the use.
    std::vector<int32_t> constRec(df.numValues, -1);
    std::vector<uint8_t> defCount(df.numValues, 0);
    for (size_t i = 0; i < df.code.size(); ++i) {
        const DecodedInst &r = df.code[i];
        if (r.dst == kNoValue)
            continue;
        if (defCount[r.dst] < 2)
            ++defCount[r.dst];
        if (r.srcOp == Opcode::ConstInt && defCount[r.dst] == 1)
            constRec[r.dst] = static_cast<int32_t>(i);
    }
    std::vector<uint32_t> entryPrefix(df.code.size() + 1, 0);
    for (size_t i = 0; i < df.code.size(); ++i)
        entryPrefix[i + 1] = entryPrefix[i] + (jumpTarget[i] ? 1 : 0);
    auto constAt = [&](ValueId v, size_t use) -> const DecodedInst * {
        if (v == kNoValue || defCount[v] != 1 || constRec[v] < 0)
            return nullptr;
        size_t d = static_cast<size_t>(constRec[v]);
        if (d >= use || entryPrefix[use + 1] != entryPrefix[d + 1])
            return nullptr;
        return &df.code[d];
    };
    auto constValOf = [](const DecodedInst &c) -> int64_t {
        return (c.flags & kDecodedNarrowDst) != 0
                   ? static_cast<int32_t>(c.imm)
                   : c.imm;
    };
    auto fitsI32 = [](int64_t v) {
        return v == static_cast<int64_t>(static_cast<int32_t>(v));
    };
    // The slot operand that record `u` reads as an immediate instead,
    // or kNoValue.  The emission paths and the ConstInt elision
    // pre-pass must agree exactly, so both go through this predicate.
    auto foldedOperand = [&](const DecodedInst &r, size_t u) -> ValueId {
        const bool nar = (r.flags & kDecodedNarrowDst) != 0;
        const DecodedInst *c;
        switch (r.srcOp) {
          case Opcode::IAdd:
          case Opcode::IAnd:
          case Opcode::IOr:
          case Opcode::IXor:
            if ((c = constAt(r.b, u)) != nullptr &&
                (nar || fitsI32(constValOf(*c))))
                return r.b;
            if ((c = constAt(r.a, u)) != nullptr &&
                (nar || fitsI32(constValOf(*c))))
                return r.a; // commutative: swap the operands
            return kNoValue;
          case Opcode::ISub:
            if ((c = constAt(r.b, u)) != nullptr &&
                (nar || fitsI32(constValOf(*c))))
                return r.b;
            return kNoValue;
          case Opcode::ICmp: // compares are always 64-bit
            if ((c = constAt(r.b, u)) != nullptr &&
                fitsI32(constValOf(*c)))
                return r.b;
            if ((c = constAt(r.a, u)) != nullptr &&
                fitsI32(constValOf(*c)))
                return r.a; // swap: the predicate mirrors
            return kNoValue;
          case Opcode::Move:
            return constAt(r.a, u) != nullptr ? r.a : kNoValue;
          default:
            return kNoValue;
        }
    };
    std::vector<uint32_t> foldedUses(df.numValues, 0);
    for (size_t i = 0; i < df.code.size(); ++i) {
        ValueId v = foldedOperand(df.code[i], i);
        if (v != kNoValue)
            ++foldedUses[v];
    }

    // Redundant re-check scan (the paper's Section 4 elimination at
    // the quad level): a checked access of (ref, idx) makes that pair
    // "available"; a later quad on the same pair that every path
    // provably reaches straight-line from the first — no jump targets
    // in between, only pure records or other checked quads, and
    // nothing rewriting the ref or idx slots — cannot fail its null or
    // bound checks and drops all three.  Conservatism rules: any jump
    // target, any op outside the allowed set, or a jump target inside
    // a quad's tail clears the whole available set.
    const size_t nrecScan = df.code.size();
    auto isAccessQuadAt = [&](size_t k) {
        if (k + 4 >= nrecScan)
            return false;
        const DecodedInst &nc = df.code[k];
        const DecodedInst &al = df.code[k + 1];
        const DecodedInst &bc = df.code[k + 2];
        const DecodedInst &ax = df.code[k + 3];
        return nc.srcOp == Opcode::NullCheck &&
               al.srcOp == Opcode::ArrayLength && al.a == nc.a &&
               al.dst != kNoValue && bc.srcOp == Opcode::BoundCheck &&
               bc.b == al.dst && bc.a != kNoValue &&
               (ax.srcOp == Opcode::ArrayLoad ||
                ax.srcOp == Opcode::ArrayStore) &&
               ax.a == nc.a && ax.b == bc.a;
    };
    std::vector<bool> redundantQuad(nrecScan, false);
    {
        std::vector<std::pair<ValueId, ValueId>> avail;
        auto invalidateWrite = [&](ValueId dst) {
            if (dst == kNoValue)
                return;
            for (size_t n = avail.size(); n-- > 0;)
                if (avail[n].first == dst || avail[n].second == dst)
                    avail.erase(avail.begin() + static_cast<long>(n));
        };
        for (size_t k = 0; k < nrecScan; ++k) {
            if (jumpTarget[k])
                avail.clear();
            if (isAccessQuadAt(k)) {
                const ValueId ref = df.code[k].a;
                const ValueId idx = df.code[k + 2].a;
                for (const auto &p : avail)
                    if (p.first == ref && p.second == idx) {
                        redundantQuad[k] = true;
                        break;
                    }
                invalidateWrite(df.code[k + 1].dst);
                invalidateWrite(df.code[k + 3].dst);
                if (jumpTarget[k + 1] || jumpTarget[k + 2] ||
                    jumpTarget[k + 3]) {
                    // A mid-quad entry skips the leading checks; the
                    // pair is not proven on that path.
                    avail.clear();
                } else if (!redundantQuad[k] &&
                           df.code[k + 1].dst != ref &&
                           df.code[k + 1].dst != idx &&
                           df.code[k + 3].dst != ref &&
                           df.code[k + 3].dst != idx) {
                    avail.emplace_back(ref, idx);
                }
                k += 3;
                continue;
            }
            const DecodedInst &rec = df.code[k];
            if (isElidablePureOp(rec.srcOp))
                invalidateWrite(rec.dst);
            else
                avail.clear();
        }
    }
    size_t eliminatedCount = 0;

    // Tiered mode swaps every out-of-line helper for its tiered twin:
    // the twins reach frame state through ctx->activeDf/activeSlots
    // (published by the prologue) instead of ctx->frame, and report
    // hard faults through ctx->hardFault instead of status 2.  The
    // decoded function's address is baked into the code, so tiered
    // blocks must never enter the content-addressed NativeCodeCache —
    // the code registry keeps df alive alongside the block.
    const bool tiered = options.tiered;
    uint32_t (*pNewObject)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredNewObject : &trapjitNativeNewObject;
    uint32_t (*pNewArray)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredNewArray : &trapjitNativeNewArray;
    uint32_t (*pMath)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredMath : &trapjitNativeMath;
    uint32_t (*pTraceField)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredTraceFieldWrite
               : &trapjitNativeTraceFieldWrite;
    uint32_t (*pTraceArray)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredTraceArrayWrite
               : &trapjitNativeTraceArrayWrite;
    uint32_t (*pBudgetFault)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredBudgetFault : &trapjitNativeBudgetFault;
    int32_t (*pFindHandler)(NativeContext *, uint32_t) =
        tiered ? &trapjitTieredFindHandler : &trapjitNativeFindHandler;

    X64Emitter e;
    const size_t nrec = df.code.size();
    std::vector<int> recLabel(nrec);
    for (size_t i = 0; i < nrec; ++i)
        recLabel[i] = e.newLabel();
    const int lDispatch = e.newLabel();
    const int lBudget = e.newLabel();
    const int lBudgetFused = e.newLabel();
    const int lReturn = e.newLabel();
    const int lUnwind = e.newLabel();
    const int lPop = e.newLabel();

    std::vector<RaiseStub> raises;
    std::vector<StatusStub> statuses;
    std::vector<NativeTrapSite> sites;
    // Tiered call plumbing: one patchable slot and one per-site slow
    // stub per Call record, pushed in lockstep.
    struct TieredCallStub
    {
        int label;
        uint32_t recIndex;
    };
    std::vector<TieredCallStub> callStubs;
    std::vector<NativeCallSlot> callSlots;
    size_t explicitBytes = 0, implicitBytes = 0, boundBytes = 0;
    size_t explicitCount = 0, implicitCount = 0;

    auto raiseTo = [&](ExcKind kind, const DecodedInst &rec) {
        int l = e.newLabel();
        raises.push_back(RaiseStub{l, kind, rec.site, rec.tryRegion});
        return l;
    };
    auto callHelper = [&](uint32_t (*helper)(NativeContext *, uint32_t),
                          uint32_t recIndex) {
        // Helpers run interpreter code that consumes budget, so the
        // register-resident count round-trips through the context.
        e.storeCtx64(kNativeCtxBudgetOffset, R::R14);
        e.movRegReg(R::RDI, R::R12);
        e.movRegImm32(R::RSI, recIndex);
        e.movRegImm64(R::RAX, helperAddr(helper));
        e.callReg(R::RAX);
        e.loadCtx64(R::R14, kNativeCtxBudgetOffset);
    };
    auto checkStatus = [&](const DecodedInst &rec) {
        int l = e.newLabel();
        statuses.push_back(StatusStub{l, rec.tryRegion});
        e.testRegReg(R::RAX, R::RAX, false);
        e.jccLabel(CC::NE, l);
    };
    auto beginSite = [&] { return static_cast<uint32_t>(e.size()); };
    auto endSite = [&](uint32_t begin, size_t recIndex) {
        sites.push_back(NativeTrapSite{
            begin, static_cast<uint32_t>(e.size()),
            static_cast<uint32_t>(recIndex), 0});
    };

    // ---- prologue ------------------------------------------------------
    // Five callee-saved pushes (r15 is alignment padding) leave rsp
    // 16-byte aligned at every helper call site.
    e.pushReg(R::RBX);
    e.pushReg(R::R12);
    e.pushReg(R::R13);
    e.pushReg(R::R14);
    e.pushReg(R::R15);
    e.movRegReg(R::R12, R::RDI); // NativeContext*
    e.movRegReg(R::RBX, R::RSI); // Slot*
    e.movRegReg(R::R13, R::RDX); // heap host bias
    e.loadCtx64(R::R14, kNativeCtxBudgetOffset); // instruction budget
    const int lDepthBail = tiered ? e.newLabel() : -1;
    const int lPoolBail = tiered ? e.newLabel() : -1;
    if (tiered) {
        // Tiered entry: no resume parameter (the SIGSEGV handler
        // resumes frames in place by rewriting RIP) and a fully
        // self-contained frame setup.  activeDf is published before
        // the depth check so the depth-fault message can name this
        // callee; the slot file is claimed from the engine's frame
        // pool with an overflow check; non-parameter slots are zeroed
        // exactly like execFrame's fresh regs vector.
        e.storeCtx64(kNativeCtxActiveSlotsOffset, R::RBX);
        e.movRegImm64(R::RAX, reinterpret_cast<uint64_t>(&df));
        e.storeCtx64(kNativeCtxActiveDfOffset, R::RAX);
        e.decCtx64(kNativeCtxDepthRemainingOffset);
        e.jccLabel(CC::S, lDepthBail);
        e.movRegReg(R::RAX, R::RBX);
        e.aluRegImm32(X64Emitter::Alu::Add, R::RAX,
                      static_cast<int32_t>(df.numValues * 8), true);
        e.loadCtx64(R::RCX, kNativeCtxPoolEndOffset);
        e.aluRegReg(X64Emitter::Alu::Cmp, R::RAX, R::RCX, true);
        e.jccLabel(CC::A, lPoolBail);
        e.storeCtx64(kNativeCtxPoolTopOffset, R::RAX);
        if (df.numValues > df.numParams) {
            e.movRegReg(R::RDI, R::RBX);
            if (df.numParams > 0)
                e.aluRegImm32(X64Emitter::Alu::Add, R::RDI,
                              static_cast<int32_t>(df.numParams * 8),
                              true);
            e.movRegImm32(R::RCX, df.numValues - df.numParams);
            e.movRegImm32(R::RAX, 0);
            e.repStosq();
        }
    } else {
        // A non-null resume address (trap re-entry) takes over as soon
        // as the pinned registers are live; the wrapper writes the
        // recovered budget back into the context before resuming, so
        // the r14 reload above covers both entry paths.
        e.testRegReg(R::RCX, R::RCX, true);
        int lStart = e.newLabel();
        e.jccLabel(CC::E, lStart);
        e.jmpReg(R::RCX);
        e.bind(lStart);
    }

    // One integer ALU record; the canonical result is left in rax and
    // NOT stored (the caller owns the store).  Wrapping arithmetic: the
    // low 32 bits of the 64-bit op equal the 32-bit op, so narrow
    // records use 32-bit forms and re-canonicalize with movsxd.  When
    // liveVal is not kNoValue that operand is already in rax (the chain
    // accumulator); the chain scan guarantees exactly one operand is
    // the accumulator and swaps only happen on commutative ops.
    auto emitIntAluToRax = [&](const DecodedInst &rec, size_t u,
                               ValueId liveVal) {
        const bool nar = (rec.flags & kDecodedNarrowDst) != 0;
        const bool wid = !nar;
        if (rec.srcOp == Opcode::INeg) {
            if (liveVal == kNoValue) {
                if (wid)
                    e.loadSlot(R::RAX, rec.a);
                else
                    e.loadSlot32(R::RAX, rec.a);
            }
            e.negReg(R::RAX, wid);
            if (nar)
                e.movsxdRegReg(R::RAX, R::RAX);
            return;
        }
        ValueId fv = foldedOperand(rec, u);
        ValueId lhs, other;
        if (liveVal != kNoValue) {
            lhs = liveVal;
            other = (rec.a == liveVal) ? rec.b : rec.a;
        } else if (fv != kNoValue && fv == rec.b) {
            lhs = rec.a;
            other = rec.b;
        } else if (fv != kNoValue) {
            lhs = rec.b; // commutative: swap the operands
            other = rec.a;
        } else {
            lhs = rec.a;
            other = rec.b;
        }
        if (liveVal == kNoValue) {
            if (wid)
                e.loadSlot(R::RAX, lhs);
            else
                e.loadSlot32(R::RAX, lhs);
        }
        if (rec.srcOp == Opcode::IMul) {
            e.imulRegSlot(R::RAX, other, wid);
        } else {
            X64Emitter::Alu op = X64Emitter::Alu::Add;
            switch (rec.srcOp) {
              case Opcode::ISub: op = X64Emitter::Alu::Sub; break;
              case Opcode::IAnd: op = X64Emitter::Alu::And; break;
              case Opcode::IOr: op = X64Emitter::Alu::Or; break;
              case Opcode::IXor: op = X64Emitter::Alu::Xor; break;
              default: break;
            }
            if (fv != kNoValue && fv == other)
                e.aluRegImm32(op, R::RAX,
                              static_cast<int32_t>(
                                  constValOf(df.code[constRec[fv]])),
                              wid);
            else
                e.aluRegSlot(op, R::RAX, other, wid);
        }
        if (nar)
            e.movsxdRegReg(R::RAX, R::RAX);
    };

    // ---- records -------------------------------------------------------
    std::vector<bool> fusedIntoPrev(nrec, false);
    for (size_t i = 0; i < nrec; ++i) {
        const DecodedInst &rec = df.code[i];
        if (fusedIntoPrev[i])
            continue; // emitted as the tail of the preceding compare
        e.bind(recLabel[i]);

        // Compare-and-branch fusion: when the compare's only consumer
        // is the branch immediately after it and nothing jumps to that
        // branch, the boolean never materializes — the jcc consumes
        // the flags directly.  One sub r14,2 settles the budget for
        // both records (the stub clamps to -1 on fault, so the stats
        // sync reads the same max+1 either way).
        if (rec.srcOp == Opcode::ICmp && rec.dst != kNoValue &&
            i + 1 < nrec && df.code[i + 1].srcOp == Opcode::Branch &&
            df.code[i + 1].a == rec.dst && useCount[rec.dst] == 1 &&
            !jumpTarget[i + 1]) {
            const DecodedInst &br = df.code[i + 1];
            e.bind(recLabel[i + 1]);
            e.aluRegImm32(X64Emitter::Alu::Sub, R::R14, 2, true);
            e.jccLabel(CC::S, lBudgetFused);
            CC cc = icmpCond(rec.pred);
            ValueId fv = foldedOperand(rec, i);
            if (fv == rec.b && fv != kNoValue) {
                e.aluSlotImm32(
                    X64Emitter::Alu::Cmp, rec.a,
                    static_cast<int32_t>(constValOf(df.code[constRec[fv]])),
                    true);
            } else if (fv != kNoValue) {
                e.aluSlotImm32(
                    X64Emitter::Alu::Cmp, rec.b,
                    static_cast<int32_t>(constValOf(df.code[constRec[fv]])),
                    true);
                cc = swapIcmpCond(cc);
            } else {
                e.loadSlot(R::RAX, rec.a);
                e.aluRegSlot(X64Emitter::Alu::Cmp, R::RAX, rec.b, true);
            }
            e.jccLabel(cc, recLabel[br.target]);
            e.jmpLabel(recLabel[br.target2]);
            fusedIntoPrev[i + 1] = true;
            continue;
        }

        // Checked-array-access fusion: the exact four-record shape the
        // front end emits for every a[i] (NullCheck; ArrayLength;
        // BoundCheck; ArrayLoad/Store) gets a straight-line body that
        // keeps ref, length and index in registers.  Budget decrements
        // stay interleaved record-by-record, so budget-fault timing
        // against throws is bit-identical to the interpreters.  The
        // three inner records are still emitted standalone right after
        // (the fused tail jumps over them): branches into the middle of
        // the quad and trap-resume entries land there and behave as if
        // no fusion happened.
        if (rec.srcOp == Opcode::NullCheck && i + 4 < nrec) {
            const DecodedInst &al = df.code[i + 1];
            const DecodedInst &bc = df.code[i + 2];
            const DecodedInst &ax = df.code[i + 3];
            if (al.srcOp == Opcode::ArrayLength && al.a == rec.a &&
                al.dst != kNoValue && bc.srcOp == Opcode::BoundCheck &&
                bc.b == al.dst && bc.a != kNoValue &&
                (ax.srcOp == Opcode::ArrayLoad ||
                 ax.srcOp == Opcode::ArrayStore) &&
                ax.a == rec.a && ax.b == bc.a) {
                uint32_t begin;
                if (redundantQuad[i]) {
                    // An earlier access of the same (ref, idx) pair
                    // dominates this one, so neither the null nor the
                    // bound check can fail: drop all three.  Nothing
                    // left in the body can throw, so the four budget
                    // decrements batch into one sub (same clamp rule
                    // as the compare fusion).
                    ++eliminatedCount;
                    e.aluRegImm32(X64Emitter::Alu::Sub, R::R14, 4,
                                  true);
                    e.jccLabel(CC::S, lBudgetFused);
                    e.loadSlot(R::RAX, rec.a);
                    if (useCount[al.dst] > 1) {
                        begin = beginSite();
                        e.loadHeap32Sx(
                            R::RCX, R::RAX,
                            static_cast<int32_t>(kArrayLengthOffset));
                        endSite(begin, i + 1);
                        e.storeSlot(al.dst, R::RCX);
                    }
                    e.loadSlot(R::RDX, bc.a);
                } else {
                e.decReg64(R::R14); // NullCheck budget
                e.jccLabel(CC::S, lBudget);
                e.loadSlot(R::RAX, rec.a);
                if (rec.flavor == CheckFlavor::Explicit) {
                    size_t before = e.size();
                    e.testRegReg(R::RAX, R::RAX, true);
                    e.jccLabel(CC::E,
                               raiseTo(ExcKind::NullPointer, rec));
                    size_t emitted = e.size() - before;
                    TRAPJIT_ASSERT(
                        emitted == kNativeExplicitNullCheckBytes,
                        "explicit check drifted from check_bytes.h");
                    explicitBytes += emitted;
                    ++explicitCount;
                } else {
                    implicitBytes += kNativeImplicitNullCheckBytes;
                    ++implicitCount;
                }
                e.decReg64(R::R14); // ArrayLength budget
                e.jccLabel(CC::S, lBudget);
                begin = beginSite();
                e.loadHeap32Sx(R::RCX, R::RAX,
                               static_cast<int32_t>(kArrayLengthOffset));
                endSite(begin, i + 1);
                if (useCount[al.dst] > 1)
                    e.storeSlot(al.dst, R::RCX);
                e.decReg64(R::R14); // BoundCheck budget
                e.jccLabel(CC::S, lBudget);
                e.loadSlot(R::RDX, bc.a);
                e.aluRegReg(X64Emitter::Alu::Cmp, R::RDX, R::RCX, true);
                e.jccLabel(CC::AE,
                           raiseTo(ExcKind::ArrayIndexOutOfBounds, bc));
                e.decReg64(R::R14); // access budget
                e.jccLabel(CC::S, lBudget);
                } // end full-check body
                e.movsxdRegReg(R::RDX, R::RDX);
                e.leaHostAddr(R::RAX, R::RAX);
                if (ax.srcOp == Opcode::ArrayLoad) {
                    begin = beginSite();
                    if (ax.type == Type::I32)
                        e.loadIndexed32Sx(R::RCX, R::RAX, R::RDX, 4,
                                          kArrayDataOffset);
                    else
                        e.loadIndexed64(R::RCX, R::RAX, R::RDX, 8,
                                        kArrayDataOffset);
                    endSite(begin, i + 3);
                    e.storeSlot(ax.dst, R::RCX);
                } else {
                    e.loadSlot(R::RCX, ax.c);
                    begin = beginSite();
                    if (ax.type == Type::I32)
                        e.storeIndexed32(R::RAX, R::RDX, 4,
                                         kArrayDataOffset, R::RCX);
                    else
                        e.storeIndexed64(R::RAX, R::RDX, 8,
                                         kArrayDataOffset, R::RCX);
                    endSite(begin, i + 3);
                    if (options.recordTrace)
                        callHelper(pTraceArray,
                                   static_cast<uint32_t>(i + 3));
                }
                e.jmpLabel(recLabel[i + 4]);
                continue; // records i+1..i+3 follow as entry points
            }
        }

        // Integer-chain fusion: a run of pure ALU records where each
        // result's only consumer is the next record keeps the value in
        // rax instead of bouncing through the slot file; a trailing
        // Move redirects the final store to its destination (this is
        // the canonical loop latch "t = i + 1; i = t" as well as long
        // expression chains like IDEA's mul/add/xor rounds).  Every
        // link is pure, so one batched sub settles the budget with the
        // same clamp rule as the compare fusion; nothing can jump into
        // or trap inside the fused region.
        if (isIntChainOp(rec.srcOp) && rec.dst != kNoValue) {
            size_t last = i;
            while (last + 1 < nrec) {
                const DecodedInst &cur = df.code[last];
                const DecodedInst &nx = df.code[last + 1];
                if (jumpTarget[last + 1] || useCount[cur.dst] != 1)
                    break;
                if (nx.srcOp == Opcode::Move && nx.a == cur.dst) {
                    ++last; // Move terminates the chain
                    break;
                }
                if (!isIntChainOp(nx.srcOp) || nx.dst == kNoValue)
                    break;
                const bool aIs = nx.a == cur.dst;
                const bool bIs = nx.b == cur.dst;
                if (aIs == bIs)
                    break; // exactly one operand may be the accumulator
                if (bIs && !isCommutativeAlu(nx.srcOp))
                    break;
                ++last;
            }
            if (last > i) {
                for (size_t k = i + 1; k <= last; ++k) {
                    e.bind(recLabel[k]);
                    fusedIntoPrev[k] = true;
                }
                e.aluRegImm32(X64Emitter::Alu::Sub, R::R14,
                              static_cast<int32_t>(last - i + 1), true);
                e.jccLabel(CC::S, lBudgetFused);
                emitIntAluToRax(rec, i, kNoValue);
                for (size_t k = i + 1; k <= last; ++k) {
                    const DecodedInst &lk = df.code[k];
                    if (lk.srcOp == Opcode::Move)
                        break; // final value already in rax
                    emitIntAluToRax(lk, k, df.code[k - 1].dst);
                }
                e.storeSlot(df.code[last].dst, R::RAX);
                continue;
            }
        }

        // Budget preamble: exact parity with the interpreters' global
        // instruction budget (remaining count lives in r14 and is
        // synced with the context around every helper call).
        size_t preStart = e.size();
        e.decReg64(R::R14);
        e.jccLabel(CC::S, lBudget);
        TRAPJIT_ASSERT(e.size() - preStart == kNativeBudgetPreambleBytes,
                       "budget preamble size drifted");

        const bool narrow = (rec.flags & kDecodedNarrowDst) != 0;
        const bool wide = !narrow;

        if (rec.dst != kNoValue && isElidablePureOp(rec.srcOp) &&
            foldedUses[rec.dst] == useCount[rec.dst])
            continue; // dead or fully-folded pure record: preamble only

        switch (rec.srcOp) {
          case Opcode::ConstInt: {
            int64_t v = narrow ? static_cast<int32_t>(rec.imm) : rec.imm;
            e.movRegImm64(R::RAX, static_cast<uint64_t>(v));
            e.storeSlot(rec.dst, R::RAX);
            break;
          }
          case Opcode::ConstFloat: {
            uint64_t bits;
            std::memcpy(&bits, &rec.fimm, sizeof(bits));
            e.movRegImm64(R::RAX, bits);
            e.storeSlot(rec.dst, R::RAX);
            break;
          }
          case Opcode::ConstNull:
            e.movRegImm32(R::RAX, 0);
            e.storeSlot(rec.dst, R::RAX);
            break;
          case Opcode::Move:
            if (const DecodedInst *c = constAt(rec.a, i))
                e.movRegImm64(R::RAX,
                              static_cast<uint64_t>(constValOf(*c)));
            else
                e.loadSlot(R::RAX, rec.a);
            e.storeSlot(rec.dst, R::RAX);
            break;

          case Opcode::IAdd:
          case Opcode::ISub:
          case Opcode::IMul:
          case Opcode::IAnd:
          case Opcode::IOr:
          case Opcode::IXor:
          case Opcode::INeg:
            emitIntAluToRax(rec, i, kNoValue);
            e.storeSlot(rec.dst, R::RAX);
            break;

          case Opcode::IDiv:
          case Opcode::IRem: {
            // Divisor 0 raises; divisor -1 is special-cased before
            // idiv so INT64_MIN / -1 cannot #DE (javaDiv/javaRem).
            e.loadSlot(R::RAX, rec.a);
            e.loadSlot(R::RCX, rec.b);
            e.testRegReg(R::RCX, R::RCX, true);
            e.jccLabel(CC::E, raiseTo(ExcKind::Arithmetic, rec));
            e.cmpRegImm8(R::RCX, -1, true);
            int lMinusOne = e.newLabel();
            int lDone = e.newLabel();
            e.jccLabel(CC::E, lMinusOne);
            e.cqo();
            e.idivReg(R::RCX);
            if (rec.srcOp == Opcode::IRem)
                e.movRegReg(R::RAX, R::RDX);
            e.jmpLabel(lDone);
            e.bind(lMinusOne);
            if (rec.srcOp == Opcode::IDiv)
                e.negReg(R::RAX, true);
            else
                e.movRegImm32(R::RAX, 0);
            e.bind(lDone);
            if (narrow)
                e.movsxdRegReg(R::RAX, R::RAX);
            e.storeSlot(rec.dst, R::RAX);
            break;
          }

          case Opcode::IShl:
          case Opcode::IShr:
          case Opcode::IUshr: {
            // Hardware cl masking (mod 64 / mod 32) is exactly the
            // interpreter's &63 / &31.
            e.loadSlot(R::RCX, rec.b);
            if (wide)
                e.loadSlot(R::RAX, rec.a);
            else
                e.loadSlot32(R::RAX, rec.a);
            X64Emitter::Shift op =
                rec.srcOp == Opcode::IShl ? X64Emitter::Shift::Shl
                : rec.srcOp == Opcode::IShr ? X64Emitter::Shift::Sar
                                            : X64Emitter::Shift::Shr;
            e.shiftRegCl(op, R::RAX, wide);
            if (narrow)
                e.movsxdRegReg(R::RAX, R::RAX);
            e.storeSlot(rec.dst, R::RAX);
            break;
          }

          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv: {
            X64Emitter::SseOp op =
                rec.srcOp == Opcode::FAdd ? X64Emitter::SseOp::Add
                : rec.srcOp == Opcode::FSub ? X64Emitter::SseOp::Sub
                : rec.srcOp == Opcode::FMul ? X64Emitter::SseOp::Mul
                                            : X64Emitter::SseOp::Div;
            e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
            e.sseOpSlot(op, X64Xmm::XMM0, rec.b);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          }
          case Opcode::FNeg:
            e.movRegImm64(R::RAX, 0x8000000000000000ull);
            e.movqXmmReg(X64Xmm::XMM1, R::RAX);
            e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
            e.xorpd(X64Xmm::XMM0, X64Xmm::XMM1);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::FAbs:
            e.movRegImm64(R::RAX, 0x7fffffffffffffffull);
            e.movqXmmReg(X64Xmm::XMM1, R::RAX);
            e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
            e.andpd(X64Xmm::XMM0, X64Xmm::XMM1);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::FSqrt:
            e.sseOpSlot(X64Emitter::SseOp::Sqrt, X64Xmm::XMM0, rec.a);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::FExp:
          case Opcode::FSin:
          case Opcode::FCos:
          case Opcode::FLog:
          case Opcode::F2I:
            // libm / saturating conversion stay in C++ (bit-identical
            // to the interpreters by construction; status always 0).
            callHelper(pMath, static_cast<uint32_t>(i));
            break;

          case Opcode::I2F:
            e.cvtsi2sdSlot(X64Xmm::XMM0, rec.a);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::I2L:
            e.loadSlotSx32(R::RAX, rec.a);
            e.storeSlot(rec.dst, R::RAX);
            break;
          case Opcode::L2I:
            if (narrow)
                e.loadSlotSx32(R::RAX, rec.a);
            else
                e.loadSlot(R::RAX, rec.a);
            e.storeSlot(rec.dst, R::RAX);
            break;

          case Opcode::ICmp: {
            CC cc = icmpCond(rec.pred);
            ValueId fv = foldedOperand(rec, i);
            if (fv == rec.b && fv != kNoValue) {
                e.aluSlotImm32(
                    X64Emitter::Alu::Cmp, rec.a,
                    static_cast<int32_t>(constValOf(df.code[constRec[fv]])),
                    true);
            } else if (fv != kNoValue) {
                e.aluSlotImm32(
                    X64Emitter::Alu::Cmp, rec.b,
                    static_cast<int32_t>(constValOf(df.code[constRec[fv]])),
                    true);
                cc = swapIcmpCond(cc);
            } else {
                e.loadSlot(R::RAX, rec.a);
                e.aluRegSlot(X64Emitter::Alu::Cmp, R::RAX, rec.b, true);
            }
            e.setcc(cc, R::RAX);
            e.movzxRegReg8(R::RAX, R::RAX);
            e.storeSlot(rec.dst, R::RAX);
            break;
          }
          case Opcode::FCmp: {
            // IEEE-correct predicates through ucomisd: EQ/NE fold the
            // parity (unordered) flag; LT/LE compare operands swapped
            // so the unsigned conditions are NaN-false.
            switch (rec.pred) {
              case CmpPred::EQ:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::E, R::RAX);
                e.setcc(CC::NP, R::RCX);
                e.andRegReg8(R::RAX, R::RCX);
                break;
              case CmpPred::NE:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::NE, R::RAX);
                e.setcc(CC::P, R::RCX);
                e.orRegReg8(R::RAX, R::RCX);
                break;
              case CmpPred::LT:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.b);
                e.ucomisdSlot(X64Xmm::XMM0, rec.a);
                e.setcc(CC::A, R::RAX);
                break;
              case CmpPred::LE:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.b);
                e.ucomisdSlot(X64Xmm::XMM0, rec.a);
                e.setcc(CC::AE, R::RAX);
                break;
              case CmpPred::GT:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::A, R::RAX);
                break;
              case CmpPred::GE:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::AE, R::RAX);
                break;
            }
            e.movzxRegReg8(R::RAX, R::RAX);
            e.storeSlot(rec.dst, R::RAX);
            break;
          }

          case Opcode::NullCheck:
            if (rec.flavor == CheckFlavor::Explicit) {
                e.loadSlot(R::RAX, rec.a);
                size_t before = e.size();
                e.testRegReg(R::RAX, R::RAX, true);
                e.jccLabel(CC::E,
                           raiseTo(ExcKind::NullPointer, rec));
                size_t emitted = e.size() - before;
                TRAPJIT_ASSERT(
                    emitted == kNativeExplicitNullCheckBytes,
                    "explicit check drifted from check_bytes.h");
                explicitBytes += emitted;
                ++explicitCount;
            } else {
                // The paper's mechanism, for real: zero instructions.
                // The guarded access that follows faults instead.
                implicitBytes += kNativeImplicitNullCheckBytes;
                ++implicitCount;
            }
            break;
          case Opcode::BoundCheck: {
            // One unsigned compare covers idx < 0 || idx >= len: the
            // length is an ArrayLength result (>= 0), so a negative
            // index becomes a huge unsigned value and takes jae too.
            e.loadSlot(R::RAX, rec.a);
            size_t before = e.size();
            e.aluRegSlot(X64Emitter::Alu::Cmp, R::RAX, rec.b, true);
            e.jccLabel(CC::AE,
                       raiseTo(ExcKind::ArrayIndexOutOfBounds, rec));
            size_t emitted = e.size() - before;
            TRAPJIT_ASSERT(emitted == kNativeBoundCheckBytes,
                           "bound check drifted from check_bytes.h");
            boundBytes += emitted;
            break;
          }

          case Opcode::GetField: {
            e.loadSlot(R::RAX, rec.a);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.loadHeap32Sx(R::RCX, R::RAX,
                               static_cast<int32_t>(rec.imm));
            else
                e.loadHeap64(R::RCX, R::RAX,
                             static_cast<int32_t>(rec.imm));
            endSite(begin, i);
            e.storeSlot(rec.dst, R::RCX);
            break;
          }
          case Opcode::PutField: {
            e.loadSlot(R::RAX, rec.a);
            e.loadSlot(R::RCX, rec.b);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.storeHeap32(R::RAX, static_cast<int32_t>(rec.imm),
                              R::RCX);
            else
                e.storeHeap64(R::RAX, static_cast<int32_t>(rec.imm),
                              R::RCX);
            endSite(begin, i);
            if (options.recordTrace)
                callHelper(pTraceField, static_cast<uint32_t>(i));
            break;
          }
          case Opcode::ArrayLength: {
            e.loadSlot(R::RAX, rec.a);
            uint32_t begin = beginSite();
            e.loadHeap32Sx(R::RCX, R::RAX,
                           static_cast<int32_t>(kArrayLengthOffset));
            endSite(begin, i);
            e.storeSlot(rec.dst, R::RCX);
            break;
          }
          case Opcode::ArrayLoad: {
            e.loadSlot(R::RAX, rec.a);
            e.leaHostAddr(R::RAX, R::RAX);
            e.loadSlotSx32(R::RCX, rec.b);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.loadIndexed32Sx(R::RDX, R::RAX, R::RCX, 4,
                                  kArrayDataOffset);
            else
                e.loadIndexed64(R::RDX, R::RAX, R::RCX, 8,
                                kArrayDataOffset);
            endSite(begin, i);
            e.storeSlot(rec.dst, R::RDX);
            break;
          }
          case Opcode::ArrayStore: {
            e.loadSlot(R::RAX, rec.a);
            e.leaHostAddr(R::RAX, R::RAX);
            e.loadSlotSx32(R::RCX, rec.b);
            e.loadSlot(R::RDX, rec.c);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.storeIndexed32(R::RAX, R::RCX, 4, kArrayDataOffset,
                                 R::RDX);
            else
                e.storeIndexed64(R::RAX, R::RCX, 8, kArrayDataOffset,
                                 R::RDX);
            endSite(begin, i);
            if (options.recordTrace)
                callHelper(pTraceArray, static_cast<uint32_t>(i));
            break;
          }

          case Opcode::NewObject:
            callHelper(pNewObject, static_cast<uint32_t>(i));
            checkStatus(rec);
            break;
          case Opcode::NewArray:
            callHelper(pNewArray, static_cast<uint32_t>(i));
            checkStatus(rec);
            break;
          case Opcode::Call:
            if (!tiered) {
                callHelper(&trapjitNativeCall, static_cast<uint32_t>(i));
                checkStatus(rec);
                break;
            }
            // Tiered call: stage the arguments contiguously at the
            // frame pool top (that region becomes the callee's slot
            // file), then issue a patchable rel32 call.  Unlinked
            // sites target a per-site stub that tail-jumps into the
            // slow-call helper; the registry retargets static sites
            // straight at the callee's block when it publishes.
            e.storeCtx64(kNativeCtxBudgetOffset, R::R14);
            e.loadCtx64(R::RAX, kNativeCtxPoolTopOffset);
            for (uint32_t k = 0; k < rec.argsCount; ++k) {
                e.loadSlot(R::RCX, df.argPool[rec.argsBegin + k]);
                e.storeMemDisp64(R::RAX, static_cast<int32_t>(k * 8),
                                 R::RCX);
            }
            // Counted here (caller side, before resolution) to mirror
            // the interpreter's ++calls in its Call handler; the
            // engine folds linkedCalls into stats after every root.
            e.incCtx64(kNativeCtxLinkedCallsOffset);
            e.movRegReg(R::RDI, R::R12);
            e.movRegReg(R::RSI, R::RAX);
            e.movRegReg(R::RDX, R::R13);
            // Pad so the rel32 field is 4-byte aligned: link/unlink is
            // then a single atomic 32-bit store.
            while ((e.size() + 1) % 4 != 0)
                e.nop();
            {
                int stub = e.newLabel();
                size_t slotAt = e.callLabelSlot(stub);
                callStubs.push_back(
                    TieredCallStub{stub, static_cast<uint32_t>(i)});
                callSlots.push_back(NativeCallSlot{
                    static_cast<uint32_t>(slotAt), 0,
                    rec.callKind == CallKind::Static
                        ? static_cast<FunctionId>(rec.imm)
                        : kNoFunction});
            }
            // The callee (or helper) left its status in rax; save it
            // across the movabs below, restore this frame's identity,
            // then store the return value — every path arranges
            // ctx->retBits so the unconditional store is correct (a
            // null-receiver-skipped virtual call reloads the old dst).
            e.movRegReg(R::RCX, R::RAX);
            e.loadCtx64(R::R14, kNativeCtxBudgetOffset);
            e.storeCtx64(kNativeCtxActiveSlotsOffset, R::RBX);
            e.movRegImm64(R::RAX, reinterpret_cast<uint64_t>(&df));
            e.storeCtx64(kNativeCtxActiveDfOffset, R::RAX);
            {
                int l = e.newLabel();
                statuses.push_back(StatusStub{l, rec.tryRegion});
                e.testRegReg(R::RCX, R::RCX, false);
                e.jccLabel(CC::NE, l);
            }
            if (rec.dst != kNoValue) {
                e.loadCtx64(R::RAX, kNativeCtxRetOffset);
                e.storeSlot(rec.dst, R::RAX);
            }
            break;

          case Opcode::Jump:
            e.jmpLabel(recLabel[rec.target]);
            break;
          case Opcode::Branch:
            e.loadSlot(R::RAX, rec.a);
            e.testRegReg(R::RAX, R::RAX, true);
            e.jccLabel(CC::NE, recLabel[rec.target]);
            e.jmpLabel(recLabel[rec.target2]);
            break;
          case Opcode::IfNull:
            e.loadSlot(R::RAX, rec.a);
            e.testRegReg(R::RAX, R::RAX, true);
            e.jccLabel(CC::E, recLabel[rec.target]);
            e.jmpLabel(recLabel[rec.target2]);
            break;
          case Opcode::Return:
            if (rec.a != kNoValue) {
                e.loadSlot(R::RAX, rec.a);
                e.storeCtx64(kNativeCtxRetOffset, R::RAX);
            } else if (tiered) {
                // The tiered context persists across frames; a void
                // return must not leak the previous callee's retBits
                // (classic mode gets this for free from its fresh
                // per-root context).
                e.movRegImm32(R::RAX, 0);
                e.storeCtx64(kNativeCtxRetOffset, R::RAX);
            }
            e.jmpLabel(lReturn);
            break;
          case Opcode::Throw:
            e.storeCtx32Imm(kNativeCtxPendingKindOffset,
                            static_cast<uint32_t>(rec.imm));
            e.storeCtx32Imm(kNativeCtxPendingSiteOffset, rec.site);
            e.movRegImm32(R::RSI, rec.tryRegion);
            e.jmpLabel(lDispatch);
            break;
          case Opcode::Nop:
            break;
          default:
            TRAPJIT_PANIC("unreachable: opcode scan missed a case");
        }
    }
    const size_t hotEnd = e.size();

    // ---- shared stubs --------------------------------------------------
    // Exception dispatch: esi = the raising record's try region,
    // pending kind/site already stored.  The handler index indirects
    // through the in-buffer table of absolute record addresses.
    e.bind(lDispatch);
    e.movRegReg(R::RDI, R::R12);
    e.movRegImm64(R::RAX, reinterpret_cast<uint64_t>(pFindHandler));
    e.callReg(R::RAX);
    e.cmpRegImm8(R::RAX, -1, false);
    e.jccLabel(CC::E, lUnwind);
    e.movsxdRegReg(R::RAX, R::RAX); // canonicalize the int32 return
    size_t tablePatchAt = e.movRegImm64Patchable(R::RCX);
    e.loadIndexed64(R::RAX, R::RCX, R::RAX, 8, 0);
    e.jmpReg(R::RAX);

    // A fused compare-branch subtracts 2, so r14 lands on -1 or -2;
    // clamp to the single-dec value before the shared fault path.
    e.bind(lBudgetFused);
    e.aluRegImm32(X64Emitter::Alu::Or, R::R14, -1, true);
    e.bind(lBudget);
    // r14 is -1 here; storing it makes the engine's stats sync read
    // max+1, matching the interpreters' fault-instruction accounting.
    e.storeCtx64(kNativeCtxBudgetOffset, R::R14);
    e.movRegReg(R::RDI, R::R12);
    e.movRegImm32(R::RSI, 0);
    e.movRegImm64(R::RAX, helperAddr(pBudgetFault));
    e.callReg(R::RAX);
    e.jmpLabel(lUnwind);

    for (const StatusStub &s : statuses) {
        e.bind(s.label);
        if (tiered) {
            // Tiered helpers report hard faults through the context
            // flag (status is only 0/1); a set flag unwinds the whole
            // linked chain of frames.
            e.cmpCtx32Imm8(kNativeCtxHardFaultOffset, 0);
            e.jccLabel(CC::NE, lUnwind);
        } else {
            e.cmpRegImm8(R::RAX, 1, false);
            e.jccLabel(CC::NE, lUnwind); // status 2: hard unwind
        }
        e.movRegImm32(R::RSI, s.tryRegion);
        e.jmpLabel(lDispatch);
    }

    if (tiered) {
        // Per-site slow stubs: rdi (ctx) is still live from the call
        // sequence; replace the staged-args pointer in rsi with the
        // record index and tail-jump — the helper returns straight to
        // the call site.
        for (const TieredCallStub &s : callStubs) {
            e.bind(s.label);
            e.movRegImm32(R::RSI, s.recIndex);
            e.movRegImm64(R::RAX, helperAddr(&trapjitTieredSlowCall));
            e.jmpReg(R::RAX);
        }
        // Depth/pool bail: the prologue already decremented
        // depthRemaining and published activeDf, so the shared
        // epilogue rebalances both and the fault helper can name this
        // callee.  poolTop still holds the caller's value (== rbx), so
        // the epilogue's restore is a no-op.
        e.bind(lDepthBail);
        e.movRegReg(R::RDI, R::R12);
        e.movRegImm32(R::RSI, 0);
        e.movRegImm64(R::RAX, helperAddr(&trapjitTieredDepthFault));
        e.callReg(R::RAX);
        e.jmpLabel(lUnwind);
        e.bind(lPoolBail);
        e.movRegReg(R::RDI, R::R12);
        e.movRegImm32(R::RSI, 0);
        e.movRegImm64(R::RAX, helperAddr(&trapjitTieredPoolFault));
        e.callReg(R::RAX);
        e.jmpLabel(lUnwind);
    }
    for (const RaiseStub &s : raises) {
        e.bind(s.label);
        e.storeCtx32Imm(kNativeCtxPendingKindOffset,
                        static_cast<uint32_t>(s.kind));
        e.storeCtx32Imm(kNativeCtxPendingSiteOffset, s.site);
        e.movRegImm32(R::RSI, s.tryRegion);
        e.jmpLabel(lDispatch);
    }

    e.bind(lReturn);
    e.movRegImm32(R::RAX, 0);
    e.jmpLabel(lPop);
    e.bind(lUnwind);
    e.movRegImm32(R::RAX, 1);
    e.bind(lPop);
    if (tiered) {
        // This frame's base is exactly the caller's pool top (the
        // staged-args region), so one store releases the slot file.
        e.storeCtx64(kNativeCtxPoolTopOffset, R::RBX);
        e.incCtx64(kNativeCtxDepthRemainingOffset);
    }
    e.storeCtx64(kNativeCtxBudgetOffset, R::R14);
    e.popReg(R::R15);
    e.popReg(R::R14);
    e.popReg(R::R13);
    e.popReg(R::R12);
    e.popReg(R::RBX);
    e.ret();

    e.patchLabels();

    // ---- install -------------------------------------------------------
    const size_t codeSize = e.size();
    const size_t tableOffset = (codeSize + 7) & ~size_t(7);
    CodeBuffer buf =
        globalCodeBufferPool().acquire(tableOffset + 8 * nrec);
    uint8_t *base = buf.base();
    std::memcpy(base, e.code().data(), codeSize);

    auto nc = std::make_shared<NativeCode>(std::move(buf));
    nc->codeSize = codeSize;
    nc->recordOffsets.resize(nrec + 1);
    for (size_t i = 0; i < nrec; ++i)
        nc->recordOffsets[i] = e.labelOffset(recLabel[i]);
    nc->recordOffsets[nrec] = static_cast<uint32_t>(hotEnd);
    for (NativeTrapSite &s : sites)
        s.resumeNext = nc->recordOffsets[s.recordIndex + 1];
    nc->sites = std::move(sites);
    nc->explicitNullCheckBytes = explicitBytes;
    nc->implicitNullCheckBytes = implicitBytes;
    nc->boundCheckBytes = boundBytes;
    nc->explicitChecksCompiled = explicitCount;
    nc->implicitChecksCompiled = implicitCount;
    nc->checksEliminated = eliminatedCount;
    if (tiered) {
        nc->tiered = true;
        nc->unwindOffset = e.labelOffset(lUnwind);
        for (size_t k = 0; k < callSlots.size(); ++k)
            callSlots[k].stubOffset = e.labelOffset(callStubs[k].label);
        nc->callSlots = std::move(callSlots);
    }

    uint64_t tableBase = reinterpret_cast<uint64_t>(base) + tableOffset;
    std::memcpy(base + tablePatchAt, &tableBase, sizeof(tableBase));
    for (size_t i = 0; i < nrec; ++i) {
        uint64_t entry = reinterpret_cast<uint64_t>(base) +
                         nc->recordOffsets[i];
        std::memcpy(base + tableOffset + 8 * i, &entry, sizeof(entry));
    }

    if (tiered)
        nc->buffer.finalizePatchable();
    else
        nc->buffer.finalize();
    out.code = std::move(nc);
    return out;
}

} // namespace trapjit
