#ifndef TRAPJIT_CODEGEN_NATIVE_NATIVE_COMPILER_H_
#define TRAPJIT_CODEGEN_NATIVE_NATIVE_COMPILER_H_

/**
 * @file
 * The native x86-64 baseline tier: lowers a DecodedFunction into real,
 * executable machine code with the paper's hardware-trap implicit null
 * checks.
 *
 * Design (see DESIGN.md section 11 for the full story):
 *
 *  - Slot-resident baseline: every IR value lives at [rbx + id*8] in
 *    the frame's slot array; no value is cached in a register across
 *    record boundaries.  That makes *every* record boundary a safe
 *    re-entry point, which is what lets the trap wrapper resume
 *    execution at the next record after a null-access trap without any
 *    state reconstruction.
 *  - Register convention: rbx = Slot*, r12 = NativeContext*, r13 =
 *    heap host bias (host address of simulated address 0); rax, rcx,
 *    rdx and xmm0/xmm1 are per-record scratch.
 *  - Every record starts with the instruction-budget preamble
 *    (dec r14; js <budget stub>), kNativeBudgetPreambleBytes
 *    long.  An *implicit null check compiles to exactly those bytes
 *    and nothing else* — the check itself is zero instructions; the
 *    following memory access faults on the heap guard page instead.
 *    Explicit checks compile to test+jz (kNativeExplicitNullCheckBytes
 *    of hot-path compare-and-branch, asserted against
 *    codegen/check_bytes.h on every emission).
 *  - Memory accesses record a TrapSite covering the single faulting
 *    instruction; the SIGSEGV path maps the fault PC back to the
 *    record (codegen/native/native_runtime.h).
 *  - Java-level exceptions dispatch through one shared stub that calls
 *    trapjitNativeFindHandler and indirect-jumps through an in-buffer
 *    table of absolute record addresses.
 *
 * Functions containing anything the tier cannot lower (none on
 * x86-64/Linux today, every srcOp is covered — but the set is checked,
 * and non-x86-64 hosts reject everything) compile to "unsupported" and
 * execute on the fast interpreter instead (NativeEngine's per-function
 * fallback).
 */

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/native/code_buffer.h"
#include "interp/decoded_program.h"
#include "ir/function.h"
#include "support/hash.h"

namespace trapjit
{

struct NativeContext;

/** dec r14; js <stub> — every record's budget preamble. */
constexpr size_t kNativeBudgetPreambleBytes = 9;

/** Fault-PC map entry: one guarded memory-access instruction. */
struct NativeTrapSite
{
    uint32_t accessBegin = 0; ///< code offset of the faulting insn
    uint32_t accessEnd = 0;
    uint32_t recordIndex = 0; ///< DecodedFunction::code index
    uint32_t resumeNext = 0;  ///< code offset of the next record
    /**
     * Index into NativeCode::deopts, or -1 in the baseline backend.
     * Optimized-backend traps never resume in native code; the engine
     * deopts the frame into the fast interpreter at the record named
     * by the deopt info instead.
     */
    int32_t deoptIndex = -1;
};

/**
 * Deopt metadata of one optimized-backend trap site: where the fast
 * interpreter picks the frame up, and how to reconstruct the
 * interpreter's budget from the register-resident r14 value the trap
 * captured (the optimized backend pre-charges whole straight-line runs,
 * so at a trap r14 has already paid for records the interpreter has
 * yet to re-charge; see DESIGN.md section 15).
 */
struct NativeDeoptInfo
{
    /** Record the interpreter re-executes (the speculated access's
     *  guarding NullCheck for speculated sites, the faulting record
     *  itself otherwise). */
    uint32_t deoptRecord = 0;
    /** Records pre-charged at/after @p deoptRecord in its budget run:
     *  budget at deopt = trapped r14 + budgetAdjust. */
    uint32_t budgetAdjust = 0;
    /** True when the access ran *above* its guarding explicit
     *  NullCheck (the paper's section 5.4 speculation). */
    bool speculated = false;
};

/** Register home of one IR value in an optimized-backend function. */
struct NativeRegLoc
{
    uint32_t value = 0; ///< DecodedFunction value id
    uint8_t reg = 0;    ///< X64Reg hardware encoding
};

/**
 * One patchable call displacement in a tiered block.  The rel32 field
 * at @p rel32Offset is 4-byte aligned (the compiler NOP-pads to make
 * it so) and initially resolves to the per-site slow stub at
 * @p stubOffset; the code registry retargets it with a single aligned
 * 32-bit release store when @p callee publishes, and back again on
 * invalidation.  Both targets are valid at every instant.
 */
struct NativeCallSlot
{
    uint32_t rel32Offset = 0; ///< offset of the 4-byte displacement
    uint32_t stubOffset = 0;  ///< the slow stub this site falls back to
    FunctionId callee = kNoFunction; ///< kNoFunction = never patched
};

/** Compiled form of one function. */
struct NativeCode
{
    /**
     * Entry protocol: (ctx, slots, heapHostBase, resume).  A null
     * resume starts at the first record; a non-null one (produced by
     * the trap wrapper) jumps straight to that in-buffer address.
     * Returns 0 when the frame returned (value in ctx->retBits), 1
     * when it unwound (pending exception in ctx, or ctx->hardFault).
     */
    using EntryFn = uint32_t (*)(NativeContext *, void *, uint8_t *,
                                 const void *);

    /**
     * Tiered entry protocol: (ctx, frameBase, heapHostBase).  No
     * resume parameter and no sigsetjmp wrapper — the SIGSEGV handler
     * resumes tiered frames in place by rewriting RIP.  Returns 0 when
     * the frame returned (value in ctx->retBits), 1 when it unwound
     * (pending exception in ctx, or ctx->hardFault set).
     */
    using TieredEntryFn = uint32_t (*)(NativeContext *, void *,
                                       uint8_t *);

    CodeBuffer buffer;
    size_t codeSize = 0; ///< instruction bytes (table excluded)
    std::vector<uint32_t> recordOffsets; ///< per record, + end sentinel
    std::vector<NativeTrapSite> sites;   ///< sorted by accessBegin

    // ---- optimized-backend extras (empty/zero in baseline) ----------
    /** Compiled by the optimized (regalloc + speculation) backend. */
    bool optimized = false;
    /** Deopt records, indexed by NativeTrapSite::deoptIndex and by the
     *  in-code deopt stubs (via NativeContext::deoptRecord). */
    std::vector<NativeDeoptInfo> deopts;
    /** Register homes assigned by linear scan (audited; the write-
     *  through discipline keeps slots canonical regardless). */
    std::vector<NativeRegLoc> regLocs;
    size_t loadsSpeculated = 0; ///< section 5.4 hoisted loads
    size_t spillsEmitted = 0;   ///< ranked values left slot-resident
    size_t regsAllocated = 0;   ///< values given register homes

    // ---- tiered-mode extras (empty/zero in classic mode) ------------
    bool tiered = false;
    /** Code offset of the shared hard-unwind exit (RIP rewrite). */
    uint32_t unwindOffset = 0;
    /** Static-call sites the registry may link/unlink. */
    std::vector<NativeCallSlot> callSlots;

    // Check-size accounting, asserted against codegen/check_bytes.h.
    size_t explicitNullCheckBytes = 0;
    size_t implicitNullCheckBytes = 0;
    size_t boundCheckBytes = 0;
    size_t explicitChecksCompiled = 0;
    size_t implicitChecksCompiled = 0;
    /**
     * Checked accesses whose null + bound checks were dropped entirely
     * because an earlier access of the same (ref, index) pair provably
     * re-executes first on every path (Section 4's elimination, applied
     * at the quad level).  Zero bytes in both check flavors.
     */
    size_t checksEliminated = 0;

    explicit NativeCode(CodeBuffer buf) : buffer(std::move(buf)) {}

    /** Returns the buffer to the global CodeBufferPool.  Callers only
     *  destroy a NativeCode once no thread can still execute it (the
     *  registry graveyard enforces that for tiered blocks). */
    ~NativeCode();

    NativeCode(const NativeCode &) = delete;
    NativeCode &operator=(const NativeCode &) = delete;

    EntryFn
    entry() const
    {
        return reinterpret_cast<EntryFn>(buffer.base());
    }

    TieredEntryFn
    tieredEntry() const
    {
        return reinterpret_cast<TieredEntryFn>(buffer.base());
    }

    /** Site whose [accessBegin, accessEnd) contains @p off, or null. */
    const NativeTrapSite *findSite(uint32_t off) const;
};

/** Knobs that change the emitted code (part of the cache key). */
struct NativeCompileOptions
{
    /** Emit event-trace recording after heap stores. */
    bool recordTrace = true;
    /**
     * Tiered lowering: the no-sigsetjmp entry ABI, pool-staged call
     * arguments, patchable rel32 call slots and the in-block unwind
     * exit (see DESIGN.md section 14).  Tiered blocks bake the
     * DecodedFunction address into the code, so they must never go
     * into the content-addressed NativeCodeCache — the code registry
     * owns them together with a keepalive of the decoded function.
     */
    bool tiered = false;
    /**
     * Optimized backend: linear-scan register allocation over the
     * callee-saved + caller-saved GPR file, batched budget runs, and
     * deopt side-exits instead of in-code exception dispatch (see
     * DESIGN.md section 15).  Mutually exclusive with @p tiered.
     */
    bool optimized = false;
    /** Hoist loads above their guarding explicit null checks (section
     *  5.4).  Only read when @p optimized is set. */
    bool speculate = true;
};

/** What compiling one function produced. */
struct NativeCompileResult
{
    std::shared_ptr<const NativeCode> code; ///< null when unsupported
    std::string unsupportedReason;          ///< why, when null
};

/**
 * Lower @p df (the decoded form of @p fn) to machine code.  Never
 * throws for unsupported input — it reports the reason so the engine
 * can fall back per function.
 */
NativeCompileResult compileNative(const Function &fn,
                                  const DecodedFunction &df,
                                  const NativeCompileOptions &options);

/**
 * The optimized backend: lower @p df with linear-scan register
 * allocation, batched budget runs and section-5.4 load speculation.
 * Called by compileNative when options.optimized is set; exposed for
 * tests.  Same fallback contract as compileNative.
 */
NativeCompileResult
compileNativeOptimized(const Function &fn, const DecodedFunction &df,
                       const NativeCompileOptions &options);

/** True when this build can execute natively compiled code at all. */
constexpr bool
nativeTierSupported()
{
#if defined(__x86_64__) && defined(__linux__)
    return true;
#else
    return false;
#endif
}

/**
 * Content address of the native code of @p fn: the decoded-program key
 * (which already covers the serialized function, target and fusion
 * flag) extended with the native compile options.  Equal keys imply
 * bit-identical machine code up to load addresses.
 */
Hash128 nativeCodeKey(const Function &fn, const Target &target,
                      const DecodeOptions &decode_options,
                      const NativeCompileOptions &native_options);

/**
 * Thread-safe content-addressed store of compiled native code, shared
 * between the compile service (pre-compilation) and engines.  First
 * writer wins.  A lookup miss after an insert of an *unsupported*
 * function is recorded too, so callers don't recompile known-bad
 * functions: unsupported entries store a null code pointer.
 */
class NativeCodeCache
{
  public:
    struct Entry
    {
        std::shared_ptr<const NativeCode> code; ///< null = unsupported
        std::string unsupportedReason;
    };

    /** Returns nullptr when the key was never inserted. */
    std::shared_ptr<const Entry>
    lookup(const Hash128 &key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        return it == entries_.end() ? nullptr : it->second;
    }

    std::shared_ptr<const Entry>
    insert(const Hash128 &key, NativeCompileResult result)
    {
        auto entry = std::make_shared<Entry>(
            Entry{std::move(result.code),
                  std::move(result.unsupportedReason)});
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = entries_.emplace(key, std::move(entry));
        return it->second;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<Hash128, std::shared_ptr<const Entry>,
                       Hash128Hasher>
        entries_;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_NATIVE_COMPILER_H_
