#include "codegen/native/native_engine.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "interp/java_semantics.h"
#include "jit/timing.h"
#include "support/diagnostics.h"

namespace trapjit
{

NativeEngine::NativeEngine(const Module &mod, const Target &target,
                           InterpOptions options,
                           std::shared_ptr<DecodedProgramCache> decoded_cache,
                           DecodeOptions decode_options,
                           std::shared_ptr<NativeCodeCache> native_cache,
                           NativeEngineOptions engine_options)
    : mod_(mod), target_(target), options_(options),
      decodeOptions_(decode_options),
      engineOptions_(std::move(engine_options)),
      nativeCache_(native_cache ? std::move(native_cache)
                                : std::make_shared<NativeCodeCache>()),
      // Always hand the fallback interpreter a DecodedProgramCache:
      // the per-function fallback and compileNative then share one
      // decode per function, and an externally shared cache (compile
      // service, tier controller, sibling engines) makes that decode
      // happen at most once per process instead of once per engine.
      fi_(mod, target, options,
          decoded_cache ? std::move(decoded_cache)
                        : std::make_shared<DecodedProgramCache>(),
          decode_options)
{
    nativeOptions_.recordTrace = options.recordTrace;
    NativeBackend backend = engineOptions_.backend;
    if (backend == NativeBackend::FromEnv) {
        const char *env = std::getenv("TRAPJIT_NATIVE_BACKEND");
        backend = (env != nullptr && std::strcmp(env, "optimized") == 0)
                      ? NativeBackend::Optimized
                      : NativeBackend::Baseline;
    }
    if (backend == NativeBackend::Optimized) {
        nativeOptions_.optimized = true;
        if (engineOptions_.speculate >= 0) {
            nativeOptions_.speculate = engineOptions_.speculate != 0;
        } else {
            const char *spec = std::getenv("TRAPJIT_SPECULATE");
            nativeOptions_.speculate =
                !(spec != nullptr && std::strcmp(spec, "0") == 0);
        }
    }
    if (nativeTierSupported()) {
        nativeInstallSegvHandler();
        handlerInstalled_ = true;
    }
}

NativeEngine::~NativeEngine()
{
    if (handlerInstalled_)
        nativeUninstallSegvHandler();
}

void
NativeEngine::reset()
{
    fi_.reset();
    hardFaultPending_ = false;
    hardFaultMsg_.clear();
    deoptsTaken_ = 0;
}

void
NativeEngine::addOptimizedCounters(ServiceCounters &c) const
{
    c.functionsRegalloc += functionsRegalloc_;
    c.spillsEmitted += spillsEmitted_;
    c.loadsSpeculated += loadsSpeculated_;
    c.deoptsTaken += deoptsTaken_;
    c.regallocSeconds += regallocSeconds_;
}

void
NativeEngine::parkHardFault(std::string msg)
{
    if (!hardFaultPending_) {
        hardFaultPending_ = true;
        hardFaultMsg_ = std::move(msg);
    }
}

const NativeCodeCache::Entry &
NativeEngine::ensureCompiled(FunctionId id)
{
    if (compiled_.size() <= id)
        compiled_.resize(mod_.numFunctions());
    if (!compiled_[id]) {
        if (engineOptions_.nativeFilter && !engineOptions_.nativeFilter(id)) {
            // Engine-local decision; keep it out of the shared cache.
            compiled_[id] = std::make_shared<NativeCodeCache::Entry>(
                NativeCodeCache::Entry{nullptr,
                                       "filtered out by engine options"});
            return *compiled_[id];
        }
        const Function &fn = mod_.function(id);
        Hash128 key =
            nativeCodeKey(fn, target_, decodeOptions_, nativeOptions_);
        if (auto hit = nativeCache_->lookup(key)) {
            compiled_[id] = std::move(hit);
        } else {
            Stopwatch watch;
            NativeCompileResult result =
                compileNative(fn, fi_.decoded(id), nativeOptions_);
            if (result.code) {
                double elapsed = watch.elapsed();
                fi_.stats_.nativeCompileSeconds += elapsed;
                ++fi_.stats_.functionsNativeCompiled;
                if (result.code->optimized) {
                    ++functionsRegalloc_;
                    spillsEmitted_ += result.code->spillsEmitted;
                    loadsSpeculated_ += result.code->loadsSpeculated;
                    regallocSeconds_ += elapsed;
                }
            }
            compiled_[id] = nativeCache_->insert(key, std::move(result));
        }
    }
    return *compiled_[id];
}

const NativeCode *
NativeEngine::nativeCode(FunctionId id)
{
    return ensureCompiled(id).code.get();
}

std::string
NativeEngine::unsupportedReason(FunctionId id)
{
    return ensureCompiled(id).unsupportedReason;
}

ExecResult
NativeEngine::run(FunctionId func, const std::vector<RuntimeValue> &args)
{
    hardFaultPending_ = false;
    hardFaultMsg_.clear();

    const DecodedFunction &df = fi_.decoded(func);
    const Function &fn = mod_.function(func);

    std::vector<Slot> argv(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        switch (fn.value(static_cast<ValueId>(i)).type) {
          case Type::F64: argv[i].f = args[i].f; break;
          case Type::Ref: argv[i].ref = args[i].ref; break;
          default: argv[i].i = args[i].i; break;
        }
    }

    FrameResult frame = callFrame(func, std::move(argv), 0);
    if (hardFaultPending_)
        throw HardFault(hardFaultMsg_);

    ExecResult result;
    if (frame.exc.pending()) {
        result.outcome = ExecResult::Outcome::Threw;
        result.exception = frame.exc.kind;
        fi_.trace_.recordEscapedException(frame.exc.kind);
    } else {
        result.outcome = ExecResult::Outcome::Returned;
        switch (df.returnType) {
          case Type::F64: result.value.f = frame.value.f; break;
          case Type::Ref: result.value.ref = frame.value.ref; break;
          case Type::Void: break;
          default: result.value.i = frame.value.i; break;
        }
    }
    result.stats = fi_.stats_;
    return result;
}

NativeEngine::FrameResult
NativeEngine::callFrame(FunctionId id, std::vector<Slot> args, size_t depth)
{
    const NativeCodeCache::Entry &entry = ensureCompiled(id);
    if (entry.code) {
        if (entry.code->optimized)
            return optimizedInvokeFrame(fi_.decoded(id), *entry.code,
                                        std::move(args), depth);
        return nativeInvokeFrame(fi_.decoded(id), *entry.code,
                                 std::move(args), depth);
    }
    // Fallback: the whole subtree below this frame runs interpreted.
    // execFrame can throw HardFault; when native frames sit above us on
    // the C++ stack the throw must not cross their JIT frames, so it is
    // parked here and rethrown by run().
    try {
        return fi_.execFrame(fi_.decoded(id), std::move(args), depth);
    } catch (const HardFault &fault) {
        parkHardFault(fault.what());
        return FrameResult{};
    }
}

uint32_t
NativeEngine::decideNullAccess(NativeContext &ctx, const DecodedInst &d)
{
    if (d.flags & kDecodedSpeculative) {
        if (d.flags & kDecodedSpecSafe) {
            ++fi_.stats_.speculativeReadsOfNull;
            return 0;
        }
        parkHardFault("speculative access through null is not safe on " +
                      target_.name + " (site " + std::to_string(d.site) +
                      ")");
        return 2;
    }
    if (d.flags & kDecodedExceptionSite) {
        if (d.flags & kDecodedTrapCovered) {
            ++fi_.stats_.trapsTaken;
            ctx.pendingKind =
                static_cast<int32_t>(ExcKind::NullPointer);
            ctx.pendingSite = d.site;
            return 1;
        }
        if (d.flags & kDecodedIllegalZero)
            return 0;
        parkHardFault("implicit check at site " + std::to_string(d.site) +
                      " is not trap-covered on " + target_.name);
        return 2;
    }
    parkHardFault(std::string("unchecked null dereference: ") +
                  opcodeName(d.srcOp) + " at site " +
                  std::to_string(d.site));
    return 2;
}

NativeEngine::FrameResult
NativeEngine::nativeInvokeFrame(const DecodedFunction &df,
                                const NativeCode &nc,
                                std::vector<Slot> args, size_t depth)
{
    if (depth > options_.maxCallDepth) {
        parkHardFault("call depth limit exceeded in " + df.name);
        return FrameResult{};
    }
    TRAPJIT_ASSERT(args.size() == df.numParams,
                   "bad argument count calling ", df.name);

    std::vector<Slot> regs(df.numValues);
    for (size_t i = 0; i < args.size(); ++i)
        regs[i] = args[i];

    NativeContext ctx;
    ctx.budgetRemaining =
        static_cast<int64_t>(options_.maxInstructions) -
        static_cast<int64_t>(fi_.stats_.instructions);
    NativeFrame frame{&df, &nc, regs.data(), nullptr};
    ctx.frame = &frame;
    ctx.engine = this;
    ctx.depth = static_cast<uint32_t>(depth);

    NativeActivation act;
    act.codeLo = reinterpret_cast<uintptr_t>(nc.buffer.base());
    act.codeHi = act.codeLo + nc.codeSize;
    act.guardLo = fi_.heap_.guardLo();
    act.guardHi = fi_.heap_.guardHi();

    const void *resume = nullptr;
    uint32_t status;
    for (;;) {
        nativePushActivation(&act);
        if (sigsetjmp(act.jmp, 1) == 0) {
            status = nc.entry()(&ctx, regs.data(), fi_.heap_.hostBase(),
                                resume);
            nativePopActivation(&act);
            break;
        }
        nativePopActivation(&act);

        // The budget count was register-resident (r14) at the fault;
        // write it back so the stats sync below sees it and so the
        // prologue's reload hands it to the resumed code.
        ctx.budgetRemaining = act.faultBudget;

        // A hardware trap.  Map the fault PC to the guarded access; a
        // PC outside any trap site, or a site whose reference operand
        // is not actually null, means the code itself is broken — the
        // native analogue of the interpreters' FAULT paths.
        const NativeTrapSite *site =
            nc.findSite(static_cast<uint32_t>(act.faultPc - act.codeLo));
        const DecodedInst *rec =
            site ? &df.code[site->recordIndex] : nullptr;
        if (rec == nullptr || regs[rec->a].ref != 0) {
            parkHardFault("wild native memory access in " + df.name);
            status = 1;
            break;
        }

        uint32_t decision = decideNullAccess(ctx, *rec);
        if (decision == 2) {
            status = 1;
            break;
        }
        // Loads (and ArrayLength) substitute the zero the interpreter
        // writes through handleNullAccess's return value — including
        // on the trap-NPE path, where the write precedes dispatch.
        if (rec->dst != kNoValue &&
            (rec->srcOp == Opcode::GetField ||
             rec->srcOp == Opcode::ArrayLength ||
             rec->srcOp == Opcode::ArrayLoad))
            regs[rec->dst] = Slot{};
        if (decision == 1) {
            int32_t handler = nativeFindHandlerIndex(
                df, rec->tryRegion, ExcKind::NullPointer);
            if (handler < 0) {
                status = 1; // frame throws; pending already in ctx
                break;
            }
            ctx.pendingKind = 0;
            ctx.pendingSite = 0;
            resume = nc.buffer.base() + nc.recordOffsets[handler];
        } else {
            resume = nc.buffer.base() + site->resumeNext;
        }
    }

    fi_.stats_.instructions =
        static_cast<uint64_t>(
            static_cast<int64_t>(options_.maxInstructions) -
            ctx.budgetRemaining);

    FrameResult result;
    if (status == 0) {
        result.value.bits = ctx.retBits;
    } else if (!hardFaultPending_ && ctx.pendingKind != 0) {
        result.exc = ThrownExc{static_cast<ExcKind>(ctx.pendingKind),
                               static_cast<SiteId>(ctx.pendingSite)};
    }
    return result;
}

NativeEngine::FrameResult
NativeEngine::optimizedInvokeFrame(const DecodedFunction &df,
                                   const NativeCode &nc,
                                   std::vector<Slot> args, size_t depth)
{
    if (depth > options_.maxCallDepth) {
        parkHardFault("call depth limit exceeded in " + df.name);
        return FrameResult{};
    }
    TRAPJIT_ASSERT(args.size() == df.numParams,
                   "bad argument count calling ", df.name);

    std::vector<Slot> regs(df.numValues);
    for (size_t i = 0; i < args.size(); ++i)
        regs[i] = args[i];

    NativeContext ctx;
    ctx.budgetRemaining =
        static_cast<int64_t>(options_.maxInstructions) -
        static_cast<int64_t>(fi_.stats_.instructions);
    NativeFrame frame{&df, &nc, regs.data(), nullptr};
    ctx.frame = &frame;
    ctx.engine = this;
    ctx.depth = static_cast<uint32_t>(depth);

    NativeActivation act;
    act.codeLo = reinterpret_cast<uintptr_t>(nc.buffer.base());
    act.codeHi = act.codeLo + nc.codeSize;
    act.guardLo = fi_.heap_.guardLo();
    act.guardHi = fi_.heap_.guardHi();

    // Single-shot: a guard trap never resumes native code here.  The
    // write-through register allocator keeps the slot file canonical at
    // every record boundary, so a speculated load's fault (or any cold
    // path) becomes a deopt — the run's pre-charged budget is refunded
    // and the frame replays on the fast interpreter from the check
    // record.  Statuses 2 and 3 are the stub-side equivalents.
    uint32_t status;
    nativePushActivation(&act);
    if (sigsetjmp(act.jmp, 1) == 0) {
        status =
            nc.entry()(&ctx, regs.data(), fi_.heap_.hostBase(), nullptr);
        nativePopActivation(&act);
    } else {
        nativePopActivation(&act);
        const NativeTrapSite *site =
            nc.findSite(static_cast<uint32_t>(act.faultPc - act.codeLo));
        const DecodedInst *rec =
            site ? &df.code[site->recordIndex] : nullptr;
        if (rec == nullptr || site->deoptIndex < 0 ||
            regs[rec->a].ref != 0) {
            ctx.budgetRemaining = act.faultBudget;
            parkHardFault("wild native memory access in " + df.name);
            status = 1;
        } else {
            const NativeDeoptInfo &info =
                nc.deopts[static_cast<size_t>(site->deoptIndex)];
            ctx.budgetRemaining = act.faultBudget + info.budgetAdjust;
            ctx.deoptRecord = info.deoptRecord;
            status = 2;
        }
    }

    fi_.stats_.instructions =
        static_cast<uint64_t>(
            static_cast<int64_t>(options_.maxInstructions) -
            ctx.budgetRemaining);

    if (status == 2 || status == 3) {
        ++deoptsTaken_;
        ThrownExc pend;
        if (status == 3) {
            pend = ThrownExc{static_cast<ExcKind>(ctx.pendingKind),
                             static_cast<SiteId>(ctx.pendingSite)};
        }
        // The slot file is canonical (write-through homes) and the
        // deopt stub refunded every un-retired record, so the
        // interpreter replay is exact: budget faults, traps and
        // null-access decisions land on the same records with the same
        // messages as a pure interpreter run.
        try {
            return fi_.resumeFrame(df, std::move(regs), depth,
                                   ctx.deoptRecord, pend);
        } catch (const HardFault &fault) {
            parkHardFault(fault.what());
            return FrameResult{};
        }
    }

    FrameResult result;
    if (status == 0) {
        result.value.bits = ctx.retBits;
    } else if (!hardFaultPending_ && ctx.pendingKind != 0) {
        result.exc = ThrownExc{static_cast<ExcKind>(ctx.pendingKind),
                               static_cast<SiteId>(ctx.pendingSite)};
    }
    return result;
}

// ---- helpers called from JIT code -----------------------------------
// None of these may throw: they run below frames with no unwind info.

uint32_t
NativeEngine::helperNewObject(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.frame->df->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.frame->slots);
    ++fi_.stats_.allocations;
    Address ref = heap().allocateObject(static_cast<ClassId>(rec.imm),
                                        rec.imm2);
    if (ref == 0) {
        ctx.pendingKind = static_cast<int32_t>(ExcKind::OutOfMemory);
        ctx.pendingSite = rec.site;
        return 1;
    }
    fi_.trace_.recordAllocation(ref, static_cast<uint64_t>(rec.imm2));
    r[rec.dst].ref = ref;
    return 0;
}

uint32_t
NativeEngine::helperNewArray(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.frame->df->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.frame->slots);
    int64_t len = static_cast<int32_t>(r[rec.a].i);
    if (len < 0) {
        ctx.pendingKind =
            static_cast<int32_t>(ExcKind::NegativeArraySize);
        ctx.pendingSite = rec.site;
        return 1;
    }
    ++fi_.stats_.allocations;
    Address ref =
        heap().allocateArray(rec.type, static_cast<int32_t>(len));
    if (ref == 0) {
        ctx.pendingKind = static_cast<int32_t>(ExcKind::OutOfMemory);
        ctx.pendingSite = rec.site;
        return 1;
    }
    fi_.trace_.recordAllocation(
        ref, static_cast<uint64_t>(len) * typeSize(rec.type));
    r[rec.dst].ref = ref;
    return 0;
}

uint32_t
NativeEngine::helperCall(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedFunction &df = *ctx.frame->df;
    const DecodedInst &rec = df.code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.frame->slots);

    // The instruction budget lives in the context while native code
    // runs; hand it back to the stats block around the callee (both
    // engines account there), then reload.
    fi_.stats_.instructions =
        static_cast<uint64_t>(
            static_cast<int64_t>(options_.maxInstructions) -
            ctx.budgetRemaining);

    ++fi_.stats_.calls;
    const ValueId *cargs = df.argPool.data() + rec.argsBegin;
    FunctionId callee = kNoFunction;
    if (rec.callKind == CallKind::Virtual) {
        Address recv = r[cargs[0]].ref;
        if (recv == 0)
            return decideNullAccess(ctx, rec); // call skipped on 0
        ClassId cid = heap().classOf(recv);
        if (cid >= mod_.numClasses()) {
            parkHardFault("corrupt object header");
            return 2;
        }
        const auto &vtable = mod_.cls(cid).vtable;
        if (static_cast<size_t>(rec.imm) >= vtable.size()) {
            parkHardFault("vtable slot out of range");
            return 2;
        }
        callee = vtable[rec.imm];
    } else {
        if (rec.callKind == CallKind::Special && r[cargs[0]].ref == 0) {
            parkHardFault("special call with null receiver (site " +
                          std::to_string(rec.site) + ")");
            return 2;
        }
        callee = static_cast<FunctionId>(rec.imm);
    }
    if (callee == kNoFunction || callee >= mod_.numFunctions()) {
        parkHardFault("call target unresolved");
        return 2;
    }

    std::vector<Slot> argv;
    argv.reserve(rec.argsCount);
    for (uint32_t k = 0; k < rec.argsCount; ++k)
        argv.push_back(r[cargs[k]]);
    FrameResult sub = callFrame(callee, std::move(argv), ctx.depth + 1);

    ctx.budgetRemaining =
        static_cast<int64_t>(options_.maxInstructions) -
        static_cast<int64_t>(fi_.stats_.instructions);
    if (hardFaultPending_)
        return 2;
    if (sub.exc.pending()) {
        ctx.pendingKind = static_cast<int32_t>(sub.exc.kind);
        ctx.pendingSite = sub.exc.site;
        return 1;
    }
    if (rec.dst != kNoValue)
        r[rec.dst] = sub.value;
    return 0;
}

uint32_t
NativeEngine::helperMath(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.frame->df->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.frame->slots);
    switch (rec.srcOp) {
      case Opcode::FExp: r[rec.dst].f = std::exp(r[rec.a].f); break;
      case Opcode::FSin: r[rec.dst].f = std::sin(r[rec.a].f); break;
      case Opcode::FCos: r[rec.dst].f = std::cos(r[rec.a].f); break;
      case Opcode::FLog: r[rec.dst].f = std::log(r[rec.a].f); break;
      case Opcode::F2I: {
        int64_t v = javaF2I(r[rec.a].f);
        r[rec.dst].i = (rec.flags & kDecodedNarrowDst)
                           ? static_cast<int32_t>(v)
                           : v;
        break;
      }
      default:
        TRAPJIT_PANIC("bad math helper opcode");
    }
    return 0;
}

uint32_t
NativeEngine::helperTraceFieldWrite(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.frame->df->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.frame->slots);
    Address addr = r[rec.a].ref + static_cast<Address>(rec.imm);
    switch (rec.type) {
      case Type::I32:
        fi_.trace_.recordWrite(
            addr,
            static_cast<uint32_t>(static_cast<int32_t>(r[rec.b].i)), 4);
        break;
      case Type::I64:
        fi_.trace_.recordWrite(addr, static_cast<uint64_t>(r[rec.b].i),
                               8);
        break;
      case Type::F64:
        fi_.trace_.recordWrite(addr, std::bit_cast<uint64_t>(r[rec.b].f),
                               8);
        break;
      case Type::Ref:
        fi_.trace_.recordWrite(addr, r[rec.b].ref, 8);
        break;
      default:
        TRAPJIT_PANIC("bad putfield type");
    }
    return 0;
}

uint32_t
NativeEngine::helperTraceArrayWrite(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.frame->df->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.frame->slots);
    int64_t idx = static_cast<int32_t>(r[rec.b].i);
    Address addr = r[rec.a].ref + kArrayDataOffset +
                   static_cast<Address>(idx) * typeSize(rec.type);
    switch (rec.type) {
      case Type::I32:
        fi_.trace_.recordWrite(
            addr,
            static_cast<uint32_t>(static_cast<int32_t>(r[rec.c].i)), 4);
        break;
      case Type::I64:
        fi_.trace_.recordWrite(addr, static_cast<uint64_t>(r[rec.c].i),
                               8);
        break;
      case Type::F64:
        fi_.trace_.recordWrite(addr, std::bit_cast<uint64_t>(r[rec.c].f),
                               8);
        break;
      case Type::Ref:
        fi_.trace_.recordWrite(addr, r[rec.c].ref, 8);
        break;
      default:
        TRAPJIT_PANIC("bad element type");
    }
    return 0;
}

uint32_t
NativeEngine::helperBudgetFault(NativeContext &ctx, uint32_t)
{
    parkHardFault("instruction budget exceeded in " +
                  ctx.frame->df->name);
    return 2;
}

// ---- extern "C" trampolines the compiler takes the address of -------

extern "C" uint32_t
trapjitNativeNewObject(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperNewObject(*ctx, rec);
}

extern "C" uint32_t
trapjitNativeNewArray(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperNewArray(*ctx, rec);
}

extern "C" uint32_t
trapjitNativeCall(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperCall(*ctx, rec);
}

extern "C" uint32_t
trapjitNativeMath(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperMath(*ctx, rec);
}

extern "C" uint32_t
trapjitNativeTraceFieldWrite(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperTraceFieldWrite(*ctx, rec);
}

extern "C" uint32_t
trapjitNativeTraceArrayWrite(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperTraceArrayWrite(*ctx, rec);
}

extern "C" uint32_t
trapjitNativeBudgetFault(NativeContext *ctx, uint32_t rec)
{
    return ctx->engine->helperBudgetFault(*ctx, rec);
}

} // namespace trapjit
