#ifndef TRAPJIT_CODEGEN_NATIVE_NATIVE_ENGINE_H_
#define TRAPJIT_CODEGEN_NATIVE_NATIVE_ENGINE_H_

/**
 * @file
 * The execution engine of the native x86-64 tier.
 *
 * NativeEngine mirrors the Interpreter / FastInterpreter surface (run /
 * heap / trace / stats / reset) and executes each function either as
 * compiled machine code (codegen/native/native_compiler.h) or — when
 * the function is unsupported, filtered out, or the host is not
 * x86-64/Linux — on an embedded FastInterpreter, per function, sharing
 * one heap, one event trace and one statistics block, so mixed native /
 * interpreted call stacks observe a single coherent world.
 *
 * Semantics contract: outcome, typed return value, exception kind,
 * observable event trace and final heap digest are bit-identical to the
 * interpreters (tests/test_native_differential.cpp enforces it across
 * every config arm).  The cycle cost model is *not* simulated — this
 * tier measures real time — and the engine-side dynamic counters
 * (dispatches, check counts) are not maintained by native code.
 *
 * HardFault discipline: compiled frames carry no C++ unwind tables, so
 * nothing may throw across them.  Any miscompilation detected while
 * native frames are on the stack is *parked* (first message wins), the
 * native frames unwind via their status-code exit, and run() rethrows
 * the parked HardFault with the interpreter-identical message.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "codegen/native/native_compiler.h"
#include "codegen/native/native_runtime.h"
#include "interp/fast_interpreter.h"
#include "jit/stats.h"

namespace trapjit
{

/** Which native lowering the engine compiles with. */
enum class NativeBackend : uint8_t
{
    /** Resolve from TRAPJIT_NATIVE_BACKEND ("optimized" selects the
     *  optimized backend, anything else — including unset — the
     *  baseline); TRAPJIT_SPECULATE=0 then disables section-5.4 load
     *  speculation within the optimized backend. */
    FromEnv,
    Baseline,  ///< slot-resident tier (native_compiler.cpp)
    Optimized, ///< regalloc + speculation (optimized_compiler.cpp)
};

/** Engine-level knobs (testing hooks, not part of the cache key). */
struct NativeEngineOptions
{
    /**
     * When set, functions for which this returns false execute on the
     * fast-interpreter fallback even though they compile fine — the
     * mixed-dispatch differential tests force arbitrary native /
     * interpreted call-stack interleavings with it.
     */
    std::function<bool(FunctionId)> nativeFilter;
    /** Backend selection; resolved once in the constructor. */
    NativeBackend backend = NativeBackend::FromEnv;
    /**
     * Section-5.4 load speculation override for the optimized backend:
     * -1 follows TRAPJIT_SPECULATE (default on), 0 forces it off, 1
     * forces it on.  Ignored under the baseline backend.
     */
    int speculate = -1;
};

/** Executes a module with the native tier (+ per-function fallback). */
class NativeEngine
{
  public:
    NativeEngine(const Module &mod, const Target &target,
                 InterpOptions options = {},
                 std::shared_ptr<DecodedProgramCache> decoded_cache = nullptr,
                 DecodeOptions decode_options = {},
                 std::shared_ptr<NativeCodeCache> native_cache = nullptr,
                 NativeEngineOptions engine_options = {});
    ~NativeEngine();

    NativeEngine(const NativeEngine &) = delete;
    NativeEngine &operator=(const NativeEngine &) = delete;

    /** Execute @p func with @p args; resets nothing between calls. */
    ExecResult run(FunctionId func, const std::vector<RuntimeValue> &args);

    Heap &heap() { return fi_.heap(); }
    EventTrace &trace() { return fi_.trace(); }
    const ExecStats &stats() const { return fi_.stats(); }

    /** Clear heap, trace and statistics (compiled code is kept). */
    void reset();

    /**
     * The machine code @p id executes (compiling on demand), or null
     * when the function runs on the fallback interpreter; test
     * introspection (check-byte assertions, fallback coverage).
     */
    const NativeCode *nativeCode(FunctionId id);

    /** Why @p id is not native ("" when it is). */
    std::string unsupportedReason(FunctionId id);

    /** Deopt side-exits taken since construction / the last reset(). */
    size_t deoptsTaken() const { return deoptsTaken_; }

    /**
     * Fold this engine's optimized-backend totals into @p c: compile
     * side (functionsRegalloc / spillsEmitted / loadsSpeculated /
     * regallocSeconds, counted on native-cache misses like
     * functionsNativeCompiled) and runtime deoptsTaken.
     */
    void addOptimizedCounters(ServiceCounters &c) const;

    // ---- internal protocol, called by the extern "C" JIT helpers ----
    uint32_t helperNewObject(NativeContext &ctx, uint32_t rec);
    uint32_t helperNewArray(NativeContext &ctx, uint32_t rec);
    uint32_t helperCall(NativeContext &ctx, uint32_t rec);
    uint32_t helperMath(NativeContext &ctx, uint32_t rec);
    uint32_t helperTraceFieldWrite(NativeContext &ctx, uint32_t rec);
    uint32_t helperTraceArrayWrite(NativeContext &ctx, uint32_t rec);
    uint32_t helperBudgetFault(NativeContext &ctx, uint32_t rec);

  private:
    using Slot = FastInterpreter::Slot;
    using FrameResult = FastInterpreter::FrameResult;

    /**
     * Dispatch one frame: native when @p id compiled, fast-interpreter
     * fallback otherwise.  Never throws — HardFaults are parked.
     */
    FrameResult callFrame(FunctionId id, std::vector<Slot> args,
                          size_t depth);

    /**
     * Run one compiled frame inside the sigsetjmp trap-recovery loop;
     * applies the interpreter's null-access decision table to guard
     * faults and resumes at the next record / the catch handler.
     */
    FrameResult nativeInvokeFrame(const DecodedFunction &df,
                                  const NativeCode &nc,
                                  std::vector<Slot> args, size_t depth);

    /**
     * Run one optimized-backend frame.  Single-shot sigsetjmp: a trap
     * never resumes native code — it becomes a deopt, and the frame
     * continues on the fast interpreter (FastInterpreter::resumeFrame)
     * with the canonical slot file.  Entry statuses: 0 = returned,
     * 1 = unwound (pending exception or parked HardFault), 2 = deopt,
     * replay ctx->deoptRecord, 3 = deopt, dispatch the pending
     * exception from ctx->deoptRecord's try region (the record was
     * already retired by its helper).
     */
    FrameResult optimizedInvokeFrame(const DecodedFunction &df,
                                     const NativeCode &nc,
                                     std::vector<Slot> args,
                                     size_t depth);

    /**
     * FastInterpreter::handleNullAccess, native calling convention:
     * 0 = continue (silent zero), 1 = NPE pending in @p ctx, 2 = hard
     * unwind (message parked).  Shared by the trap wrapper and the
     * call helper (null virtual receiver).
     */
    uint32_t decideNullAccess(NativeContext &ctx, const DecodedInst &d);

    /** Park @p msg as the run's HardFault (first message wins). */
    void parkHardFault(std::string msg);

    /** Compiled entry for @p id (compiling/caching on demand). */
    const NativeCodeCache::Entry &ensureCompiled(FunctionId id);

    const Module &mod_;
    const Target &target_;
    InterpOptions options_;
    DecodeOptions decodeOptions_;
    NativeCompileOptions nativeOptions_;
    NativeEngineOptions engineOptions_;
    std::shared_ptr<NativeCodeCache> nativeCache_;
    std::vector<std::shared_ptr<const NativeCodeCache::Entry>> compiled_;
    FastInterpreter fi_; ///< fallback engine and shared heap/trace/stats
    bool handlerInstalled_ = false;
    bool hardFaultPending_ = false;
    std::string hardFaultMsg_;

    // ---- optimized-backend counters ---------------------------------
    // Compile-side totals accumulate on native-cache misses (mirroring
    // functionsNativeCompiled); deoptsTaken_ is a runtime statistic and
    // clears with reset() like the ExecStats block.
    size_t deoptsTaken_ = 0;
    size_t functionsRegalloc_ = 0;
    size_t spillsEmitted_ = 0;
    size_t loadsSpeculated_ = 0;
    double regallocSeconds_ = 0.0;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_NATIVE_ENGINE_H_
