#ifndef TRAPJIT_CODEGEN_NATIVE_NATIVE_MUTATION_HOOKS_H_
#define TRAPJIT_CODEGEN_NATIVE_NATIVE_MUTATION_HOOKS_H_

/**
 * @file
 * Test-only fault injection for the optimized native backend.
 *
 * auditNativeTrapSites grew regalloc and speculation obligations
 * alongside the optimized backend; as with the optimizer mutations in
 * opt/nullcheck/mutation_hooks.h, the auditor's test suite must prove
 * the new rules actually fire.  Each enumerator switches on one
 * deliberate, realistic backend bug — wrong deopt target, dropped
 * speculation marker, corrupt register home — and
 * tests/test_audit_mutations.cpp asserts the auditor flags each one.
 *
 * Thread-local so an armed mutation cannot leak into concurrently
 * compiling service threads; production code never sets it, and the
 * checks sit on the install path (not in emission inner loops), so the
 * disarmed cost is a thread-local load per compile.
 */

namespace trapjit
{

enum class NativeMutation
{
    None,

    /** A speculated site's deopt record points past its guarding
     *  NullCheck instead of at it, so a trap would resume *after* the
     *  check it was supposed to replay. */
    SpecWrongDeoptRecord,
    /** A speculated site forgets it is speculated: the deopt record
     *  stays on the hoisted access, silently skipping the check. */
    SpecDropFlag,
    /** Linear scan publishes a register home on a reserved register
     *  (r14, the budget), aliasing an IR value with the VM state. */
    RegLocReservedReg,
};

/** The mutation armed on this thread (tests only; defaults to None). */
inline NativeMutation &
activeNativeMutation()
{
    thread_local NativeMutation active = NativeMutation::None;
    return active;
}

inline bool
nativeMutationActive(NativeMutation m)
{
    return activeNativeMutation() == m;
}

/** RAII arm/disarm so a failing test cannot leave a mutation armed. */
class ScopedNativeMutation
{
  public:
    explicit ScopedNativeMutation(NativeMutation m)
    {
        activeNativeMutation() = m;
    }
    ~ScopedNativeMutation()
    {
        activeNativeMutation() = NativeMutation::None;
    }
    ScopedNativeMutation(const ScopedNativeMutation &) = delete;
    ScopedNativeMutation &
    operator=(const ScopedNativeMutation &) = delete;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_NATIVE_MUTATION_HOOKS_H_
