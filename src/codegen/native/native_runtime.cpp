#include "codegen/native/native_runtime.h"

#include <csignal>
#include <cstring>
#include <mutex>

#if defined(__x86_64__) && defined(__linux__)
#include <ucontext.h>
#endif

#include "runtime/signal_stack.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

thread_local NativeActivation *t_activation = nullptr;

std::mutex g_installMutex;
int g_installCount = 0;
struct sigaction g_prevAction;

void
chainToPrevious(int signo, siginfo_t *info, void *context)
{
    if (g_prevAction.sa_flags & SA_SIGINFO) {
        if (g_prevAction.sa_sigaction != nullptr)
            g_prevAction.sa_sigaction(signo, info, context);
        return;
    }
    if (g_prevAction.sa_handler == SIG_IGN)
        return;
    if (g_prevAction.sa_handler != SIG_DFL) {
        g_prevAction.sa_handler(signo);
        return;
    }
    signal(signo, SIG_DFL);
    raise(signo);
}

void
nativeSegvHandler(int signo, siginfo_t *info, void *context)
{
#if defined(__x86_64__) && defined(__linux__)
    NativeActivation *act = t_activation;
    if (act != nullptr) {
        ucontext_t *uc = static_cast<ucontext_t *>(context);
        uintptr_t pc =
            static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
        if (pc >= act->codeLo && pc < act->codeHi) {
            uintptr_t fault = reinterpret_cast<uintptr_t>(info->si_addr);
            act->faultPc = pc;
            act->faultAddr = fault;
            // The budget count lives in r14 while JIT code runs; the
            // wrapper writes it back to the context before resuming.
            act->faultBudget =
                static_cast<int64_t>(uc->uc_mcontext.gregs[REG_R14]);
            bool inGuard = fault >= act->guardLo && fault < act->guardHi;
            siglongjmp(act->jmp, inGuard ? 1 : 2);
        }
    }
#endif
    chainToPrevious(signo, info, context);
}

} // namespace

void
nativePushActivation(NativeActivation *act)
{
    act->prev = t_activation;
    t_activation = act;
}

void
nativePopActivation(NativeActivation *act)
{
    TRAPJIT_ASSERT(t_activation == act, "activation stack out of order");
    t_activation = act->prev;
}

void
nativeInstallSegvHandler()
{
    std::lock_guard<std::mutex> lock(g_installMutex);
    if (g_installCount++ > 0)
        return;
    ensureAltSignalStack();
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = nativeSegvHandler;
    action.sa_flags = SA_SIGINFO | SA_NODEFER | SA_ONSTACK;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGSEGV, &action, &g_prevAction) != 0)
        TRAPJIT_FATAL("sigaction(SIGSEGV) failed for the native tier");
}

void
nativeUninstallSegvHandler()
{
    std::lock_guard<std::mutex> lock(g_installMutex);
    TRAPJIT_ASSERT(g_installCount > 0, "unbalanced handler uninstall");
    if (--g_installCount == 0)
        sigaction(SIGSEGV, &g_prevAction, nullptr);
}

int32_t
nativeFindHandlerIndex(const DecodedFunction &df, TryRegionId region,
                       ExcKind kind)
{
    for (TryRegionId rr = region; rr != 0; rr = df.tryRegions[rr].parent) {
        const DecodedTryRegion &r = df.tryRegions[rr];
        if (r.catches == ExcKind::CatchAll || r.catches == kind)
            return static_cast<int32_t>(r.handlerIndex);
    }
    return -1;
}

extern "C" int32_t
trapjitNativeFindHandler(NativeContext *ctx, uint32_t tryRegion)
{
    const DecodedFunction &df = *ctx->frame->df;
    int32_t handler = nativeFindHandlerIndex(
        df, static_cast<TryRegionId>(tryRegion),
        static_cast<ExcKind>(ctx->pendingKind));
    if (handler >= 0) {
        ctx->pendingKind = 0;
        ctx->pendingSite = 0;
    }
    return handler;
}

} // namespace trapjit
