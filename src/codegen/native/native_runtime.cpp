#include "codegen/native/native_runtime.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <mutex>

#if defined(__x86_64__) && defined(__linux__)
#include <ucontext.h>
#endif

#include "codegen/native/native_compiler.h"
#include "runtime/signal_stack.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

thread_local NativeActivation *t_activation = nullptr;
thread_local TieredRun *t_tieredRun = nullptr;

std::mutex g_installMutex;
int g_installCount = 0;
struct sigaction g_prevAction;

void
chainToPrevious(int signo, siginfo_t *info, void *context)
{
    if (g_prevAction.sa_flags & SA_SIGINFO) {
        if (g_prevAction.sa_sigaction != nullptr)
            g_prevAction.sa_sigaction(signo, info, context);
        return;
    }
    if (g_prevAction.sa_handler == SIG_IGN)
        return;
    if (g_prevAction.sa_handler != SIG_DFL) {
        g_prevAction.sa_handler(signo);
        return;
    }
    signal(signo, SIG_DFL);
    raise(signo);
}

#if defined(__x86_64__) && defined(__linux__)
/**
 * Resolve a fault whose PC lies inside a published tiered block: the
 * in-signal-handler equivalent of NativeEngine's trap wrapper.  All
 * decisions mirror FastInterpreter::handleNullAccess bit for bit; the
 * outcome is a rewritten REG_RIP (resume, catch handler, or the
 * block's unwind exit) — no siglongjmp, no per-frame setup.
 * Everything here is async-signal-safe: binary search, flag tests and
 * plain stores; messages are built later, engine-side, from the
 * parked (code, record, function) triple.
 */
void
resolveTieredFault(const TieredRun &run, const TieredBlockRange &blk,
                   ucontext_t *uc, siginfo_t *info)
{
    greg_t *gregs = uc->uc_mcontext.gregs;
    NativeContext *ctx =
        reinterpret_cast<NativeContext *>(gregs[REG_R12]);
    uint64_t *slots = reinterpret_cast<uint64_t *>(gregs[REG_RBX]);
    uintptr_t pc = static_cast<uintptr_t>(gregs[REG_RIP]);
    uintptr_t fault = reinterpret_cast<uintptr_t>(info->si_addr);
    const NativeCode &nc = *blk.nc;
    const DecodedFunction &df = *blk.df;

    const NativeTrapSite *site =
        nc.findSite(static_cast<uint32_t>(pc - blk.lo));
    const DecodedInst *rec =
        site != nullptr ? &df.code[site->recordIndex] : nullptr;

    auto park = [&](TieredPark code) {
        ctx->parkCode = static_cast<int32_t>(code);
        ctx->parkRec = site != nullptr ? site->recordIndex : 0;
        ctx->parkDf = &df;
        ctx->hardFault = 1;
        gregs[REG_RIP] =
            static_cast<greg_t>(blk.lo + nc.unwindOffset);
    };

    bool inGuard = fault >= run.guardLo && fault < run.guardHi;
    if (!inGuard || rec == nullptr || slots[rec->a] != 0) {
        park(TieredPark::Wild);
        return;
    }
    // Loads (and ArrayLength) substitute the zero the interpreter
    // writes through handleNullAccess's return value — including on
    // the trap-NPE path, where the write precedes dispatch.
    auto zeroDst = [&]() {
        if (rec->dst != kNoValue &&
            (rec->srcOp == Opcode::GetField ||
             rec->srcOp == Opcode::ArrayLength ||
             rec->srcOp == Opcode::ArrayLoad))
            slots[rec->dst] = 0;
    };
    if (rec->flags & kDecodedSpeculative) {
        if (rec->flags & kDecodedSpecSafe) {
            ++*run.specReads;
            zeroDst();
            gregs[REG_RIP] =
                static_cast<greg_t>(blk.lo + site->resumeNext);
        } else {
            park(TieredPark::SpecUnsafe);
        }
        return;
    }
    if (rec->flags & kDecodedExceptionSite) {
        if (rec->flags & kDecodedTrapCovered) {
            ++*run.trapsTaken;
            zeroDst();
            int32_t handler = nativeFindHandlerIndex(
                df, rec->tryRegion, ExcKind::NullPointer);
            if (handler >= 0) {
                gregs[REG_RIP] = static_cast<greg_t>(
                    blk.lo + nc.recordOffsets[handler]);
            } else {
                ctx->pendingKind =
                    static_cast<int32_t>(ExcKind::NullPointer);
                ctx->pendingSite = rec->site;
                gregs[REG_RIP] =
                    static_cast<greg_t>(blk.lo + nc.unwindOffset);
            }
            return;
        }
        if (rec->flags & kDecodedIllegalZero) {
            zeroDst();
            gregs[REG_RIP] =
                static_cast<greg_t>(blk.lo + site->resumeNext);
            return;
        }
        park(TieredPark::NotTrapCovered);
        return;
    }
    park(TieredPark::Unchecked);
}
#endif

void
nativeSegvHandler(int signo, siginfo_t *info, void *context)
{
#if defined(__x86_64__) && defined(__linux__)
    if (const TieredRun *run = t_tieredRun; run != nullptr) {
        ucontext_t *uc = static_cast<ucontext_t *>(context);
        uintptr_t pc =
            static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
        // Fresh acquire load per fault: a block published after this
        // root call started must still be recognized.
        const TieredPcMap *map =
            run->pcMap->load(std::memory_order_acquire);
        const TieredBlockRange *blk =
            map != nullptr ? map->find(pc) : nullptr;
        if (blk != nullptr) {
            resolveTieredFault(*run, *blk, uc, info);
            return;
        }
    }
    NativeActivation *act = t_activation;
    if (act != nullptr) {
        ucontext_t *uc = static_cast<ucontext_t *>(context);
        uintptr_t pc =
            static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
        if (pc >= act->codeLo && pc < act->codeHi) {
            uintptr_t fault = reinterpret_cast<uintptr_t>(info->si_addr);
            act->faultPc = pc;
            act->faultAddr = fault;
            // The budget count lives in r14 while JIT code runs; the
            // wrapper writes it back to the context before resuming.
            act->faultBudget =
                static_cast<int64_t>(uc->uc_mcontext.gregs[REG_R14]);
            bool inGuard = fault >= act->guardLo && fault < act->guardHi;
            siglongjmp(act->jmp, inGuard ? 1 : 2);
        }
    }
#endif
    chainToPrevious(signo, info, context);
}

} // namespace

void
nativePushActivation(NativeActivation *act)
{
    act->prev = t_activation;
    t_activation = act;
}

void
nativePopActivation(NativeActivation *act)
{
    TRAPJIT_ASSERT(t_activation == act, "activation stack out of order");
    t_activation = act->prev;
}

const TieredBlockRange *
TieredPcMap::find(uintptr_t pc) const
{
    auto it = std::upper_bound(
        blocks.begin(), blocks.end(), pc,
        [](uintptr_t p, const TieredBlockRange &b) { return p < b.lo; });
    if (it == blocks.begin())
        return nullptr;
    --it;
    return pc >= it->lo && pc < it->hi ? &*it : nullptr;
}

void
tieredEnterRun(TieredRun *run)
{
    run->prev = t_tieredRun;
    t_tieredRun = run;
}

void
tieredExitRun(TieredRun *run)
{
    TRAPJIT_ASSERT(t_tieredRun == run, "tiered run scope out of order");
    t_tieredRun = run->prev;
}

void
nativeInstallSegvHandler()
{
    std::lock_guard<std::mutex> lock(g_installMutex);
    if (g_installCount++ > 0)
        return;
    ensureAltSignalStack();
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = nativeSegvHandler;
    action.sa_flags = SA_SIGINFO | SA_NODEFER | SA_ONSTACK;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGSEGV, &action, &g_prevAction) != 0)
        TRAPJIT_FATAL("sigaction(SIGSEGV) failed for the native tier");
}

void
nativeUninstallSegvHandler()
{
    std::lock_guard<std::mutex> lock(g_installMutex);
    TRAPJIT_ASSERT(g_installCount > 0, "unbalanced handler uninstall");
    if (--g_installCount == 0)
        sigaction(SIGSEGV, &g_prevAction, nullptr);
}

int32_t
nativeFindHandlerIndex(const DecodedFunction &df, TryRegionId region,
                       ExcKind kind)
{
    for (TryRegionId rr = region; rr != 0; rr = df.tryRegions[rr].parent) {
        const DecodedTryRegion &r = df.tryRegions[rr];
        if (r.catches == ExcKind::CatchAll || r.catches == kind)
            return static_cast<int32_t>(r.handlerIndex);
    }
    return -1;
}

extern "C" int32_t
trapjitNativeFindHandler(NativeContext *ctx, uint32_t tryRegion)
{
    const DecodedFunction &df = *ctx->frame->df;
    int32_t handler = nativeFindHandlerIndex(
        df, static_cast<TryRegionId>(tryRegion),
        static_cast<ExcKind>(ctx->pendingKind));
    if (handler >= 0) {
        ctx->pendingKind = 0;
        ctx->pendingSite = 0;
    }
    return handler;
}

extern "C" int32_t
trapjitTieredFindHandler(NativeContext *ctx, uint32_t tryRegion)
{
    const DecodedFunction &df = *ctx->activeDf;
    int32_t handler = nativeFindHandlerIndex(
        df, static_cast<TryRegionId>(tryRegion),
        static_cast<ExcKind>(ctx->pendingKind));
    if (handler >= 0) {
        ctx->pendingKind = 0;
        ctx->pendingSite = 0;
    }
    return handler;
}

} // namespace trapjit
