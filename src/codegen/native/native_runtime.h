#ifndef TRAPJIT_CODEGEN_NATIVE_NATIVE_RUNTIME_H_
#define TRAPJIT_CODEGEN_NATIVE_NATIVE_RUNTIME_H_

/**
 * @file
 * Runtime support for the native x86-64 tier: the context block JIT
 * code addresses directly, the per-frame trap activation records, the
 * SIGSEGV handler that turns guard-page faults into exception
 * dispatch, and the out-of-line helpers compiled code calls for the
 * operations that stay in C++ (allocation, calls, trace recording,
 * libm).
 *
 * Protocol between JIT code and the helpers:
 *
 *  - every helper takes (NativeContext*, recordIndex) and returns a
 *    status: 0 = continue with the next record, 1 = a Java-level
 *    exception is pending in the context (the caller jumps to the
 *    in-code dispatch stub with the record's try region), 2 = hard
 *    unwind (HardFault recorded engine-side; the caller jumps to the
 *    frame's unwind exit).
 *  - helpers NEVER throw C++ exceptions: JIT frames carry no unwind
 *    tables, so a throw crossing them would terminate the process.
 *    HardFaults are parked in the engine and rethrown at the top of
 *    NativeEngine::run.
 *
 * Trap recovery: each native frame runs inside a sigsetjmp loop with a
 * NativeActivation on a thread-local stack.  The SIGSEGV handler
 * checks whether the faulting PC lies in the innermost activation's
 * code range; if so it records PC and fault address and siglongjmps
 * back (value 1 for a fault inside the heap guard region, 2 for any
 * other address).  The frame wrapper maps the PC to the faulting
 * record's trap site and applies the same null-access decision table
 * as the interpreters (FastInterpreter::handleNullAccess).  Faults
 * that don't match a trap site — or whose reference slot is not
 * actually null — are reported as a HardFault instead of corrupting
 * state.  The handler runs on a per-thread alternate stack
 * (runtime/signal_stack.h) and chains to the previously installed
 * handler for faults outside any activation.
 */

#include <csetjmp>
#include <cstdint>

#include "interp/decoded_program.h"
#include "ir/function.h"

namespace trapjit
{

class NativeEngine;
struct NativeCode;

/** Per-frame execution state the C++ helpers reach through. */
struct NativeFrame
{
    const DecodedFunction *df = nullptr;
    const NativeCode *nc = nullptr;
    void *slots = nullptr; ///< FastInterpreter::Slot[numValues]
    NativeFrame *parent = nullptr;
};

/**
 * The block JIT code addresses through r12.  The first 24 bytes are
 * the hot fields with hard-coded displacements (static_asserts below);
 * everything after is only touched from C++.
 */
struct NativeContext
{
    /** maxInstructions minus instructions retired; faults below zero. */
    int64_t budgetRemaining = 0;
    /** Return-value bits, written by compiled Return. */
    uint64_t retBits = 0;
    /** Pending exception (ExcKind as int32; 0 = none) + its site. */
    int32_t pendingKind = 0;
    uint32_t pendingSite = 0;

    // ---- cold, C++-only fields --------------------------------------
    NativeFrame *frame = nullptr;
    NativeEngine *engine = nullptr;
    uint32_t depth = 0;
    uint32_t hardFault = 0; ///< message parked in the engine
};

constexpr uint8_t kNativeCtxBudgetOffset = 0;
constexpr uint8_t kNativeCtxRetOffset = 8;
constexpr uint8_t kNativeCtxPendingKindOffset = 16;
constexpr uint8_t kNativeCtxPendingSiteOffset = 20;

static_assert(offsetof(NativeContext, budgetRemaining) ==
              kNativeCtxBudgetOffset);
static_assert(offsetof(NativeContext, retBits) == kNativeCtxRetOffset);
static_assert(offsetof(NativeContext, pendingKind) ==
              kNativeCtxPendingKindOffset);
static_assert(offsetof(NativeContext, pendingSite) ==
              kNativeCtxPendingSiteOffset);

/** One native frame's trap-recovery record (thread-local stack). */
struct NativeActivation
{
    sigjmp_buf jmp;
    uintptr_t codeLo = 0, codeHi = 0;   ///< this frame's code range
    uintptr_t guardLo = 0, guardHi = 0; ///< the heap guard region
    uintptr_t faultPc = 0, faultAddr = 0;
    /** r14 (the register-resident budget count) at the fault. */
    int64_t faultBudget = 0;
    NativeActivation *prev = nullptr;
};

/** Push/pop the calling thread's activation stack. */
void nativePushActivation(NativeActivation *act);
void nativePopActivation(NativeActivation *act);

/**
 * Install / remove the process-wide SIGSEGV handler (refcounted; the
 * previous disposition is restored when the last engine uninstalls).
 */
void nativeInstallSegvHandler();
void nativeUninstallSegvHandler();

/**
 * Walk @p df's try-region parent chain from @p region for an handler
 * catching @p kind; returns the handler's stream index or -1.  The
 * shared L_dispatch stub calls this (through trapjitNativeFindHandler)
 * and the trap wrapper calls it directly for trap NPEs.
 */
int32_t nativeFindHandlerIndex(const DecodedFunction &df,
                               TryRegionId region, ExcKind kind);

// ---- helpers called from JIT code (see protocol above) --------------
extern "C" {
uint32_t trapjitNativeNewObject(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeNewArray(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeCall(NativeContext *ctx, uint32_t rec);
/** FExp / FSin / FCos / FLog / F2I, switched on the record's srcOp. */
uint32_t trapjitNativeMath(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeTraceFieldWrite(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeTraceArrayWrite(NativeContext *ctx, uint32_t rec);
/** Budget exhausted: parks the HardFault message; always returns 2. */
uint32_t trapjitNativeBudgetFault(NativeContext *ctx, uint32_t rec);
/** Handler index for the pending exception, or -1 (clears pending). */
int32_t trapjitNativeFindHandler(NativeContext *ctx, uint32_t tryRegion);
}

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_NATIVE_RUNTIME_H_
