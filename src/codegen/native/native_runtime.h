#ifndef TRAPJIT_CODEGEN_NATIVE_NATIVE_RUNTIME_H_
#define TRAPJIT_CODEGEN_NATIVE_NATIVE_RUNTIME_H_

/**
 * @file
 * Runtime support for the native x86-64 tier: the context block JIT
 * code addresses directly, the per-frame trap activation records, the
 * SIGSEGV handler that turns guard-page faults into exception
 * dispatch, and the out-of-line helpers compiled code calls for the
 * operations that stay in C++ (allocation, calls, trace recording,
 * libm).
 *
 * Protocol between JIT code and the helpers:
 *
 *  - every helper takes (NativeContext*, recordIndex) and returns a
 *    status: 0 = continue with the next record, 1 = a Java-level
 *    exception is pending in the context (the caller jumps to the
 *    in-code dispatch stub with the record's try region), 2 = hard
 *    unwind (HardFault recorded engine-side; the caller jumps to the
 *    frame's unwind exit).
 *  - helpers NEVER throw C++ exceptions: JIT frames carry no unwind
 *    tables, so a throw crossing them would terminate the process.
 *    HardFaults are parked in the engine and rethrown at the top of
 *    NativeEngine::run.
 *
 * Trap recovery: each native frame runs inside a sigsetjmp loop with a
 * NativeActivation on a thread-local stack.  The SIGSEGV handler
 * checks whether the faulting PC lies in the innermost activation's
 * code range; if so it records PC and fault address and siglongjmps
 * back (value 1 for a fault inside the heap guard region, 2 for any
 * other address).  The frame wrapper maps the PC to the faulting
 * record's trap site and applies the same null-access decision table
 * as the interpreters (FastInterpreter::handleNullAccess).  Faults
 * that don't match a trap site — or whose reference slot is not
 * actually null — are reported as a HardFault instead of corrupting
 * state.  The handler runs on a per-thread alternate stack
 * (runtime/signal_stack.h) and chains to the previously installed
 * handler for faults outside any activation.
 */

#include <atomic>
#include <csetjmp>
#include <cstdint>
#include <vector>

#include "interp/decoded_program.h"
#include "ir/function.h"

namespace trapjit
{

class NativeEngine;
class TieredEngine;
struct NativeCode;

/** Per-frame execution state the C++ helpers reach through. */
struct NativeFrame
{
    const DecodedFunction *df = nullptr;
    const NativeCode *nc = nullptr;
    void *slots = nullptr; ///< FastInterpreter::Slot[numValues]
    NativeFrame *parent = nullptr;
};

/**
 * The block JIT code addresses through r12.  The first 80 bytes are
 * the hot fields with hard-coded displacements (static_asserts below);
 * everything after is only touched from C++.  The tiered tier's extra
 * fields (activeDf .. linkedCalls) are dead weight for the classic
 * per-frame native engine, which never reads them.
 */
struct NativeContext
{
    /** maxInstructions minus instructions retired; faults below zero. */
    int64_t budgetRemaining = 0;
    /** Return-value bits, written by compiled Return. */
    uint64_t retBits = 0;
    /** Pending exception (ExcKind as int32; 0 = none) + its site. */
    int32_t pendingKind = 0;
    uint32_t pendingSite = 0;
    /** Message parked in the engine; tiered status stubs test this. */
    uint32_t hardFault = 0;
    uint32_t pad_ = 0;
    /** Function owning the currently executing tiered block. */
    const DecodedFunction *activeDf = nullptr;
    /** Slot base (rbx) of the currently executing tiered frame. */
    void *activeSlots = nullptr;
    /** Frame-pool bump pointer / limit (tiered frames only). */
    uint8_t *poolTop = nullptr;
    uint8_t *poolEnd = nullptr;
    /** maxCallDepth + 1 minus current depth; faults below zero. */
    int64_t depthRemaining = 0;
    /** Calls retired by linked tiered code since the last sync. */
    uint64_t linkedCalls = 0;
    /**
     * Record index the optimized backend's deopt stubs leave behind:
     * where the fast interpreter should pick the frame up (entry
     * status 2 = re-execute that record, 3 = dispatch the pending
     * exception from its try region without re-executing).
     */
    uint32_t deoptRecord = 0;
    uint32_t pad2_ = 0;

    // ---- cold, C++-only fields --------------------------------------
    NativeFrame *frame = nullptr;
    NativeEngine *engine = nullptr;
    TieredEngine *tieredEngine = nullptr;
    uint32_t depth = 0;
    /** TieredPark reason left by the SIGSEGV handler (0 = none). */
    int32_t parkCode = 0;
    /** Record index of the parked fault inside parkDf. */
    uint32_t parkRec = 0;
    const DecodedFunction *parkDf = nullptr;
};

constexpr uint8_t kNativeCtxBudgetOffset = 0;
constexpr uint8_t kNativeCtxRetOffset = 8;
constexpr uint8_t kNativeCtxPendingKindOffset = 16;
constexpr uint8_t kNativeCtxPendingSiteOffset = 20;
constexpr uint8_t kNativeCtxHardFaultOffset = 24;
constexpr uint8_t kNativeCtxActiveDfOffset = 32;
constexpr uint8_t kNativeCtxActiveSlotsOffset = 40;
constexpr uint8_t kNativeCtxPoolTopOffset = 48;
constexpr uint8_t kNativeCtxPoolEndOffset = 56;
constexpr uint8_t kNativeCtxDepthRemainingOffset = 64;
constexpr uint8_t kNativeCtxLinkedCallsOffset = 72;
constexpr uint8_t kNativeCtxDeoptRecordOffset = 80;

static_assert(offsetof(NativeContext, budgetRemaining) ==
              kNativeCtxBudgetOffset);
static_assert(offsetof(NativeContext, retBits) == kNativeCtxRetOffset);
static_assert(offsetof(NativeContext, pendingKind) ==
              kNativeCtxPendingKindOffset);
static_assert(offsetof(NativeContext, pendingSite) ==
              kNativeCtxPendingSiteOffset);
static_assert(offsetof(NativeContext, hardFault) ==
              kNativeCtxHardFaultOffset);
static_assert(offsetof(NativeContext, activeDf) ==
              kNativeCtxActiveDfOffset);
static_assert(offsetof(NativeContext, activeSlots) ==
              kNativeCtxActiveSlotsOffset);
static_assert(offsetof(NativeContext, poolTop) ==
              kNativeCtxPoolTopOffset);
static_assert(offsetof(NativeContext, poolEnd) ==
              kNativeCtxPoolEndOffset);
static_assert(offsetof(NativeContext, depthRemaining) ==
              kNativeCtxDepthRemainingOffset);
static_assert(offsetof(NativeContext, linkedCalls) ==
              kNativeCtxLinkedCallsOffset);
static_assert(offsetof(NativeContext, deoptRecord) ==
              kNativeCtxDeoptRecordOffset);

/** One native frame's trap-recovery record (thread-local stack). */
struct NativeActivation
{
    sigjmp_buf jmp;
    uintptr_t codeLo = 0, codeHi = 0;   ///< this frame's code range
    uintptr_t guardLo = 0, guardHi = 0; ///< the heap guard region
    uintptr_t faultPc = 0, faultAddr = 0;
    /** r14 (the register-resident budget count) at the fault. */
    int64_t faultBudget = 0;
    NativeActivation *prev = nullptr;
};

/** Push/pop the calling thread's activation stack. */
void nativePushActivation(NativeActivation *act);
void nativePopActivation(NativeActivation *act);

// ---- tiered-tier trap recovery --------------------------------------
//
// Tiered blocks do NOT run under a per-frame sigsetjmp: the handler
// resolves the fault in place and rewrites RIP to the resume point (or
// the block's unwind exit), so a hot tiered call chain pays zero
// setup per frame.  The handler reaches everything it needs through
// the faulting thread's TieredRun descriptor plus the pinned registers
// (r12 = NativeContext*, rbx = current frame's Slot*).

/** One published tiered block's code range (for fault-PC lookup). */
struct TieredBlockRange
{
    uintptr_t lo = 0;
    uintptr_t hi = 0;
    const NativeCode *nc = nullptr;
    const DecodedFunction *df = nullptr;
};

/**
 * Immutable, sorted snapshot of every tiered block ever published.
 * The registry swaps in a fresh snapshot on publish; old snapshots are
 * kept alive forever so the handler's acquire load is always safe.
 */
struct TieredPcMap
{
    std::vector<TieredBlockRange> blocks; ///< sorted by lo, disjoint
    /** Async-signal-safe binary search; null when pc is outside. */
    const TieredBlockRange *find(uintptr_t pc) const;
};

/** Why the SIGSEGV handler hard-unwound a tiered frame. */
enum class TieredPark : int32_t
{
    None = 0,
    Wild = 1,           ///< PC without site, or reference not null
    SpecUnsafe = 2,     ///< speculative access, target forbids it
    NotTrapCovered = 3, ///< exception site outside the trap area
    Unchecked = 4,      ///< null dereference with no check at all
};

/**
 * Thread-scoped fault-resolution descriptor, active while a tiered
 * root call runs.  pcMap is a pointer to the registry's atomic map
 * slot — the handler does a fresh acquire load per fault so blocks
 * published mid-run are visible immediately.
 */
struct TieredRun
{
    const std::atomic<const TieredPcMap *> *pcMap = nullptr;
    uint64_t *trapsTaken = nullptr; ///< ExecStats::trapsTaken
    uint64_t *specReads = nullptr;  ///< ExecStats::speculativeReadsOfNull
    uintptr_t guardLo = 0, guardHi = 0;
    TieredRun *prev = nullptr;
};

/** Enter/exit the calling thread's tiered-run scope (LIFO). */
void tieredEnterRun(TieredRun *run);
void tieredExitRun(TieredRun *run);

/**
 * Install / remove the process-wide SIGSEGV handler (refcounted; the
 * previous disposition is restored when the last engine uninstalls).
 */
void nativeInstallSegvHandler();
void nativeUninstallSegvHandler();

/**
 * Walk @p df's try-region parent chain from @p region for an handler
 * catching @p kind; returns the handler's stream index or -1.  The
 * shared L_dispatch stub calls this (through trapjitNativeFindHandler)
 * and the trap wrapper calls it directly for trap NPEs.
 */
int32_t nativeFindHandlerIndex(const DecodedFunction &df,
                               TryRegionId region, ExcKind kind);

// ---- helpers called from JIT code (see protocol above) --------------
extern "C" {
uint32_t trapjitNativeNewObject(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeNewArray(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeCall(NativeContext *ctx, uint32_t rec);
/** FExp / FSin / FCos / FLog / F2I, switched on the record's srcOp. */
uint32_t trapjitNativeMath(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeTraceFieldWrite(NativeContext *ctx, uint32_t rec);
uint32_t trapjitNativeTraceArrayWrite(NativeContext *ctx, uint32_t rec);
/** Budget exhausted: parks the HardFault message; always returns 2. */
uint32_t trapjitNativeBudgetFault(NativeContext *ctx, uint32_t rec);
/** Handler index for the pending exception, or -1 (clears pending). */
int32_t trapjitNativeFindHandler(NativeContext *ctx, uint32_t tryRegion);

// ---- tiered-tier helpers (defined in tiered_engine.cpp) -------------
// Same status protocol, but status 2 never crosses JIT code: hard
// faults set ctx->hardFault and return 1, and the status stubs test
// hardFault to pick unwind over dispatch.
uint32_t trapjitTieredNewObject(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredNewArray(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredMath(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredTraceFieldWrite(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredTraceArrayWrite(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredBudgetFault(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredDepthFault(NativeContext *ctx, uint32_t rec);
uint32_t trapjitTieredPoolFault(NativeContext *ctx, uint32_t rec);
/**
 * Unlinked-call trampoline target: resolves the callee and either
 * enters its published block directly or interprets it.  Arguments
 * were staged by the call site at ctx->poolTop.
 */
uint32_t trapjitTieredSlowCall(NativeContext *ctx, uint32_t rec);
/** trapjitNativeFindHandler, but against ctx->activeDf. */
int32_t trapjitTieredFindHandler(NativeContext *ctx, uint32_t tryRegion);
}

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_NATIVE_RUNTIME_H_
