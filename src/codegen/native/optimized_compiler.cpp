#include "codegen/native/native_compiler.h"

#include <algorithm>
#include <cstring>

#include "codegen/check_bytes.h"
#include "codegen/native/code_buffer_pool.h"
#include "codegen/native/native_mutation_hooks.h"
#include "codegen/native/native_runtime.h"
#include "codegen/native/x64_emitter.h"
#include "ir/layout.h"
#include "runtime/heap.h"
#include "support/diagnostics.h"

/**
 * @file
 * The optimized native backend: linear-scan register allocation plus
 * the paper's section-5.4 load speculation (DESIGN.md section 15).
 *
 * Three structural differences from the baseline tier
 * (native_compiler.cpp):
 *
 *  - Write-through register homes.  Linear scan gives hot IR values a
 *    home in one of eight GPRs; reads prefer the home, but every def
 *    still stores the slot.  Slots are therefore canonical at every
 *    record boundary, which is what makes deoptimization a plain
 *    re-entry of the fast interpreter with the existing slot file —
 *    no state reconstruction, no location maps at runtime.
 *  - Batched budget runs.  The per-record dec r14 preamble becomes one
 *    sub r14, len per straight-line run; every fault path inside the
 *    run refunds the records the interpreter has yet to re-charge, so
 *    budget-fault timing stays bit-identical to the interpreters.
 *  - Deopt side-exits instead of in-code exception dispatch.  Every
 *    cold path — failed explicit check, failed bound check, divide by
 *    zero, Throw, budget exhaustion, helper-reported exception, and
 *    hardware traps — leaves the block with a record index in
 *    ctx->deoptRecord and a status code; the engine resumes the frame
 *    in the fast interpreter.  Optimized code never re-enters after a
 *    trap, so there is no resume parameter, no handler table and no
 *    raise stubs.
 *
 * Speculation (section 5.4): an explicit NullCheck immediately followed
 * by the trap-coverable load it guards compiles to zero bytes; the load
 * itself becomes the check, and its trap site carries a deopt record
 * pointing *back at the check*, so a trap replays the NullCheck in the
 * interpreter and raises the exact exception the baseline would have.
 */

namespace trapjit
{

namespace
{

using R = X64Reg;
using CC = X64Cond;
using Alu = X64Emitter::Alu;

/** Deopt side-exit: status 2, replay at `record` (not yet retired). */
struct DeoptStub
{
    int label;
    uint32_t record;
    uint32_t refund; ///< pre-charged records at/after `record`
};

/** Helper-status side-exit: the helper already retired `record`. */
struct HelperStub
{
    int label;
    uint32_t record;
    uint32_t refund; ///< pre-charged records strictly after `record`
};

/** Same set as the baseline's isElidablePureOp (separate TU). */
bool
isPureOp(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::ConstNull:
      case Opcode::Move:
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::INeg:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::IShl:
      case Opcode::IShr:
      case Opcode::IUshr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FNeg:
      case Opcode::FExp:
      case Opcode::FSqrt:
      case Opcode::FSin:
      case Opcode::FCos:
      case Opcode::FAbs:
      case Opcode::FLog:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::I2L:
      case Opcode::L2I:
      case Opcode::ICmp:
      case Opcode::FCmp:
        return true;
      default:
        return false;
    }
}

/** Defs the SSE path writes straight to the slot, bypassing any home. */
bool
isSlotOnlyDefOp(Opcode op)
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FNeg:
      case Opcode::FAbs:
      case Opcode::FSqrt:
      case Opcode::I2F:
        return true;
      default:
        return false;
    }
}

/** Records lowered through a C helper call (clobbers caller-saved). */
bool
isHelperOp(Opcode op, bool recordTrace)
{
    switch (op) {
      case Opcode::FExp:
      case Opcode::FSin:
      case Opcode::FCos:
      case Opcode::FLog:
      case Opcode::F2I:
      case Opcode::NewObject:
      case Opcode::NewArray:
      case Opcode::Call:
        return true;
      case Opcode::PutField:
      case Opcode::ArrayStore:
        return recordTrace;
      default:
        return false;
    }
}

/** Records after which a budget run must end (control leaves). */
bool
isRunTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Jump:
      case Opcode::Branch:
      case Opcode::IfNull:
      case Opcode::Return:
      case Opcode::Throw:
        return true;
      default:
        return false;
    }
}

X64Cond
icmpCond(CmpPred pred)
{
    switch (pred) {
      case CmpPred::EQ: return CC::E;
      case CmpPred::NE: return CC::NE;
      case CmpPred::LT: return CC::L;
      case CmpPred::LE: return CC::LE;
      case CmpPred::GT: return CC::G;
      case CmpPred::GE: return CC::GE;
    }
    TRAPJIT_PANIC("bad predicate");
}

uint64_t
helperAddr(uint32_t (*fn)(NativeContext *, uint32_t))
{
    return reinterpret_cast<uint64_t>(fn);
}

bool
isCallerSavedHome(R r)
{
    switch (r) {
      case R::RSI:
      case R::RDI:
      case R::R8:
      case R::R9:
      case R::R10:
      case R::R11:
        return true;
      default:
        return false;
    }
}

} // namespace

NativeCompileResult
compileNativeOptimized(const Function &fn, const DecodedFunction &df,
                       const NativeCompileOptions &options)
{
    (void)fn; // identity lives in the cache key; codegen is decode-only
    NativeCompileResult out;
    if (!nativeTierSupported()) {
        out.unsupportedReason = "native tier requires x86-64 Linux";
        return out;
    }
    if (options.tiered) {
        out.unsupportedReason = "optimized backend has no tiered mode";
        return out;
    }

    // Same lowerable-opcode scan as the baseline: a future opcode
    // degrades to interpreter fallback, never to miscompilation.
    for (const DecodedInst &rec : df.code) {
        switch (rec.srcOp) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
          case Opcode::ConstNull:
          case Opcode::Move:
          case Opcode::IAdd:
          case Opcode::ISub:
          case Opcode::IMul:
          case Opcode::IDiv:
          case Opcode::IRem:
          case Opcode::INeg:
          case Opcode::IAnd:
          case Opcode::IOr:
          case Opcode::IXor:
          case Opcode::IShl:
          case Opcode::IShr:
          case Opcode::IUshr:
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
          case Opcode::FNeg:
          case Opcode::FExp:
          case Opcode::FSqrt:
          case Opcode::FSin:
          case Opcode::FCos:
          case Opcode::FAbs:
          case Opcode::FLog:
          case Opcode::I2F:
          case Opcode::F2I:
          case Opcode::I2L:
          case Opcode::L2I:
          case Opcode::ICmp:
          case Opcode::FCmp:
          case Opcode::NullCheck:
          case Opcode::BoundCheck:
          case Opcode::GetField:
          case Opcode::PutField:
          case Opcode::ArrayLength:
          case Opcode::ArrayLoad:
          case Opcode::ArrayStore:
          case Opcode::NewObject:
          case Opcode::NewArray:
          case Opcode::Call:
          case Opcode::Jump:
          case Opcode::Branch:
          case Opcode::IfNull:
          case Opcode::Return:
          case Opcode::Throw:
          case Opcode::Nop:
            break;
          default:
            out.unsupportedReason = std::string("unsupported opcode ") +
                                    opcodeName(rec.srcOp);
            return out;
        }
    }

    const size_t nrec = df.code.size();

    std::vector<uint32_t> useCount(df.numValues, 0);
    auto markUse = [&](ValueId v) {
        if (v != kNoValue)
            ++useCount[v];
    };
    for (const DecodedInst &rec : df.code) {
        markUse(rec.a);
        markUse(rec.b);
        markUse(rec.c);
        for (uint32_t k = 0; k < rec.argsCount; ++k)
            markUse(df.argPool[rec.argsBegin + k]);
    }

    std::vector<bool> jumpTarget(nrec, false);
    for (const DecodedInst &rec : df.code) {
        if (rec.srcOp == Opcode::Jump) {
            jumpTarget[rec.target] = true;
        } else if (rec.srcOp == Opcode::Branch ||
                   rec.srcOp == Opcode::IfNull) {
            jumpTarget[rec.target] = true;
            jumpTarget[rec.target2] = true;
        }
    }
    for (const DecodedTryRegion &r : df.tryRegions)
        if (r.handlerIndex < jumpTarget.size())
            jumpTarget[r.handlerIndex] = true;

    // ---- budget-run partition ------------------------------------------
    // A run is a maximal straight-line span: it breaks at jump targets
    // (an entering edge must not pay for records before it) and after
    // terminators.  Call is a singleton run because its helper reads
    // ctx->budgetRemaining to hand the callee the live global budget —
    // a mid-run pre-charge would under-report it.  The other helpers
    // (alloc / libm / trace) never read the budget, so they batch fine.
    std::vector<uint32_t> runEnd(nrec, 0);
    std::vector<bool> runStart(nrec, false);
    {
        size_t s = 0;
        while (s < nrec) {
            size_t t = s + 1;
            if (df.code[s].srcOp != Opcode::Call) {
                while (t < nrec && !jumpTarget[t] &&
                       df.code[t].srcOp != Opcode::Call &&
                       !isRunTerminator(df.code[t - 1].srcOp))
                    ++t;
            }
            runStart[s] = true;
            for (size_t k = s; k < t; ++k)
                runEnd[k] = static_cast<uint32_t>(t);
            s = t;
        }
    }

    // ---- section 5.4 speculation pairing -------------------------------
    // An explicit NullCheck whose guarded load follows immediately (and
    // nothing jumps between them) is elided; the load runs first and
    // *is* the check.  Coverability mirrors the decoder's trap model:
    // ArrayLength reads a small fixed offset, GetField must stay inside
    // the guard region for a null base.  specCheck[i] names the elided
    // check of the speculated access at i.
    std::vector<int32_t> specCheck(nrec, -1);
    std::vector<bool> specElided(nrec, false);
    if (options.speculate) {
        for (size_t i = 0; i + 1 < nrec; ++i) {
            const DecodedInst &rec = df.code[i];
            if (rec.srcOp != Opcode::NullCheck ||
                rec.flavor != CheckFlavor::Explicit || jumpTarget[i + 1])
                continue;
            const DecodedInst &ax = df.code[i + 1];
            bool coverable = false;
            if (ax.srcOp == Opcode::ArrayLength && ax.a == rec.a)
                coverable = true;
            else if (ax.srcOp == Opcode::GetField && ax.a == rec.a &&
                     ax.imm >= 0 &&
                     ax.imm + 8 <= static_cast<int64_t>(kHeapBase))
                coverable = true;
            if (coverable) {
                specCheck[i + 1] = static_cast<int32_t>(i);
                specElided[i] = true;
            }
        }
    }

    // ---- linear scan ----------------------------------------------------
    // Candidates are values with at least one GPR-path use whose every
    // def goes through the accumulator (the SSE ops store slots
    // directly and would leave a home stale).  Live intervals are the
    // textual hull of all occurrences, widened to enclose any loop
    // whose back edge they overlap; they only steer *preference* —
    // a value crossing a helper call wants a callee-saved home so the
    // C call doesn't force a reload.
    std::vector<uint32_t> gprUses(df.numValues, 0);
    auto addGprUse = [&](ValueId v) {
        if (v != kNoValue)
            ++gprUses[v];
    };
    for (const DecodedInst &rec : df.code) {
        switch (rec.srcOp) {
          case Opcode::Move:
          case Opcode::INeg:
          case Opcode::I2L:
          case Opcode::L2I:
          case Opcode::NullCheck:
          case Opcode::GetField:
          case Opcode::ArrayLength:
          case Opcode::Branch:
          case Opcode::IfNull:
          case Opcode::Return:
            addGprUse(rec.a);
            break;
          case Opcode::IAdd:
          case Opcode::ISub:
          case Opcode::IMul:
          case Opcode::IDiv:
          case Opcode::IRem:
          case Opcode::IAnd:
          case Opcode::IOr:
          case Opcode::IXor:
          case Opcode::IShl:
          case Opcode::IShr:
          case Opcode::IUshr:
          case Opcode::ICmp:
          case Opcode::BoundCheck:
          case Opcode::PutField:
          case Opcode::ArrayLoad:
            addGprUse(rec.a);
            addGprUse(rec.b);
            break;
          case Opcode::ArrayStore:
            addGprUse(rec.a);
            addGprUse(rec.b);
            addGprUse(rec.c);
            break;
          default:
            break;
        }
    }
    std::vector<bool> slotOnlyDef(df.numValues, false);
    for (const DecodedInst &rec : df.code)
        if (rec.dst != kNoValue && isSlotOnlyDefOp(rec.srcOp))
            slotOnlyDef[rec.dst] = true;

    constexpr uint32_t kNoPos = ~0u;
    std::vector<uint32_t> liveLo(df.numValues, kNoPos);
    std::vector<uint32_t> liveHi(df.numValues, 0);
    auto occur = [&](ValueId v, uint32_t at) {
        if (v == kNoValue)
            return;
        liveLo[v] = std::min(liveLo[v], at);
        liveHi[v] = std::max(liveHi[v], at);
    };
    for (size_t i = 0; i < nrec; ++i) {
        const DecodedInst &rec = df.code[i];
        uint32_t at = static_cast<uint32_t>(i);
        occur(rec.dst, at);
        occur(rec.a, at);
        occur(rec.b, at);
        occur(rec.c, at);
        for (uint32_t k = 0; k < rec.argsCount; ++k)
            occur(df.argPool[rec.argsBegin + k], at);
    }
    // Parameters are live from entry.
    for (uint32_t p = 0; p < df.numParams; ++p)
        if (liveLo[p] != kNoPos)
            liveLo[p] = 0;
    // Back-edge widening to a fixed point: a value live anywhere in a
    // loop body is live across the whole loop.
    std::vector<std::pair<uint32_t, uint32_t>> backEdges;
    for (size_t i = 0; i < nrec; ++i) {
        const DecodedInst &rec = df.code[i];
        uint32_t at = static_cast<uint32_t>(i);
        if (rec.srcOp == Opcode::Jump) {
            if (rec.target <= at)
                backEdges.emplace_back(rec.target, at);
        } else if (rec.srcOp == Opcode::Branch ||
                   rec.srcOp == Opcode::IfNull) {
            if (rec.target <= at)
                backEdges.emplace_back(rec.target, at);
            if (rec.target2 <= at)
                backEdges.emplace_back(rec.target2, at);
        }
    }
    bool changed = !backEdges.empty();
    while (changed) {
        changed = false;
        for (ValueId v = 0; v < df.numValues; ++v) {
            if (liveLo[v] == kNoPos)
                continue;
            for (const auto &be : backEdges) {
                if (liveLo[v] <= be.second && liveHi[v] >= be.first) {
                    if (liveLo[v] > be.first) {
                        liveLo[v] = be.first;
                        changed = true;
                    }
                    if (liveHi[v] < be.second) {
                        liveHi[v] = be.second;
                        changed = true;
                    }
                }
            }
        }
    }
    std::vector<bool> helperAt(nrec, false);
    for (size_t i = 0; i < nrec; ++i)
        helperAt[i] = isHelperOp(df.code[i].srcOp, options.recordTrace);
    std::vector<uint32_t> helperPrefix(nrec + 1, 0);
    for (size_t i = 0; i < nrec; ++i)
        helperPrefix[i + 1] = helperPrefix[i] + (helperAt[i] ? 1 : 0);
    auto spansHelper = [&](ValueId v) {
        return liveLo[v] != kNoPos &&
               helperPrefix[liveHi[v] + 1] > helperPrefix[liveLo[v]];
    };

    struct Cand
    {
        ValueId v;
        uint32_t uses;
        bool spans;
    };
    std::vector<Cand> cands;
    for (ValueId v = 0; v < df.numValues; ++v)
        if (gprUses[v] > 0 && !slotOnlyDef[v])
            cands.push_back(Cand{v, gprUses[v], spansHelper(v)});
    std::sort(cands.begin(), cands.end(),
              [](const Cand &a, const Cand &b) {
                  return a.uses != b.uses ? a.uses > b.uses : a.v < b.v;
              });

    // Callee-saved homes survive helper calls; caller-saved homes are
    // cheaper to spare but reload after every helper.  rbx/r12/r13/r14
    // are pinned, rax/rcx/rdx are per-record scratch; that leaves 8.
    std::vector<R> calleePool = {R::R15, R::RBP};
    std::vector<R> callerPool = {R::R11, R::R10, R::R9, R::R8,
                                 R::RDI, R::RSI};
    std::vector<int8_t> home(df.numValues, -1);
    std::vector<NativeRegLoc> regLocs;
    size_t spillCount = 0;
    for (const Cand &c : cands) {
        std::vector<R> *first = c.spans ? &calleePool : &callerPool;
        std::vector<R> *second = c.spans ? &callerPool : &calleePool;
        std::vector<R> *pool =
            !first->empty() ? first : (!second->empty() ? second : nullptr);
        if (pool == nullptr) {
            ++spillCount;
            continue;
        }
        R reg = pool->back();
        pool->pop_back();
        home[c.v] = static_cast<int8_t>(reg);
        regLocs.push_back(
            NativeRegLoc{c.v, static_cast<uint8_t>(reg)});
    }

    // ---- emission -------------------------------------------------------
    X64Emitter e;
    std::vector<int> recLabel(nrec);
    for (size_t i = 0; i < nrec; ++i)
        recLabel[i] = e.newLabel();
    const int lReturn = e.newLabel();
    const int lUnwind = e.newLabel();
    const int lPop = e.newLabel();

    std::vector<DeoptStub> deoptStubs;
    std::vector<HelperStub> helperStubs;
    std::vector<NativeTrapSite> sites;
    std::vector<NativeDeoptInfo> deopts;
    size_t explicitBytes = 0, implicitBytes = 0, boundBytes = 0;
    size_t explicitCount = 0, implicitCount = 0;
    size_t speculatedCount = 0;

    auto deoptTo = [&](size_t recIndex) {
        int l = e.newLabel();
        deoptStubs.push_back(
            DeoptStub{l, static_cast<uint32_t>(recIndex),
                      runEnd[recIndex] - static_cast<uint32_t>(recIndex)});
        return l;
    };
    auto callHelper = [&](uint32_t (*helper)(NativeContext *, uint32_t),
                          uint32_t recIndex) {
        e.storeCtx64(kNativeCtxBudgetOffset, R::R14);
        e.movRegReg(R::RDI, R::R12);
        e.movRegImm32(R::RSI, recIndex);
        e.movRegImm64(R::RAX, helperAddr(helper));
        e.callReg(R::RAX);
        e.loadCtx64(R::R14, kNativeCtxBudgetOffset);
    };
    auto checkStatus = [&](size_t recIndex) {
        int l = e.newLabel();
        helperStubs.push_back(HelperStub{
            l, static_cast<uint32_t>(recIndex),
            runEnd[recIndex] - static_cast<uint32_t>(recIndex) - 1});
        e.testRegReg(R::RAX, R::RAX, false);
        e.jccLabel(CC::NE, l);
    };
    auto reloadCallerSavedHomes = [&] {
        for (const NativeRegLoc &rl : regLocs)
            if (isCallerSavedHome(static_cast<R>(rl.reg)))
                e.loadSlot(static_cast<R>(rl.reg), rl.value);
    };
    auto reloadHome = [&](ValueId v) {
        if (v != kNoValue && home[v] >= 0 &&
            !isCallerSavedHome(static_cast<R>(home[v])))
            e.loadSlot(static_cast<R>(home[v]), v);
    };
    auto hreg = [&](ValueId v) { return static_cast<R>(home[v]); };
    /** Read @p v: its home when it has one, else a load into scratch. */
    auto srcReg = [&](ValueId v, R scratch) -> R {
        if (home[v] >= 0)
            return hreg(v);
        e.loadSlot(scratch, v);
        return scratch;
    };
    /** Load @p v into @p dst unconditionally (dst may be clobbered). */
    auto loadVal = [&](R dst, ValueId v, bool wide) {
        if (home[v] >= 0) {
            e.movRegReg(dst, hreg(v));
        } else if (wide) {
            e.loadSlot(dst, v);
        } else {
            e.loadSlot32(dst, v);
        }
    };
    /**
     * Write-through def: results are computed in a scratch register
     * (never straight into a home — the home may be a source operand of
     * the same record), copied to the home when one exists and always
     * stored to the slot.  The slot file is canonical everywhere.
     */
    auto defWrite = [&](ValueId v, R res) {
        if (home[v] >= 0 && hreg(v) != res)
            e.movRegReg(hreg(v), res);
        e.storeSlot(v, res);
    };
    auto beginSite = [&] { return static_cast<uint32_t>(e.size()); };
    auto endSite = [&](uint32_t begin, size_t recIndex) {
        uint32_t dRec = specCheck[recIndex] >= 0
                            ? static_cast<uint32_t>(specCheck[recIndex])
                            : static_cast<uint32_t>(recIndex);
        deopts.push_back(NativeDeoptInfo{dRec, runEnd[recIndex] - dRec,
                                         specCheck[recIndex] >= 0});
        sites.push_back(NativeTrapSite{
            begin, static_cast<uint32_t>(e.size()),
            static_cast<uint32_t>(recIndex), 0,
            static_cast<int32_t>(deopts.size() - 1)});
    };
    /** cmp a, b (64-bit) through homes where available. */
    auto emitCmp64 = [&](ValueId a, ValueId b) {
        if (home[a] >= 0 && home[b] >= 0) {
            e.aluRegReg(Alu::Cmp, hreg(a), hreg(b), true);
        } else if (home[a] >= 0) {
            e.aluRegSlot(Alu::Cmp, hreg(a), b, true);
        } else if (home[b] >= 0) {
            e.loadSlot(R::RAX, a);
            e.aluRegReg(Alu::Cmp, R::RAX, hreg(b), true);
        } else {
            e.loadSlot(R::RAX, a);
            e.aluRegSlot(Alu::Cmp, R::RAX, b, true);
        }
    };

    // ---- prologue ------------------------------------------------------
    // Six callee-saved pushes plus one alignment pad keep rsp 16-byte
    // aligned at helper calls.  The entry ABI's resume parameter (rcx)
    // is ignored: optimized code is never re-entered after a trap.
    e.pushReg(R::RBX);
    e.pushReg(R::RBP);
    e.pushReg(R::R12);
    e.pushReg(R::R13);
    e.pushReg(R::R14);
    e.pushReg(R::R15);
    e.pushReg(R::RAX); // alignment pad
    e.movRegReg(R::R12, R::RDI); // NativeContext*
    e.movRegReg(R::RBX, R::RSI); // Slot*
    e.movRegReg(R::R13, R::RDX); // heap host bias
    e.loadCtx64(R::R14, kNativeCtxBudgetOffset);
    // Preload every home: the engine zero-fills non-parameter slots, so
    // each home starts canonical without per-value liveness reasoning.
    for (const NativeRegLoc &rl : regLocs)
        e.loadSlot(static_cast<R>(rl.reg), rl.value);

    // ---- records -------------------------------------------------------
    std::vector<bool> fusedIntoPrev(nrec, false);
    for (size_t i = 0; i < nrec; ++i) {
        const DecodedInst &rec = df.code[i];
        if (fusedIntoPrev[i])
            continue;
        e.bind(recLabel[i]);

        if (runStart[i]) {
            uint32_t len = runEnd[i] - static_cast<uint32_t>(i);
            if (len == 1)
                e.decReg64(R::R14);
            else
                e.aluRegImm32(Alu::Sub, R::R14,
                              static_cast<int32_t>(len), true);
            e.jccLabel(CC::S, deoptTo(i));
        }

        // Compare-and-branch fusion, as in the baseline: both records
        // sit in one budget run, so no budget code is involved — the
        // jcc just consumes the flags the cmp left.
        if (rec.srcOp == Opcode::ICmp && rec.dst != kNoValue &&
            i + 1 < nrec && df.code[i + 1].srcOp == Opcode::Branch &&
            df.code[i + 1].a == rec.dst && useCount[rec.dst] == 1 &&
            !jumpTarget[i + 1]) {
            const DecodedInst &br = df.code[i + 1];
            e.bind(recLabel[i + 1]);
            emitCmp64(rec.a, rec.b);
            e.jccLabel(icmpCond(rec.pred), recLabel[br.target]);
            e.jmpLabel(recLabel[br.target2]);
            fusedIntoPrev[i + 1] = true;
            continue;
        }

        const bool narrow = (rec.flags & kDecodedNarrowDst) != 0;
        const bool wide = !narrow;

        if (rec.dst != kNoValue && isPureOp(rec.srcOp) &&
            useCount[rec.dst] == 0)
            continue; // dead pure record: charged by the run, no body

        switch (rec.srcOp) {
          case Opcode::ConstInt: {
            int64_t v = narrow ? static_cast<int32_t>(rec.imm) : rec.imm;
            e.movRegImm64(R::RAX, static_cast<uint64_t>(v));
            defWrite(rec.dst, R::RAX);
            break;
          }
          case Opcode::ConstFloat: {
            uint64_t bits;
            std::memcpy(&bits, &rec.fimm, sizeof(bits));
            e.movRegImm64(R::RAX, bits);
            defWrite(rec.dst, R::RAX);
            break;
          }
          case Opcode::ConstNull:
            e.movRegImm32(R::RAX, 0);
            defWrite(rec.dst, R::RAX);
            break;
          case Opcode::Move:
            defWrite(rec.dst, srcReg(rec.a, R::RAX));
            break;

          case Opcode::IAdd:
          case Opcode::ISub:
          case Opcode::IMul:
          case Opcode::IAnd:
          case Opcode::IOr:
          case Opcode::IXor: {
            loadVal(R::RAX, rec.a, wide);
            if (rec.srcOp == Opcode::IMul) {
                if (home[rec.b] >= 0)
                    e.imulRegReg(R::RAX, hreg(rec.b), wide);
                else
                    e.imulRegSlot(R::RAX, rec.b, wide);
            } else {
                Alu op = Alu::Add;
                switch (rec.srcOp) {
                  case Opcode::ISub: op = Alu::Sub; break;
                  case Opcode::IAnd: op = Alu::And; break;
                  case Opcode::IOr: op = Alu::Or; break;
                  case Opcode::IXor: op = Alu::Xor; break;
                  default: break;
                }
                if (home[rec.b] >= 0)
                    e.aluRegReg(op, R::RAX, hreg(rec.b), wide);
                else
                    e.aluRegSlot(op, R::RAX, rec.b, wide);
            }
            if (narrow)
                e.movsxdRegReg(R::RAX, R::RAX);
            defWrite(rec.dst, R::RAX);
            break;
          }
          case Opcode::INeg:
            loadVal(R::RAX, rec.a, wide);
            e.negReg(R::RAX, wide);
            if (narrow)
                e.movsxdRegReg(R::RAX, R::RAX);
            defWrite(rec.dst, R::RAX);
            break;

          case Opcode::IDiv:
          case Opcode::IRem: {
            // Divisor 0 deopts (the interpreter replays the record and
            // raises Arithmetic); divisor -1 is special-cased before
            // idiv so INT64_MIN / -1 cannot #DE (javaDiv/javaRem).
            loadVal(R::RAX, rec.a, true);
            loadVal(R::RCX, rec.b, true);
            e.testRegReg(R::RCX, R::RCX, true);
            e.jccLabel(CC::E, deoptTo(i));
            e.cmpRegImm8(R::RCX, -1, true);
            int lMinusOne = e.newLabel();
            int lDone = e.newLabel();
            e.jccLabel(CC::E, lMinusOne);
            e.cqo();
            e.idivReg(R::RCX);
            if (rec.srcOp == Opcode::IRem)
                e.movRegReg(R::RAX, R::RDX);
            e.jmpLabel(lDone);
            e.bind(lMinusOne);
            if (rec.srcOp == Opcode::IDiv)
                e.negReg(R::RAX, true);
            else
                e.movRegImm32(R::RAX, 0);
            e.bind(lDone);
            if (narrow)
                e.movsxdRegReg(R::RAX, R::RAX);
            defWrite(rec.dst, R::RAX);
            break;
          }

          case Opcode::IShl:
          case Opcode::IShr:
          case Opcode::IUshr: {
            loadVal(R::RCX, rec.b, true);
            loadVal(R::RAX, rec.a, wide);
            X64Emitter::Shift op =
                rec.srcOp == Opcode::IShl ? X64Emitter::Shift::Shl
                : rec.srcOp == Opcode::IShr ? X64Emitter::Shift::Sar
                                            : X64Emitter::Shift::Shr;
            e.shiftRegCl(op, R::RAX, wide);
            if (narrow)
                e.movsxdRegReg(R::RAX, R::RAX);
            defWrite(rec.dst, R::RAX);
            break;
          }

          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv: {
            X64Emitter::SseOp op =
                rec.srcOp == Opcode::FAdd ? X64Emitter::SseOp::Add
                : rec.srcOp == Opcode::FSub ? X64Emitter::SseOp::Sub
                : rec.srcOp == Opcode::FMul ? X64Emitter::SseOp::Mul
                                            : X64Emitter::SseOp::Div;
            e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
            e.sseOpSlot(op, X64Xmm::XMM0, rec.b);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          }
          case Opcode::FNeg:
            e.movRegImm64(R::RAX, 0x8000000000000000ull);
            e.movqXmmReg(X64Xmm::XMM1, R::RAX);
            e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
            e.xorpd(X64Xmm::XMM0, X64Xmm::XMM1);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::FAbs:
            e.movRegImm64(R::RAX, 0x7fffffffffffffffull);
            e.movqXmmReg(X64Xmm::XMM1, R::RAX);
            e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
            e.andpd(X64Xmm::XMM0, X64Xmm::XMM1);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::FSqrt:
            e.sseOpSlot(X64Emitter::SseOp::Sqrt, X64Xmm::XMM0, rec.a);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::FExp:
          case Opcode::FSin:
          case Opcode::FCos:
          case Opcode::FLog:
          case Opcode::F2I:
            callHelper(&trapjitNativeMath, static_cast<uint32_t>(i));
            reloadCallerSavedHomes();
            reloadHome(rec.dst);
            break;

          case Opcode::I2F:
            e.cvtsi2sdSlot(X64Xmm::XMM0, rec.a);
            e.movsdStoreSlot(rec.dst, X64Xmm::XMM0);
            break;
          case Opcode::I2L:
            if (home[rec.a] >= 0)
                e.movsxdRegReg(R::RAX, hreg(rec.a));
            else
                e.loadSlotSx32(R::RAX, rec.a);
            defWrite(rec.dst, R::RAX);
            break;
          case Opcode::L2I:
            if (narrow) {
                if (home[rec.a] >= 0)
                    e.movsxdRegReg(R::RAX, hreg(rec.a));
                else
                    e.loadSlotSx32(R::RAX, rec.a);
                defWrite(rec.dst, R::RAX);
            } else {
                defWrite(rec.dst, srcReg(rec.a, R::RAX));
            }
            break;

          case Opcode::ICmp:
            emitCmp64(rec.a, rec.b);
            e.setcc(icmpCond(rec.pred), R::RAX);
            e.movzxRegReg8(R::RAX, R::RAX);
            defWrite(rec.dst, R::RAX);
            break;
          case Opcode::FCmp: {
            switch (rec.pred) {
              case CmpPred::EQ:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::E, R::RAX);
                e.setcc(CC::NP, R::RCX);
                e.andRegReg8(R::RAX, R::RCX);
                break;
              case CmpPred::NE:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::NE, R::RAX);
                e.setcc(CC::P, R::RCX);
                e.orRegReg8(R::RAX, R::RCX);
                break;
              case CmpPred::LT:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.b);
                e.ucomisdSlot(X64Xmm::XMM0, rec.a);
                e.setcc(CC::A, R::RAX);
                break;
              case CmpPred::LE:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.b);
                e.ucomisdSlot(X64Xmm::XMM0, rec.a);
                e.setcc(CC::AE, R::RAX);
                break;
              case CmpPred::GT:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::A, R::RAX);
                break;
              case CmpPred::GE:
                e.movsdLoadSlot(X64Xmm::XMM0, rec.a);
                e.ucomisdSlot(X64Xmm::XMM0, rec.b);
                e.setcc(CC::AE, R::RAX);
                break;
            }
            e.movzxRegReg8(R::RAX, R::RAX);
            defWrite(rec.dst, R::RAX);
            break;
          }

          case Opcode::NullCheck:
            if (specElided[i]) {
                // Section 5.4: zero bytes.  The speculated access at
                // i+1 runs first; its trap site replays this record.
                ++speculatedCount;
            } else if (rec.flavor == CheckFlavor::Explicit) {
                R ref = srcReg(rec.a, R::RAX);
                size_t before = e.size();
                e.testRegReg(ref, ref, true);
                e.jccLabel(CC::E, deoptTo(i));
                size_t emitted = e.size() - before;
                TRAPJIT_ASSERT(
                    emitted == kNativeExplicitNullCheckBytes,
                    "explicit check drifted from check_bytes.h");
                explicitBytes += emitted;
                ++explicitCount;
            } else {
                // The paper's mechanism: zero instructions; the access
                // that follows faults on the guard page instead.
                implicitBytes += kNativeImplicitNullCheckBytes;
                ++implicitCount;
            }
            break;
          case Opcode::BoundCheck: {
            // One unsigned compare covers idx < 0 || idx >= len.  With
            // homes the hot sequence can shrink below the baseline's
            // kNativeBoundCheckBytes, so bytes are measured, not
            // asserted.
            R idx = srcReg(rec.a, R::RAX);
            size_t before = e.size();
            if (home[rec.b] >= 0)
                e.aluRegReg(Alu::Cmp, idx, hreg(rec.b), true);
            else
                e.aluRegSlot(Alu::Cmp, idx, rec.b, true);
            e.jccLabel(CC::AE, deoptTo(i));
            boundBytes += e.size() - before;
            break;
          }

          case Opcode::GetField: {
            R ref = srcReg(rec.a, R::RAX);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.loadHeap32Sx(R::RCX, ref,
                               static_cast<int32_t>(rec.imm));
            else
                e.loadHeap64(R::RCX, ref, static_cast<int32_t>(rec.imm));
            endSite(begin, i);
            defWrite(rec.dst, R::RCX);
            break;
          }
          case Opcode::PutField: {
            R ref = srcReg(rec.a, R::RAX);
            R val =
                home[rec.b] >= 0 ? hreg(rec.b)
                                 : (e.loadSlot(R::RCX, rec.b), R::RCX);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.storeHeap32(ref, static_cast<int32_t>(rec.imm), val);
            else
                e.storeHeap64(ref, static_cast<int32_t>(rec.imm), val);
            endSite(begin, i);
            if (options.recordTrace) {
                callHelper(&trapjitNativeTraceFieldWrite,
                           static_cast<uint32_t>(i));
                reloadCallerSavedHomes();
            }
            break;
          }
          case Opcode::ArrayLength: {
            R ref = srcReg(rec.a, R::RAX);
            uint32_t begin = beginSite();
            e.loadHeap32Sx(R::RCX, ref,
                           static_cast<int32_t>(kArrayLengthOffset));
            endSite(begin, i);
            defWrite(rec.dst, R::RCX);
            break;
          }
          case Opcode::ArrayLoad: {
            e.leaHostAddr(R::RAX, srcReg(rec.a, R::RAX));
            if (home[rec.b] >= 0)
                e.movsxdRegReg(R::RCX, hreg(rec.b));
            else
                e.loadSlotSx32(R::RCX, rec.b);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.loadIndexed32Sx(R::RDX, R::RAX, R::RCX, 4,
                                  kArrayDataOffset);
            else
                e.loadIndexed64(R::RDX, R::RAX, R::RCX, 8,
                                kArrayDataOffset);
            endSite(begin, i);
            defWrite(rec.dst, R::RDX);
            break;
          }
          case Opcode::ArrayStore: {
            e.leaHostAddr(R::RAX, srcReg(rec.a, R::RAX));
            if (home[rec.b] >= 0)
                e.movsxdRegReg(R::RCX, hreg(rec.b));
            else
                e.loadSlotSx32(R::RCX, rec.b);
            R val =
                home[rec.c] >= 0 ? hreg(rec.c)
                                 : (e.loadSlot(R::RDX, rec.c), R::RDX);
            uint32_t begin = beginSite();
            if (rec.type == Type::I32)
                e.storeIndexed32(R::RAX, R::RCX, 4, kArrayDataOffset,
                                 val);
            else
                e.storeIndexed64(R::RAX, R::RCX, 8, kArrayDataOffset,
                                 val);
            endSite(begin, i);
            if (options.recordTrace) {
                callHelper(&trapjitNativeTraceArrayWrite,
                           static_cast<uint32_t>(i));
                reloadCallerSavedHomes();
            }
            break;
          }

          case Opcode::NewObject:
            callHelper(&trapjitNativeNewObject,
                       static_cast<uint32_t>(i));
            checkStatus(i);
            reloadCallerSavedHomes();
            reloadHome(rec.dst);
            break;
          case Opcode::NewArray:
            callHelper(&trapjitNativeNewArray, static_cast<uint32_t>(i));
            checkStatus(i);
            reloadCallerSavedHomes();
            reloadHome(rec.dst);
            break;
          case Opcode::Call:
            callHelper(&trapjitNativeCall, static_cast<uint32_t>(i));
            checkStatus(i);
            reloadCallerSavedHomes();
            reloadHome(rec.dst);
            break;

          case Opcode::Jump:
            e.jmpLabel(recLabel[rec.target]);
            break;
          case Opcode::Branch: {
            R c = srcReg(rec.a, R::RAX);
            e.testRegReg(c, c, true);
            e.jccLabel(CC::NE, recLabel[rec.target]);
            e.jmpLabel(recLabel[rec.target2]);
            break;
          }
          case Opcode::IfNull: {
            R c = srcReg(rec.a, R::RAX);
            e.testRegReg(c, c, true);
            e.jccLabel(CC::E, recLabel[rec.target]);
            e.jmpLabel(recLabel[rec.target2]);
            break;
          }
          case Opcode::Return:
            if (rec.a != kNoValue)
                e.storeCtx64(kNativeCtxRetOffset, srcReg(rec.a, R::RAX));
            e.jmpLabel(lReturn);
            break;
          case Opcode::Throw:
            // The interpreter replays the Throw and runs its own
            // dispatch — there is no in-code handler table here.
            e.jmpLabel(deoptTo(i));
            break;
          case Opcode::Nop:
            break;
          default:
            TRAPJIT_PANIC("unreachable: opcode scan missed a case");
        }
    }
    const size_t hotEnd = e.size();

    // ---- side-exit stubs -----------------------------------------------
    // Deopt (status 2): refund every record pre-charged at or after the
    // replay target — the interpreter re-charges them one by one, so a
    // budget fault lands on the exact record with the exact message.
    for (const DeoptStub &s : deoptStubs) {
        e.bind(s.label);
        if (s.refund != 0)
            e.aluRegImm32(Alu::Add, R::R14,
                          static_cast<int32_t>(s.refund), true);
        e.storeCtx32Imm(kNativeCtxDeoptRecordOffset, s.record);
        e.movRegImm32(R::RAX, 2);
        e.jmpLabel(lPop);
    }
    // Helper status (1 = exception pending, 2 = hard unwind).  The
    // helper retired its record, so the refund excludes it — and is
    // applied before the status split so the unwind path's budget sync
    // is exact too.  Status 3 tells the engine to *dispatch* the
    // pending exception from the record's try region, not re-run it.
    for (const HelperStub &s : helperStubs) {
        e.bind(s.label);
        if (s.refund != 0)
            e.aluRegImm32(Alu::Add, R::R14,
                          static_cast<int32_t>(s.refund), true);
        e.cmpRegImm8(R::RAX, 1, false);
        e.jccLabel(CC::NE, lUnwind);
        e.storeCtx32Imm(kNativeCtxDeoptRecordOffset, s.record);
        e.movRegImm32(R::RAX, 3);
        e.jmpLabel(lPop);
    }

    e.bind(lReturn);
    e.movRegImm32(R::RAX, 0);
    e.jmpLabel(lPop);
    e.bind(lUnwind);
    e.movRegImm32(R::RAX, 1);
    e.bind(lPop);
    e.storeCtx64(kNativeCtxBudgetOffset, R::R14);
    e.popReg(R::RCX); // alignment pad (rax holds the status)
    e.popReg(R::R15);
    e.popReg(R::R14);
    e.popReg(R::R13);
    e.popReg(R::R12);
    e.popReg(R::RBP);
    e.popReg(R::RBX);
    e.ret();

    e.patchLabels();

    // ---- install -------------------------------------------------------
    const size_t codeSize = e.size();
    CodeBuffer buf = globalCodeBufferPool().acquire(codeSize);
    uint8_t *base = buf.base();
    std::memcpy(base, e.code().data(), codeSize);

    auto nc = std::make_shared<NativeCode>(std::move(buf));
    nc->codeSize = codeSize;
    nc->optimized = true;
    nc->recordOffsets.resize(nrec + 1);
    for (size_t i = 0; i < nrec; ++i)
        nc->recordOffsets[i] = e.labelOffset(recLabel[i]);
    nc->recordOffsets[nrec] = static_cast<uint32_t>(hotEnd);
    for (NativeTrapSite &s : sites)
        s.resumeNext = nc->recordOffsets[s.recordIndex + 1];
    nc->sites = std::move(sites);
    nc->deopts = std::move(deopts);
    nc->regLocs = std::move(regLocs);
    nc->loadsSpeculated = speculatedCount;
    nc->spillsEmitted = spillCount;
    nc->regsAllocated = nc->regLocs.size();
    nc->explicitNullCheckBytes = explicitBytes;
    nc->implicitNullCheckBytes = implicitBytes;
    nc->boundCheckBytes = boundBytes;
    nc->explicitChecksCompiled = explicitCount;
    nc->implicitChecksCompiled = implicitCount;

    // Test-only fault injection: corrupt the published metadata the
    // way a buggy backend would, so test_audit_mutations can prove the
    // new audit obligations actually fire (native_mutation_hooks.h).
    if (nativeMutationActive(NativeMutation::SpecWrongDeoptRecord)) {
        for (NativeDeoptInfo &d : nc->deopts) {
            if (d.speculated) {
                ++d.deoptRecord;
                break;
            }
        }
    }
    if (nativeMutationActive(NativeMutation::SpecDropFlag)) {
        for (NativeDeoptInfo &d : nc->deopts) {
            if (d.speculated) {
                d.speculated = false;
                break;
            }
        }
    }
    if (nativeMutationActive(NativeMutation::RegLocReservedReg) &&
        !nc->regLocs.empty()) {
        nc->regLocs.front().reg = static_cast<uint8_t>(R::R14);
    }

    nc->buffer.finalize();
    out.code = std::move(nc);
    return out;
}

} // namespace trapjit
