#include "codegen/native/tiered_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "codegen/native/code_buffer_pool.h"
#include "interp/java_semantics.h"
#include "ir/layout.h"
#include "support/diagnostics.h"

namespace trapjit
{

TieredOptions
tieredOptionsFromEnv()
{
    TieredOptions opts;
    if (const char *env = std::getenv("TRAPJIT_TIER_THRESHOLD")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            opts.threshold = static_cast<uint32_t>(v);
    }
    if (const char *env = std::getenv("TRAPJIT_TIER_SYNC"))
        opts.synchronous = std::strcmp(env, "0") != 0;
    return opts;
}

TieredEngine::TieredEngine(const Module &mod, const Target &target,
                           InterpOptions options,
                           std::shared_ptr<DecodedProgramCache> decoded_cache,
                           DecodeOptions decode_options,
                           TieredOptions tiered_options,
                           std::shared_ptr<CodeRegistry> registry,
                           std::shared_ptr<TierController> controller)
    : mod_(mod), target_(target), options_(options),
      tieredOptions_(tiered_options),
      registry_(registry ? std::move(registry)
                         : std::make_shared<CodeRegistry>(
                               mod.numFunctions())),
      controller_(std::move(controller)),
      fi_(mod, target, options,
          decoded_cache ? decoded_cache
                        : std::make_shared<DecodedProgramCache>(),
          decode_options)
{
    if (tieredOptions_.threshold == 0)
        tieredOptions_.threshold = 1;
    if (controller_ == nullptr) {
        TierControllerOptions copts;
        copts.synchronous = tieredOptions_.synchronous;
        copts.workers = tieredOptions_.workers;
        copts.linkBlocks = tieredOptions_.linkBlocks;
        copts.audit = tieredOptions_.audit;
        copts.recordTrace = options.recordTrace;
        controller_ = std::make_shared<TierController>(
            mod, target, registry_, fi_.cache_, decode_options, copts);
    }
    TRAPJIT_ASSERT(controller_->registry() == registry_,
                   "controller bound to a different registry");

    // The frame pool: one slot file per possible live tiered frame.
    // Depth d in [0, maxCallDepth] plus the bridge's staging row.
    size_t maxNumValues = 1;
    for (FunctionId f = 0; f < mod_.numFunctions(); ++f)
        maxNumValues =
            std::max(maxNumValues, mod_.function(f).numValues());
    pool_.resize((options_.maxCallDepth + 2) * maxNumValues);
    hotness_.assign(mod_.numFunctions(), 0);

    ctx_.tieredEngine = this;
    ctx_.poolTop = reinterpret_cast<uint8_t *>(pool_.data());
    ctx_.poolEnd = ctx_.poolTop + pool_.size() * sizeof(uint64_t);

    // Wire the interpreter's tiering hooks (friend access).
    fi_.tierHooks_ = this;
    fi_.tierHot_ = hotness_.data();
    fi_.tierThreshold_ = tieredOptions_.threshold;

    if (nativeTierSupported()) {
        nativeInstallSegvHandler();
        handlerInstalled_ = true;
    }
}

TieredEngine::~TieredEngine()
{
    // Settle background compiles before members they touch die.
    controller_->drain();
    if (handlerInstalled_)
        nativeUninstallSegvHandler();
}

void
TieredEngine::reset()
{
    controller_->drain();
    fi_.reset();
    std::fill(hotness_.begin(), hotness_.end(), 0);
    hardFaultPending_ = false;
    hardFaultMsg_.clear();
    ctx_.poolTop = reinterpret_cast<uint8_t *>(pool_.data());
    ctx_.hardFault = 0;
    ctx_.parkCode = 0;
    ctx_.pendingKind = 0;
    ctx_.pendingSite = 0;
    ctx_.linkedCalls = 0;
}

void
TieredEngine::promoteNow(FunctionId fn)
{
    controller_->requestPromotion(fn);
    controller_->drain();
}

void
TieredEngine::invalidate(FunctionId fn)
{
    registry_->invalidate(fn);
    hotness_[fn] = 0; // let the function re-tier from cold
}

void
TieredEngine::addTieringCounters(ServiceCounters &counters) const
{
    counters.functionsPromoted += controller_->functionsPromoted();
    counters.tierUpLatencySeconds +=
        controller_->tierUpLatencySeconds();
    counters.blocksLinked += registry_->blocksLinked();
    counters.slotsPatched += registry_->slotsPatched();
    counters.blocksInvalidated += registry_->blocksInvalidated();
    counters.blocksEvicted += registry_->blocksEvicted();
    uint64_t live = globalCodeBufferPool().bytesLive();
    if (live > counters.codeBytesLive)
        counters.codeBytesLive = live; // gauge: merge with max
}

void
TieredEngine::parkHardFault(std::string msg)
{
    if (!hardFaultPending_) {
        hardFaultPending_ = true;
        hardFaultMsg_ = std::move(msg);
    }
}

void
TieredEngine::bumpHotness(FunctionId fn)
{
    // >= rather than ==: after an invalidation the counter may already
    // sit past the threshold (another engine reset only its own array),
    // and re-requests of a non-Cold function fail fast in the registry.
    if (++hotness_[fn] >= tieredOptions_.threshold)
        controller_->requestPromotion(fn);
}

void
TieredEngine::tierPromote(FunctionId fn)
{
    controller_->requestPromotion(fn);
}

ExecResult
TieredEngine::run(FunctionId func, const std::vector<RuntimeValue> &args)
{
    hardFaultPending_ = false;
    hardFaultMsg_.clear();
    ctx_.hardFault = 0;
    ctx_.parkCode = 0;
    ctx_.pendingKind = 0;
    ctx_.pendingSite = 0;
    ctx_.linkedCalls = 0;
    // Unwinds restore the bump pointer frame by frame, so this is a
    // no-op unless a previous run died mid-flight.
    ctx_.poolTop = reinterpret_cast<uint8_t *>(pool_.data());

    const DecodedFunction &df = fi_.decoded(func);
    const Function &fn = mod_.function(func);

    std::vector<Slot> argv(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        switch (fn.value(static_cast<ValueId>(i)).type) {
          case Type::F64: argv[i].f = args[i].f; break;
          case Type::Ref: argv[i].ref = args[i].ref; break;
          default: argv[i].i = args[i].i; break;
        }
    }

    FrameResult frame = callFrame(func, std::move(argv), 0);
    if (hardFaultPending_)
        throw HardFault(hardFaultMsg_);

    ExecResult result;
    if (frame.exc.pending()) {
        result.outcome = ExecResult::Outcome::Threw;
        result.exception = frame.exc.kind;
        fi_.trace_.recordEscapedException(frame.exc.kind);
    } else {
        result.outcome = ExecResult::Outcome::Returned;
        switch (df.returnType) {
          case Type::F64: result.value.f = frame.value.f; break;
          case Type::Ref: result.value.ref = frame.value.ref; break;
          case Type::Void: break;
          default: result.value.i = frame.value.i; break;
        }
    }
    result.stats = fi_.stats_;
    return result;
}

TieredEngine::FrameResult
TieredEngine::callFrame(FunctionId id, std::vector<Slot> args,
                        size_t depth)
{
    const NativeCode *nc = registry_->published(id);
    if (nc != nullptr)
        return enterTiered(fi_.decoded(id), *nc, std::move(args), depth);
    // Cold (or invalidated, or unsupported): interpret, counting this
    // entry toward the function's hotness.  execFrame can throw
    // HardFault; park it so the throw never crosses a JIT frame.
    bumpHotness(id);
    try {
        return fi_.execFrame(fi_.decoded(id), std::move(args), depth);
    } catch (const HardFault &fault) {
        parkHardFault(fault.what());
        return FrameResult{};
    }
}

void
TieredEngine::syncStatsFromCtx(NativeContext &ctx)
{
    fi_.stats_.instructions = static_cast<uint64_t>(
        static_cast<int64_t>(options_.maxInstructions) -
        ctx.budgetRemaining);
    // Calls retired by linked call sites (counted caller-side in the
    // emitted code, mirroring the interpreter's ++calls placement).
    fi_.stats_.calls += ctx.linkedCalls;
    ctx.linkedCalls = 0;
}

void
TieredEngine::consumePark(NativeContext &ctx)
{
    if (ctx.parkCode == 0)
        return;
    const TieredPark code = static_cast<TieredPark>(ctx.parkCode);
    const DecodedFunction &pdf = *ctx.parkDf;
    ctx.parkCode = 0;
    if (code == TieredPark::Wild) {
        parkHardFault("wild native memory access in " + pdf.name);
        return;
    }
    const DecodedInst &rec = pdf.code[ctx.parkRec];
    switch (code) {
      case TieredPark::SpecUnsafe:
        parkHardFault(
            "speculative access through null is not safe on " +
            target_.name + " (site " + std::to_string(rec.site) + ")");
        break;
      case TieredPark::NotTrapCovered:
        parkHardFault("implicit check at site " +
                      std::to_string(rec.site) +
                      " is not trap-covered on " + target_.name);
        break;
      default:
        parkHardFault(std::string("unchecked null dereference: ") +
                      opcodeName(rec.srcOp) + " at site " +
                      std::to_string(rec.site));
        break;
    }
}

TieredEngine::FrameResult
TieredEngine::enterTiered(const DecodedFunction &df, const NativeCode &nc,
                          std::vector<Slot> args, size_t depth)
{
    // The checks the block's prologue would fail are made here with
    // the interpreter's exact messages: the bridge must not stage past
    // the pool end, and depth must be tested before the pool (the
    // interpreter faults on depth first).
    if (depth > options_.maxCallDepth) {
        parkHardFault("call depth limit exceeded in " + df.name);
        return FrameResult{};
    }
    TRAPJIT_ASSERT(args.size() == df.numParams,
                   "bad argument count calling ", df.name);
    uint8_t *stage = ctx_.poolTop;
    if (stage + static_cast<size_t>(df.numValues) * 8 > ctx_.poolEnd) {
        parkHardFault("native frame pool overflow in " + df.name);
        return FrameResult{};
    }
    Slot *slots = reinterpret_cast<Slot *>(stage);
    for (size_t i = 0; i < args.size(); ++i)
        slots[i] = args[i];

    // Nested roots (a native chain -> interpreter -> hot callee) find
    // depthRemaining describing the *outer* chain; retarget it to this
    // bridge's depth and restore on the way out.
    const int64_t savedDepthRemaining = ctx_.depthRemaining;
    ctx_.depthRemaining =
        static_cast<int64_t>(options_.maxCallDepth) + 1 -
        static_cast<int64_t>(depth);
    ctx_.budgetRemaining =
        static_cast<int64_t>(options_.maxInstructions) -
        static_cast<int64_t>(fi_.stats_.instructions);

    TieredRun scope;
    scope.pcMap = registry_->pcMapSlot();
    scope.trapsTaken = &fi_.stats_.trapsTaken;
    scope.specReads = &fi_.stats_.speculativeReadsOfNull;
    scope.guardLo = fi_.heap_.guardLo();
    scope.guardHi = fi_.heap_.guardHi();
    tieredEnterRun(&scope);
    uint32_t status =
        nc.tieredEntry()(&ctx_, slots, fi_.heap_.hostBase());
    tieredExitRun(&scope);

    ctx_.depthRemaining = savedDepthRemaining;
    syncStatsFromCtx(ctx_);
    consumePark(ctx_);

    FrameResult result;
    if (status == 0) {
        result.value.bits = ctx_.retBits;
    } else if (ctx_.hardFault == 0 && ctx_.pendingKind != 0) {
        result.exc =
            ThrownExc{static_cast<ExcKind>(ctx_.pendingKind),
                      static_cast<SiteId>(ctx_.pendingSite)};
        ctx_.pendingKind = 0;
        ctx_.pendingSite = 0;
    }
    // ctx_.hardFault stays set on faults: when this bridge sits below
    // an outer native chain (entered from its slow-call helper through
    // the interpreter), the outer status stubs must still observe it.
    return result;
}

bool
TieredEngine::tierInvoke(FunctionId callee, std::vector<Slot> &&args,
                         size_t depth, FrameResult &out)
{
    const NativeCode *nc = registry_->published(callee);
    if (nc == nullptr) {
        // Cold: count the call and let the interpreter execute it.
        bumpHotness(callee);
        return false;
    }
    out = enterTiered(fi_.decoded(callee), *nc, std::move(args), depth);
    // Hard faults must unwind the interpreter frames above this call;
    // whoever catches (callFrame or the slow-call helper) re-parks.
    if (hardFaultPending_)
        throw HardFault(hardFaultMsg_);
    return true;
}

uint32_t
TieredEngine::decideNullAccess(NativeContext &ctx, const DecodedInst &d)
{
    if (d.flags & kDecodedSpeculative) {
        if (d.flags & kDecodedSpecSafe) {
            ++fi_.stats_.speculativeReadsOfNull;
            return 0;
        }
        parkHardFault("speculative access through null is not safe on " +
                      target_.name + " (site " + std::to_string(d.site) +
                      ")");
        return 2;
    }
    if (d.flags & kDecodedExceptionSite) {
        if (d.flags & kDecodedTrapCovered) {
            ++fi_.stats_.trapsTaken;
            ctx.pendingKind =
                static_cast<int32_t>(ExcKind::NullPointer);
            ctx.pendingSite = d.site;
            return 1;
        }
        if (d.flags & kDecodedIllegalZero)
            return 0;
        parkHardFault("implicit check at site " + std::to_string(d.site) +
                      " is not trap-covered on " + target_.name);
        return 2;
    }
    parkHardFault(std::string("unchecked null dereference: ") +
                  opcodeName(d.srcOp) + " at site " +
                  std::to_string(d.site));
    return 2;
}

// ---- helpers called from JIT code -----------------------------------
// None of these may throw: they run below frames with no unwind info.
// The tiered status protocol is 0 = continue / 1 = unwound (exception
// pending unless ctx.hardFault is set).

uint32_t
TieredEngine::helperSlowCall(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedFunction &df = *ctx.activeDf;
    const DecodedInst &rec = df.code[recIdx];
    // The call site staged the arguments contiguously at the pool top
    // (the region a native callee would adopt as its slot file).
    Slot *staged = reinterpret_cast<Slot *>(ctx.poolTop);
    Slot *r = static_cast<Slot *>(ctx.activeSlots);

    FunctionId callee = kNoFunction;
    if (rec.callKind == CallKind::Virtual) {
        Address recv = staged[0].ref;
        if (recv == 0) {
            uint32_t decision = decideNullAccess(ctx, rec);
            if (decision == 2) {
                ctx.hardFault = 1;
                return 1;
            }
            if (decision == 1)
                return 1; // trap NPE pending; stub dispatches
            // Call silently skipped: the interpreter leaves dst
            // untouched, so feed the site's unconditional result
            // store the old destination bits.
            ctx.retBits = rec.dst != kNoValue ? r[rec.dst].bits : 0;
            return 0;
        }
        ClassId cid = fi_.heap_.classOf(recv);
        if (cid >= mod_.numClasses()) {
            parkHardFault("corrupt object header");
            ctx.hardFault = 1;
            return 1;
        }
        const auto &vtable = mod_.cls(cid).vtable;
        if (static_cast<size_t>(rec.imm) >= vtable.size()) {
            parkHardFault("vtable slot out of range");
            ctx.hardFault = 1;
            return 1;
        }
        callee = vtable[rec.imm];
    } else {
        if (rec.callKind == CallKind::Special && staged[0].ref == 0) {
            parkHardFault("special call with null receiver (site " +
                          std::to_string(rec.site) + ")");
            ctx.hardFault = 1;
            return 1;
        }
        callee = static_cast<FunctionId>(rec.imm);
    }
    if (callee == kNoFunction || callee >= mod_.numFunctions()) {
        parkHardFault("call target unresolved");
        ctx.hardFault = 1;
        return 1;
    }

    const NativeCode *nc = registry_->published(callee);
    if (nc != nullptr) {
        // Resolved to a published block (virtual dispatch, or a static
        // site the patcher has not reached / could not reach): enter
        // it directly, zero-copy — the staged args already sit where
        // its prologue expects the frame base.
        return nc->tieredEntry()(&ctx, staged, fi_.heap_.hostBase());
    }

    // Interpreter fallback for a cold callee.  Budget and call counts
    // move ctx -> stats for the interpreted subtree, then back.
    bumpHotness(callee);
    syncStatsFromCtx(ctx);
    const size_t depth = static_cast<size_t>(
        static_cast<int64_t>(options_.maxCallDepth) + 1 -
        ctx.depthRemaining);
    std::vector<Slot> argv(staged, staged + rec.argsCount);
    FrameResult sub;
    try {
        sub = fi_.execFrame(fi_.decoded(callee), std::move(argv), depth);
    } catch (const HardFault &fault) {
        parkHardFault(fault.what());
        ctx.budgetRemaining =
            static_cast<int64_t>(options_.maxInstructions) -
            static_cast<int64_t>(fi_.stats_.instructions);
        ctx.hardFault = 1;
        return 1;
    }
    ctx.budgetRemaining =
        static_cast<int64_t>(options_.maxInstructions) -
        static_cast<int64_t>(fi_.stats_.instructions);
    if (hardFaultPending_) {
        ctx.hardFault = 1;
        return 1;
    }
    if (sub.exc.pending()) {
        ctx.pendingKind = static_cast<int32_t>(sub.exc.kind);
        ctx.pendingSite = sub.exc.site;
        return 1;
    }
    ctx.retBits = sub.value.bits;
    return 0;
}

uint32_t
TieredEngine::helperNewObject(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.activeDf->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.activeSlots);
    ++fi_.stats_.allocations;
    Address ref = fi_.heap_.allocateObject(
        static_cast<ClassId>(rec.imm), rec.imm2);
    if (ref == 0) {
        ctx.pendingKind = static_cast<int32_t>(ExcKind::OutOfMemory);
        ctx.pendingSite = rec.site;
        return 1;
    }
    fi_.trace_.recordAllocation(ref, static_cast<uint64_t>(rec.imm2));
    r[rec.dst].ref = ref;
    return 0;
}

uint32_t
TieredEngine::helperNewArray(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.activeDf->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.activeSlots);
    int64_t len = static_cast<int32_t>(r[rec.a].i);
    if (len < 0) {
        ctx.pendingKind =
            static_cast<int32_t>(ExcKind::NegativeArraySize);
        ctx.pendingSite = rec.site;
        return 1;
    }
    ++fi_.stats_.allocations;
    Address ref = fi_.heap_.allocateArray(rec.type,
                                          static_cast<int32_t>(len));
    if (ref == 0) {
        ctx.pendingKind = static_cast<int32_t>(ExcKind::OutOfMemory);
        ctx.pendingSite = rec.site;
        return 1;
    }
    fi_.trace_.recordAllocation(
        ref, static_cast<uint64_t>(len) * typeSize(rec.type));
    r[rec.dst].ref = ref;
    return 0;
}

uint32_t
TieredEngine::helperMath(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.activeDf->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.activeSlots);
    switch (rec.srcOp) {
      case Opcode::FExp: r[rec.dst].f = std::exp(r[rec.a].f); break;
      case Opcode::FSin: r[rec.dst].f = std::sin(r[rec.a].f); break;
      case Opcode::FCos: r[rec.dst].f = std::cos(r[rec.a].f); break;
      case Opcode::FLog: r[rec.dst].f = std::log(r[rec.a].f); break;
      case Opcode::F2I: {
        int64_t v = javaF2I(r[rec.a].f);
        r[rec.dst].i = (rec.flags & kDecodedNarrowDst)
                           ? static_cast<int32_t>(v)
                           : v;
        break;
      }
      default:
        TRAPJIT_PANIC("bad math helper opcode");
    }
    return 0;
}

uint32_t
TieredEngine::helperTraceFieldWrite(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.activeDf->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.activeSlots);
    Address addr = r[rec.a].ref + static_cast<Address>(rec.imm);
    switch (rec.type) {
      case Type::I32:
        fi_.trace_.recordWrite(
            addr,
            static_cast<uint32_t>(static_cast<int32_t>(r[rec.b].i)), 4);
        break;
      case Type::I64:
        fi_.trace_.recordWrite(addr, static_cast<uint64_t>(r[rec.b].i),
                               8);
        break;
      case Type::F64:
        fi_.trace_.recordWrite(addr, std::bit_cast<uint64_t>(r[rec.b].f),
                               8);
        break;
      case Type::Ref:
        fi_.trace_.recordWrite(addr, r[rec.b].ref, 8);
        break;
      default:
        TRAPJIT_PANIC("bad putfield type");
    }
    return 0;
}

uint32_t
TieredEngine::helperTraceArrayWrite(NativeContext &ctx, uint32_t recIdx)
{
    const DecodedInst &rec = ctx.activeDf->code[recIdx];
    Slot *r = static_cast<Slot *>(ctx.activeSlots);
    int64_t idx = static_cast<int32_t>(r[rec.b].i);
    Address addr = r[rec.a].ref + kArrayDataOffset +
                   static_cast<Address>(idx) * typeSize(rec.type);
    switch (rec.type) {
      case Type::I32:
        fi_.trace_.recordWrite(
            addr,
            static_cast<uint32_t>(static_cast<int32_t>(r[rec.c].i)), 4);
        break;
      case Type::I64:
        fi_.trace_.recordWrite(addr, static_cast<uint64_t>(r[rec.c].i),
                               8);
        break;
      case Type::F64:
        fi_.trace_.recordWrite(addr, std::bit_cast<uint64_t>(r[rec.c].f),
                               8);
        break;
      case Type::Ref:
        fi_.trace_.recordWrite(addr, r[rec.c].ref, 8);
        break;
      default:
        TRAPJIT_PANIC("bad element type");
    }
    return 0;
}

uint32_t
TieredEngine::helperBudgetFault(NativeContext &ctx, uint32_t)
{
    parkHardFault("instruction budget exceeded in " +
                  ctx.activeDf->name);
    ctx.hardFault = 1;
    return 1;
}

uint32_t
TieredEngine::helperDepthFault(NativeContext &ctx, uint32_t)
{
    // The prologue publishes activeDf before the depth check, so the
    // message names the callee that overflowed — like the interpreter.
    parkHardFault("call depth limit exceeded in " + ctx.activeDf->name);
    ctx.hardFault = 1;
    return 1;
}

uint32_t
TieredEngine::helperPoolFault(NativeContext &ctx, uint32_t)
{
    parkHardFault("native frame pool overflow in " + ctx.activeDf->name);
    ctx.hardFault = 1;
    return 1;
}

// ---- extern "C" trampolines the compiler takes the address of -------

extern "C" uint32_t
trapjitTieredNewObject(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperNewObject(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredNewArray(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperNewArray(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredMath(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperMath(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredTraceFieldWrite(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperTraceFieldWrite(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredTraceArrayWrite(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperTraceArrayWrite(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredBudgetFault(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperBudgetFault(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredDepthFault(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperDepthFault(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredPoolFault(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperPoolFault(*ctx, rec);
}

extern "C" uint32_t
trapjitTieredSlowCall(NativeContext *ctx, uint32_t rec)
{
    return ctx->tieredEngine->helperSlowCall(*ctx, rec);
}

} // namespace trapjit
