#ifndef TRAPJIT_CODEGEN_NATIVE_TIERED_ENGINE_H_
#define TRAPJIT_CODEGEN_NATIVE_TIERED_ENGINE_H_

/**
 * @file
 * Profile-guided mixed-mode engine (TRAPJIT_INTERP=tiered).
 *
 * Every function starts in the fast interpreter, which counts calls
 * and taken back-edges into a per-engine hotness array.  Crossing
 * TRAPJIT_TIER_THRESHOLD hands the function to the TierController,
 * which compiles a *tiered* native block on a background worker (or
 * inline under TRAPJIT_TIER_SYNC=1), audits its trap-site tables and
 * publishes it in the shared CodeRegistry; the requesting frame keeps
 * interpreting and only later calls enter the block.
 *
 * Tiered blocks differ from the classic per-frame native tier in three
 * ways that make hot call chains cheap:
 *
 *  - One persistent NativeContext and one engine-owned frame pool are
 *    shared by the whole call tree.  A callee's slot file is carved
 *    from the pool bump pointer; call arguments are staged directly
 *    into what becomes the callee's parameter slots (zero copies).
 *  - Calls between published blocks are patchable rel32 near-calls:
 *    the registry links a site straight at the callee's entry when it
 *    publishes and unlinks it back to the per-site slow stub on
 *    invalidation.  Unlinked or data-driven (virtual/special) calls go
 *    through trapjitTieredSlowCall, which enters published callees
 *    directly or falls back to the interpreter — bumping hotness.
 *  - There is no per-frame sigsetjmp: the SIGSEGV handler resolves a
 *    null-check trap in place against the registry's pc-map and
 *    rewrites RIP to the resume point (or the block's unwind exit for
 *    the hard-fault cases, parking the reason in the context).
 *
 * Observable semantics (heap, trace, exceptions, instructions, calls,
 * allocations, traps) are bit-identical to the fast and reference
 * engines — including mid-run promotion, invalidation and
 * re-promotion; cycles are not modeled in native frames, matching the
 * classic native tier.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "codegen/native/code_registry.h"
#include "codegen/native/native_compiler.h"
#include "codegen/native/native_runtime.h"
#include "interp/fast_interpreter.h"
#include "jit/stats.h"
#include "jit/tier_controller.h"

namespace trapjit
{

/** Tiering-policy knobs (see tieredOptionsFromEnv). */
struct TieredOptions
{
    /** Hotness (calls + back-edges) that triggers promotion. */
    uint32_t threshold = 64;
    /** Compile inside the requesting call (TRAPJIT_TIER_SYNC=1). */
    bool synchronous = false;
    /** Background compile workers (ignored when synchronous). */
    size_t workers = 2;
    /** Patch direct rel32 calls between published blocks. */
    bool linkBlocks = true;
    /** auditNativeTrapSites every block before publishing. */
    bool audit = true;
};

/**
 * TieredOptions from TRAPJIT_TIER_THRESHOLD (positive integer) and
 * TRAPJIT_TIER_SYNC (non-"0" enables synchronous promotion).
 */
TieredOptions tieredOptionsFromEnv();

/**
 * The tiered engine; mirrors the FastInterpreter / NativeEngine
 * surface so call sites switch between engines with a branch.  Not
 * thread-safe per instance, but the registry and controller may be
 * shared across engines on different threads.
 */
class TieredEngine final : public FastInterpreter::TierHooks
{
  public:
    /**
     * @param registry    shared published-block registry; created
     *                    privately when null
     * @param controller  shared promotion controller; created privately
     *                    (against @p registry) when null.  When given,
     *                    it must use the same registry.
     */
    TieredEngine(const Module &mod, const Target &target,
                 InterpOptions options = {},
                 std::shared_ptr<DecodedProgramCache> decoded_cache = nullptr,
                 DecodeOptions decode_options = {},
                 TieredOptions tiered_options = {},
                 std::shared_ptr<CodeRegistry> registry = nullptr,
                 std::shared_ptr<TierController> controller = nullptr);
    ~TieredEngine() override;

    TieredEngine(const TieredEngine &) = delete;
    TieredEngine &operator=(const TieredEngine &) = delete;

    /** Execute @p func with @p args; resets nothing between calls. */
    ExecResult run(FunctionId func, const std::vector<RuntimeValue> &args);

    Heap &heap() { return fi_.heap_; }
    EventTrace &trace() { return fi_.trace_; }
    const ExecStats &stats() const { return fi_.stats_; }

    /** Clear heap, trace, stats and hotness; published blocks stay. */
    void reset();

    // ---- tiering control / introspection ----------------------------
    const std::shared_ptr<CodeRegistry> &registry() const
    {
        return registry_;
    }
    const std::shared_ptr<TierController> &controller() const
    {
        return controller_;
    }

    /** Block until every in-flight background promotion settled. */
    void drainPromotions() { controller_->drain(); }

    /** Request promotion of @p fn and wait for it to settle. */
    void promoteNow(FunctionId fn);

    /** Unpublish @p fn (unlinking its inbound call sites) and clear
     *  its hotness so it can re-tier from cold. */
    void invalidate(FunctionId fn);

    /** Fold this engine's tiering counters into @p counters. */
    void addTieringCounters(ServiceCounters &counters) const;

    // ---- helpers called from JIT code via the extern "C" trampolines.
    // None of these may throw: they run below frames with no unwind
    // info.  Hard faults are parked in the engine, flagged in the
    // context and reported as status 1.
    uint32_t helperNewObject(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperNewArray(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperMath(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperTraceFieldWrite(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperTraceArrayWrite(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperBudgetFault(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperDepthFault(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperPoolFault(NativeContext &ctx, uint32_t recIdx);
    uint32_t helperSlowCall(NativeContext &ctx, uint32_t recIdx);

  private:
    using Slot = FastInterpreter::Slot;
    using FrameResult = FastInterpreter::FrameResult;

    // FastInterpreter::TierHooks
    bool tierInvoke(FunctionId callee, std::vector<Slot> &&args,
                    size_t depth, FrameResult &out) override;
    void tierPromote(FunctionId fn) override;

    /** Route one frame: published block or interpreter fallback. */
    FrameResult callFrame(FunctionId id, std::vector<Slot> args,
                          size_t depth);
    /** Bridge C++ -> tiered code: stage args in the pool, set up the
     *  context and TieredRun scope, enter, convert the result. */
    FrameResult enterTiered(const DecodedFunction &df,
                            const NativeCode &nc, std::vector<Slot> args,
                            size_t depth);
    /** Fold budget + linked-call counts from the context into stats. */
    void syncStatsFromCtx(NativeContext &ctx);
    /** Turn a handler-parked TieredPark code into the engine message. */
    void consumePark(NativeContext &ctx);
    void parkHardFault(std::string msg);
    uint32_t decideNullAccess(NativeContext &ctx, const DecodedInst &d);
    void bumpHotness(FunctionId fn);

    const Module &mod_;
    const Target &target_;
    InterpOptions options_;
    TieredOptions tieredOptions_;
    std::shared_ptr<CodeRegistry> registry_;
    std::shared_ptr<TierController> controller_;
    FastInterpreter fi_;
    bool handlerInstalled_ = false;

    /** Persistent context every tiered frame of this engine shares. */
    NativeContext ctx_;
    /** Frame pool: (maxCallDepth + 2) x widest slot file. */
    std::vector<uint64_t> pool_;
    /** Per-function hotness (calls + back-edges); fi_.tierHot_. */
    std::vector<uint32_t> hotness_;

    bool hardFaultPending_ = false;
    std::string hardFaultMsg_;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_TIERED_ENGINE_H_
