#include "codegen/native/x64_emitter.h"

#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

inline uint8_t
lo3(X64Reg r)
{
    return static_cast<uint8_t>(r) & 7u;
}

inline bool
ext(X64Reg r)
{
    return static_cast<uint8_t>(r) >= 8;
}

} // namespace

void
X64Emitter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        code_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
X64Emitter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        code_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
X64Emitter::rex(bool w, uint8_t reg, uint8_t index, uint8_t base)
{
    uint8_t b = 0x40;
    if (w)
        b |= 0x08;
    if (reg >= 8)
        b |= 0x04;
    if (index >= 8)
        b |= 0x02;
    if (base >= 8)
        b |= 0x01;
    if (b != 0x40 || w)
        u8(b);
}

void
X64Emitter::modrm(uint8_t mod, uint8_t reg, uint8_t rm)
{
    u8(static_cast<uint8_t>((mod << 6) | ((reg & 7u) << 3) | (rm & 7u)));
}

void
X64Emitter::slotOperand(uint8_t reg, uint32_t slot)
{
    // [rbx + slot*8], disp32 always: every slot gets the same-size
    // encoding, which keeps record sizes a pure function of the record.
    modrm(2, reg, 3);
    u32(slot * 8u);
}

void
X64Emitter::heapOperand(uint8_t reg, X64Reg ref, int32_t disp)
{
    // [r13 + ref + disp32]; r13 as SIB base, ref as index (never rsp).
    TRAPJIT_ASSERT(ref != X64Reg::RSP, "rsp cannot index");
    modrm(2, reg, 4);
    u8(static_cast<uint8_t>((lo3(ref) << 3) | 5u)); // scale=1, base=r13
    u32(static_cast<uint32_t>(disp));
}

void
X64Emitter::indexedOperand(uint8_t reg, X64Reg base, X64Reg idx,
                           uint8_t scale, int8_t disp)
{
    TRAPJIT_ASSERT(idx != X64Reg::RSP, "rsp cannot index");
    uint8_t ss = scale == 8 ? 3 : scale == 4 ? 2 : scale == 2 ? 1 : 0;
    modrm(1, reg, 4);
    u8(static_cast<uint8_t>((ss << 6) | (lo3(idx) << 3) | lo3(base)));
    u8(static_cast<uint8_t>(disp));
}

int
X64Emitter::newLabel()
{
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
}

void
X64Emitter::bind(int label)
{
    TRAPJIT_ASSERT(labels_[label] < 0, "label bound twice");
    labels_[label] = static_cast<int32_t>(code_.size());
}

bool
X64Emitter::bound(int label) const
{
    return labels_[label] >= 0;
}

uint32_t
X64Emitter::labelOffset(int label) const
{
    TRAPJIT_ASSERT(labels_[label] >= 0, "label read before bind");
    return static_cast<uint32_t>(labels_[label]);
}

void
X64Emitter::patchLabels()
{
    for (const LabelFixup &f : fixups_) {
        TRAPJIT_ASSERT(labels_[f.label] >= 0, "unbound label at patch");
        int32_t rel = labels_[f.label] - static_cast<int32_t>(f.at + 4);
        for (int i = 0; i < 4; ++i)
            code_[f.at + i] =
                static_cast<uint8_t>(static_cast<uint32_t>(rel) >> (8 * i));
    }
    fixups_.clear();
}

void
X64Emitter::movRegImm64(X64Reg dst, uint64_t imm)
{
    if (imm <= 0xffffffffull) {
        // mov r32, imm32 zero-extends.
        rex(false, 0, 0, static_cast<uint8_t>(dst));
        u8(static_cast<uint8_t>(0xb8 + lo3(dst)));
        u32(static_cast<uint32_t>(imm));
        return;
    }
    if (static_cast<uint64_t>(static_cast<int64_t>(
            static_cast<int32_t>(imm))) == imm) {
        // mov r64, simm32.
        rex(true, 0, 0, static_cast<uint8_t>(dst));
        u8(0xc7);
        modrm(3, 0, lo3(dst));
        u32(static_cast<uint32_t>(imm));
        return;
    }
    rex(true, 0, 0, static_cast<uint8_t>(dst));
    u8(static_cast<uint8_t>(0xb8 + lo3(dst)));
    u64(imm);
}

size_t
X64Emitter::movRegImm64Patchable(X64Reg dst)
{
    rex(true, 0, 0, static_cast<uint8_t>(dst));
    u8(static_cast<uint8_t>(0xb8 + lo3(dst)));
    size_t at = code_.size();
    u64(0);
    return at;
}

void
X64Emitter::movRegImm32(X64Reg dst, uint32_t imm)
{
    rex(false, 0, 0, static_cast<uint8_t>(dst));
    u8(static_cast<uint8_t>(0xb8 + lo3(dst)));
    u32(imm);
}

void
X64Emitter::movRegReg(X64Reg dst, X64Reg src)
{
    rex(true, static_cast<uint8_t>(src), 0, static_cast<uint8_t>(dst));
    u8(0x89);
    modrm(3, lo3(src), lo3(dst));
}

void
X64Emitter::loadSlot(X64Reg dst, uint32_t slot)
{
    rex(true, static_cast<uint8_t>(dst), 0, 0);
    u8(0x8b);
    slotOperand(lo3(dst), slot);
}

void
X64Emitter::loadSlot32(X64Reg dst, uint32_t slot)
{
    rex(false, static_cast<uint8_t>(dst), 0, 0);
    u8(0x8b);
    slotOperand(lo3(dst), slot);
}

void
X64Emitter::loadSlotSx32(X64Reg dst, uint32_t slot)
{
    rex(true, static_cast<uint8_t>(dst), 0, 0);
    u8(0x63);
    slotOperand(lo3(dst), slot);
}

void
X64Emitter::storeSlot(uint32_t slot, X64Reg src)
{
    rex(true, static_cast<uint8_t>(src), 0, 0);
    u8(0x89);
    slotOperand(lo3(src), slot);
}

void
X64Emitter::aluRegSlot(Alu op, X64Reg dst, uint32_t slot, bool wide64)
{
    rex(wide64, static_cast<uint8_t>(dst), 0, 0);
    u8(static_cast<uint8_t>(static_cast<uint8_t>(op) + 0x03));
    slotOperand(lo3(dst), slot);
}

void
X64Emitter::aluRegReg(Alu op, X64Reg dst, X64Reg src, bool wide64)
{
    rex(wide64, static_cast<uint8_t>(src), 0, static_cast<uint8_t>(dst));
    u8(static_cast<uint8_t>(static_cast<uint8_t>(op) + 0x01));
    modrm(3, lo3(src), lo3(dst));
}

void
X64Emitter::aluRegImm32(Alu op, X64Reg reg, int32_t imm, bool wide64)
{
    rex(wide64, 0, 0, static_cast<uint8_t>(reg));
    u8(0x81);
    modrm(3, static_cast<uint8_t>(op) >> 3, lo3(reg));
    u32(static_cast<uint32_t>(imm));
}

void
X64Emitter::aluSlotImm32(Alu op, uint32_t slot, int32_t imm, bool wide64)
{
    rex(wide64, 0, 0, 0);
    u8(0x81);
    slotOperand(static_cast<uint8_t>(op) >> 3, slot);
    u32(static_cast<uint32_t>(imm));
}

void
X64Emitter::decReg64(X64Reg reg)
{
    rex(true, 0, 0, static_cast<uint8_t>(reg));
    u8(0xff);
    modrm(3, 1, lo3(reg));
}

void
X64Emitter::imulRegSlot(X64Reg dst, uint32_t slot, bool wide64)
{
    rex(wide64, static_cast<uint8_t>(dst), 0, 0);
    u8(0x0f);
    u8(0xaf);
    slotOperand(lo3(dst), slot);
}

void
X64Emitter::imulRegReg(X64Reg dst, X64Reg src, bool wide64)
{
    rex(wide64, static_cast<uint8_t>(dst), 0, static_cast<uint8_t>(src));
    u8(0x0f);
    u8(0xaf);
    modrm(3, lo3(dst), lo3(src));
}

void
X64Emitter::negReg(X64Reg reg, bool wide64)
{
    rex(wide64, 0, 0, static_cast<uint8_t>(reg));
    u8(0xf7);
    modrm(3, 3, lo3(reg));
}

void
X64Emitter::notReg(X64Reg reg, bool wide64)
{
    rex(wide64, 0, 0, static_cast<uint8_t>(reg));
    u8(0xf7);
    modrm(3, 2, lo3(reg));
}

void
X64Emitter::cqo()
{
    u8(0x48);
    u8(0x99);
}

void
X64Emitter::idivReg(X64Reg reg)
{
    rex(true, 0, 0, static_cast<uint8_t>(reg));
    u8(0xf7);
    modrm(3, 7, lo3(reg));
}

void
X64Emitter::shiftRegCl(Shift op, X64Reg reg, bool wide64)
{
    rex(wide64, 0, 0, static_cast<uint8_t>(reg));
    u8(0xd3);
    modrm(3, static_cast<uint8_t>(op), lo3(reg));
}

void
X64Emitter::testRegReg(X64Reg a, X64Reg b, bool wide64)
{
    rex(wide64, static_cast<uint8_t>(b), 0, static_cast<uint8_t>(a));
    u8(0x85);
    modrm(3, lo3(b), lo3(a));
}

void
X64Emitter::cmpRegImm8(X64Reg reg, int8_t imm, bool wide64)
{
    rex(wide64, 0, 0, static_cast<uint8_t>(reg));
    u8(0x83);
    modrm(3, 7, lo3(reg));
    u8(static_cast<uint8_t>(imm));
}

void
X64Emitter::movsxdRegReg(X64Reg dst, X64Reg src)
{
    rex(true, static_cast<uint8_t>(dst), 0, static_cast<uint8_t>(src));
    u8(0x63);
    modrm(3, lo3(dst), lo3(src));
}

void
X64Emitter::setcc(X64Cond cond, X64Reg reg8)
{
    TRAPJIT_ASSERT(static_cast<uint8_t>(reg8) < 4, "setcc low regs only");
    u8(0x0f);
    u8(static_cast<uint8_t>(0x90 + static_cast<uint8_t>(cond)));
    modrm(3, 0, lo3(reg8));
}

void
X64Emitter::movzxRegReg8(X64Reg dst, X64Reg src8)
{
    TRAPJIT_ASSERT(static_cast<uint8_t>(src8) < 4, "movzx low regs only");
    rex(false, static_cast<uint8_t>(dst), 0, 0);
    u8(0x0f);
    u8(0xb6);
    modrm(3, lo3(dst), lo3(src8));
}

void
X64Emitter::andRegReg8(X64Reg dst8, X64Reg src8)
{
    u8(0x20);
    modrm(3, lo3(src8), lo3(dst8));
}

void
X64Emitter::orRegReg8(X64Reg dst8, X64Reg src8)
{
    u8(0x08);
    modrm(3, lo3(src8), lo3(dst8));
}

void
X64Emitter::leaHostAddr(X64Reg dst, X64Reg src)
{
    rex(true, static_cast<uint8_t>(dst), static_cast<uint8_t>(src), 13);
    u8(0x8d);
    heapOperand(lo3(dst), src, 0);
}

void
X64Emitter::loadHeap64(X64Reg dst, X64Reg ref, int32_t disp)
{
    rex(true, static_cast<uint8_t>(dst), static_cast<uint8_t>(ref), 13);
    u8(0x8b);
    heapOperand(lo3(dst), ref, disp);
}

void
X64Emitter::loadHeap32Sx(X64Reg dst, X64Reg ref, int32_t disp)
{
    rex(true, static_cast<uint8_t>(dst), static_cast<uint8_t>(ref), 13);
    u8(0x63);
    heapOperand(lo3(dst), ref, disp);
}

void
X64Emitter::storeHeap64(X64Reg ref, int32_t disp, X64Reg src)
{
    rex(true, static_cast<uint8_t>(src), static_cast<uint8_t>(ref), 13);
    u8(0x89);
    heapOperand(lo3(src), ref, disp);
}

void
X64Emitter::storeHeap32(X64Reg ref, int32_t disp, X64Reg src)
{
    rex(false, static_cast<uint8_t>(src), static_cast<uint8_t>(ref), 13);
    u8(0x89);
    heapOperand(lo3(src), ref, disp);
}

void
X64Emitter::loadIndexed64(X64Reg dst, X64Reg base, X64Reg idx,
                          uint8_t scale, int8_t disp)
{
    rex(true, static_cast<uint8_t>(dst), static_cast<uint8_t>(idx),
        static_cast<uint8_t>(base));
    u8(0x8b);
    indexedOperand(lo3(dst), base, idx, scale, disp);
}

void
X64Emitter::loadIndexed32Sx(X64Reg dst, X64Reg base, X64Reg idx,
                            uint8_t scale, int8_t disp)
{
    rex(true, static_cast<uint8_t>(dst), static_cast<uint8_t>(idx),
        static_cast<uint8_t>(base));
    u8(0x63);
    indexedOperand(lo3(dst), base, idx, scale, disp);
}

void
X64Emitter::storeIndexed64(X64Reg base, X64Reg idx, uint8_t scale,
                           int8_t disp, X64Reg src)
{
    rex(true, static_cast<uint8_t>(src), static_cast<uint8_t>(idx),
        static_cast<uint8_t>(base));
    u8(0x89);
    indexedOperand(lo3(src), base, idx, scale, disp);
}

void
X64Emitter::storeIndexed32(X64Reg base, X64Reg idx, uint8_t scale,
                           int8_t disp, X64Reg src)
{
    rex(false, static_cast<uint8_t>(src), static_cast<uint8_t>(idx),
        static_cast<uint8_t>(base));
    u8(0x89);
    indexedOperand(lo3(src), base, idx, scale, disp);
}

void
X64Emitter::decCtx64(uint8_t disp)
{
    rex(true, 0, 0, 12);
    u8(0xff);
    if (disp == 0) {
        modrm(0, 1, 4);
        u8(0x24); // SIB: base = r12
    } else {
        modrm(1, 1, 4);
        u8(0x24);
        u8(disp);
    }
}

void
X64Emitter::incCtx64(uint8_t disp)
{
    rex(true, 0, 0, 12);
    u8(0xff);
    if (disp == 0) {
        modrm(0, 0, 4);
        u8(0x24); // SIB: base = r12
    } else {
        modrm(1, 0, 4);
        u8(0x24);
        u8(disp);
    }
}

void
X64Emitter::storeCtx32Imm(uint8_t disp, uint32_t imm)
{
    rex(false, 0, 0, 12);
    u8(0xc7);
    modrm(1, 0, 4);
    u8(0x24);
    u8(disp);
    u32(imm);
}

void
X64Emitter::storeCtx64(uint8_t disp, X64Reg src)
{
    rex(true, static_cast<uint8_t>(src), 0, 12);
    u8(0x89);
    modrm(1, lo3(src), 4);
    u8(0x24);
    u8(disp);
}

void
X64Emitter::loadCtx64(X64Reg dst, uint8_t disp)
{
    rex(true, static_cast<uint8_t>(dst), 0, 12);
    u8(0x8b);
    modrm(1, lo3(dst), 4);
    u8(0x24);
    u8(disp);
}

void
X64Emitter::cmpCtx32Imm8(uint8_t disp, int8_t imm)
{
    rex(false, 0, 0, 12);
    u8(0x83);
    modrm(1, 7, 4);
    u8(0x24);
    u8(disp);
    u8(static_cast<uint8_t>(imm));
}

void
X64Emitter::storeMemDisp64(X64Reg base, int32_t disp, X64Reg src)
{
    TRAPJIT_ASSERT(base != X64Reg::RSP, "rsp base needs a SIB");
    rex(true, static_cast<uint8_t>(src), 0, static_cast<uint8_t>(base));
    u8(0x89);
    if (lo3(base) == 5 || disp != 0) {
        modrm(2, lo3(src), lo3(base));
        if (lo3(base) == 4)
            u8(0x24);
        u32(static_cast<uint32_t>(disp));
    } else {
        modrm(0, lo3(src), lo3(base));
        if (lo3(base) == 4)
            u8(0x24);
    }
}

void
X64Emitter::movsdLoadSlot(X64Xmm dst, uint32_t slot)
{
    u8(0xf2);
    u8(0x0f);
    u8(0x10);
    slotOperand(static_cast<uint8_t>(dst), slot);
}

void
X64Emitter::movsdStoreSlot(uint32_t slot, X64Xmm src)
{
    u8(0xf2);
    u8(0x0f);
    u8(0x11);
    slotOperand(static_cast<uint8_t>(src), slot);
}

void
X64Emitter::sseOpSlot(SseOp op, X64Xmm dst, uint32_t slot)
{
    u8(0xf2);
    u8(0x0f);
    u8(static_cast<uint8_t>(op));
    slotOperand(static_cast<uint8_t>(dst), slot);
}

void
X64Emitter::ucomisdSlot(X64Xmm a, uint32_t slot)
{
    u8(0x66);
    u8(0x0f);
    u8(0x2e);
    slotOperand(static_cast<uint8_t>(a), slot);
}

void
X64Emitter::cvtsi2sdSlot(X64Xmm dst, uint32_t slot)
{
    u8(0xf2);
    u8(0x48); // REX.W: 64-bit integer source
    u8(0x0f);
    u8(0x2a);
    slotOperand(static_cast<uint8_t>(dst), slot);
}

void
X64Emitter::movqXmmReg(X64Xmm dst, X64Reg src)
{
    u8(0x66);
    rex(true, static_cast<uint8_t>(dst), 0, static_cast<uint8_t>(src));
    u8(0x0f);
    u8(0x6e);
    modrm(3, static_cast<uint8_t>(dst), lo3(src));
}

void
X64Emitter::xorpd(X64Xmm dst, X64Xmm src)
{
    u8(0x66);
    u8(0x0f);
    u8(0x57);
    modrm(3, static_cast<uint8_t>(dst), static_cast<uint8_t>(src));
}

void
X64Emitter::andpd(X64Xmm dst, X64Xmm src)
{
    u8(0x66);
    u8(0x0f);
    u8(0x54);
    modrm(3, static_cast<uint8_t>(dst), static_cast<uint8_t>(src));
}

void
X64Emitter::repStosq()
{
    u8(0xf3);
    u8(0x48);
    u8(0xab);
}

void
X64Emitter::nop()
{
    u8(0x90);
}

void
X64Emitter::jmpLabel(int label)
{
    u8(0xe9);
    fixups_.push_back(LabelFixup{code_.size(), label});
    u32(0);
}

void
X64Emitter::jccLabel(X64Cond cond, int label)
{
    u8(0x0f);
    u8(static_cast<uint8_t>(0x80 + static_cast<uint8_t>(cond)));
    fixups_.push_back(LabelFixup{code_.size(), label});
    u32(0);
}

size_t
X64Emitter::callLabelSlot(int label)
{
    u8(0xe8);
    size_t at = code_.size();
    fixups_.push_back(LabelFixup{at, label});
    u32(0);
    return at;
}

void
X64Emitter::jmpReg(X64Reg reg)
{
    rex(false, 0, 0, static_cast<uint8_t>(reg));
    u8(0xff);
    modrm(3, 4, lo3(reg));
}

void
X64Emitter::callReg(X64Reg reg)
{
    rex(false, 0, 0, static_cast<uint8_t>(reg));
    u8(0xff);
    modrm(3, 2, lo3(reg));
}

void
X64Emitter::ret()
{
    u8(0xc3);
}

void
X64Emitter::pushReg(X64Reg reg)
{
    rex(false, 0, 0, static_cast<uint8_t>(reg));
    u8(static_cast<uint8_t>(0x50 + lo3(reg)));
}

void
X64Emitter::popReg(X64Reg reg)
{
    rex(false, 0, 0, static_cast<uint8_t>(reg));
    u8(static_cast<uint8_t>(0x58 + lo3(reg)));
}

} // namespace trapjit
