#ifndef TRAPJIT_CODEGEN_NATIVE_X64_EMITTER_H_
#define TRAPJIT_CODEGEN_NATIVE_X64_EMITTER_H_

/**
 * @file
 * Minimal x86-64 instruction encoder for the native baseline tier.
 *
 * Emits into a growable byte vector with two fixup kinds: rel32 label
 * references (forward branches, resolved by bind()+patch()) and
 * absolute imm64 placeholders (the in-buffer handler table, patched
 * after the final load address is known).  Only the encodings the
 * baseline tier needs are provided; every method appends exactly one
 * instruction so callers can measure sequences byte-for-byte (the
 * check-size accounting in codegen/check_bytes.h depends on that).
 *
 * Register discipline is the caller's: this class never allocates or
 * spills, it just encodes.  REX prefixes are derived from the operand
 * registers; r12/r13 addressing quirks (forced SIB byte, forced disp8)
 * are handled where the tier actually uses those registers.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trapjit
{

/** x86-64 general-purpose registers (hardware encoding). */
enum class X64Reg : uint8_t
{
    RAX = 0,
    RCX = 1,
    RDX = 2,
    RBX = 3,
    RSP = 4,
    RBP = 5,
    RSI = 6,
    RDI = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
};

/** SSE registers used by the tier. */
enum class X64Xmm : uint8_t
{
    XMM0 = 0,
    XMM1 = 1,
};

/** Condition codes (the 0x0F 0x8x / 0x9x low nibble). */
enum class X64Cond : uint8_t
{
    O = 0x0,
    B = 0x2,  ///< unsigned <   (CF)
    AE = 0x3, ///< unsigned >=  (!CF)
    E = 0x4,
    NE = 0x5,
    BE = 0x6, ///< unsigned <=
    A = 0x7,  ///< unsigned >
    S = 0x8,  ///< sign
    P = 0xa,  ///< parity (unordered after ucomisd)
    NP = 0xb,
    L = 0xc, ///< signed <
    GE = 0xd,
    LE = 0xe,
    G = 0xf,
};

/** Append-only encoder with label and absolute fixups. */
class X64Emitter
{
  public:
    const std::vector<uint8_t> &code() const { return code_; }
    size_t size() const { return code_.size(); }

    /** Allocate a label; bind it later (forward refs allowed). */
    int newLabel();
    void bind(int label);
    bool bound(int label) const;
    /** Offset of a bound label. */
    uint32_t labelOffset(int label) const;

    /** Resolve every rel32 label fixup; every label must be bound. */
    void patchLabels();

    // ---- moves ------------------------------------------------------
    void movRegImm64(X64Reg dst, uint64_t imm); ///< shortest encoding
    /** Always 10-byte movabs; returns the offset of the imm64. */
    size_t movRegImm64Patchable(X64Reg dst);
    void movRegReg(X64Reg dst, X64Reg src);

    // ---- slot file [rbx + slot*8], always disp32 --------------------
    void loadSlot(X64Reg dst, uint32_t slot);      ///< mov r64, [slot]
    void loadSlot32(X64Reg dst, uint32_t slot);    ///< mov r32, [slot]
    void loadSlotSx32(X64Reg dst, uint32_t slot);  ///< movsxd r64, [slot]
    void storeSlot(uint32_t slot, X64Reg src);     ///< mov [slot], r64

    // ---- ALU --------------------------------------------------------
    enum class Alu : uint8_t
    {
        Add = 0x00,
        Or = 0x08,
        And = 0x20,
        Sub = 0x28,
        Xor = 0x30,
        Cmp = 0x38,
    };
    /** op dst, [rbx + slot*8]; wide64 picks 64- vs 32-bit width. */
    void aluRegSlot(Alu op, X64Reg dst, uint32_t slot, bool wide64);
    void aluRegReg(Alu op, X64Reg dst, X64Reg src, bool wide64);
    /** op reg, imm32 (sign-extended when wide64). */
    void aluRegImm32(Alu op, X64Reg reg, int32_t imm, bool wide64);
    /** op qword/dword [rbx + slot*8], imm32. */
    void aluSlotImm32(Alu op, uint32_t slot, int32_t imm, bool wide64);
    void decReg64(X64Reg reg); ///< dec r64
    void imulRegSlot(X64Reg dst, uint32_t slot, bool wide64);
    void imulRegReg(X64Reg dst, X64Reg src, bool wide64);
    void negReg(X64Reg reg, bool wide64);
    void notReg(X64Reg reg, bool wide64);
    void cqo();                 ///< sign-extend rax into rdx:rax
    void idivReg(X64Reg reg);   ///< 64-bit signed divide by reg
    enum class Shift : uint8_t
    {
        Shl = 4,
        Shr = 5,
        Sar = 7,
    };
    void shiftRegCl(Shift op, X64Reg reg, bool wide64);
    void testRegReg(X64Reg a, X64Reg b, bool wide64);
    void cmpRegImm8(X64Reg reg, int8_t imm, bool wide64);
    void movsxdRegReg(X64Reg dst, X64Reg src); ///< movsxd r64, r32
    void setcc(X64Cond cond, X64Reg reg8);
    void movzxRegReg8(X64Reg dst, X64Reg src8);
    void andRegReg8(X64Reg dst8, X64Reg src8);
    void orRegReg8(X64Reg dst8, X64Reg src8);

    // ---- heap addressing (r13 = host bias) --------------------------
    /** lea dst, [r13 + src] — simulated address to host address. */
    void leaHostAddr(X64Reg dst, X64Reg src);
    /** mov dst, [r13 + ref + disp32] (64-bit load). */
    void loadHeap64(X64Reg dst, X64Reg ref, int32_t disp);
    /** movsxd dst, dword [r13 + ref + disp32]. */
    void loadHeap32Sx(X64Reg dst, X64Reg ref, int32_t disp);
    /** mov [r13 + ref + disp32], src (64-bit store). */
    void storeHeap64(X64Reg ref, int32_t disp, X64Reg src);
    /** mov dword [r13 + ref + disp32], src32. */
    void storeHeap32(X64Reg ref, int32_t disp, X64Reg src);
    /** mov dst, [base + idx*scale + disp8]. scale in {4, 8}. */
    void loadIndexed64(X64Reg dst, X64Reg base, X64Reg idx, uint8_t scale,
                       int8_t disp);
    void loadIndexed32Sx(X64Reg dst, X64Reg base, X64Reg idx,
                         uint8_t scale, int8_t disp);
    void storeIndexed64(X64Reg base, X64Reg idx, uint8_t scale,
                        int8_t disp, X64Reg src);
    void storeIndexed32(X64Reg base, X64Reg idx, uint8_t scale,
                        int8_t disp, X64Reg src);

    // ---- NativeContext fields [r12 + disp] --------------------------
    void decCtx64(uint8_t disp);                  ///< dec qword [r12+disp]
    void incCtx64(uint8_t disp);                  ///< inc qword [r12+disp]
    void storeCtx32Imm(uint8_t disp, uint32_t imm);
    void storeCtx64(uint8_t disp, X64Reg src);
    void loadCtx64(X64Reg dst, uint8_t disp);     ///< mov r64, [r12+disp]
    void cmpCtx32Imm8(uint8_t disp, int8_t imm);  ///< cmp dword [r12+d], i8

    // ---- memory through a plain base register -----------------------
    /** mov [base + disp32], src (64-bit store; base must not be rsp). */
    void storeMemDisp64(X64Reg base, int32_t disp, X64Reg src);

    // ---- SSE (scalar double) ----------------------------------------
    void movsdLoadSlot(X64Xmm dst, uint32_t slot);
    void movsdStoreSlot(uint32_t slot, X64Xmm src);
    enum class SseOp : uint8_t
    {
        Add = 0x58,
        Mul = 0x59,
        Sub = 0x5c,
        Div = 0x5e,
        Sqrt = 0x51,
    };
    /** F2 0F op xmm, [rbx + slot*8]. */
    void sseOpSlot(SseOp op, X64Xmm dst, uint32_t slot);
    void ucomisdSlot(X64Xmm a, uint32_t slot); ///< ucomisd a, [slot]
    void cvtsi2sdSlot(X64Xmm dst, uint32_t slot); ///< from qword [slot]
    void movqXmmReg(X64Xmm dst, X64Reg src);
    void xorpd(X64Xmm dst, X64Xmm src);
    void andpd(X64Xmm dst, X64Xmm src);

    // ---- string / misc ----------------------------------------------
    void repStosq(); ///< rep stosq: rcx quadwords of rax at [rdi]
    void nop();      ///< single-byte 0x90

    // ---- control flow -----------------------------------------------
    void jmpLabel(int label);            ///< jmp rel32
    void jccLabel(X64Cond cond, int label); ///< jcc rel32
    /**
     * call rel32 whose displacement field is a patchable slot.  The
     * rel32 initially resolves to `label` (via patchLabels); returns
     * the offset of the 4-byte displacement so the runtime can later
     * retarget the call with a single aligned 32-bit store.
     */
    size_t callLabelSlot(int label);
    void jmpReg(X64Reg reg);
    void callReg(X64Reg reg);
    void ret();
    void pushReg(X64Reg reg);
    void popReg(X64Reg reg);
    void movRegImm32(X64Reg dst, uint32_t imm); ///< mov r32, imm32

  private:
    struct LabelFixup
    {
        size_t at; ///< offset of the rel32 field
        int label;
    };

    void u8(uint8_t b) { code_.push_back(b); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void rex(bool w, uint8_t reg, uint8_t index, uint8_t base);
    void modrm(uint8_t mod, uint8_t reg, uint8_t rm);
    /** ModRM+SIB+disp32 for [rbx + slot*8]. */
    void slotOperand(uint8_t reg, uint32_t slot);
    /** ModRM+SIB+disp32 for [r13 + ref + disp]. */
    void heapOperand(uint8_t reg, X64Reg ref, int32_t disp);
    /** ModRM+SIB+disp8 for [base + idx*scale + disp8]. */
    void indexedOperand(uint8_t reg, X64Reg base, X64Reg idx,
                        uint8_t scale, int8_t disp);

    std::vector<uint8_t> code_;
    std::vector<int32_t> labels_; ///< bound offset, or -1
    std::vector<LabelFixup> fixups_;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_NATIVE_X64_EMITTER_H_
