#include "codegen/scheduler.h"

#include <algorithm>
#include <vector>

#include "interp/cost_model.h"

namespace trapjit
{

namespace
{

/** Order-pinned: a Java program can observe this instruction's order. */
bool
isPinned(const Function &func, const Instruction &inst, bool in_try)
{
    switch (inst.op) {
      case Opcode::NullCheck:
      case Opcode::BoundCheck:
      case Opcode::IDiv:
      case Opcode::IRem:
      case Opcode::Call:
      case Opcode::NewObject:
      case Opcode::NewArray:
      case Opcode::Throw:
      case Opcode::PutField:
      case Opcode::ArrayStore:
        return true;
      default:
        break;
    }
    if (inst.exceptionSite)
        return true;
    // Any access that requires a non-null base must not move across the
    // checks (explicit or implicit) that guard it.
    if (inst.checkedRef() != kNoValue)
        return true;
    if (in_try && inst.hasDst() && func.value(inst.dst).isLocal())
        return true;
    return false;
}

bool
readsMemory(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::GetField:
      case Opcode::ArrayLength:
      case Opcode::ArrayLoad:
        return true;
      case Opcode::Call:
        return true;
      default:
        return false;
    }
}

bool
writesMemoryOp(const Instruction &inst)
{
    return inst.writesMemory();
}

} // namespace

bool
LocalScheduler::runOnFunction(Function &func, PassContext &ctx)
{
    bool changed = false;
    std::vector<ValueId> uses;

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool inTry = bb.tryRegion() != 0;
        auto &insts = bb.insts();
        if (insts.size() < 3)
            continue;
        const size_t n = insts.size() - 1; // terminator stays last

        // Dependence edges: succs[i] = instructions that must follow i.
        std::vector<std::vector<size_t>> succs(n);
        std::vector<size_t> npreds(n, 0);
        auto addEdge = [&](size_t from, size_t to) {
            succs[from].push_back(to);
            ++npreds[to];
        };

        // Last def and uses-so-far per value (value ids are sparse; a
        // small map vector keyed by ValueId suffices).
        std::vector<int> lastDef(func.numValues(), -1);
        std::vector<std::vector<size_t>> lastUses(func.numValues());
        int lastPinned = -1;
        int lastMemWrite = -1;
        std::vector<size_t> memReadsSinceWrite;

        for (size_t i = 0; i < n; ++i) {
            const Instruction &inst = insts[i];

            uses.clear();
            inst.forEachUse(uses);
            for (ValueId u : uses) {
                if (lastDef[u] >= 0)
                    addEdge(static_cast<size_t>(lastDef[u]), i); // RAW
                lastUses[u].push_back(i);
            }
            if (inst.hasDst()) {
                ValueId d = inst.dst;
                if (lastDef[d] >= 0)
                    addEdge(static_cast<size_t>(lastDef[d]), i); // WAW
                for (size_t use : lastUses[d])
                    if (use != i)
                        addEdge(use, i); // WAR
                lastUses[d].clear();
                lastDef[d] = static_cast<int>(i);
            }

            if (writesMemoryOp(inst)) {
                if (lastMemWrite >= 0)
                    addEdge(static_cast<size_t>(lastMemWrite), i);
                for (size_t r : memReadsSinceWrite)
                    addEdge(r, i);
                memReadsSinceWrite.clear();
                lastMemWrite = static_cast<int>(i);
            } else if (readsMemory(inst)) {
                if (lastMemWrite >= 0)
                    addEdge(static_cast<size_t>(lastMemWrite), i);
                memReadsSinceWrite.push_back(i);
            }

            if (isPinned(func, inst, inTry)) {
                if (lastPinned >= 0)
                    addEdge(static_cast<size_t>(lastPinned), i);
                lastPinned = static_cast<int>(i);
            }
        }

        // Critical-path priority (longest latency path to any sink).
        std::vector<double> priority(n, 0.0);
        for (size_t ri = n; ri-- > 0;) {
            double best = 0.0;
            for (size_t s : succs[ri])
                best = std::max(best, priority[s]);
            priority[ri] = best + instructionCost(insts[ri], ctx.target);
        }

        // Greedy list schedule: among ready instructions pick the one
        // with the highest priority (ties broken by program order).
        std::vector<size_t> ready;
        for (size_t i = 0; i < n; ++i)
            if (npreds[i] == 0)
                ready.push_back(i);
        std::vector<size_t> sequence;
        sequence.reserve(n);
        while (!ready.empty()) {
            size_t bestIdx = 0;
            for (size_t k = 1; k < ready.size(); ++k) {
                if (priority[ready[k]] > priority[ready[bestIdx]] ||
                    (priority[ready[k]] == priority[ready[bestIdx]] &&
                     ready[k] < ready[bestIdx])) {
                    bestIdx = k;
                }
            }
            size_t chosen = ready[bestIdx];
            ready.erase(ready.begin() + static_cast<long>(bestIdx));
            sequence.push_back(chosen);
            for (size_t s : succs[chosen])
                if (--npreds[s] == 0)
                    ready.push_back(s);
        }

        bool reordered = false;
        for (size_t i = 0; i < n; ++i)
            if (sequence[i] != i)
                reordered = true;
        if (!reordered)
            continue;

        std::vector<Instruction> rebuilt;
        rebuilt.reserve(insts.size());
        for (size_t idx : sequence)
            rebuilt.push_back(std::move(insts[idx]));
        rebuilt.push_back(std::move(insts.back()));
        insts = std::move(rebuilt);
        changed = true;
    }
    return changed;
}

} // namespace trapjit
