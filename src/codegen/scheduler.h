#ifndef TRAPJIT_CODEGEN_SCHEDULER_H_
#define TRAPJIT_CODEGEN_SCHEDULER_H_

/**
 * @file
 * Block-local list scheduling.
 *
 * The pass reorders independent instructions within each block by
 * critical-path priority — the instruction-level optimization the paper
 * warns about in Section 3.3.2: once a null check has been converted to
 * a hardware trap, its access is marked as the *exception site*, and
 * the scheduler must not move observable operations across it.  The
 * dependence rules therefore pin the relative order of everything whose
 * order a Java program can observe:
 *
 *  - data dependences (def-use, anti, output) on the same value;
 *  - memory writes are ordered against all other memory operations;
 *  - checks, throwers, calls, allocations, exception-site-marked
 *    accesses, and (inside try regions) local-variable writes keep
 *    their mutual program order;
 *  - the terminator stays last.
 *
 * The equivalence property suite exercises this pass on every random
 * program, and a dedicated unit test asserts that marked exception
 * sites never move relative to observable instructions.
 */

#include "opt/pass.h"

namespace trapjit
{

/** Dependency-respecting block-local instruction scheduler. */
class LocalScheduler : public Pass
{
  public:
    const char *name() const override { return "local-scheduler"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;
};

} // namespace trapjit

#endif // TRAPJIT_CODEGEN_SCHEDULER_H_
