#include "interp/cost_model.h"

namespace trapjit
{

double
instructionCost(const Instruction &inst, const Target &target)
{
    switch (inst.op) {
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::ConstNull:
        return target.constCycles;
      case Opcode::Move:
        return target.moveCycles;
      case Opcode::IAdd: case Opcode::ISub: case Opcode::INeg:
      case Opcode::IAnd: case Opcode::IOr: case Opcode::IXor:
      case Opcode::IShl: case Opcode::IShr: case Opcode::IUshr:
        return target.intAluCycles;
      case Opcode::IMul:
        return target.intMulCycles;
      case Opcode::IDiv:
      case Opcode::IRem:
        return target.intDivCycles;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FNeg:
      case Opcode::FAbs:
        return target.floatAluCycles;
      case Opcode::FMul:
        return target.floatMulCycles;
      case Opcode::FDiv:
        return target.floatDivCycles;
      case Opcode::FExp: case Opcode::FSqrt: case Opcode::FSin:
      case Opcode::FCos: case Opcode::FLog:
        return target.mathIntrinsicCycles;
      case Opcode::I2F: case Opcode::F2I: case Opcode::I2L:
      case Opcode::L2I:
        return target.intAluCycles;
      case Opcode::ICmp:
      case Opcode::FCmp:
        return target.intAluCycles;
      case Opcode::NullCheck:
        // This is the crux of the whole paper: an explicit check costs
        // real cycles on every execution, an implicit one costs nothing
        // (its cost is the trap dispatch, charged only when taken).
        return inst.flavor == CheckFlavor::Explicit
                   ? target.explicitNullCheckCycles
                   : 0.0;
      case Opcode::BoundCheck:
        return target.boundCheckCycles;
      case Opcode::GetField:
        return target.loadCycles;
      case Opcode::PutField:
        return target.storeCycles;
      case Opcode::ArrayLength:
        return target.loadCycles;
      case Opcode::ArrayLoad:
        return target.loadCycles + target.arrayAccessExtraCycles;
      case Opcode::ArrayStore:
        return target.storeCycles + target.arrayAccessExtraCycles;
      case Opcode::NewObject:
      case Opcode::NewArray:
        return target.allocBaseCycles; // + per-byte, added by interpreter
      case Opcode::Call: {
        double cost = target.callOverheadCycles;
        if (inst.callKind == CallKind::Virtual)
            cost += target.virtualDispatchExtraCycles;
        return cost;
      }
      case Opcode::Jump:
        return target.jumpCycles;
      case Opcode::Branch:
      case Opcode::IfNull:
        return target.branchCycles;
      case Opcode::Return:
        return target.jumpCycles;
      case Opcode::Throw:
        return target.throwCycles;
      case Opcode::Nop:
        return 0.0;
    }
    return 1.0;
}

} // namespace trapjit
