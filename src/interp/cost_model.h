#ifndef TRAPJIT_INTERP_COST_MODEL_H_
#define TRAPJIT_INTERP_COST_MODEL_H_

/**
 * @file
 * Per-instruction cycle cost model.
 *
 * The experiments do not run on a Pentium III; instead the interpreter
 * charges each executed instruction a cycle cost taken from the Target.
 * What matters for reproducing the paper's tables is the *relative* cost
 * structure: explicit null checks cost real cycles (2 on IA32, 1 on a
 * PowerPC conditional trap), implicit null checks cost nothing until
 * taken, loads/stores dominate array kernels, and calls are expensive
 * enough that inlining small accessors matters.
 */

#include "arch/target.h"
#include "ir/instruction.h"

namespace trapjit
{

/**
 * Cycles charged for executing @p inst once (not counting a callee's own
 * cycles for Call, nor exceptional dispatch).
 */
double instructionCost(const Instruction &inst, const Target &target);

} // namespace trapjit

#endif // TRAPJIT_INTERP_COST_MODEL_H_
