#include "interp/decoded_program.h"

#include "interp/cost_model.h"
#include "ir/serializer.h"
#include "support/diagnostics.h"

namespace trapjit
{

uint64_t
cyclesToEighths(double cycles)
{
    double scaled = cycles * 8.0;
    auto eighths = static_cast<uint64_t>(scaled);
    TRAPJIT_ASSERT(cycles >= 0.0 && static_cast<double>(eighths) == scaled,
                   "cycle cost ", cycles,
                   " is not a non-negative multiple of 1/8 — the fast "
                   "engine's integer cycle accumulation needs dyadic "
                   "costs (see cyclesToEighths)");
    return eighths;
}

namespace
{

DecodedOp
baseDecodedOp(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt: return DecodedOp::ConstInt;
      case Opcode::ConstFloat: return DecodedOp::ConstFloat;
      case Opcode::ConstNull: return DecodedOp::ConstNull;
      case Opcode::Move: return DecodedOp::Move;
      case Opcode::IAdd: return DecodedOp::IAdd;
      case Opcode::ISub: return DecodedOp::ISub;
      case Opcode::IMul: return DecodedOp::IMul;
      case Opcode::IDiv: return DecodedOp::IDiv;
      case Opcode::IRem: return DecodedOp::IRem;
      case Opcode::INeg: return DecodedOp::INeg;
      case Opcode::IAnd: return DecodedOp::IAnd;
      case Opcode::IOr: return DecodedOp::IOr;
      case Opcode::IXor: return DecodedOp::IXor;
      case Opcode::IShl: return DecodedOp::IShl;
      case Opcode::IShr: return DecodedOp::IShr;
      case Opcode::IUshr: return DecodedOp::IUshr;
      case Opcode::FAdd: return DecodedOp::FAdd;
      case Opcode::FSub: return DecodedOp::FSub;
      case Opcode::FMul: return DecodedOp::FMul;
      case Opcode::FDiv: return DecodedOp::FDiv;
      case Opcode::FNeg: return DecodedOp::FNeg;
      case Opcode::FExp: return DecodedOp::FExp;
      case Opcode::FSqrt: return DecodedOp::FSqrt;
      case Opcode::FSin: return DecodedOp::FSin;
      case Opcode::FCos: return DecodedOp::FCos;
      case Opcode::FAbs: return DecodedOp::FAbs;
      case Opcode::FLog: return DecodedOp::FLog;
      case Opcode::I2F: return DecodedOp::I2F;
      case Opcode::F2I: return DecodedOp::F2I;
      case Opcode::I2L: return DecodedOp::I2L;
      case Opcode::L2I: return DecodedOp::L2I;
      case Opcode::ICmp: return DecodedOp::ICmp;
      case Opcode::FCmp: return DecodedOp::FCmp;
      case Opcode::NullCheck: return DecodedOp::NullCheck;
      case Opcode::BoundCheck: return DecodedOp::BoundCheck;
      case Opcode::GetField: return DecodedOp::GetField;
      case Opcode::PutField: return DecodedOp::PutField;
      case Opcode::ArrayLength: return DecodedOp::ArrayLength;
      case Opcode::ArrayLoad: return DecodedOp::ArrayLoad;
      case Opcode::ArrayStore: return DecodedOp::ArrayStore;
      case Opcode::NewObject: return DecodedOp::NewObject;
      case Opcode::NewArray: return DecodedOp::NewArray;
      case Opcode::Call: return DecodedOp::Call;
      case Opcode::Jump: return DecodedOp::Jump;
      case Opcode::Branch: return DecodedOp::Branch;
      case Opcode::IfNull: return DecodedOp::IfNull;
      case Opcode::Return: return DecodedOp::Return;
      case Opcode::Throw: return DecodedOp::Throw;
      case Opcode::Nop: return DecodedOp::Nop;
    }
    TRAPJIT_PANIC("unreachable opcode");
}

/** The fused handler for an adjacent (first, second) pair, or Nop. */
DecodedOp
fusedOpFor(DecodedOp first, DecodedOp second)
{
    switch (first) {
      case DecodedOp::NullCheck:
        if (second == DecodedOp::GetField)
            return DecodedOp::FusedNullCheckGetField;
        if (second == DecodedOp::Call)
            return DecodedOp::FusedNullCheckCall;
        if (second == DecodedOp::ArrayLength)
            return DecodedOp::FusedNullCheckArrayLength;
        if (second == DecodedOp::PutField)
            return DecodedOp::FusedNullCheckPutField;
        break;
      case DecodedOp::BoundCheck:
        if (second == DecodedOp::ArrayLoad)
            return DecodedOp::FusedBoundCheckArrayLoad;
        if (second == DecodedOp::ArrayStore)
            return DecodedOp::FusedBoundCheckArrayStore;
        break;
      case DecodedOp::ICmp:
        if (second == DecodedOp::Branch)
            return DecodedOp::FusedICmpBranch;
        break;
      case DecodedOp::FCmp:
        if (second == DecodedOp::Branch)
            return DecodedOp::FusedFCmpBranch;
        break;
      case DecodedOp::ConstInt:
        if (second == DecodedOp::IAdd)
            return DecodedOp::FusedConstIntIAdd;
        break;
      default:
        break;
    }
    return DecodedOp::Nop;
}

DecodedInst
decodeInst(const Function &fn, const Instruction &inst,
           const Target &target, TryRegionId region,
           std::vector<ValueId> &arg_pool)
{
    DecodedInst d;
    d.op = baseDecodedOp(inst.op);
    d.srcOp = inst.op;
    d.pred = inst.pred;
    d.flavor = inst.flavor;
    d.callKind = inst.callKind;
    d.dst = inst.dst;
    d.a = inst.a;
    d.b = inst.b;
    d.c = inst.c;
    d.imm = inst.imm;
    d.imm2 = inst.imm2;
    d.fimm = inst.fimm;
    d.cost8 = cyclesToEighths(instructionCost(inst, target));
    d.site = inst.site;
    d.tryRegion = region;

    switch (inst.op) {
      case Opcode::GetField:
        d.type = fn.value(inst.dst).type;
        break;
      case Opcode::PutField:
        d.type = fn.value(inst.b).type;
        break;
      case Opcode::ArrayLoad:
      case Opcode::ArrayStore:
      case Opcode::NewArray:
        d.type = inst.elemType;
        break;
      default:
        break;
    }

    if (inst.dst != kNoValue && fn.value(inst.dst).type == Type::I32)
        d.flags |= kDecodedNarrowDst;
    if (inst.exceptionSite)
        d.flags |= kDecodedExceptionSite;
    if (inst.speculative)
        d.flags |= kDecodedSpeculative;
    if (target.trapCovers(inst))
        d.flags |= kDecodedTrapCovered;
    if (inst.slotAccess() == SlotAccess::Read) {
        int64_t offset = inst.slotOffset();
        if (target.readIsSpeculationSafe(offset))
            d.flags |= kDecodedSpecSafe;
        if (target.readOfNullPageYieldsZero && offset >= 0 &&
            offset < target.trapAreaBytes)
            d.flags |= kDecodedIllegalZero;
    }

    if (!inst.args.empty()) {
        d.argsBegin = static_cast<uint32_t>(arg_pool.size());
        d.argsCount = static_cast<uint32_t>(inst.args.size());
        arg_pool.insert(arg_pool.end(), inst.args.begin(),
                        inst.args.end());
    }
    return d;
}

void
fuseSuperinstructions(DecodedFunction &df)
{
    const size_t num_blocks = df.blockStart.size();
    for (size_t b = 0; b < num_blocks; ++b) {
        size_t begin = df.blockStart[b];
        size_t end = b + 1 < num_blocks ? df.blockStart[b + 1]
                                        : df.code.size();
        for (size_t i = begin; i + 1 < end;) {
            // Longest patterns first.  The counted-loop latch quint: the
            // exact back-edge sequence CountedLoop-style loops end with.
            if (i + 4 < end && df.code[i].op == DecodedOp::ConstInt &&
                df.code[i + 1].op == DecodedOp::IAdd &&
                df.code[i + 2].op == DecodedOp::Move &&
                df.code[i + 3].op == DecodedOp::ICmp &&
                df.code[i + 4].op == DecodedOp::Branch) {
                df.code[i].op = DecodedOp::FusedLoopLatch;
                df.info.fusedPairs += 4; // four dispatches elided
                i += 5;
                continue;
            }
            // The checked-array-access quad next: it subsumes the
            // NullCheck+ArrayLength and BoundCheck+ArrayLoad/Store
            // pairs the greedy scan would otherwise pick.  Operands
            // must be wired the way the front end emits them (one ref
            // through all four records, the length feeding the check,
            // the checked index feeding the access) — that is what lets
            // the quad handler skip every re-verification in the access
            // tail without changing semantics.  Mismatched sequences
            // fall back to generic pair fusion below.
            if (i + 3 < end && df.code[i].op == DecodedOp::NullCheck &&
                df.code[i + 1].op == DecodedOp::ArrayLength &&
                df.code[i + 2].op == DecodedOp::BoundCheck &&
                (df.code[i + 3].op == DecodedOp::ArrayLoad ||
                 df.code[i + 3].op == DecodedOp::ArrayStore)) {
                const DecodedInst &nc = df.code[i];
                const DecodedInst &al = df.code[i + 1];
                const DecodedInst &bc = df.code[i + 2];
                const DecodedInst &ac = df.code[i + 3];
                if (nc.a == al.a && al.a == ac.a && al.dst == bc.b &&
                    bc.a == ac.b) {
                    df.code[i].op =
                        ac.op == DecodedOp::ArrayLoad
                            ? DecodedOp::FusedArrayLoadQuad
                            : DecodedOp::FusedArrayStoreQuad;
                    df.info.fusedPairs += 3; // three dispatches elided
                    i += 4;
                    continue;
                }
            }
            DecodedOp fused =
                fusedOpFor(df.code[i].op, df.code[i + 1].op);
            if (fused != DecodedOp::Nop) {
                df.code[i].op = fused;
                ++df.info.fusedPairs;
                i += 2; // the pair is consumed; no overlapping fusion
            } else {
                ++i;
            }
        }
    }
}

} // namespace

std::shared_ptr<const DecodedFunction>
decodeFunction(const Function &fn, const Target &target,
               const DecodeOptions &options)
{
    auto df = std::make_shared<DecodedFunction>();
    df->id = fn.id();
    df->name = fn.name();
    df->returnType = fn.returnType();
    df->numParams = fn.numParams();
    df->numValues = static_cast<uint32_t>(fn.numValues());
    df->code.reserve(fn.instructionCount());
    df->blockStart.reserve(fn.numBlocks());

    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock &bb = fn.block(b);
        df->blockStart.push_back(static_cast<uint32_t>(df->code.size()));
        TRAPJIT_ASSERT(bb.isTerminated(), "unterminated block ", b,
                       " in ", fn.name());
        for (const Instruction &inst : bb.insts())
            df->code.push_back(decodeInst(fn, inst, target,
                                          bb.tryRegion(), df->argPool));
    }
    df->info.instructions = static_cast<uint32_t>(df->code.size());

    // Branch targets become stream indices now that every block start
    // is known.
    for (DecodedInst &d : df->code) {
        switch (d.srcOp) {
          case Opcode::Jump:
            d.target = df->blockStart[static_cast<size_t>(d.imm)];
            break;
          case Opcode::Branch:
          case Opcode::IfNull:
            d.target = df->blockStart[static_cast<size_t>(d.imm)];
            d.target2 = df->blockStart[static_cast<size_t>(d.imm2)];
            break;
          default:
            break;
        }
    }

    df->tryRegions.reserve(fn.numTryRegions());
    for (TryRegionId r = 0; r < fn.numTryRegions(); ++r) {
        const TryRegion &region = fn.tryRegion(r);
        DecodedTryRegion decoded;
        decoded.catches = region.catches;
        decoded.parent = region.parent;
        decoded.handlerIndex =
            region.handlerBlock == kNoBlock
                ? 0
                : df->blockStart[region.handlerBlock];
        df->tryRegions.push_back(decoded);
    }

    if (options.fuse)
        fuseSuperinstructions(*df);
    return df;
}

Hash128
decodedProgramKey(const Function &fn, const Target &target,
                  const DecodeOptions &options)
{
    Hasher hasher;
    std::string body = serializeFunctionToString(fn);
    hasher.update(static_cast<uint64_t>(body.size()));
    hasher.update(body);
    std::string fingerprint = targetFingerprint(target);
    hasher.update(static_cast<uint64_t>(fingerprint.size()));
    hasher.update(fingerprint);
    hasher.update(static_cast<uint64_t>(options.fuse ? 1 : 0));
    return hasher.digest();
}

} // namespace trapjit
