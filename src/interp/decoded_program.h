#ifndef TRAPJIT_INTERP_DECODED_PROGRAM_H_
#define TRAPJIT_INTERP_DECODED_PROGRAM_H_

/**
 * @file
 * Pre-decoded execution form of a Function.
 *
 * The reference interpreter (interp/interpreter.h) re-derives everything
 * it needs on every executed instruction: operand register ids through
 * the Instruction struct, the destination type for I32 truncation, the
 * per-instruction cycle cost through instructionCost()'s switch, and the
 * target's trap-coverage verdict through Target::trapCovers().  All of
 * that is loop-invariant: none of it can change between two executions
 * of the same instruction under the same target.
 *
 * A DecodedFunction flattens the block structure into one contiguous
 * stream of fixed-size DecodedInst records with every such decision made
 * once, at decode time:
 *
 *  - branch targets are stream indices, not block ids;
 *  - exception-handler entry points are stream indices, reached through
 *    a copied try-region table;
 *  - the cycle cost is a precomputed integer in *eighth-cycles* (every
 *    cost in the model is a dyadic multiple of 1/8, so each double
 *    addition in the reference engine's serial fold is exact and an
 *    integer sum converted once at the end reproduces that fold bit
 *    for bit — see cyclesToEighths());
 *  - the trap-relevant verdicts (exception site? speculative? would the
 *    access at this offset trap on this target? is the speculated read
 *    safe? does the illegal-implicit silent-zero arm apply?) are baked
 *    into one flags byte;
 *  - Call argument lists live in a shared pool indexed by the record.
 *
 * On top of the flat stream a *superinstruction fusion* pass merges the
 * adjacent pairs that the paper's optimization creates or removes
 * (NullCheck+GetField, NullCheck+Call, BoundCheck+ArrayLoad/ArrayStore,
 * ICmp/FCmp+Branch, ConstInt+IAdd) into a single dispatch.  Fusion only
 * rewrites the *handler* of the first record of a pair — the second
 * record stays in the stream, so stream indices (and therefore branch
 * and handler targets) are unchanged, and the fused handler simply
 * executes both records before the next dispatch.  Pairs are only fused
 * within one basic block; since control can enter a block only at its
 * first instruction, the second half of a pair is never a jump target.
 *
 * Execution of the decoded form lives in interp/fast_interpreter.h and
 * is asserted bit-identical to the reference interpreter by
 * tests/test_interp_differential.cpp.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/target.h"
#include "ir/function.h"
#include "ir/module.h"
#include "support/hash.h"

namespace trapjit
{

/**
 * Handler selector of a decoded record: one value per Opcode plus one
 * per fused pair.  The fast interpreter indexes its dispatch table (or
 * switch) with this.
 */
enum class DecodedOp : uint8_t
{
    ConstInt, ConstFloat, ConstNull, Move,
    IAdd, ISub, IMul, IDiv, IRem, INeg, IAnd, IOr, IXor,
    IShl, IShr, IUshr,
    FAdd, FSub, FMul, FDiv, FNeg,
    FExp, FSqrt, FSin, FCos, FAbs, FLog,
    I2F, F2I, I2L, L2I,
    ICmp, FCmp,
    NullCheck, BoundCheck,
    GetField, PutField, ArrayLength, ArrayLoad, ArrayStore,
    NewObject, NewArray,
    Call,
    Jump, Branch, IfNull, Return, Throw,
    Nop,

    // Superinstructions: the fused handler executes this record and the
    // one immediately after it in the stream.
    FusedNullCheckGetField,
    FusedNullCheckCall,
    FusedBoundCheckArrayLoad,
    FusedBoundCheckArrayStore,
    FusedICmpBranch,
    FusedFCmpBranch,
    FusedConstIntIAdd,
    FusedNullCheckArrayLength,
    FusedNullCheckPutField,

    // Quad superinstructions: a fully checked array access
    // (NullCheck; ArrayLength; BoundCheck; ArrayLoad/Store) — the exact
    // four-record sequence the front end emits for every a[i] — runs as
    // ONE dispatch.  The handler executes each of the four records
    // faithfully, slow paths included.
    FusedArrayLoadQuad,
    FusedArrayStoreQuad,

    // Counted-loop latch (ConstInt; IAdd; Move; ICmp; Branch) — the
    // five-record back edge every counted loop ends with — as one
    // dispatch.  Purely dispatch elision: each record executes
    // generically on its own operands.
    FusedLoopLatch,

    Count,
};

/** Number of distinct handlers (size of the dispatch table). */
constexpr size_t kNumDecodedOps = static_cast<size_t>(DecodedOp::Count);

/** Flag bits of DecodedInst::flags. */
enum : uint8_t
{
    /** Destination is I32: integer results truncate to 32 bits. */
    kDecodedNarrowDst = 1u << 0,
    /** Instruction::exceptionSite was set (implicit-check trap site). */
    kDecodedExceptionSite = 1u << 1,
    /** Instruction::speculative was set (read hoisted above its check). */
    kDecodedSpeculative = 1u << 2,
    /** Target::trapCovers() said yes for this instruction. */
    kDecodedTrapCovered = 1u << 3,
    /** Read at this offset is speculation-safe on this target. */
    kDecodedSpecSafe = 1u << 4,
    /** The Section 5.4 silent-zero read applies on this target. */
    kDecodedIllegalZero = 1u << 5,
};

/** One pre-decoded instruction record. */
struct DecodedInst
{
    DecodedOp op = DecodedOp::Nop; ///< handler selector (may be fused)
    Opcode srcOp = Opcode::Nop;    ///< original opcode, for diagnostics
    uint8_t flags = 0;             ///< kDecoded* bits
    CmpPred pred = CmpPred::EQ;
    CheckFlavor flavor = CheckFlavor::Explicit;
    CallKind callKind = CallKind::Static;
    Type type = Type::Void; ///< value type of the memory access / element

    ValueId dst = kNoValue;
    ValueId a = kNoValue;
    ValueId b = kNoValue;
    ValueId c = kNoValue;

    uint32_t target = 0;  ///< taken / jump stream index
    uint32_t target2 = 0; ///< fall-through stream index (Branch/IfNull)

    int64_t imm = 0;
    int64_t imm2 = 0;
    double fimm = 0.0;

    uint64_t cost8 = 0;  ///< instructionCost(inst, target) in 1/8 cycles

    uint32_t argsBegin = 0; ///< offset into DecodedFunction::argPool
    uint32_t argsCount = 0;

    SiteId site = 0;
    TryRegionId tryRegion = 0; ///< region of the owning block
};

/** A try region with its handler resolved to a stream index. */
struct DecodedTryRegion
{
    uint32_t handlerIndex = 0;
    ExcKind catches = ExcKind::CatchAll;
    TryRegionId parent = 0;
};

/** Decode-time knobs. */
struct DecodeOptions
{
    /** Run the superinstruction fusion pass after flattening. */
    bool fuse = true;
};

/** What decoding one function produced (sizes and fusion counts). */
struct DecodeInfo
{
    uint32_t instructions = 0; ///< decoded records
    uint32_t fusedPairs = 0;   ///< records rewritten to a Fused* handler
};

/** The immutable decoded form of one Function under one Target. */
struct DecodedFunction
{
    FunctionId id = kNoFunction;
    std::string name;
    Type returnType = Type::Void;
    uint32_t numParams = 0;
    uint32_t numValues = 0;

    std::vector<DecodedInst> code;
    std::vector<uint32_t> blockStart;          ///< BlockId -> stream index
    std::vector<ValueId> argPool;              ///< Call argument lists
    std::vector<DecodedTryRegion> tryRegions;  ///< index 0 unused ("none")

    DecodeInfo info;
};

/**
 * Convert a cycle cost to integer eighth-cycles.  Asserts that @p
 * cycles is a non-negative multiple of 1/8: that property is what makes
 * every addition in the reference engine's serial double fold exact, so
 * the fast engine's integer accumulation (converted back once per
 * flush) is bit-identical to it.  A future cost model introducing
 * finer-grained costs only needs a bigger power-of-two scale here.
 */
uint64_t cyclesToEighths(double cycles);

/**
 * Flatten @p fn into its decoded form for @p target.  The function must
 * be well-formed (every block terminated); the decoder asserts on
 * violations rather than diagnosing them — the verifier is the place
 * for that.
 */
std::shared_ptr<const DecodedFunction>
decodeFunction(const Function &fn, const Target &target,
               const DecodeOptions &options = {});

/**
 * Content address of the decoded form of @p fn under @p target: covers
 * the serialized function, the target fingerprint (the cost model and
 * trap model are baked into the records) and the fusion flag.  Equal
 * keys imply bit-identical decoded programs.
 */
Hash128 decodedProgramKey(const Function &fn, const Target &target,
                          const DecodeOptions &options = {});

/**
 * Thread-safe content-addressed store of decoded programs, shared
 * between the compile service (which pre-decodes what it compiles) and
 * any number of fast interpreters.  First writer wins, so concurrent
 * decodes of the same key all end up sharing one immutable program.
 */
class DecodedProgramCache
{
  public:
    using Value = std::shared_ptr<const DecodedFunction>;

    Value
    lookup(const Hash128 &key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        return it == entries_.end() ? nullptr : it->second;
    }

    Value
    insert(const Hash128 &key, Value decoded)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = entries_.emplace(key, std::move(decoded));
        return it->second;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<Hash128, Value, Hash128Hasher> entries_;
};

} // namespace trapjit

#endif // TRAPJIT_INTERP_DECODED_PROGRAM_H_
