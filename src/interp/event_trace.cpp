#include "interp/event_trace.h"

#include <sstream>

namespace trapjit
{

std::string
Event::toString() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::HeapWrite:
        os << "write[" << int(width) << "] @0x" << std::hex << address
           << " = 0x" << payload;
        break;
      case Kind::Exception:
        os << "exception " << excName(static_cast<ExcKind>(payload));
        break;
      case Kind::Allocation:
        os << "alloc @0x" << std::hex << address << " size " << std::dec
           << payload;
        break;
    }
    return os.str();
}

long
EventTrace::firstDifference(const EventTrace &a, const EventTrace &b)
{
    size_t n = std::min(a.events_.size(), b.events_.size());
    for (size_t i = 0; i < n; ++i)
        if (!(a.events_[i] == b.events_[i]))
            return static_cast<long>(i);
    if (a.events_.size() != b.events_.size())
        return static_cast<long>(n);
    return -1;
}

} // namespace trapjit
