#ifndef TRAPJIT_INTERP_EVENT_TRACE_H_
#define TRAPJIT_INTERP_EVENT_TRACE_H_

/**
 * @file
 * Observable-event trace for precise-exception equivalence testing.
 *
 * Java's precise exception rule means an optimized method must expose
 * exactly the same *observable* behavior as the unoptimized one: the same
 * heap writes in the same order with the same values, the same escaping
 * exception, and the same result.  Reads are unobservable (that is what
 * makes read speculation legal), so they are not traced.
 *
 * The property test in tests/ runs reference and optimized code and
 * asserts the traces are identical event for event.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"
#include "runtime/heap.h"

namespace trapjit
{

/** One observable event. */
struct Event
{
    enum class Kind : uint8_t
    {
        HeapWrite,  ///< address + raw value bits + width
        Exception,  ///< an exception escaped the top-level frame
        Allocation, ///< an object/array was allocated (address + size)
    };

    Kind kind = Kind::HeapWrite;
    Address address = 0;
    uint64_t payload = 0; ///< value bits / ExcKind / allocation size
    uint8_t width = 0;    ///< write width in bytes

    bool operator==(const Event &other) const = default;

    std::string toString() const;
};

/** Ordered sequence of observable events. */
class EventTrace
{
  public:
    /** Enable/disable recording (recording costs time; benches disable). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    void
    recordWrite(Address addr, uint64_t bits, uint8_t width)
    {
        if (enabled_)
            events_.push_back(Event{Event::Kind::HeapWrite, addr, bits,
                                    width});
    }

    void
    recordAllocation(Address addr, uint64_t size)
    {
        if (enabled_)
            events_.push_back(Event{Event::Kind::Allocation, addr, size,
                                    0});
    }

    void
    recordEscapedException(ExcKind kind)
    {
        if (enabled_)
            events_.push_back(Event{Event::Kind::Exception, 0,
                                    static_cast<uint64_t>(kind), 0});
    }

    const std::vector<Event> &events() const { return events_; }
    void clear() { events_.clear(); }

    /** First index at which the traces differ, or -1 if identical. */
    static long firstDifference(const EventTrace &a, const EventTrace &b);

  private:
    bool enabled_ = true;
    std::vector<Event> events_;
};

} // namespace trapjit

#endif // TRAPJIT_INTERP_EVENT_TRACE_H_
