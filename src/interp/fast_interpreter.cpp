#include "interp/fast_interpreter.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "interp/java_semantics.h"
#include "support/diagnostics.h"

namespace trapjit
{

InterpEngineKind
interpEngineFromEnv()
{
    const char *env = std::getenv("TRAPJIT_INTERP");
    if (env != nullptr && (std::strcmp(env, "reference") == 0 ||
                           std::strcmp(env, "ref") == 0))
        return InterpEngineKind::Reference;
    if (env != nullptr && std::strcmp(env, "native") == 0)
        return InterpEngineKind::Native;
    if (env != nullptr && std::strcmp(env, "tiered") == 0)
        return InterpEngineKind::Tiered;
    return InterpEngineKind::Fast;
}

const char *
interpEngineName(InterpEngineKind kind)
{
    switch (kind) {
      case InterpEngineKind::Reference: return "reference";
      case InterpEngineKind::Native: return "native";
      case InterpEngineKind::Tiered: return "tiered";
      default: return "fast";
    }
}

FastInterpreter::FastInterpreter(const Module &mod, const Target &target,
                                 InterpOptions options,
                                 std::shared_ptr<DecodedProgramCache> cache,
                                 DecodeOptions decode_options)
    : mod_(mod), target_(target), options_(options),
      decodeOptions_(decode_options), cache_(std::move(cache)),
      heap_(options.heapBytes),
      throwCycles8_(cyclesToEighths(target.throwCycles)),
      trapDispatch8_(cyclesToEighths(target.trapDispatchCycles)),
      allocPerByte8_(cyclesToEighths(target.allocPerByteCycles))
{
    trace_.setEnabled(options.recordTrace);
}

void
FastInterpreter::reset()
{
    heap_.reset();
    trace_.clear();
    stats_ = ExecStats{};
}

const DecodedFunction &
FastInterpreter::decoded(FunctionId id)
{
    if (decoded_.size() <= id)
        decoded_.resize(mod_.numFunctions());
    if (!decoded_[id]) {
        const Function &fn = mod_.function(id);
        if (cache_) {
            Hash128 key = decodedProgramKey(fn, target_, decodeOptions_);
            if (auto hit = cache_->lookup(key)) {
                decoded_[id] = std::move(hit);
                return *decoded_[id];
            }
            auto begin = std::chrono::steady_clock::now();
            auto df = decodeFunction(fn, target_, decodeOptions_);
            stats_.decodeSeconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
            ++stats_.functionsDecoded;
            decoded_[id] = cache_->insert(key, std::move(df));
        } else {
            auto begin = std::chrono::steady_clock::now();
            decoded_[id] = decodeFunction(fn, target_, decodeOptions_);
            stats_.decodeSeconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
            ++stats_.functionsDecoded;
        }
    }
    return *decoded_[id];
}

ExecResult
FastInterpreter::run(FunctionId func, const std::vector<RuntimeValue> &args)
{
    const DecodedFunction &df = decoded(func);
    const Function &fn = mod_.function(func);

    std::vector<Slot> argv(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        switch (fn.value(static_cast<ValueId>(i)).type) {
          case Type::F64: argv[i].f = args[i].f; break;
          case Type::Ref: argv[i].ref = args[i].ref; break;
          default: argv[i].i = args[i].i; break;
        }
    }

    FrameResult frame = execFrame(df, std::move(argv), 0);
    ExecResult result;
    if (frame.exc.pending()) {
        result.outcome = ExecResult::Outcome::Threw;
        result.exception = frame.exc.kind;
        trace_.recordEscapedException(frame.exc.kind);
    } else {
        result.outcome = ExecResult::Outcome::Returned;
        switch (df.returnType) {
          case Type::F64: result.value.f = frame.value.f; break;
          case Type::Ref: result.value.ref = frame.value.ref; break;
          case Type::Void: break;
          default: result.value.i = frame.value.i; break;
        }
    }
    result.stats = stats_;
    return result;
}

FastInterpreter::Slot
FastInterpreter::handleNullAccess(const DecodedInst &d, ThrownExc &exc,
                                  uint64_t &cycles8)
{
    const Slot zero{};

    if (d.flags & kDecodedSpeculative) {
        if (d.flags & kDecodedSpecSafe) {
            ++stats_.speculativeReadsOfNull;
            return zero;
        }
        throw HardFault("speculative access through null is not safe on " +
                        target_.name + " (site " + std::to_string(d.site) +
                        ")");
    }

    if (d.flags & kDecodedExceptionSite) {
        if (d.flags & kDecodedTrapCovered) {
            ++stats_.trapsTaken;
            cycles8 += trapDispatch8_;
            exc = ThrownExc{ExcKind::NullPointer, d.site};
            return zero;
        }
        if (d.flags & kDecodedIllegalZero)
            return zero;
        throw HardFault("implicit check at site " + std::to_string(d.site) +
                        " is not trap-covered on " + target_.name);
    }

    throw HardFault(std::string("unchecked null dereference: ") +
                    opcodeName(d.srcOp) + " at site " +
                    std::to_string(d.site));
}

// Dispatch mode: computed goto on GNU-compatible compilers, token-
// threaded switch elsewhere (or when forced for testing).
#if defined(__GNUC__) && !defined(TRAPJIT_FORCE_SWITCH_DISPATCH)
#define TRAPJIT_DIRECT_THREADED 1
#else
#define TRAPJIT_DIRECT_THREADED 0
#endif

// One handler body serves both modes.  OP opens a handler; OP_TARGET
// additionally defines a goto label so fused handlers can chain into the
// second half of their pair (in threaded mode every handler has a label
// because the dispatch table needs its address).
#if TRAPJIT_DIRECT_THREADED
#define OP(name) lbl_##name:
#define OP_TARGET(name) lbl_##name:
#define NEXT()                                                            \
    do {                                                                  \
        ++nDispatch;                                                      \
        goto *kLabels[static_cast<size_t>(ip->op)];                       \
    } while (0)
#else
#define OP(name) case DecodedOp::name:
#define OP_TARGET(name) case DecodedOp::name: lbl_##name:
#define NEXT()                                                            \
    do {                                                                  \
        ++nDispatch;                                                      \
        goto L_dispatch;                                                  \
    } while (0)
#endif

// The per-record counters live in frame locals (nInstr, nDispatch,
// cycles8, and the hot semantic counters below) so the compiler can
// keep them in registers across the dispatch loop instead of a
// load/inc/store through `this` per record; FLUSH_STATS() writes them
// back wherever control can leave the frame (calls, returns, faults,
// the null slow path).  Rare counters (traps, allocations, calls) stay
// on stats_ directly.
// Cycles accumulate as integer eighth-cycles: every cost is a dyadic
// multiple of 1/8 (cyclesToEighths asserts it), so the reference
// engine's serial double fold is exact and equals this integer sum —
// the conversions in FLUSH/RELOAD are exact in both directions.
#define FLUSH_STATS()                                                     \
    do {                                                                  \
        stats_.instructions = nInstr;                                     \
        stats_.dispatches = nDispatch;                                    \
        stats_.cycles = static_cast<double>(cycles8) * 0.125;             \
        stats_.fusedPairsExecuted = nFused;                               \
        stats_.explicitNullChecks = nExplicitNC;                          \
        stats_.implicitNullChecks = nImplicitNC;                          \
        stats_.boundChecks = nBoundChecks;                                \
        stats_.heapReads = nHeapReads;                                    \
        stats_.heapWrites = nHeapWrites;                                  \
    } while (0)

#define RELOAD_STATS()                                                    \
    do {                                                                  \
        nInstr = stats_.instructions;                                     \
        nDispatch = stats_.dispatches;                                    \
        cycles8 = static_cast<uint64_t>(stats_.cycles * 8.0);             \
        nFused = stats_.fusedPairsExecuted;                               \
        nExplicitNC = stats_.explicitNullChecks;                          \
        nImplicitNC = stats_.implicitNullChecks;                          \
        nBoundChecks = stats_.boundChecks;                                \
        nHeapReads = stats_.heapReads;                                    \
        nHeapWrites = stats_.heapWrites;                                  \
    } while (0)

// Per-record preamble: the instruction budget guard and the precomputed
// cycle cost (one eighth-cycle addition per record, in execution order —
// fused pairs charge twice, like the reference's two double additions).
#define CHARGE(rec)                                                       \
    do {                                                                  \
        if (++nInstr > maxInstr) {                                        \
            FLUSH_STATS();                                                \
            throw HardFault("instruction budget exceeded in " + df.name); \
        }                                                                 \
        cycles8 += (rec).cost8;                                           \
    } while (0)

// Raise a Java-level exception from this record (adds throwCycles, like
// the reference engine's raise() lambda).
#define RAISE(kind, rec)                                                  \
    do {                                                                  \
        cycles8 += throwCycles8_;                                         \
        pending = ThrownExc{(kind), (rec).site};                          \
        excRegion = (rec).tryRegion;                                      \
        goto L_exception;                                                 \
    } while (0)

// A HardFault from the middle of the dispatch loop: write the counters
// back first so partially executed runs leave coherent stats.
#define FAULT(msg)                                                        \
    do {                                                                  \
        FLUSH_STATS();                                                    \
        throw HardFault(msg);                                             \
    } while (0)

// Dispatch an exception that was recorded without throwCycles (trap NPEs
// from handleNullAccess, propagated callee exceptions, Throw).
#define DISPATCH_PENDING(rec)                                             \
    do {                                                                  \
        excRegion = (rec).tryRegion;                                      \
        goto L_exception;                                                 \
    } while (0)

// Back-edge hotness profiling for the tiered engine: a taken branch to
// the same or an earlier record bumps the frame's counter; crossing the
// threshold requests promotion exactly once (the counter keeps rising,
// so the equality cannot refire until invalidation resets the slot).
// `from` is the branch record itself, `ip` the already-taken target.
#define TIER_BACKEDGE(from)                                               \
    do {                                                                  \
        if (tierHot_ != nullptr && ip <= (from) &&                        \
            ++tierHot_[df.id] == tierThreshold_) {                        \
            FLUSH_STATS();                                                \
            tierHooks_->tierPromote(df.id);                               \
            RELOAD_STATS();                                               \
        }                                                                 \
    } while (0)

// Integer destination write with the reference engine's I32 truncation.
#define SETI(rec, val)                                                    \
    do {                                                                  \
        int64_t v_ = (val);                                               \
        r[(rec).dst].i = ((rec).flags & kDecodedNarrowDst)                \
                             ? static_cast<int32_t>(v_)                   \
                             : v_;                                        \
    } while (0)

FastInterpreter::FrameResult
FastInterpreter::execFrame(const DecodedFunction &df, std::vector<Slot> args,
                           size_t depth)
{
    if (depth > options_.maxCallDepth)
        throw HardFault("call depth limit exceeded in " + df.name);
    TRAPJIT_ASSERT(args.size() == df.numParams,
                   "bad argument count calling ", df.name);

    std::vector<Slot> regs(df.numValues);
    for (size_t i = 0; i < args.size(); ++i)
        regs[i] = args[i];
    return execFrameAt(df, std::move(regs), depth, 0, ThrownExc{});
}

FastInterpreter::FrameResult
FastInterpreter::resumeFrame(const DecodedFunction &df,
                             std::vector<Slot> regs, size_t depth,
                             uint32_t startRecord, ThrownExc pendingIn)
{
    TRAPJIT_ASSERT(regs.size() == df.numValues,
                   "bad register file resuming ", df.name);
    TRAPJIT_ASSERT(startRecord < df.code.size(),
                   "resume record out of range in ", df.name);
    return execFrameAt(df, std::move(regs), depth, startRecord, pendingIn);
}

FastInterpreter::FrameResult
FastInterpreter::execFrameAt(const DecodedFunction &df,
                             std::vector<Slot> regs, size_t depth,
                             uint32_t startRecord, ThrownExc pendingIn)
{
    Slot *const r = regs.data();

    const DecodedInst *const code = df.code.data();
    const DecodedInst *ip = code + startRecord;
    ThrownExc pending = pendingIn;
    TryRegionId excRegion = 0;
    Slot retVal;
    uint64_t nInstr = stats_.instructions;
    uint64_t nDispatch = stats_.dispatches;
    uint64_t cycles8 = static_cast<uint64_t>(stats_.cycles * 8.0);
    uint64_t nFused = stats_.fusedPairsExecuted;
    uint64_t nExplicitNC = stats_.explicitNullChecks;
    uint64_t nImplicitNC = stats_.implicitNullChecks;
    uint64_t nBoundChecks = stats_.boundChecks;
    uint64_t nHeapReads = stats_.heapReads;
    uint64_t nHeapWrites = stats_.heapWrites;
    const uint64_t maxInstr = options_.maxInstructions;

#if TRAPJIT_DIRECT_THREADED
    static const void *const kLabels[kNumDecodedOps] = {
        &&lbl_ConstInt, &&lbl_ConstFloat, &&lbl_ConstNull, &&lbl_Move,
        &&lbl_IAdd, &&lbl_ISub, &&lbl_IMul, &&lbl_IDiv, &&lbl_IRem,
        &&lbl_INeg, &&lbl_IAnd, &&lbl_IOr, &&lbl_IXor,
        &&lbl_IShl, &&lbl_IShr, &&lbl_IUshr,
        &&lbl_FAdd, &&lbl_FSub, &&lbl_FMul, &&lbl_FDiv, &&lbl_FNeg,
        &&lbl_FExp, &&lbl_FSqrt, &&lbl_FSin, &&lbl_FCos, &&lbl_FAbs,
        &&lbl_FLog,
        &&lbl_I2F, &&lbl_F2I, &&lbl_I2L, &&lbl_L2I,
        &&lbl_ICmp, &&lbl_FCmp,
        &&lbl_NullCheck, &&lbl_BoundCheck,
        &&lbl_GetField, &&lbl_PutField, &&lbl_ArrayLength,
        &&lbl_ArrayLoad, &&lbl_ArrayStore,
        &&lbl_NewObject, &&lbl_NewArray,
        &&lbl_Call,
        &&lbl_Jump, &&lbl_Branch, &&lbl_IfNull, &&lbl_Return, &&lbl_Throw,
        &&lbl_Nop,
        &&lbl_FusedNullCheckGetField,
        &&lbl_FusedNullCheckCall,
        &&lbl_FusedBoundCheckArrayLoad,
        &&lbl_FusedBoundCheckArrayStore,
        &&lbl_FusedICmpBranch,
        &&lbl_FusedFCmpBranch,
        &&lbl_FusedConstIntIAdd,
        &&lbl_FusedNullCheckArrayLength,
        &&lbl_FusedNullCheckPutField,
        &&lbl_FusedArrayLoadQuad,
        &&lbl_FusedArrayStoreQuad,
        &&lbl_FusedLoopLatch,
    };
#endif

    // Exception-resume entry (resumeFrame with a pending exception):
    // the native helper that raised it already retired the record, so
    // dispatch straight from its try region without re-executing it.
    if (pending.pending()) {
        excRegion = code[startRecord].tryRegion;
        goto L_exception;
    }

    NEXT();

#if !TRAPJIT_DIRECT_THREADED
L_dispatch:
    switch (ip->op) {
#endif

    OP(ConstInt)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, rec.imm);
        ++ip;
        NEXT();
    }
    OP(ConstFloat)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = rec.fimm;
        ++ip;
        NEXT();
    }
    OP(ConstNull)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].ref = 0;
        ++ip;
        NEXT();
    }
    OP(Move)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst] = r[rec.a]; // one machine word, all lanes
        ++ip;
        NEXT();
    }

    OP_TARGET(IAdd)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, static_cast<int64_t>(
                      static_cast<uint64_t>(r[rec.a].i) +
                      static_cast<uint64_t>(r[rec.b].i)));
        ++ip;
        NEXT();
    }
    OP(ISub)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, static_cast<int64_t>(
                      static_cast<uint64_t>(r[rec.a].i) -
                      static_cast<uint64_t>(r[rec.b].i)));
        ++ip;
        NEXT();
    }
    OP(IMul)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, static_cast<int64_t>(
                      static_cast<uint64_t>(r[rec.a].i) *
                      static_cast<uint64_t>(r[rec.b].i)));
        ++ip;
        NEXT();
    }
    OP(IDiv)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        if (r[rec.b].i == 0)
            RAISE(ExcKind::Arithmetic, rec);
        SETI(rec, javaDiv(r[rec.a].i, r[rec.b].i));
        ++ip;
        NEXT();
    }
    OP(IRem)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        if (r[rec.b].i == 0)
            RAISE(ExcKind::Arithmetic, rec);
        SETI(rec, javaRem(r[rec.a].i, r[rec.b].i));
        ++ip;
        NEXT();
    }
    OP(INeg)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, static_cast<int64_t>(
                      0 - static_cast<uint64_t>(r[rec.a].i)));
        ++ip;
        NEXT();
    }
    OP(IAnd)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, r[rec.a].i & r[rec.b].i);
        ++ip;
        NEXT();
    }
    OP(IOr)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, r[rec.a].i | r[rec.b].i);
        ++ip;
        NEXT();
    }
    OP(IXor)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, r[rec.a].i ^ r[rec.b].i);
        ++ip;
        NEXT();
    }
    OP(IShl)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        bool wide = (rec.flags & kDecodedNarrowDst) == 0;
        int sh = static_cast<int>(r[rec.b].i & (wide ? 63 : 31));
        SETI(rec, static_cast<int64_t>(
                      static_cast<uint64_t>(r[rec.a].i) << sh));
        ++ip;
        NEXT();
    }
    OP(IShr)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        bool wide = (rec.flags & kDecodedNarrowDst) == 0;
        int sh = static_cast<int>(r[rec.b].i & (wide ? 63 : 31));
        int64_t v = wide ? r[rec.a].i
                         : static_cast<int32_t>(r[rec.a].i);
        SETI(rec, v >> sh);
        ++ip;
        NEXT();
    }
    OP(IUshr)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        bool wide = (rec.flags & kDecodedNarrowDst) == 0;
        int sh = static_cast<int>(r[rec.b].i & (wide ? 63 : 31));
        uint64_t v = wide ? static_cast<uint64_t>(r[rec.a].i)
                          : static_cast<uint32_t>(r[rec.a].i);
        SETI(rec, static_cast<int64_t>(v >> sh));
        ++ip;
        NEXT();
    }

    OP(FAdd)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = r[rec.a].f + r[rec.b].f;
        ++ip;
        NEXT();
    }
    OP(FSub)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = r[rec.a].f - r[rec.b].f;
        ++ip;
        NEXT();
    }
    OP(FMul)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = r[rec.a].f * r[rec.b].f;
        ++ip;
        NEXT();
    }
    OP(FDiv)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = r[rec.a].f / r[rec.b].f;
        ++ip;
        NEXT();
    }
    OP(FNeg)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = -r[rec.a].f;
        ++ip;
        NEXT();
    }
    OP(FExp)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = std::exp(r[rec.a].f);
        ++ip;
        NEXT();
    }
    OP(FSqrt)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = std::sqrt(r[rec.a].f);
        ++ip;
        NEXT();
    }
    OP(FSin)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = std::sin(r[rec.a].f);
        ++ip;
        NEXT();
    }
    OP(FCos)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = std::cos(r[rec.a].f);
        ++ip;
        NEXT();
    }
    OP(FAbs)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = std::fabs(r[rec.a].f);
        ++ip;
        NEXT();
    }
    OP(FLog)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = std::log(r[rec.a].f);
        ++ip;
        NEXT();
    }

    OP(I2F)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].f = static_cast<double>(r[rec.a].i);
        ++ip;
        NEXT();
    }
    OP(F2I)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, javaF2I(r[rec.a].f));
        ++ip;
        NEXT();
    }
    OP(I2L)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        r[rec.dst].i = static_cast<int32_t>(r[rec.a].i);
        ++ip;
        NEXT();
    }
    OP(L2I)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, r[rec.a].i);
        ++ip;
        NEXT();
    }

    OP(ICmp)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, evalPred(rec.pred, r[rec.a].i, r[rec.b].i) ? 1 : 0);
        ++ip;
        NEXT();
    }
    OP(FCmp)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        SETI(rec, evalPred(rec.pred, r[rec.a].f, r[rec.b].f) ? 1 : 0);
        ++ip;
        NEXT();
    }

    OP(NullCheck)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        if (rec.flavor == CheckFlavor::Explicit) {
            ++nExplicitNC;
            if (r[rec.a].ref == 0)
                RAISE(ExcKind::NullPointer, rec);
        } else {
            ++nImplicitNC;
        }
        ++ip;
        NEXT();
    }
    OP(BoundCheck)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nBoundChecks;
        if (r[rec.a].i < 0 || r[rec.a].i >= r[rec.b].i)
            RAISE(ExcKind::ArrayIndexOutOfBounds, rec);
        ++ip;
        NEXT();
    }

    OP_TARGET(GetField)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        Address ref = r[rec.a].ref;
        if (ref == 0) {
            FLUSH_STATS();
            r[rec.dst] = handleNullAccess(rec, pending, cycles8);
            if (pending.pending())
                DISPATCH_PENDING(rec);
            ++ip;
            NEXT();
        }
        Address addr = ref + static_cast<Address>(rec.imm);
        if (!heap_.inBounds(addr, typeSize(rec.type)))
            FAULT("getfield outside the object");
        ++nHeapReads;
        switch (rec.type) {
          case Type::I32: r[rec.dst].i = heap_.readI32(addr); break;
          case Type::I64: r[rec.dst].i = heap_.readI64(addr); break;
          case Type::F64: r[rec.dst].f = heap_.readF64(addr); break;
          case Type::Ref: r[rec.dst].ref = heap_.readRef(addr); break;
          default: TRAPJIT_PANIC("bad getfield type");
        }
        ++ip;
        NEXT();
    }
    OP_TARGET(PutField)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        Address ref = r[rec.a].ref;
        if (ref == 0) {
            FLUSH_STATS();
            handleNullAccess(rec, pending, cycles8);
            if (pending.pending())
                DISPATCH_PENDING(rec);
            ++ip;
            NEXT();
        }
        Address addr = ref + static_cast<Address>(rec.imm);
        if (!heap_.inBounds(addr, typeSize(rec.type)))
            FAULT("putfield outside the object");
        ++nHeapWrites;
        switch (rec.type) {
          case Type::I32: {
            int32_t v = static_cast<int32_t>(r[rec.b].i);
            heap_.writeI32(addr, v);
            trace_.recordWrite(addr, static_cast<uint32_t>(v), 4);
            break;
          }
          case Type::I64:
            heap_.writeI64(addr, r[rec.b].i);
            trace_.recordWrite(addr, static_cast<uint64_t>(r[rec.b].i), 8);
            break;
          case Type::F64:
            heap_.writeF64(addr, r[rec.b].f);
            trace_.recordWrite(addr, std::bit_cast<uint64_t>(r[rec.b].f),
                               8);
            break;
          case Type::Ref:
            heap_.writeRef(addr, r[rec.b].ref);
            trace_.recordWrite(addr, r[rec.b].ref, 8);
            break;
          default:
            TRAPJIT_PANIC("bad putfield type");
        }
        ++ip;
        NEXT();
    }
    OP_TARGET(ArrayLength)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        Address ref = r[rec.a].ref;
        if (ref == 0) {
            FLUSH_STATS();
            r[rec.dst] = handleNullAccess(rec, pending, cycles8);
            if (pending.pending())
                DISPATCH_PENDING(rec);
            ++ip;
            NEXT();
        }
        ++nHeapReads;
        r[rec.dst].i = heap_.arrayLength(ref);
        ++ip;
        NEXT();
    }
    OP_TARGET(ArrayLoad)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        Address ref = r[rec.a].ref;
        if (ref == 0) {
            FLUSH_STATS();
            r[rec.dst] = handleNullAccess(rec, pending, cycles8);
            if (pending.pending())
                DISPATCH_PENDING(rec);
            ++ip;
            NEXT();
        }
        int64_t idx = static_cast<int32_t>(r[rec.b].i);
        int32_t len = heap_.arrayLength(ref);
        if (idx < 0 || idx >= len)
            FAULT("raw array load out of bounds (missing check)");
        Address addr = ref + kArrayDataOffset +
                       static_cast<Address>(idx) * typeSize(rec.type);
        ++nHeapReads;
        switch (rec.type) {
          case Type::I32: r[rec.dst].i = heap_.readI32(addr); break;
          case Type::I64: r[rec.dst].i = heap_.readI64(addr); break;
          case Type::F64: r[rec.dst].f = heap_.readF64(addr); break;
          case Type::Ref: r[rec.dst].ref = heap_.readRef(addr); break;
          default: TRAPJIT_PANIC("bad element type");
        }
        ++ip;
        NEXT();
    }
    OP_TARGET(ArrayStore)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        Address ref = r[rec.a].ref;
        if (ref == 0) {
            FLUSH_STATS();
            handleNullAccess(rec, pending, cycles8);
            if (pending.pending())
                DISPATCH_PENDING(rec);
            ++ip;
            NEXT();
        }
        int64_t idx = static_cast<int32_t>(r[rec.b].i);
        int32_t len = heap_.arrayLength(ref);
        if (idx < 0 || idx >= len)
            FAULT("raw array store out of bounds (missing check)");
        Address addr = ref + kArrayDataOffset +
                       static_cast<Address>(idx) * typeSize(rec.type);
        ++nHeapWrites;
        switch (rec.type) {
          case Type::I32: {
            int32_t v = static_cast<int32_t>(r[rec.c].i);
            heap_.writeI32(addr, v);
            trace_.recordWrite(addr, static_cast<uint32_t>(v), 4);
            break;
          }
          case Type::I64:
            heap_.writeI64(addr, r[rec.c].i);
            trace_.recordWrite(addr, static_cast<uint64_t>(r[rec.c].i), 8);
            break;
          case Type::F64:
            heap_.writeF64(addr, r[rec.c].f);
            trace_.recordWrite(addr, std::bit_cast<uint64_t>(r[rec.c].f),
                               8);
            break;
          case Type::Ref:
            heap_.writeRef(addr, r[rec.c].ref);
            trace_.recordWrite(addr, r[rec.c].ref, 8);
            break;
          default:
            TRAPJIT_PANIC("bad element type");
        }
        ++ip;
        NEXT();
    }

    OP(NewObject)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++stats_.allocations;
        Address ref = heap_.allocateObject(static_cast<ClassId>(rec.imm),
                                           rec.imm2);
        if (ref == 0)
            RAISE(ExcKind::OutOfMemory, rec);
        cycles8 += allocPerByte8_ * static_cast<uint64_t>(rec.imm2);
        trace_.recordAllocation(ref, static_cast<uint64_t>(rec.imm2));
        r[rec.dst].ref = ref;
        ++ip;
        NEXT();
    }
    OP(NewArray)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        int64_t len = static_cast<int32_t>(r[rec.a].i);
        if (len < 0)
            RAISE(ExcKind::NegativeArraySize, rec);
        ++stats_.allocations;
        Address ref = heap_.allocateArray(rec.type,
                                          static_cast<int32_t>(len));
        if (ref == 0)
            RAISE(ExcKind::OutOfMemory, rec);
        cycles8 +=
            allocPerByte8_ * static_cast<uint64_t>(len * typeSize(rec.type));
        trace_.recordAllocation(
            ref, static_cast<uint64_t>(len) * typeSize(rec.type));
        r[rec.dst].ref = ref;
        ++ip;
        NEXT();
    }

    OP_TARGET(Call)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++stats_.calls;
        FunctionId callee = kNoFunction;
        const ValueId *cargs = df.argPool.data() + rec.argsBegin;
        if (rec.callKind == CallKind::Virtual) {
            Address recv = r[cargs[0]].ref;
            if (recv == 0) {
                FLUSH_STATS();
            handleNullAccess(rec, pending, cycles8);
                if (pending.pending())
                    DISPATCH_PENDING(rec);
                ++ip;
                NEXT();
            }
            ClassId cid = heap_.classOf(recv);
            if (cid >= mod_.numClasses())
                FAULT("corrupt object header");
            const auto &vtable = mod_.cls(cid).vtable;
            if (static_cast<size_t>(rec.imm) >= vtable.size())
                FAULT("vtable slot out of range");
            callee = vtable[rec.imm];
        } else {
            if (rec.callKind == CallKind::Special && r[cargs[0]].ref == 0)
                FAULT("special call with null receiver (site " +
                      std::to_string(rec.site) + ")");
            callee = static_cast<FunctionId>(rec.imm);
        }
        if (callee == kNoFunction || callee >= mod_.numFunctions())
            FAULT("call target unresolved");

        std::vector<Slot> argv;
        argv.reserve(rec.argsCount);
        for (uint32_t k = 0; k < rec.argsCount; ++k)
            argv.push_back(r[cargs[k]]);
        FLUSH_STATS();
        // The tiered engine intercepts resolved calls: published
        // callees run natively, cold ones bump their hotness counter
        // and fall through to the recursive interpretation below
        // (tierInvoke only consumes argv when it returns true).
        FrameResult sub;
        if (tierHooks_ == nullptr ||
            !tierHooks_->tierInvoke(callee, std::move(argv), depth + 1,
                                    sub))
            sub = execFrame(decoded(callee), std::move(argv), depth + 1);
        RELOAD_STATS();
        if (sub.exc.pending()) {
            pending = sub.exc;
            DISPATCH_PENDING(rec);
        }
        if (rec.dst != kNoValue)
            r[rec.dst] = sub.value;
        ++ip;
        NEXT();
    }

    OP(Jump)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        const DecodedInst *const from = ip;
        ip = code + rec.target;
        TIER_BACKEDGE(from);
        NEXT();
    }
    OP_TARGET(Branch)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        const DecodedInst *const from = ip;
        ip = code + (r[rec.a].i != 0 ? rec.target : rec.target2);
        TIER_BACKEDGE(from);
        NEXT();
    }
    OP(IfNull)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        const DecodedInst *const from = ip;
        ip = code + (r[rec.a].ref == 0 ? rec.target : rec.target2);
        TIER_BACKEDGE(from);
        NEXT();
    }
    OP(Return)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        if (rec.a != kNoValue)
            retVal = r[rec.a];
        goto L_return;
    }
    OP(Throw)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        pending = ThrownExc{static_cast<ExcKind>(rec.imm), rec.site};
        DISPATCH_PENDING(rec);
    }
    OP(Nop)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++ip;
        NEXT();
    }

    // --- Superinstructions: execute the first record inline, then fall
    // through (via goto) into the second record's handler.  Each half
    // keeps its own budget check and cost addition so the cycle double
    // accumulates in exactly the reference engine's order.

    OP(FusedNullCheckGetField)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        if (rec.flavor == CheckFlavor::Explicit) {
            ++nExplicitNC;
            if (r[rec.a].ref == 0)
                RAISE(ExcKind::NullPointer, rec);
        } else {
            ++nImplicitNC;
        }
        ++ip;
        goto lbl_GetField;
    }
    OP(FusedNullCheckCall)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        if (rec.flavor == CheckFlavor::Explicit) {
            ++nExplicitNC;
            if (r[rec.a].ref == 0)
                RAISE(ExcKind::NullPointer, rec);
        } else {
            ++nImplicitNC;
        }
        ++ip;
        goto lbl_Call;
    }
    OP(FusedBoundCheckArrayLoad)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        ++nBoundChecks;
        if (r[rec.a].i < 0 || r[rec.a].i >= r[rec.b].i)
            RAISE(ExcKind::ArrayIndexOutOfBounds, rec);
        ++ip;
        goto lbl_ArrayLoad;
    }
    OP(FusedBoundCheckArrayStore)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        ++nBoundChecks;
        if (r[rec.a].i < 0 || r[rec.a].i >= r[rec.b].i)
            RAISE(ExcKind::ArrayIndexOutOfBounds, rec);
        ++ip;
        goto lbl_ArrayStore;
    }
    OP(FusedICmpBranch)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        SETI(rec, evalPred(rec.pred, r[rec.a].i, r[rec.b].i) ? 1 : 0);
        ++ip;
        goto lbl_Branch;
    }
    OP(FusedFCmpBranch)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        SETI(rec, evalPred(rec.pred, r[rec.a].f, r[rec.b].f) ? 1 : 0);
        ++ip;
        goto lbl_Branch;
    }
    OP(FusedConstIntIAdd)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        SETI(rec, rec.imm);
        ++ip;
        goto lbl_IAdd;
    }
    OP(FusedNullCheckArrayLength)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        if (rec.flavor == CheckFlavor::Explicit) {
            ++nExplicitNC;
            if (r[rec.a].ref == 0)
                RAISE(ExcKind::NullPointer, rec);
        } else {
            ++nImplicitNC;
        }
        ++ip;
        goto lbl_ArrayLength;
    }
    OP(FusedNullCheckPutField)
    {
        const DecodedInst &rec = *ip;
        CHARGE(rec);
        ++nFused;
        if (rec.flavor == CheckFlavor::Explicit) {
            ++nExplicitNC;
            if (r[rec.a].ref == 0)
                RAISE(ExcKind::NullPointer, rec);
        } else {
            ++nImplicitNC;
        }
        ++ip;
        goto lbl_PutField;
    }

    // The quad superinstructions run a whole checked array access —
    // NullCheck; ArrayLength; BoundCheck; ArrayLoad/Store — off one
    // dispatch.  Each record keeps its own budget/cost charge and its
    // full slow path, so exceptional runs stay bit-identical to the
    // reference.  Fusion verified the operand wiring (one ref, the
    // length feeding the check, the checked index feeding the access),
    // so once the checks pass the access tail needs no null or bounds
    // re-verification: a passed BoundCheck guarantees 0 <= idx < len,
    // which also makes the access's int32 index truncation a no-op.

    OP(FusedArrayLoadQuad)
    {
        {
            const DecodedInst &rec = *ip; // NullCheck
            CHARGE(rec);
            nFused += 3;
            if (rec.flavor == CheckFlavor::Explicit) {
                ++nExplicitNC;
                if (r[rec.a].ref == 0)
                    RAISE(ExcKind::NullPointer, rec);
            } else {
                ++nImplicitNC;
            }
        }
        {
            ++ip;
            const DecodedInst &rec = *ip; // ArrayLength
            CHARGE(rec);
            Address ref = r[rec.a].ref;
            if (ref == 0) { // implicit-flavor checks don't test the ref
                FLUSH_STATS();
                r[rec.dst] = handleNullAccess(rec, pending, cycles8);
                if (pending.pending())
                    DISPATCH_PENDING(rec);
                ++ip;
                NEXT();
            }
            ++nHeapReads;
            int32_t len = heap_.arrayLength(ref);
            r[rec.dst].i = len;

            ++ip;
            const DecodedInst &bc = *ip; // BoundCheck (b == length dst)
            CHARGE(bc);
            ++nBoundChecks;
            int64_t idx = r[bc.a].i;
            if (idx < 0 || idx >= len)
                RAISE(ExcKind::ArrayIndexOutOfBounds, bc);

            ++ip;
            const DecodedInst &ac = *ip; // ArrayLoad (a == ref, b == idx)
            CHARGE(ac);
            Address addr = ref + kArrayDataOffset +
                           static_cast<Address>(idx) * typeSize(ac.type);
            ++nHeapReads;
            switch (ac.type) {
              case Type::I32: r[ac.dst].i = heap_.readI32(addr); break;
              case Type::I64: r[ac.dst].i = heap_.readI64(addr); break;
              case Type::F64: r[ac.dst].f = heap_.readF64(addr); break;
              case Type::Ref: r[ac.dst].ref = heap_.readRef(addr); break;
              default: TRAPJIT_PANIC("bad element type");
            }
            ++ip;
            NEXT();
        }
    }
    OP(FusedArrayStoreQuad)
    {
        {
            const DecodedInst &rec = *ip; // NullCheck
            CHARGE(rec);
            nFused += 3;
            if (rec.flavor == CheckFlavor::Explicit) {
                ++nExplicitNC;
                if (r[rec.a].ref == 0)
                    RAISE(ExcKind::NullPointer, rec);
            } else {
                ++nImplicitNC;
            }
        }
        {
            ++ip;
            const DecodedInst &rec = *ip; // ArrayLength
            CHARGE(rec);
            Address ref = r[rec.a].ref;
            if (ref == 0) { // implicit-flavor checks don't test the ref
                FLUSH_STATS();
                r[rec.dst] = handleNullAccess(rec, pending, cycles8);
                if (pending.pending())
                    DISPATCH_PENDING(rec);
                ++ip;
                NEXT();
            }
            ++nHeapReads;
            int32_t len = heap_.arrayLength(ref);
            r[rec.dst].i = len;

            ++ip;
            const DecodedInst &bc = *ip; // BoundCheck (b == length dst)
            CHARGE(bc);
            ++nBoundChecks;
            int64_t idx = r[bc.a].i;
            if (idx < 0 || idx >= len)
                RAISE(ExcKind::ArrayIndexOutOfBounds, bc);

            ++ip;
            const DecodedInst &ac = *ip; // ArrayStore (a == ref, b == idx)
            CHARGE(ac);
            Address addr = ref + kArrayDataOffset +
                           static_cast<Address>(idx) * typeSize(ac.type);
            ++nHeapWrites;
            switch (ac.type) {
              case Type::I32: {
                int32_t v = static_cast<int32_t>(r[ac.c].i);
                heap_.writeI32(addr, v);
                trace_.recordWrite(addr, static_cast<uint32_t>(v), 4);
                break;
              }
              case Type::I64:
                heap_.writeI64(addr, r[ac.c].i);
                trace_.recordWrite(addr, static_cast<uint64_t>(r[ac.c].i),
                                   8);
                break;
              case Type::F64:
                heap_.writeF64(addr, r[ac.c].f);
                trace_.recordWrite(addr,
                                   std::bit_cast<uint64_t>(r[ac.c].f), 8);
                break;
              case Type::Ref:
                heap_.writeRef(addr, r[ac.c].ref);
                trace_.recordWrite(addr, r[ac.c].ref, 8);
                break;
              default:
                TRAPJIT_PANIC("bad element type");
            }
            ++ip;
            NEXT();
        }
    }

    OP(FusedLoopLatch)
    {
        {
            const DecodedInst &rec = *ip; // ConstInt
            CHARGE(rec);
            nFused += 4;
            SETI(rec, rec.imm);
        }
        {
            ++ip;
            const DecodedInst &rec = *ip; // IAdd
            CHARGE(rec);
            SETI(rec, static_cast<int64_t>(
                          static_cast<uint64_t>(r[rec.a].i) +
                          static_cast<uint64_t>(r[rec.b].i)));
        }
        {
            ++ip;
            const DecodedInst &rec = *ip; // Move
            CHARGE(rec);
            r[rec.dst] = r[rec.a];
        }
        {
            ++ip;
            const DecodedInst &rec = *ip; // ICmp
            CHARGE(rec);
            SETI(rec, evalPred(rec.pred, r[rec.a].i, r[rec.b].i) ? 1 : 0);
        }
        {
            ++ip;
            const DecodedInst &rec = *ip; // Branch
            CHARGE(rec);
            const DecodedInst *const from = ip;
            ip = code + (r[rec.a].i != 0 ? rec.target : rec.target2);
            TIER_BACKEDGE(from);
            NEXT();
        }
    }

#if !TRAPJIT_DIRECT_THREADED
      case DecodedOp::Count:
        break;
    }
    TRAPJIT_PANIC("corrupt decoded stream");
#endif

L_exception:
    for (TryRegionId rr = excRegion; rr != 0;
         rr = df.tryRegions[rr].parent) {
        const DecodedTryRegion &region = df.tryRegions[rr];
        if (region.catches == ExcKind::CatchAll ||
            region.catches == pending.kind) {
            ip = code + region.handlerIndex;
            pending = ThrownExc{};
            NEXT();
        }
    }
    FLUSH_STATS();
    return FrameResult{Slot{}, pending};

L_return:
    FLUSH_STATS();
    return FrameResult{retVal, ThrownExc{}};
}

#undef OP
#undef OP_TARGET
#undef NEXT
#undef CHARGE
#undef TIER_BACKEDGE
#undef FLUSH_STATS
#undef RELOAD_STATS
#undef FAULT
#undef RAISE
#undef DISPATCH_PENDING
#undef SETI

} // namespace trapjit
