#ifndef TRAPJIT_INTERP_FAST_INTERPRETER_H_
#define TRAPJIT_INTERP_FAST_INTERPRETER_H_

/**
 * @file
 * Pre-decoded, direct-threaded IR interpreter.
 *
 * Executes the DecodedFunction form (interp/decoded_program.h) with
 * computed-goto dispatch on GNU-compatible compilers and a token-
 * threaded switch otherwise (define TRAPJIT_FORCE_SWITCH_DISPATCH to
 * force the portable path).  Semantics — heap contents, exception
 * behavior including the per-target trap model, the observable event
 * trace, and the accumulated cycle count, bit for bit — are identical
 * to the reference interpreter (interp/interpreter.h), which is kept
 * as the executable specification; tests/test_interp_differential.cpp
 * enforces the contract over random programs under every config arm.
 *
 * The register file is a packed array of 8-byte union slots rather than
 * the reference engine's three-field RuntimeValue: every IR value has
 * one static type, so one 64-bit lane per register is enough, and Move
 * copies a single machine word.
 *
 * Decoded programs are immutable and shareable; pass a
 * DecodedProgramCache (e.g. CompileService::decodedCache()) to reuse
 * decodes across interpreter instances — the bench path then decodes
 * each (function, target) pair exactly once.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/target.h"
#include "interp/decoded_program.h"
#include "interp/event_trace.h"
#include "interp/interpreter.h"
#include "ir/module.h"
#include "runtime/exceptions.h"
#include "runtime/heap.h"

namespace trapjit
{

/** Which execution engine to use for a workload run. */
enum class InterpEngineKind : uint8_t
{
    Reference, ///< the original switch interpreter (the oracle)
    Fast,      ///< pre-decoded, direct-threaded engine
    Native,    ///< x86-64 machine code with hardware-trap null checks
    Tiered,    ///< fast engine + profile-guided native promotion
};

/**
 * Engine selected by the TRAPJIT_INTERP environment variable:
 * "reference" (or "ref") picks the oracle, "native" the x86-64 JIT
 * tier (which itself falls back to the fast engine per function on
 * unsupported hosts — see codegen/native/native_engine.h), "tiered"
 * the profile-guided mixed-mode engine
 * (codegen/native/tiered_engine.h), anything else — including the
 * variable being unset — the fast engine.
 */
InterpEngineKind interpEngineFromEnv();

/** Printable engine name ("reference" / "fast" / "native" / "tiered"). */
const char *interpEngineName(InterpEngineKind kind);

/**
 * The fast engine; mirrors the Interpreter surface so call sites can
 * switch between the two with a branch.
 */
class FastInterpreter
{
  public:
    /**
     * @param mod     the compiled module to execute
     * @param target  the honest runtime trap/cost model
     * @param cache   optional shared decode cache; when null, decodes
     *                are private to this interpreter (still memoized
     *                per function)
     */
    FastInterpreter(const Module &mod, const Target &target,
                    InterpOptions options = {},
                    std::shared_ptr<DecodedProgramCache> cache = nullptr,
                    DecodeOptions decode_options = {});

    /** Execute @p func with @p args; resets nothing between calls. */
    ExecResult run(FunctionId func, const std::vector<RuntimeValue> &args);

    Heap &heap() { return heap_; }
    EventTrace &trace() { return trace_; }
    const ExecStats &stats() const { return stats_; }

    /** Clear heap, trace and statistics (decoded programs are kept). */
    void reset();

    class TierHooks; ///< tiering call-outs (see below)

  private:
    // The native tier embeds a FastInterpreter as its per-function
    // fallback engine and drives execFrame directly so mixed native /
    // interpreted call stacks share one heap, trace and stats block.
    // The tiered engine additionally enables the hotness profiling and
    // call-interception hooks declared at the bottom of this class.
    friend class NativeEngine;
    friend class TieredEngine;

    /**
     * One 64-bit register slot.  All lanes alias the same machine word;
     * the static type of the IR value picks which one is read.
     */
    struct Slot
    {
        union {
            int64_t i;
            double f;
            Address ref;
            uint64_t bits;
        };

        Slot() : bits(0) {}
    };

    struct FrameResult
    {
        Slot value;
        ThrownExc exc;
    };

    /** Decoded form of @p id, decoding (through the cache) on demand. */
    const DecodedFunction &decoded(FunctionId id);

    FrameResult execFrame(const DecodedFunction &df, std::vector<Slot> args,
                          size_t depth);

    /**
     * Re-enter a frame at an arbitrary record with an already-built
     * register file: the deopt path of the optimized native backend.
     * The slot file is canonical at every record boundary there
     * (write-through register allocation), so @p regs is the complete
     * frame state.  A pending exception in @p pendingIn is dispatched
     * from @p startRecord's try region without re-executing the record
     * (the native helper already retired it); otherwise execution
     * resumes by re-executing @p startRecord.  No depth or argument
     * checks — the frame already passed them when it first entered.
     */
    FrameResult resumeFrame(const DecodedFunction &df,
                            std::vector<Slot> regs, size_t depth,
                            uint32_t startRecord, ThrownExc pendingIn);

    /** Shared engine of execFrame and resumeFrame. */
    FrameResult execFrameAt(const DecodedFunction &df,
                            std::vector<Slot> regs, size_t depth,
                            uint32_t startRecord, ThrownExc pendingIn);

    /**
     * Decoded-form twin of Interpreter::handleNullAccess.  @p cycles8
     * is the frame's register-resident eighth-cycle accumulator (trap
     * dispatch charges land there, in reference order).
     */
    Slot handleNullAccess(const DecodedInst &d, ThrownExc &exc,
                          uint64_t &cycles8);

    const Module &mod_;
    const Target &target_;
    InterpOptions options_;
    DecodeOptions decodeOptions_;
    std::shared_ptr<DecodedProgramCache> cache_;
    std::vector<std::shared_ptr<const DecodedFunction>> decoded_;
    Heap heap_;
    EventTrace trace_;
    ExecStats stats_;

    // Target charges pre-scaled to eighth-cycles (see cyclesToEighths).
    uint64_t throwCycles8_;
    uint64_t trapDispatch8_;
    uint64_t allocPerByte8_;

    // ---- profile-guided tiering (all null/zero = disabled) ----------
    // Set directly by the owning TieredEngine (a friend): tierHot_ is
    // its per-function hotness array, bumped on every taken back-edge;
    // reaching tierThreshold_ fires tierPromote exactly once per
    // tier-up (the counter keeps rising past the threshold, so the
    // equality cannot refire until invalidation resets the slot).
    TierHooks *tierHooks_ = nullptr;
    uint32_t *tierHot_ = nullptr;
    uint32_t tierThreshold_ = 0;
};

/**
 * Call-outs from the dispatch loop into the tiered engine.  tierInvoke
 * is offered every resolved call (stats_ flushed around it): it either
 * executes the callee natively, filling @p out and consuming @p args,
 * or returns false with @p args untouched and the interpreter runs the
 * callee itself.  tierPromote reports a hotness counter crossing the
 * threshold; the current frame keeps interpreting either way.
 */
class FastInterpreter::TierHooks
{
  public:
    virtual ~TierHooks() = default;
    virtual bool tierInvoke(FunctionId callee, std::vector<Slot> &&args,
                            size_t depth, FrameResult &out) = 0;
    virtual void tierPromote(FunctionId fn) = 0;
};

} // namespace trapjit

#endif // TRAPJIT_INTERP_FAST_INTERPRETER_H_
