#include "interp/interpreter.h"

#include <bit>
#include <cmath>
#include <limits>

#include "interp/cost_model.h"
#include "interp/java_semantics.h"
#include "support/diagnostics.h"

namespace trapjit
{

Interpreter::Interpreter(const Module &mod, const Target &target,
                         InterpOptions options)
    : mod_(mod), target_(target), options_(options),
      heap_(options.heapBytes)
{
    trace_.setEnabled(options.recordTrace);
}

void
Interpreter::reset()
{
    heap_.reset();
    trace_.clear();
    stats_ = ExecStats{};
}

ExecResult
Interpreter::run(FunctionId func, const std::vector<RuntimeValue> &args)
{
    FrameResult frame = execFunction(mod_.function(func), args, 0);
    ExecResult result;
    if (frame.exc.pending()) {
        result.outcome = ExecResult::Outcome::Threw;
        result.exception = frame.exc.kind;
        trace_.recordEscapedException(frame.exc.kind);
    } else {
        result.outcome = ExecResult::Outcome::Returned;
        result.value = frame.value;
    }
    result.stats = stats_;
    return result;
}

RuntimeValue
Interpreter::handleNullAccess(const Instruction &inst, ThrownExc &exc)
{
    const RuntimeValue zero{};
    const int64_t offset = inst.slotOffset();
    const SlotAccess access = inst.slotAccess();

    if (inst.speculative) {
        if (access == SlotAccess::Read &&
            target_.readIsSpeculationSafe(offset)) {
            // The speculated read of the null page yields zero; the
            // (explicit) check that still follows will raise the NPE.
            ++stats_.speculativeReadsOfNull;
            return zero;
        }
        throw HardFault("speculative access through null is not safe on " +
                        target_.name + " (site " +
                        std::to_string(inst.site) + ")");
    }

    if (inst.exceptionSite) {
        if (target_.trapCovers(inst)) {
            // The hardware trap fires and the VM turns it into an NPE.
            ++stats_.trapsTaken;
            stats_.cycles += target_.trapDispatchCycles;
            exc = ThrownExc{ExcKind::NullPointer, inst.site};
            return zero;
        }
        if (access == SlotAccess::Read && target_.readOfNullPageYieldsZero &&
            offset >= 0 && offset < target_.trapAreaBytes) {
            // The Illegal Implicit behavior of Section 5.4: the read of
            // page zero silently succeeds and NO exception is raised,
            // violating the Java specification.
            return zero;
        }
        throw HardFault("implicit check at site " +
                        std::to_string(inst.site) +
                        " is not trap-covered on " + target_.name);
    }

    throw HardFault(std::string("unchecked null dereference: ") +
                    inst.name() + " at site " + std::to_string(inst.site));
}

Interpreter::FrameResult
Interpreter::execFunction(const Function &func,
                          std::vector<RuntimeValue> args, size_t depth)
{
    if (depth > options_.maxCallDepth)
        throw HardFault("call depth limit exceeded in " + func.name());
    TRAPJIT_ASSERT(args.size() == func.numParams(),
                   "bad argument count calling ", func.name());

    std::vector<RuntimeValue> regs(func.numValues());
    for (size_t i = 0; i < args.size(); ++i)
        regs[i] = args[i];

    auto setInt = [&](ValueId dst, int64_t v) {
        if (func.value(dst).type == Type::I32)
            v = static_cast<int32_t>(v);
        regs[dst].i = v;
    };

    BlockId cur = 0;
    ThrownExc pending;

    while (true) {
        const BasicBlock &bb = func.block(cur);
        BlockId next = kNoBlock;
        bool returned = false;
        RuntimeValue retVal;
        pending = ThrownExc{};

        for (const Instruction &inst : bb.insts()) {
            if (++stats_.instructions > options_.maxInstructions)
                throw HardFault("instruction budget exceeded in " +
                                func.name());
            stats_.cycles += instructionCost(inst, target_);

            auto raise = [&](ExcKind kind) {
                stats_.cycles += target_.throwCycles;
                pending = ThrownExc{kind, inst.site};
            };

            switch (inst.op) {
              case Opcode::ConstInt:
                setInt(inst.dst, inst.imm);
                break;
              case Opcode::ConstFloat:
                regs[inst.dst].f = inst.fimm;
                break;
              case Opcode::ConstNull:
                regs[inst.dst].ref = 0;
                break;
              case Opcode::Move:
                regs[inst.dst] = regs[inst.a];
                break;

              case Opcode::IAdd:
                setInt(inst.dst, static_cast<int64_t>(
                    static_cast<uint64_t>(regs[inst.a].i) +
                    static_cast<uint64_t>(regs[inst.b].i)));
                break;
              case Opcode::ISub:
                setInt(inst.dst, static_cast<int64_t>(
                    static_cast<uint64_t>(regs[inst.a].i) -
                    static_cast<uint64_t>(regs[inst.b].i)));
                break;
              case Opcode::IMul:
                setInt(inst.dst, static_cast<int64_t>(
                    static_cast<uint64_t>(regs[inst.a].i) *
                    static_cast<uint64_t>(regs[inst.b].i)));
                break;
              case Opcode::IDiv:
                if (regs[inst.b].i == 0) {
                    raise(ExcKind::Arithmetic);
                    break;
                }
                setInt(inst.dst, javaDiv(regs[inst.a].i, regs[inst.b].i));
                break;
              case Opcode::IRem:
                if (regs[inst.b].i == 0) {
                    raise(ExcKind::Arithmetic);
                    break;
                }
                setInt(inst.dst, javaRem(regs[inst.a].i, regs[inst.b].i));
                break;
              case Opcode::INeg:
                setInt(inst.dst, static_cast<int64_t>(
                    0 - static_cast<uint64_t>(regs[inst.a].i)));
                break;
              case Opcode::IAnd:
                setInt(inst.dst, regs[inst.a].i & regs[inst.b].i);
                break;
              case Opcode::IOr:
                setInt(inst.dst, regs[inst.a].i | regs[inst.b].i);
                break;
              case Opcode::IXor:
                setInt(inst.dst, regs[inst.a].i ^ regs[inst.b].i);
                break;
              case Opcode::IShl: {
                bool wide = func.value(inst.dst).type == Type::I64;
                int sh = static_cast<int>(regs[inst.b].i & (wide ? 63 : 31));
                setInt(inst.dst, static_cast<int64_t>(
                    static_cast<uint64_t>(regs[inst.a].i) << sh));
                break;
              }
              case Opcode::IShr: {
                bool wide = func.value(inst.dst).type == Type::I64;
                int sh = static_cast<int>(regs[inst.b].i & (wide ? 63 : 31));
                int64_t v = wide ? regs[inst.a].i
                                 : static_cast<int32_t>(regs[inst.a].i);
                setInt(inst.dst, v >> sh);
                break;
              }
              case Opcode::IUshr: {
                bool wide = func.value(inst.dst).type == Type::I64;
                int sh = static_cast<int>(regs[inst.b].i & (wide ? 63 : 31));
                uint64_t v = wide
                    ? static_cast<uint64_t>(regs[inst.a].i)
                    : static_cast<uint32_t>(regs[inst.a].i);
                setInt(inst.dst, static_cast<int64_t>(v >> sh));
                break;
              }

              case Opcode::FAdd:
                regs[inst.dst].f = regs[inst.a].f + regs[inst.b].f;
                break;
              case Opcode::FSub:
                regs[inst.dst].f = regs[inst.a].f - regs[inst.b].f;
                break;
              case Opcode::FMul:
                regs[inst.dst].f = regs[inst.a].f * regs[inst.b].f;
                break;
              case Opcode::FDiv:
                regs[inst.dst].f = regs[inst.a].f / regs[inst.b].f;
                break;
              case Opcode::FNeg:
                regs[inst.dst].f = -regs[inst.a].f;
                break;
              case Opcode::FExp:
                regs[inst.dst].f = std::exp(regs[inst.a].f);
                break;
              case Opcode::FSqrt:
                regs[inst.dst].f = std::sqrt(regs[inst.a].f);
                break;
              case Opcode::FSin:
                regs[inst.dst].f = std::sin(regs[inst.a].f);
                break;
              case Opcode::FCos:
                regs[inst.dst].f = std::cos(regs[inst.a].f);
                break;
              case Opcode::FAbs:
                regs[inst.dst].f = std::fabs(regs[inst.a].f);
                break;
              case Opcode::FLog:
                regs[inst.dst].f = std::log(regs[inst.a].f);
                break;

              case Opcode::I2F:
                regs[inst.dst].f = static_cast<double>(regs[inst.a].i);
                break;
              case Opcode::F2I:
                setInt(inst.dst, javaF2I(regs[inst.a].f));
                break;
              case Opcode::I2L:
                regs[inst.dst].i =
                    static_cast<int32_t>(regs[inst.a].i);
                break;
              case Opcode::L2I:
                setInt(inst.dst, regs[inst.a].i);
                break;

              case Opcode::ICmp:
                setInt(inst.dst, evalPred(inst.pred, regs[inst.a].i,
                                          regs[inst.b].i) ? 1 : 0);
                break;
              case Opcode::FCmp:
                setInt(inst.dst, evalPred(inst.pred, regs[inst.a].f,
                                          regs[inst.b].f) ? 1 : 0);
                break;

              case Opcode::NullCheck:
                if (inst.flavor == CheckFlavor::Explicit) {
                    ++stats_.explicitNullChecks;
                    if (regs[inst.a].ref == 0)
                        raise(ExcKind::NullPointer);
                } else {
                    // Implicit: no code, no cost; the marked access that
                    // follows carries the trap.
                    ++stats_.implicitNullChecks;
                }
                break;

              case Opcode::BoundCheck: {
                ++stats_.boundChecks;
                int64_t idx = regs[inst.a].i;
                int64_t len = regs[inst.b].i;
                if (idx < 0 || idx >= len)
                    raise(ExcKind::ArrayIndexOutOfBounds);
                break;
              }

              case Opcode::GetField: {
                Address ref = regs[inst.a].ref;
                if (ref == 0) {
                    regs[inst.dst] = handleNullAccess(inst, pending);
                    break;
                }
                Address addr = ref + static_cast<Address>(inst.imm);
                Type t = func.value(inst.dst).type;
                if (!heap_.inBounds(addr, typeSize(t)))
                    throw HardFault("getfield outside the object");
                ++stats_.heapReads;
                switch (t) {
                  case Type::I32: regs[inst.dst].i = heap_.readI32(addr);
                    break;
                  case Type::I64: regs[inst.dst].i = heap_.readI64(addr);
                    break;
                  case Type::F64: regs[inst.dst].f = heap_.readF64(addr);
                    break;
                  case Type::Ref: regs[inst.dst].ref = heap_.readRef(addr);
                    break;
                  default:
                    TRAPJIT_PANIC("bad getfield type");
                }
                break;
              }

              case Opcode::PutField: {
                Address ref = regs[inst.a].ref;
                if (ref == 0) {
                    handleNullAccess(inst, pending);
                    break;
                }
                Address addr = ref + static_cast<Address>(inst.imm);
                Type t = func.value(inst.b).type;
                if (!heap_.inBounds(addr, typeSize(t)))
                    throw HardFault("putfield outside the object");
                ++stats_.heapWrites;
                switch (t) {
                  case Type::I32: {
                    int32_t v = static_cast<int32_t>(regs[inst.b].i);
                    heap_.writeI32(addr, v);
                    trace_.recordWrite(addr, static_cast<uint32_t>(v), 4);
                    break;
                  }
                  case Type::I64:
                    heap_.writeI64(addr, regs[inst.b].i);
                    trace_.recordWrite(
                        addr, static_cast<uint64_t>(regs[inst.b].i), 8);
                    break;
                  case Type::F64:
                    heap_.writeF64(addr, regs[inst.b].f);
                    trace_.recordWrite(addr,
                                       std::bit_cast<uint64_t>(
                                           regs[inst.b].f), 8);
                    break;
                  case Type::Ref:
                    heap_.writeRef(addr, regs[inst.b].ref);
                    trace_.recordWrite(addr, regs[inst.b].ref, 8);
                    break;
                  default:
                    TRAPJIT_PANIC("bad putfield type");
                }
                break;
              }

              case Opcode::ArrayLength: {
                Address ref = regs[inst.a].ref;
                if (ref == 0) {
                    regs[inst.dst] = handleNullAccess(inst, pending);
                    break;
                }
                ++stats_.heapReads;
                regs[inst.dst].i = heap_.arrayLength(ref);
                break;
              }

              case Opcode::ArrayLoad: {
                Address ref = regs[inst.a].ref;
                if (ref == 0) {
                    regs[inst.dst] = handleNullAccess(inst, pending);
                    break;
                }
                int64_t idx = static_cast<int32_t>(regs[inst.b].i);
                int32_t len = heap_.arrayLength(ref);
                if (idx < 0 || idx >= len)
                    throw HardFault(
                        "raw array load out of bounds (missing check)");
                Address addr = ref + kArrayDataOffset +
                               static_cast<Address>(idx) *
                                   typeSize(inst.elemType);
                ++stats_.heapReads;
                switch (inst.elemType) {
                  case Type::I32: regs[inst.dst].i = heap_.readI32(addr);
                    break;
                  case Type::I64: regs[inst.dst].i = heap_.readI64(addr);
                    break;
                  case Type::F64: regs[inst.dst].f = heap_.readF64(addr);
                    break;
                  case Type::Ref: regs[inst.dst].ref = heap_.readRef(addr);
                    break;
                  default:
                    TRAPJIT_PANIC("bad element type");
                }
                break;
              }

              case Opcode::ArrayStore: {
                Address ref = regs[inst.a].ref;
                if (ref == 0) {
                    handleNullAccess(inst, pending);
                    break;
                }
                int64_t idx = static_cast<int32_t>(regs[inst.b].i);
                int32_t len = heap_.arrayLength(ref);
                if (idx < 0 || idx >= len)
                    throw HardFault(
                        "raw array store out of bounds (missing check)");
                Address addr = ref + kArrayDataOffset +
                               static_cast<Address>(idx) *
                                   typeSize(inst.elemType);
                ++stats_.heapWrites;
                switch (inst.elemType) {
                  case Type::I32: {
                    int32_t v = static_cast<int32_t>(regs[inst.c].i);
                    heap_.writeI32(addr, v);
                    trace_.recordWrite(addr, static_cast<uint32_t>(v), 4);
                    break;
                  }
                  case Type::I64:
                    heap_.writeI64(addr, regs[inst.c].i);
                    trace_.recordWrite(
                        addr, static_cast<uint64_t>(regs[inst.c].i), 8);
                    break;
                  case Type::F64:
                    heap_.writeF64(addr, regs[inst.c].f);
                    trace_.recordWrite(addr,
                                       std::bit_cast<uint64_t>(
                                           regs[inst.c].f), 8);
                    break;
                  case Type::Ref:
                    heap_.writeRef(addr, regs[inst.c].ref);
                    trace_.recordWrite(addr, regs[inst.c].ref, 8);
                    break;
                  default:
                    TRAPJIT_PANIC("bad element type");
                }
                break;
              }

              case Opcode::NewObject: {
                ++stats_.allocations;
                Address ref = heap_.allocateObject(
                    static_cast<ClassId>(inst.imm), inst.imm2);
                if (ref == 0) {
                    raise(ExcKind::OutOfMemory);
                    break;
                }
                stats_.cycles += target_.allocPerByteCycles *
                                 static_cast<double>(inst.imm2);
                trace_.recordAllocation(ref,
                                        static_cast<uint64_t>(inst.imm2));
                regs[inst.dst].ref = ref;
                break;
              }

              case Opcode::NewArray: {
                int64_t len = static_cast<int32_t>(regs[inst.a].i);
                if (len < 0) {
                    raise(ExcKind::NegativeArraySize);
                    break;
                }
                ++stats_.allocations;
                Address ref = heap_.allocateArray(
                    inst.elemType, static_cast<int32_t>(len));
                if (ref == 0) {
                    raise(ExcKind::OutOfMemory);
                    break;
                }
                stats_.cycles += target_.allocPerByteCycles *
                                 static_cast<double>(
                                     len * typeSize(inst.elemType));
                trace_.recordAllocation(
                    ref, static_cast<uint64_t>(len) *
                             typeSize(inst.elemType));
                regs[inst.dst].ref = ref;
                break;
              }

              case Opcode::Call: {
                ++stats_.calls;
                FunctionId callee = kNoFunction;
                if (inst.callKind == CallKind::Virtual) {
                    Address recv = regs[inst.args[0]].ref;
                    if (recv == 0) {
                        handleNullAccess(inst, pending);
                        break;
                    }
                    ClassId cid = heap_.classOf(recv);
                    if (cid >= mod_.numClasses())
                        throw HardFault("corrupt object header");
                    const auto &vtable = mod_.cls(cid).vtable;
                    if (static_cast<size_t>(inst.imm) >= vtable.size())
                        throw HardFault("vtable slot out of range");
                    callee = vtable[inst.imm];
                } else {
                    if (inst.callKind == CallKind::Special &&
                        regs[inst.args[0]].ref == 0) {
                        // The raw devirtualized call does not touch the
                        // receiver; reaching it with null means the
                        // optimizer dropped the explicit check Figure 1
                        // requires.
                        throw HardFault(
                            "special call with null receiver (site " +
                            std::to_string(inst.site) + ")");
                    }
                    callee = static_cast<FunctionId>(inst.imm);
                }
                if (callee == kNoFunction ||
                    callee >= mod_.numFunctions())
                    throw HardFault("call target unresolved");

                std::vector<RuntimeValue> argv;
                argv.reserve(inst.args.size());
                for (ValueId arg : inst.args)
                    argv.push_back(regs[arg]);
                FrameResult sub = execFunction(mod_.function(callee),
                                               std::move(argv), depth + 1);
                if (sub.exc.pending())
                    pending = sub.exc;
                else if (inst.dst != kNoValue)
                    regs[inst.dst] = sub.value;
                break;
              }

              case Opcode::Jump:
                next = static_cast<BlockId>(inst.imm);
                break;
              case Opcode::Branch:
                next = static_cast<BlockId>(
                    regs[inst.a].i != 0 ? inst.imm : inst.imm2);
                break;
              case Opcode::IfNull:
                next = static_cast<BlockId>(
                    regs[inst.a].ref == 0 ? inst.imm : inst.imm2);
                break;
              case Opcode::Return:
                returned = true;
                if (inst.a != kNoValue)
                    retVal = regs[inst.a];
                break;
              case Opcode::Throw:
                pending = ThrownExc{static_cast<ExcKind>(inst.imm),
                                    inst.site};
                break;
              case Opcode::Nop:
                break;
            }

            if (pending.pending() || returned)
                break;
        }

        if (returned)
            return FrameResult{retVal, ThrownExc{}};

        if (pending.pending()) {
            // Walk the try-region chain outward until a handler accepts
            // the exception kind.
            BlockId handler = kNoBlock;
            for (TryRegionId r = bb.tryRegion(); r != 0;
                 r = func.tryRegion(r).parent) {
                const TryRegion &region = func.tryRegion(r);
                if (region.catches == ExcKind::CatchAll ||
                    region.catches == pending.kind) {
                    handler = region.handlerBlock;
                    break;
                }
            }
            if (handler != kNoBlock) {
                cur = handler;
                continue;
            }
            return FrameResult{RuntimeValue{}, pending};
        }

        TRAPJIT_ASSERT(next != kNoBlock, "block fell through");
        cur = next;
    }
}

} // namespace trapjit
