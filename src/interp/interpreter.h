#ifndef TRAPJIT_INTERP_INTERPRETER_H_
#define TRAPJIT_INTERP_INTERPRETER_H_

/**
 * @file
 * IR interpreter with the target's trap semantics and cycle accounting.
 *
 * The interpreter is the "hardware" of the reproduction.  It executes a
 * Module under a Target whose trap model decides what happens when an
 * instruction touches memory through a null reference:
 *
 *  - instruction marked as an implicit-check exception site and the
 *    access is trap-covered           -> NullPointerException (trap taken)
 *  - read marked speculative on a target where null-page reads are safe
 *                                     -> silently yields zero
 *  - read marked as exception site on a target that does NOT trap reads
 *    (the Illegal Implicit experiment) -> silently yields zero, i.e. the
 *    Java specification is violated exactly as Section 5.4 warns
 *  - anything else                     -> HardFault: the optimizer emitted
 *    a wild access; the test suite treats this as a miscompilation
 *
 * Execution also accumulates the cycle costs of the cost model, which is
 * what the benchmark harnesses report as performance.
 */

#include <cstdint>
#include <vector>

#include "arch/target.h"
#include "interp/event_trace.h"
#include "ir/module.h"
#include "runtime/exceptions.h"
#include "runtime/heap.h"

namespace trapjit
{

/** An untyped register slot; the static type picks the field. */
struct RuntimeValue
{
    int64_t i = 0;
    double f = 0.0;
    Address ref = 0;

    static RuntimeValue
    ofInt(int64_t v)
    {
        RuntimeValue rv;
        rv.i = v;
        return rv;
    }

    static RuntimeValue
    ofFloat(double v)
    {
        RuntimeValue rv;
        rv.f = v;
        return rv;
    }

    static RuntimeValue
    ofRef(Address v)
    {
        RuntimeValue rv;
        rv.ref = v;
        return rv;
    }
};

/** Execution statistics (dynamic counts and simulated cycles). */
struct ExecStats
{
    uint64_t instructions = 0;
    double cycles = 0.0;
    uint64_t explicitNullChecks = 0;
    uint64_t implicitNullChecks = 0;
    uint64_t boundChecks = 0;
    uint64_t heapReads = 0;
    uint64_t heapWrites = 0;
    uint64_t calls = 0;
    uint64_t allocations = 0;
    uint64_t trapsTaken = 0;
    uint64_t speculativeReadsOfNull = 0;

    // Engine-side counters, filled by the fast interpreter only (the
    // reference interpreter leaves them zero; they are excluded from
    // the cross-engine differential comparison).
    uint64_t dispatches = 0;         ///< handler entries (fused pair = 1)
    uint64_t fusedPairsExecuted = 0; ///< superinstruction executions
    uint64_t functionsDecoded = 0;   ///< decode-cache misses this run
    double decodeSeconds = 0.0;      ///< host time spent decoding

    // Filled by the native tier only: lowering work this run paid for
    // (zero when every function hit the shared NativeCodeCache).
    uint64_t functionsNativeCompiled = 0; ///< native-cache misses
    double nativeCompileSeconds = 0.0;    ///< host time spent emitting
};

/** Result of a top-level execution. */
struct ExecResult
{
    enum class Outcome : uint8_t { Returned, Threw };

    Outcome outcome = Outcome::Returned;
    RuntimeValue value;       ///< return value when Returned
    ExcKind exception = ExcKind::None;
    ExecStats stats;
};

/** Interpreter options. */
struct InterpOptions
{
    uint64_t maxInstructions = 200'000'000;
    size_t maxCallDepth = 256;
    size_t heapBytes = 32u << 20;
    bool recordTrace = true;
};

/** The interpreter; one instance per execution environment. */
class Interpreter
{
  public:
    /**
     * @param mod     the compiled module to execute
     * @param target  the *honest* runtime trap/cost model (for the
     *                Illegal Implicit experiment, compile against the
     *                lying target but execute on the honest one)
     */
    Interpreter(const Module &mod, const Target &target,
                InterpOptions options = {});

    /** Execute @p func with @p args; resets nothing between calls. */
    ExecResult run(FunctionId func, const std::vector<RuntimeValue> &args);

    Heap &heap() { return heap_; }
    EventTrace &trace() { return trace_; }
    const ExecStats &stats() const { return stats_; }

    /** Clear heap, trace and statistics for a fresh run. */
    void reset();

  private:
    struct FrameResult
    {
        RuntimeValue value;
        ThrownExc exc;
    };

    FrameResult execFunction(const Function &func,
                             std::vector<RuntimeValue> args, size_t depth);

    /**
     * Handle an access through a null reference per the target's trap
     * model; returns the substituted read value when execution continues
     * (speculation / illegal-implicit silent read), otherwise records the
     * NPE in @p exc or throws HardFault.
     */
    RuntimeValue handleNullAccess(const Instruction &inst, ThrownExc &exc);

    const Module &mod_;
    const Target &target_;
    InterpOptions options_;
    Heap heap_;
    EventTrace trace_;
    ExecStats stats_;
};

} // namespace trapjit

#endif // TRAPJIT_INTERP_INTERPRETER_H_
