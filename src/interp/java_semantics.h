#ifndef TRAPJIT_INTERP_JAVA_SEMANTICS_H_
#define TRAPJIT_INTERP_JAVA_SEMANTICS_H_

/**
 * @file
 * Java-language arithmetic corner cases, shared by the reference
 * interpreter and the pre-decoded fast engine so that both execute the
 * exact same definitions (the differential tests compare bit for bit).
 */

#include <cmath>
#include <cstdint>

#include "ir/instruction.h"

namespace trapjit
{

/** Java-style i32/i64 division that wraps on MIN / -1. */
inline int64_t
javaDiv(int64_t a, int64_t b)
{
    if (b == -1)
        return static_cast<int64_t>(0 - static_cast<uint64_t>(a));
    return a / b;
}

inline int64_t
javaRem(int64_t a, int64_t b)
{
    if (b == -1)
        return 0;
    return a % b;
}

/** Java-style f64 -> i32 (NaN -> 0, saturating). */
inline int32_t
javaF2I(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 2147483647.0)
        return 2147483647;
    if (v <= -2147483648.0)
        return INT32_MIN;
    return static_cast<int32_t>(v);
}

inline bool
evalPred(CmpPred pred, auto lhs, auto rhs)
{
    switch (pred) {
      case CmpPred::EQ: return lhs == rhs;
      case CmpPred::NE: return lhs != rhs;
      case CmpPred::LT: return lhs < rhs;
      case CmpPred::LE: return lhs <= rhs;
      case CmpPred::GT: return lhs > rhs;
      case CmpPred::GE: return lhs >= rhs;
    }
    return false;
}

} // namespace trapjit

#endif // TRAPJIT_INTERP_JAVA_SEMANTICS_H_
