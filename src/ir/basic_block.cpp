#include "ir/basic_block.h"

#include "support/diagnostics.h"

namespace trapjit
{

void
BasicBlock::insertBeforeTerminator(Instruction inst)
{
    TRAPJIT_ASSERT(!inst.isTerminator(),
                   "insertBeforeTerminator takes non-terminators");
    if (isTerminated())
        insts_.insert(insts_.end() - 1, std::move(inst));
    else
        insts_.push_back(std::move(inst));
}

} // namespace trapjit
