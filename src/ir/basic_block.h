#ifndef TRAPJIT_IR_BASIC_BLOCK_H_
#define TRAPJIT_IR_BASIC_BLOCK_H_

/**
 * @file
 * Basic blocks of the control flow graph.
 *
 * A block holds a straight-line instruction sequence whose last
 * instruction is the only terminator.  Exception flow is *factored*: a
 * block belongs to at most one try region, and if it does, the region's
 * handler block is an additional CFG successor.  The paper's
 * Edge_try(m, n) sets fall out of comparing the region ids of the two
 * endpoint blocks.
 */

#include <cstdint>
#include <vector>

#include "ir/instruction.h"

namespace trapjit
{

/** Index of a basic block within its Function. */
using BlockId = uint32_t;

/** Sentinel block id. */
constexpr BlockId kNoBlock = UINT32_MAX;

/** Index of a try region within its Function; 0 means "not in a region". */
using TryRegionId = uint32_t;

/** A basic block. */
class BasicBlock
{
  public:
    BasicBlock(BlockId id, TryRegionId try_region)
        : id_(id), tryRegion_(try_region)
    {}

    BlockId id() const { return id_; }

    /** Try region this block belongs to (0 = none). */
    TryRegionId tryRegion() const { return tryRegion_; }
    void setTryRegion(TryRegionId region) { tryRegion_ = region; }

    /** The instruction sequence; the terminator is the last entry. */
    std::vector<Instruction> &insts() { return insts_; }
    const std::vector<Instruction> &insts() const { return insts_; }

    bool empty() const { return insts_.empty(); }

    /** True if the block ends in a terminator. */
    bool
    isTerminated() const
    {
        return !insts_.empty() && insts_.back().isTerminator();
    }

    /** The terminator; block must be terminated. */
    const Instruction &terminator() const { return insts_.back(); }
    Instruction &terminator() { return insts_.back(); }

    /**
     * Insert @p inst immediately before the terminator (or append if the
     * block is not yet terminated).  This is where the architecture
     * independent phase materializes checks "at the end of basic blocks".
     */
    void insertBeforeTerminator(Instruction inst);

    /** CFG edges; valid after Function::recomputeCFG(). */
    const std::vector<BlockId> &succs() const { return succs_; }
    const std::vector<BlockId> &preds() const { return preds_; }

    /** @name Edge storage, managed by Function::recomputeCFG(). */
    /// @{
    void clearEdges() { succs_.clear(); preds_.clear(); }
    void addSucc(BlockId succ) { succs_.push_back(succ); }
    void addPred(BlockId pred) { preds_.push_back(pred); }
    /// @}

  private:
    BlockId id_;
    TryRegionId tryRegion_;
    std::vector<Instruction> insts_;
    std::vector<BlockId> succs_;
    std::vector<BlockId> preds_;
};

} // namespace trapjit

#endif // TRAPJIT_IR_BASIC_BLOCK_H_
