#include "ir/builder.h"

#include "ir/layout.h"
#include "support/diagnostics.h"

namespace trapjit
{

BasicBlock &
IRBuilder::startBlock(TryRegionId try_region)
{
    BasicBlock &bb = func_.newBlock(try_region);
    block_ = &bb;
    return bb;
}

Instruction &
IRBuilder::emit(Instruction inst)
{
    TRAPJIT_ASSERT(block_ != nullptr, "builder is not positioned");
    TRAPJIT_ASSERT(!block_->isTerminated(),
                   "emitting after the terminator of block ", block_->id());
    if (inst.site == 0)
        inst.site = func_.takeSiteId();
    block_->insts().push_back(std::move(inst));
    return block_->insts().back();
}

ValueId
IRBuilder::constInt(int64_t value, Type type)
{
    TRAPJIT_ASSERT(isIntType(type), "constInt requires an integer type");
    Instruction inst;
    inst.op = Opcode::ConstInt;
    inst.dst = func_.addTemp(type);
    inst.imm = value;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::constFloat(double value)
{
    Instruction inst;
    inst.op = Opcode::ConstFloat;
    inst.dst = func_.addTemp(Type::F64);
    inst.fimm = value;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::constNull(ClassId class_id)
{
    Instruction inst;
    inst.op = Opcode::ConstNull;
    inst.dst = func_.addTemp(Type::Ref, class_id);
    emit(std::move(inst));
    return block_->insts().back().dst;
}

void
IRBuilder::move(ValueId dst, ValueId src)
{
    Instruction inst;
    inst.op = Opcode::Move;
    inst.dst = dst;
    inst.a = src;
    emit(std::move(inst));
}

ValueId
IRBuilder::binop(Opcode op, ValueId lhs, ValueId rhs)
{
    Instruction inst;
    inst.op = op;
    inst.dst = func_.addTemp(func_.value(lhs).type);
    inst.a = lhs;
    inst.b = rhs;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::unop(Opcode op, ValueId src, Type dst_type)
{
    Instruction inst;
    inst.op = op;
    inst.dst = func_.addTemp(dst_type);
    inst.a = src;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::cmp(Opcode op, CmpPred pred, ValueId lhs, ValueId rhs)
{
    Instruction inst;
    inst.op = op;
    inst.pred = pred;
    inst.dst = func_.addTemp(Type::I32);
    inst.a = lhs;
    inst.b = rhs;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

void
IRBuilder::nullCheck(ValueId ref)
{
    TRAPJIT_ASSERT(func_.value(ref).isRef(), "nullcheck of non-ref value");
    Instruction inst;
    inst.op = Opcode::NullCheck;
    inst.flavor = CheckFlavor::Explicit;
    inst.a = ref;
    emit(std::move(inst));
}

void
IRBuilder::boundCheck(ValueId idx, ValueId len)
{
    Instruction inst;
    inst.op = Opcode::BoundCheck;
    inst.a = idx;
    inst.b = len;
    emit(std::move(inst));
}

ValueId
IRBuilder::getField(ValueId obj, int64_t offset, Type type)
{
    nullCheck(obj);
    Instruction inst;
    inst.op = Opcode::GetField;
    inst.dst = func_.addTemp(type);
    inst.a = obj;
    inst.imm = offset;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

void
IRBuilder::putField(ValueId obj, int64_t offset, ValueId src)
{
    nullCheck(obj);
    Instruction inst;
    inst.op = Opcode::PutField;
    inst.a = obj;
    inst.b = src;
    inst.imm = offset;
    emit(std::move(inst));
}

ValueId
IRBuilder::arrayLength(ValueId arr)
{
    nullCheck(arr);
    Instruction inst;
    inst.op = Opcode::ArrayLength;
    inst.dst = func_.addTemp(Type::I32);
    inst.a = arr;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::arrayLoad(ValueId arr, ValueId idx, Type elem_type)
{
    ValueId len = arrayLength(arr);
    boundCheck(idx, len);
    Instruction inst;
    inst.op = Opcode::ArrayLoad;
    inst.dst = func_.addTemp(elem_type);
    inst.a = arr;
    inst.b = idx;
    inst.elemType = elem_type;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

void
IRBuilder::arrayStore(ValueId arr, ValueId idx, ValueId src, Type elem_type)
{
    ValueId len = arrayLength(arr);
    boundCheck(idx, len);
    Instruction inst;
    inst.op = Opcode::ArrayStore;
    inst.a = arr;
    inst.b = idx;
    inst.c = src;
    inst.elemType = elem_type;
    emit(std::move(inst));
}

ValueId
IRBuilder::newObject(ClassId cls, int64_t size)
{
    Instruction inst;
    inst.op = Opcode::NewObject;
    inst.dst = func_.addTemp(Type::Ref, cls);
    inst.imm = static_cast<int64_t>(cls);
    inst.imm2 = size;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::newArray(ValueId len, Type elem_type, ClassId class_id)
{
    Instruction inst;
    inst.op = Opcode::NewArray;
    inst.dst = func_.addTemp(Type::Ref, class_id);
    inst.a = len;
    inst.elemType = elem_type;
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::callVirtual(uint32_t slot, const std::vector<ValueId> &args,
                       Type ret_type)
{
    TRAPJIT_ASSERT(!args.empty(), "virtual call needs a receiver");
    nullCheck(args[0]);
    Instruction inst;
    inst.op = Opcode::Call;
    inst.callKind = CallKind::Virtual;
    inst.imm = slot;
    inst.args = args;
    inst.dst = ret_type == Type::Void ? kNoValue : func_.addTemp(ret_type);
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::callSpecial(FunctionId callee, const std::vector<ValueId> &args,
                       Type ret_type)
{
    TRAPJIT_ASSERT(!args.empty(), "special call needs a receiver");
    nullCheck(args[0]);
    Instruction inst;
    inst.op = Opcode::Call;
    inst.callKind = CallKind::Special;
    inst.imm = callee;
    inst.args = args;
    inst.dst = ret_type == Type::Void ? kNoValue : func_.addTemp(ret_type);
    emit(std::move(inst));
    return block_->insts().back().dst;
}

ValueId
IRBuilder::callStatic(FunctionId callee, const std::vector<ValueId> &args,
                      Type ret_type)
{
    Instruction inst;
    inst.op = Opcode::Call;
    inst.callKind = CallKind::Static;
    inst.imm = callee;
    inst.args = args;
    inst.dst = ret_type == Type::Void ? kNoValue : func_.addTemp(ret_type);
    emit(std::move(inst));
    return block_->insts().back().dst;
}

void
IRBuilder::jump(BasicBlock &target)
{
    Instruction inst;
    inst.op = Opcode::Jump;
    inst.imm = target.id();
    emit(std::move(inst));
}

void
IRBuilder::branch(ValueId cond, BasicBlock &if_true, BasicBlock &if_false)
{
    Instruction inst;
    inst.op = Opcode::Branch;
    inst.a = cond;
    inst.imm = if_true.id();
    inst.imm2 = if_false.id();
    emit(std::move(inst));
}

void
IRBuilder::ifNull(ValueId ref, BasicBlock &if_null, BasicBlock &if_nonnull)
{
    Instruction inst;
    inst.op = Opcode::IfNull;
    inst.a = ref;
    inst.imm = if_null.id();
    inst.imm2 = if_nonnull.id();
    emit(std::move(inst));
}

void
IRBuilder::ret(ValueId v)
{
    Instruction inst;
    inst.op = Opcode::Return;
    inst.a = v;
    emit(std::move(inst));
}

void
IRBuilder::throwExc(ExcKind kind)
{
    Instruction inst;
    inst.op = Opcode::Throw;
    inst.imm = static_cast<int64_t>(kind);
    emit(std::move(inst));
}

} // namespace trapjit
