#ifndef TRAPJIT_IR_BUILDER_H_
#define TRAPJIT_IR_BUILDER_H_

/**
 * @file
 * Convenience builder for IR construction.
 *
 * The builder plays the role of the JIT front end: its *checked* memory
 * helpers emit the split representation the paper's optimizer consumes —
 * a fresh `nullcheck` before every field/array/receiver access and a
 * fresh `arraylength` + `boundcheck` before every element access, exactly
 * one per access, unoptimized.  All redundancy is left for the optimizer
 * to remove; the tables of Section 5 measure precisely that removal.
 *
 * Raw emitters (emit*) are also public so tests can construct
 * deliberately unusual shapes.
 */

#include <string>
#include <vector>

#include "ir/function.h"

namespace trapjit
{

/** Fluent instruction builder positioned at the end of a block. */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &func) : func_(func) {}

    /** Position at the end of @p bb; subsequent emissions append there. */
    void atEnd(BasicBlock &bb) { block_ = &bb; }

    /** Create (and position at) a fresh block in @p try_region. */
    BasicBlock &startBlock(TryRegionId try_region = 0);

    Function &function() { return func_; }
    BasicBlock &currentBlock() { return *block_; }

    // -- Constants and moves ------------------------------------------------

    ValueId constInt(int64_t value, Type type = Type::I32);
    ValueId constFloat(double value);
    ValueId constNull(ClassId class_id = kUnknownClass);
    void move(ValueId dst, ValueId src);

    // -- Arithmetic -----------------------------------------------------------

    /** Binary integer/float op; dst is a fresh temp of a's type. */
    ValueId binop(Opcode op, ValueId lhs, ValueId rhs);
    /** Unary op (INeg/FNeg/intrinsics/conversions). */
    ValueId unop(Opcode op, ValueId src, Type dst_type);
    /** Comparison producing an I32 0/1 temp. */
    ValueId cmp(Opcode op, CmpPred pred, ValueId lhs, ValueId rhs);

    // -- Checked memory accesses (front-end expansion) ----------------------

    /** nullcheck obj; dst = obj.field(offset). */
    ValueId getField(ValueId obj, int64_t offset, Type type);
    /** nullcheck obj; obj.field(offset) = src. */
    void putField(ValueId obj, int64_t offset, ValueId src);
    /** nullcheck arr; dst = arraylength arr. */
    ValueId arrayLength(ValueId arr);
    /** Full checked element read: nullcheck, length, boundcheck, load. */
    ValueId arrayLoad(ValueId arr, ValueId idx, Type elem_type);
    /** Full checked element write. */
    void arrayStore(ValueId arr, ValueId idx, ValueId src, Type elem_type);

    /** dst = new cls. */
    ValueId newObject(ClassId cls, int64_t size);
    /** dst = new elem_type[len]. */
    ValueId newArray(ValueId len, Type elem_type,
                     ClassId class_id = kUnknownClass);

    // -- Calls -------------------------------------------------------------

    /** nullcheck args[0]; virtual dispatch through vtable @p slot. */
    ValueId callVirtual(uint32_t slot, const std::vector<ValueId> &args,
                        Type ret_type);
    /** nullcheck args[0]; direct call that skips the receiver's slots. */
    ValueId callSpecial(FunctionId callee, const std::vector<ValueId> &args,
                        Type ret_type);
    /** Direct call with no receiver. */
    ValueId callStatic(FunctionId callee, const std::vector<ValueId> &args,
                       Type ret_type);

    // -- Control flow --------------------------------------------------------

    void jump(BasicBlock &target);
    void branch(ValueId cond, BasicBlock &if_true, BasicBlock &if_false);
    void ifNull(ValueId ref, BasicBlock &if_null, BasicBlock &if_nonnull);
    void ret(ValueId v = kNoValue);
    void throwExc(ExcKind kind);

    // -- Raw emission ---------------------------------------------------------

    /** Emit a bare nullcheck of @p ref (front-end flavor: explicit). */
    void nullCheck(ValueId ref);
    /** Emit a bare boundcheck of (idx, len). */
    void boundCheck(ValueId idx, ValueId len);
    /** Append a fully-formed instruction (assigns a site id). */
    Instruction &emit(Instruction inst);

  private:
    Function &func_;
    BasicBlock *block_ = nullptr;
};

} // namespace trapjit

#endif // TRAPJIT_IR_BUILDER_H_
