#include "ir/function.h"

#include "support/diagnostics.h"

namespace trapjit
{

const char *
excName(ExcKind kind)
{
    switch (kind) {
      case ExcKind::None:                  return "none";
      case ExcKind::NullPointer:           return "NullPointerException";
      case ExcKind::ArrayIndexOutOfBounds:
        return "ArrayIndexOutOfBoundsException";
      case ExcKind::Arithmetic:            return "ArithmeticException";
      case ExcKind::NegativeArraySize:
        return "NegativeArraySizeException";
      case ExcKind::OutOfMemory:           return "OutOfMemoryError";
      case ExcKind::User:                  return "UserException";
      case ExcKind::CatchAll:              return "Throwable";
    }
    TRAPJIT_PANIC("bad exception kind");
}

Function::Function(FunctionId id, std::string name, Type return_type,
                   bool is_instance)
    : id_(id), name_(std::move(name)), returnType_(return_type),
      isInstance_(is_instance)
{
    // Region 0 is the reserved "no region" slot.
    tryRegions_.push_back(TryRegion{});
}

ValueId
Function::addParam(Type type, std::string name, ClassId class_id)
{
    TRAPJIT_ASSERT(values_.size() == numParams_,
                   "parameters must be added before locals/temps");
    ValueId id = static_cast<ValueId>(values_.size());
    values_.push_back(Value{id, type, Value::Kind::Local, class_id,
                            name.empty() ? "p" + std::to_string(id)
                                         : std::move(name)});
    ++numParams_;
    return id;
}

ValueId
Function::addLocal(Type type, std::string name, ClassId class_id)
{
    ValueId id = static_cast<ValueId>(values_.size());
    values_.push_back(Value{id, type, Value::Kind::Local, class_id,
                            name.empty() ? "v" + std::to_string(id)
                                         : std::move(name)});
    return id;
}

ValueId
Function::addTemp(Type type, ClassId class_id)
{
    ValueId id = static_cast<ValueId>(values_.size());
    values_.push_back(Value{id, type, Value::Kind::Temp, class_id,
                            "t" + std::to_string(id)});
    return id;
}

BasicBlock &
Function::newBlock(TryRegionId try_region)
{
    BlockId id = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(std::make_unique<BasicBlock>(id, try_region));
    return *blocks_.back();
}

TryRegionId
Function::addTryRegion(BlockId handler, ExcKind catches,
                       TryRegionId parent)
{
    TryRegionId id = static_cast<TryRegionId>(tryRegions_.size());
    TRAPJIT_ASSERT(parent < tryRegions_.size(), "bad parent region");
    tryRegions_.push_back(TryRegion{id, handler, catches, parent});
    return id;
}

bool
Function::isExceptionalEdge(BlockId from, BlockId to) const
{
    for (TryRegionId r = blocks_[from]->tryRegion(); r != 0;
         r = tryRegions_[r].parent) {
        if (tryRegions_[r].handlerBlock == to)
            return true;
    }
    return false;
}

void
Function::recomputeCFG()
{
    for (auto &bb : blocks_)
        bb->clearEdges();

    for (auto &bb : blocks_) {
        TRAPJIT_ASSERT(bb->isTerminated(), "block ", bb->id(), " of ",
                       name_, " lacks a terminator");
        const Instruction &term = bb->terminator();
        switch (term.op) {
          case Opcode::Jump:
            bb->addSucc(static_cast<BlockId>(term.imm));
            break;
          case Opcode::Branch:
          case Opcode::IfNull:
            bb->addSucc(static_cast<BlockId>(term.imm));
            bb->addSucc(static_cast<BlockId>(term.imm2));
            break;
          case Opcode::Return:
          case Opcode::Throw:
            break;
          default:
            TRAPJIT_PANIC("bad terminator");
        }
        // Factored exception edges: a block inside a try region may
        // transfer to any handler of its region chain (inner handlers
        // that decline pass the exception outward).
        for (TryRegionId r = bb->tryRegion(); r != 0;
             r = tryRegions_[r].parent) {
            BlockId handler = tryRegions_[r].handlerBlock;
            TRAPJIT_ASSERT(handler != kNoBlock, "region without handler");
            bb->addSucc(handler);
        }
    }

    for (auto &bb : blocks_)
        for (BlockId succ : bb->succs())
            blocks_[succ]->addPred(bb->id());
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->insts().size();
    return n;
}

std::unique_ptr<Function>
Function::cloneWithId(FunctionId id) const
{
    auto fn = std::make_unique<Function>(id, name_, returnType_,
                                         isInstance_);
    fn->numParams_ = numParams_;
    fn->values_ = values_;
    fn->tryRegions_ = tryRegions_;
    fn->nextSite_ = nextSite_;
    fn->intrinsic_ = intrinsic_;
    fn->neverInline_ = neverInline_;
    fn->blocks_.reserve(blocks_.size());
    for (const auto &bb : blocks_)
        fn->blocks_.push_back(std::make_unique<BasicBlock>(*bb));
    return fn;
}

} // namespace trapjit
