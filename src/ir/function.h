#ifndef TRAPJIT_IR_FUNCTION_H_
#define TRAPJIT_IR_FUNCTION_H_

/**
 * @file
 * Functions (compiled methods) of the IR.
 *
 * A Function owns its virtual registers, basic blocks and try regions.
 * Block 0 is the entry block.  Values with index < numParams() are the
 * parameters; for an instance method, parameter 0 is `this` (which the
 * forward non-nullness analysis treats as known non-null on the edge into
 * the first block, per Section 4.1.2).
 */

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace trapjit
{

/** Runtime exception kinds thrown by IR execution. */
enum class ExcKind : int64_t
{
    None = 0,
    NullPointer,
    ArrayIndexOutOfBounds,
    Arithmetic,
    NegativeArraySize,
    OutOfMemory,
    User, ///< an explicit Throw of an application exception class
    CatchAll = 255,
};

/** Printable exception kind name. */
const char *excName(ExcKind kind);

/**
 * A try region: blocks tagged with its id dispatch to handlerBlock.
 * Regions nest through `parent`: an exception not matched by `catches`
 * is offered to the parent region, then propagates out of the function.
 */
struct TryRegion
{
    TryRegionId id = 0;
    BlockId handlerBlock = kNoBlock;
    ExcKind catches = ExcKind::CatchAll;
    TryRegionId parent = 0; ///< enclosing region (0 = none)
};

/**
 * Intrinsic identity of a function: a runtime-provided math method that a
 * target with the matching native instruction replaces at call sites
 * (java.lang.Math.exp on IA32, Section 5.4).  Intrinsic functions are
 * never inlined as IR — on targets without the instruction the call
 * stays opaque and acts as an optimization barrier, exactly the PowerPC
 * behavior the paper describes for Neural Net.
 */
enum class Intrinsic : uint8_t
{
    None,
    Exp,
    Sqrt,
    Sin,
    Cos,
    Log,
    Abs,
};

/** A compiled method. */
class Function
{
  public:
    Function(FunctionId id, std::string name, Type return_type,
             bool is_instance);

    FunctionId id() const { return id_; }
    const std::string &name() const { return name_; }
    Type returnType() const { return returnType_; }

    /** True if the method has a `this` receiver as parameter 0. */
    bool isInstanceMethod() const { return isInstance_; }

    // -- Values -----------------------------------------------------------

    /**
     * Create a parameter; must be called before any non-parameter value.
     * For instance methods the first parameter is the receiver.
     */
    ValueId addParam(Type type, std::string name = "",
                     ClassId class_id = kUnknownClass);

    /** Create a source-level local variable. */
    ValueId addLocal(Type type, std::string name = "",
                     ClassId class_id = kUnknownClass);

    /** Create a compiler temporary. */
    ValueId addTemp(Type type, ClassId class_id = kUnknownClass);

    size_t numValues() const { return values_.size(); }
    uint32_t numParams() const { return numParams_; }

    const Value &value(ValueId id) const { return values_[id]; }
    Value &value(ValueId id) { return values_[id]; }

    /**
     * The whole value table in id order.  Value ids double as register
     * numbers in both interpreter engines, so this ordering is a stable
     * part of the function's contract (the pre-decoder bakes the ids
     * into its flattened records).
     */
    const std::vector<Value> &values() const { return values_; }

    // -- Blocks and regions ------------------------------------------------

    /** Create a new block; the first one created is the entry. */
    BasicBlock &newBlock(TryRegionId try_region = 0);

    size_t numBlocks() const { return blocks_.size(); }
    BasicBlock &block(BlockId id) { return *blocks_[id]; }
    const BasicBlock &block(BlockId id) const { return *blocks_[id]; }
    BasicBlock &entry() { return *blocks_[0]; }
    const BasicBlock &entry() const { return *blocks_[0]; }

    /** Register a try region; returns its id (>= 1). */
    TryRegionId addTryRegion(BlockId handler, ExcKind catches,
                             TryRegionId parent = 0);

    /**
     * True if the edge @p from -> @p to is a factored exception edge
     * (to is a handler of from's region chain).  Forward availability
     * analyses must not propagate anything along such edges.
     */
    bool isExceptionalEdge(BlockId from, BlockId to) const;

    size_t numTryRegions() const { return tryRegions_.size(); }
    const TryRegion &tryRegion(TryRegionId id) const
    {
        return tryRegions_[id];
    }

    // -- CFG ----------------------------------------------------------------

    /**
     * Rebuild every block's pred/succ lists from terminators and try
     * regions.  Must be called after any structural mutation and before
     * running analyses.
     */
    void recomputeCFG();

    /** Total instruction count over all blocks. */
    size_t instructionCount() const;

    /** Next fresh source-site id (used by the builder and the inliner). */
    SiteId takeSiteId() { return nextSite_++; }

    /** Intrinsic identity (None for ordinary functions). */
    Intrinsic intrinsic() const { return intrinsic_; }
    void setIntrinsic(Intrinsic intrinsic) { intrinsic_ = intrinsic; }

    /**
     * Never inline this function.  The synthetic workloads use this to
     * model hot benchmark methods that are far beyond any real inline
     * budget (the miniature kernels would otherwise fit).
     */
    bool neverInline() const { return neverInline_; }
    void setNeverInline(bool never) { neverInline_ = never; }

    /**
     * Deep copy under a new function id.  The compile service installs
     * batch results with this: identical compiled texts (replicated
     * modules, deduped jobs) deserialize once and clone per slot,
     * which is several times cheaper than re-parsing the text.
     */
    std::unique_ptr<Function> cloneWithId(FunctionId id) const;

  private:
    FunctionId id_;
    std::string name_;
    Type returnType_;
    bool isInstance_;
    uint32_t numParams_ = 0;
    std::vector<Value> values_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<TryRegion> tryRegions_;
    SiteId nextSite_ = 1;
    Intrinsic intrinsic_ = Intrinsic::None;
    bool neverInline_ = false;
};

} // namespace trapjit

#endif // TRAPJIT_IR_FUNCTION_H_
