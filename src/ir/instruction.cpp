#include "ir/instruction.h"

#include "ir/layout.h"
#include "support/diagnostics.h"

namespace trapjit
{

bool
Instruction::isTerminator() const
{
    switch (op) {
      case Opcode::Jump:
      case Opcode::Branch:
      case Opcode::IfNull:
      case Opcode::Return:
      case Opcode::Throw:
        return true;
      default:
        return false;
    }
}

bool
Instruction::writesMemory() const
{
    switch (op) {
      case Opcode::PutField:
      case Opcode::ArrayStore:
      case Opcode::Call:
      case Opcode::NewObject:
      case Opcode::NewArray:
        return true;
      default:
        return false;
    }
}

bool
Instruction::mayThrowOtherThanNull() const
{
    switch (op) {
      case Opcode::IDiv:
      case Opcode::IRem:
      case Opcode::BoundCheck:
      case Opcode::NewObject:
      case Opcode::NewArray:
      case Opcode::Call:
      case Opcode::Throw:
        return true;
      default:
        return false;
    }
}

ValueId
Instruction::checkedRef() const
{
    switch (op) {
      case Opcode::NullCheck:
      case Opcode::GetField:
      case Opcode::PutField:
      case Opcode::ArrayLength:
      case Opcode::ArrayLoad:
      case Opcode::ArrayStore:
        return a;
      case Opcode::Call:
        if (callKind != CallKind::Static) {
            TRAPJIT_ASSERT(!args.empty(), "instance call without receiver");
            return args[0];
        }
        return kNoValue;
      default:
        return kNoValue;
    }
}

SlotAccess
Instruction::slotAccess() const
{
    switch (op) {
      case Opcode::GetField:
      case Opcode::ArrayLength:
      case Opcode::ArrayLoad:
        return SlotAccess::Read;
      case Opcode::PutField:
      case Opcode::ArrayStore:
        return SlotAccess::Write;
      case Opcode::Call:
        // Virtual dispatch reads the method table through the header.
        // A devirtualized (Special) call no longer touches the receiver,
        // which is why Figure 1 requires its check to stay explicit.
        return callKind == CallKind::Virtual ? SlotAccess::Read
                                             : SlotAccess::None;
      default:
        return SlotAccess::None;
    }
}

int64_t
Instruction::slotOffset() const
{
    switch (op) {
      case Opcode::GetField:
      case Opcode::PutField:
        return imm;
      case Opcode::ArrayLength:
        return kArrayLengthOffset;
      case Opcode::Call:
        return callKind == CallKind::Virtual ? kHeaderOffset : -1;
      case Opcode::ArrayLoad:
      case Opcode::ArrayStore:
        // Element offset depends on the runtime index: not statically
        // bounded by the protected page, so never trap-covered.
        return -1;
      default:
        return -1;
    }
}

void
Instruction::forEachUse(std::vector<ValueId> &out) const
{
    auto push = [&out](ValueId v) {
        if (v != kNoValue)
            out.push_back(v);
    };
    push(a);
    push(b);
    push(c);
    if (op == Opcode::Call)
        for (ValueId arg : args)
            push(arg);
}

const char *
Instruction::name() const
{
    return opcodeName(op);
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:    return "const";
      case Opcode::ConstFloat:  return "fconst";
      case Opcode::ConstNull:   return "nullconst";
      case Opcode::Move:        return "move";
      case Opcode::IAdd:        return "iadd";
      case Opcode::ISub:        return "isub";
      case Opcode::IMul:        return "imul";
      case Opcode::IDiv:        return "idiv";
      case Opcode::IRem:        return "irem";
      case Opcode::INeg:        return "ineg";
      case Opcode::IAnd:        return "iand";
      case Opcode::IOr:         return "ior";
      case Opcode::IXor:        return "ixor";
      case Opcode::IShl:        return "ishl";
      case Opcode::IShr:        return "ishr";
      case Opcode::IUshr:       return "iushr";
      case Opcode::FAdd:        return "fadd";
      case Opcode::FSub:        return "fsub";
      case Opcode::FMul:        return "fmul";
      case Opcode::FDiv:        return "fdiv";
      case Opcode::FNeg:        return "fneg";
      case Opcode::FExp:        return "fexp";
      case Opcode::FSqrt:       return "fsqrt";
      case Opcode::FSin:        return "fsin";
      case Opcode::FCos:        return "fcos";
      case Opcode::FAbs:        return "fabs";
      case Opcode::FLog:        return "flog";
      case Opcode::I2F:         return "i2f";
      case Opcode::F2I:         return "f2i";
      case Opcode::I2L:         return "i2l";
      case Opcode::L2I:         return "l2i";
      case Opcode::ICmp:        return "icmp";
      case Opcode::FCmp:        return "fcmp";
      case Opcode::NullCheck:   return "nullcheck";
      case Opcode::BoundCheck:  return "boundcheck";
      case Opcode::GetField:    return "getfield";
      case Opcode::PutField:    return "putfield";
      case Opcode::ArrayLength: return "arraylength";
      case Opcode::ArrayLoad:   return "aload";
      case Opcode::ArrayStore:  return "astore";
      case Opcode::NewObject:   return "new";
      case Opcode::NewArray:    return "newarray";
      case Opcode::Call:        return "call";
      case Opcode::Jump:        return "jump";
      case Opcode::Branch:      return "branch";
      case Opcode::IfNull:      return "ifnull";
      case Opcode::Return:      return "return";
      case Opcode::Throw:       return "throw";
      case Opcode::Nop:         return "nop";
    }
    TRAPJIT_PANIC("bad opcode");
}

const char *
predName(CmpPred pred)
{
    switch (pred) {
      case CmpPred::EQ: return "eq";
      case CmpPred::NE: return "ne";
      case CmpPred::LT: return "lt";
      case CmpPred::LE: return "le";
      case CmpPred::GT: return "gt";
      case CmpPred::GE: return "ge";
    }
    TRAPJIT_PANIC("bad predicate");
}

} // namespace trapjit
