#ifndef TRAPJIT_IR_INSTRUCTION_H_
#define TRAPJIT_IR_INSTRUCTION_H_

/**
 * @file
 * Instruction set of the JIT IR.
 *
 * The representation follows the paper's key idea (Section 1): every
 * operation that may throw a NullPointerException is *split* into a
 * separate NullCheck instruction plus the raw memory operation, so that
 * the check can be moved independently of the access.  Likewise array
 * bounds checks are split into a BoundCheck instruction, which makes the
 * raw ArrayLoad/ArrayStore pure memory operations.
 *
 * Each instruction carries classification queries used by the dataflow
 * analyses of Section 4:
 *  - writesMemory()          : PutField / ArrayStore / Call / allocation
 *  - mayThrowOtherThanNull() : IDiv, BoundCheck, Call, Throw, New*
 *  - checkedRef()            : the reference a NullCheck guards, or the
 *                              base reference of a slot access
 *  - slot access kind/offset : used by the architecture model to decide
 *                              whether a null access would hardware-trap
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.h"

namespace trapjit
{

/** Identifier of a function in the Module's function table. */
using FunctionId = uint32_t;

/** Stable id of a source "site"; survives optimization, for debugging. */
using SiteId = uint32_t;

/** IR opcodes. */
enum class Opcode : uint8_t
{
    // Constants and moves.
    ConstInt,   ///< dst = imm              (I32 or I64 dst)
    ConstFloat, ///< dst = fimm             (F64 dst)
    ConstNull,  ///< dst = null             (Ref dst)
    Move,       ///< dst = a

    // Integer arithmetic (I32/I64; both operands same type as dst).
    IAdd, ISub, IMul,
    IDiv,       ///< throws ArithmeticException on division by zero
    IRem,       ///< throws ArithmeticException on division by zero
    INeg, IAnd, IOr, IXor, IShl, IShr, IUshr,

    // Floating point arithmetic (F64).
    FAdd, FSub, FMul, FDiv, FNeg,

    // Math intrinsics (F64 -> F64).  FExp models java.lang.Math.exp: on
    // targets with a native exp the inliner turns the call into this
    // instruction; otherwise the call remains opaque (Section 5.4).
    FExp, FSqrt, FSin, FCos, FAbs, FLog,

    // Conversions.
    I2F,        ///< dst(F64) = (double)a
    F2I,        ///< dst(I32) = (int)a
    I2L,        ///< dst(I64) = (long)a(I32)
    L2I,        ///< dst(I32) = (int)a(I64)

    // Comparison; dst(I32) = (a <pred> b) ? 1 : 0.
    ICmp, FCmp,

    // Checks.
    NullCheck,  ///< check a != null, else NullPointerException
    BoundCheck, ///< check 0 <= a < b (idx, len), else AIOOBE

    // Object and array memory.
    GetField,    ///< dst = *(a + imm)        field read at byte offset imm
    PutField,    ///< *(a + imm) = b          field write at byte offset imm
    ArrayLength, ///< dst(I32) = length of array a
    ArrayLoad,   ///< dst = a[b]              raw element read (no checks)
    ArrayStore,  ///< a[b] = c                raw element write (no checks)
    NewObject,   ///< dst = new instance of class imm
    NewArray,    ///< dst = new array, element type from aux, length a

    // Calls.  args[] holds the arguments; for instance calls args[0] is
    // the receiver.  imm = callee FunctionId (Static/Special) or vtable
    // slot (Virtual).
    Call,

    // Control flow (always the last instruction of a block).
    Jump,    ///< goto block imm
    Branch,  ///< if (a != 0) goto block imm else block imm2
    IfNull,  ///< if (a == null) goto block imm else block imm2
    Return,  ///< return a (or void if a == kNoValue)
    Throw,   ///< throw exception class imm (models athrow)

    Nop,
};

/** Predicates for ICmp / FCmp. */
enum class CmpPred : uint8_t { EQ, NE, LT, LE, GT, GE };

/** How a NullCheck will be implemented (Section 3.3.1). */
enum class CheckFlavor : uint8_t
{
    Explicit, ///< emits a real compare-and-branch / conditional trap
    Implicit, ///< relies on the hardware trap of the following access
};

/** Call dispatch kinds. */
enum class CallKind : uint8_t
{
    Static,  ///< direct call, no receiver slot access
    Special, ///< direct call with a receiver that must be null-checked
             ///< but whose slots are not necessarily accessed (Figure 1)
    Virtual, ///< dispatch through the receiver header (a slot read)
};

/** Kind of heap access an instruction performs on its base reference. */
enum class SlotAccess : uint8_t
{
    None,
    Read,
    Write,
};

/** One IR instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    CmpPred pred = CmpPred::EQ;
    CheckFlavor flavor = CheckFlavor::Explicit; ///< NullCheck only
    CallKind callKind = CallKind::Static;       ///< Call only

    ValueId dst = kNoValue;
    ValueId a = kNoValue;
    ValueId b = kNoValue;
    ValueId c = kNoValue;

    /**
     * Immediate payload: integer constant (ConstInt), field byte offset
     * (GetField/PutField), class id (NewObject, Throw), callee/slot id
     * (Call), or target block id (Jump/Branch/IfNull).
     */
    int64_t imm = 0;
    int64_t imm2 = 0;   ///< second block target for Branch/IfNull
    double fimm = 0.0;  ///< float constant (ConstFloat)

    /** Element type for NewArray / ArrayLoad / ArrayStore. */
    Type elemType = Type::I32;

    /** Arguments of a Call (args[0] = receiver for instance calls). */
    std::vector<ValueId> args;

    /** Stable source-site id assigned by the builder (debugging aid). */
    SiteId site = 0;

    /**
     * Marked by the architecture dependent phase: this instruction is the
     * actual exception site of an implicit null check, i.e. its hardware
     * trap implements the check.  Later phases must not move it, and the
     * interpreter throws NullPointerException when it faults.
     */
    bool exceptionSite = false;

    /**
     * Marked by scalar replacement when a memory *read* has been moved
     * above its null check (legal only on targets where reads through a
     * null reference do not trap, Section 3.3.1 / Figure 6).  The
     * interpreter lets such a read of the null page yield zero instead of
     * faulting, and the coverage checker exempts it.
     */
    bool speculative = false;

    // -- Classification queries used by the analyses ---------------------

    /** True for Jump/Branch/IfNull/Return/Throw. */
    bool isTerminator() const;

    /** True if the instruction writes to the heap (or may, via a call). */
    bool writesMemory() const;

    /**
     * True if the instruction may throw an exception *other than* a
     * NullPointerException: IDiv/IRem (ArithmeticException), BoundCheck
     * (ArrayIndexOutOfBounds), allocation (OutOfMemory / NegativeArraySize),
     * Call (anything), Throw.
     */
    bool mayThrowOtherThanNull() const;

    /**
     * Side-effecting in the sense of the paper's Kill sets: may throw a
     * non-NPE exception or may write memory.  (The additional "writes a
     * local variable inside a try region" condition depends on block
     * context and is applied by the analyses, not here.)
     */
    bool isSideEffecting() const
    {
        return writesMemory() || mayThrowOtherThanNull();
    }

    /**
     * The reference this instruction requires to be non-null, or kNoValue:
     * the operand of a NullCheck, the base of a field/array access, or the
     * receiver of an instance call.
     */
    ValueId checkedRef() const;

    /**
     * What kind of slot access the instruction performs on checkedRef().
     * NullCheck itself and Special calls return SlotAccess::None: they
     * require a non-null reference but never touch its memory (that is
     * exactly why Figure 1's inlined call needs an explicit check).
     */
    SlotAccess slotAccess() const;

    /**
     * Byte offset of the slot access relative to the base reference, when
     * statically known; -1 when unknown (array element accesses, whose
     * offset depends on the index and therefore may exceed the protected
     * page).  Used together with the Target to decide trap coverage.
     */
    int64_t slotOffset() const;

    /** True if the instruction defines dst. */
    bool hasDst() const { return dst != kNoValue; }

    /** Collect the input operands (excluding dst) into @p out. */
    void forEachUse(std::vector<ValueId> &out) const;

    /** Mnemonic, e.g. "getfield". */
    const char *name() const;
};

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Printable predicate name ("eq", "lt", ...). */
const char *predName(CmpPred pred);

} // namespace trapjit

#endif // TRAPJIT_IR_INSTRUCTION_H_
