#ifndef TRAPJIT_IR_LAYOUT_H_
#define TRAPJIT_IR_LAYOUT_H_

/**
 * @file
 * Object and array memory layout shared by the compiler and the runtime.
 *
 * The layout is chosen the way the paper assumes (Section 3.3.1): the
 * header and the array length live at small positive offsets from the
 * reference, so that reading them through a null reference lands inside
 * the protected page and hardware-traps.  Field offsets start right after
 * the header; a field offset may legally be as large as 512 KB (JVM spec),
 * which can exceed the protected area ("BigOffset", Figure 5).
 */

#include <cstdint>

namespace trapjit
{

/** Byte offset of the object header (class id word). */
constexpr int64_t kHeaderOffset = 0;

/** Byte offset of an array's length word. */
constexpr int64_t kArrayLengthOffset = 4;

/** Byte offset of the first array element. */
constexpr int64_t kArrayDataOffset = 8;

/** Smallest legal field offset (just past the header). */
constexpr int64_t kFieldBaseOffset = 8;

/** Largest legal field offset per the JVM specification (~512 KB). */
constexpr int64_t kMaxFieldOffset = 65534LL * 8;

} // namespace trapjit

#endif // TRAPJIT_IR_LAYOUT_H_
