#include "ir/module.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace trapjit
{

ClassId
Module::addClass(std::string name, ClassId super)
{
    ClassId id = static_cast<ClassId>(classes_.size());
    ClassInfo info;
    info.id = id;
    info.name = std::move(name);
    info.superId = super;
    if (super != kUnknownClass) {
        TRAPJIT_ASSERT(super < classes_.size(), "bad superclass");
        info.vtable = classes_[super].vtable;
        info.instanceSize = classes_[super].instanceSize;
    }
    classes_.push_back(std::move(info));
    return id;
}

int64_t
Module::addField(ClassId cls_id, std::string name, Type type)
{
    ClassInfo &info = classes_[cls_id];
    // Keep every field naturally aligned for its size.
    int64_t size = typeSize(type);
    int64_t offset = (info.instanceSize + size - 1) / size * size;
    info.fields.push_back(FieldInfo{std::move(name), offset, type});
    info.instanceSize = offset + size;
    return offset;
}

int64_t
Module::addFieldAt(ClassId cls_id, std::string name, Type type,
                   int64_t offset)
{
    TRAPJIT_ASSERT(offset >= kFieldBaseOffset && offset <= kMaxFieldOffset,
                   "field offset out of the legal range");
    ClassInfo &info = classes_[cls_id];
    info.fields.push_back(FieldInfo{std::move(name), offset, type});
    info.instanceSize =
        std::max(info.instanceSize, offset + typeSize(type));
    return offset;
}

int64_t
Module::fieldOffset(ClassId cls_id, const std::string &name) const
{
    for (ClassId c = cls_id; c != kUnknownClass; c = classes_[c].superId) {
        for (const FieldInfo &field : classes_[c].fields)
            if (field.name == name)
                return field.offset;
    }
    TRAPJIT_FATAL("no field '", name, "' in class ",
                  classes_[cls_id].name);
}

uint32_t
Module::addVirtualMethod(ClassId cls_id, FunctionId impl)
{
    ClassInfo &info = classes_[cls_id];
    info.vtable.push_back(impl);
    return static_cast<uint32_t>(info.vtable.size() - 1);
}

void
Module::overrideMethod(ClassId cls_id, uint32_t slot, FunctionId impl)
{
    ClassInfo &info = classes_[cls_id];
    TRAPJIT_ASSERT(slot < info.vtable.size(), "bad vtable slot");
    info.vtable[slot] = impl;
}

bool
Module::isSubclassOf(ClassId sub, ClassId super) const
{
    for (ClassId c = sub; c != kUnknownClass; c = classes_[c].superId)
        if (c == super)
            return true;
    return false;
}

Function &
Module::addFunction(std::string name, Type return_type, bool is_instance)
{
    FunctionId id = static_cast<FunctionId>(functions_.size());
    functions_.push_back(std::make_unique<Function>(
        id, std::move(name), return_type, is_instance));
    return *functions_.back();
}

void
Module::replaceFunction(FunctionId id, std::unique_ptr<Function> fn)
{
    TRAPJIT_ASSERT(id < functions_.size(), "replaceFunction: bad id ", id);
    TRAPJIT_ASSERT(fn && fn->id() == id,
                   "replaceFunction: replacement carries id ",
                   fn ? fn->id() : kNoFunction, ", slot is ", id);
    functions_[id] = std::move(fn);
}

FunctionId
Module::findFunction(const std::string &name) const
{
    for (const auto &fn : functions_)
        if (fn->name() == name)
            return fn->id();
    return kNoFunction;
}

} // namespace trapjit
