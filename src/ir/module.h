#ifndef TRAPJIT_IR_MODULE_H_
#define TRAPJIT_IR_MODULE_H_

/**
 * @file
 * A Module is the unit of compilation: a class table plus a function
 * table.  The class table carries field layouts and virtual-method
 * tables; the devirtualizer performs class-hierarchy analysis over it to
 * turn virtual calls into direct calls (which is what creates the
 * explicit null checks of Figure 1).
 */

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/layout.h"

namespace trapjit
{

/** A field of a class: name, byte offset, and value type. */
struct FieldInfo
{
    std::string name;
    int64_t offset = kFieldBaseOffset;
    Type type = Type::I32;
};

/** A class: field layout, vtable, and superclass link. */
struct ClassInfo
{
    ClassId id = kUnknownClass;
    std::string name;
    ClassId superId = kUnknownClass;
    std::vector<FieldInfo> fields;

    /** vtable[slot] = implementing FunctionId (kNoFunction if abstract). */
    std::vector<FunctionId> vtable;

    /** Instance size in bytes (header + fields). */
    int64_t instanceSize = kFieldBaseOffset;
};

/** Sentinel function id. */
constexpr FunctionId kNoFunction = UINT32_MAX;

/** The compilation unit. */
class Module
{
  public:
    Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    // -- Classes ------------------------------------------------------------

    /** Create a class; fields/vtable are filled in afterwards. */
    ClassId addClass(std::string name, ClassId super = kUnknownClass);

    /**
     * Append a field to @p cls with automatic layout (next free offset),
     * and return its byte offset.
     */
    int64_t addField(ClassId cls, std::string name, Type type);

    /**
     * Append a field at an explicit byte offset (used to model the
     * "BigOffset" fields of Figure 5 whose offset exceeds the protected
     * page).  Returns the offset.
     */
    int64_t addFieldAt(ClassId cls, std::string name, Type type,
                       int64_t offset);

    /** Look up a field's byte offset by name (searches superclasses). */
    int64_t fieldOffset(ClassId cls, const std::string &name) const;

    /**
     * Add a fresh vtable slot to @p cls implemented by @p impl; returns
     * the slot index.  Subclasses inherit and may override the slot.
     */
    uint32_t addVirtualMethod(ClassId cls, FunctionId impl);

    /** Override an inherited vtable slot in @p cls. */
    void overrideMethod(ClassId cls, uint32_t slot, FunctionId impl);

    size_t numClasses() const { return classes_.size(); }
    const ClassInfo &cls(ClassId id) const { return classes_[id]; }
    ClassInfo &cls(ClassId id) { return classes_[id]; }

    /** True if @p sub equals or derives from @p super. */
    bool isSubclassOf(ClassId sub, ClassId super) const;

    // -- Functions ----------------------------------------------------------

    /** Create a function and return a reference to it. */
    Function &addFunction(std::string name, Type return_type,
                          bool is_instance = false);

    size_t numFunctions() const { return functions_.size(); }
    Function &function(FunctionId id) { return *functions_[id]; }
    const Function &function(FunctionId id) const { return *functions_[id]; }

    /** Find a function by name; kNoFunction if absent. */
    FunctionId findFunction(const std::string &name) const;

    /**
     * Swap in a replacement body for function @p id (which must equal
     * @p fn's own id).  Used by the compile service to install a
     * compiled function produced outside the module (a cache hit or a
     * worker's private copy).  Replacing distinct ids is safe from
     * distinct threads: the function table itself is not resized.
     */
    void replaceFunction(FunctionId id, std::unique_ptr<Function> fn);

  private:
    std::vector<ClassInfo> classes_;
    std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace trapjit

#endif // TRAPJIT_IR_MODULE_H_
