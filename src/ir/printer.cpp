#include "ir/printer.h"

#include <sstream>

namespace trapjit
{

namespace
{

std::string
valueName(const Function &func, ValueId id)
{
    if (id == kNoValue)
        return "_";
    return func.value(id).name;
}

} // namespace

void
printInstruction(std::ostream &os, const Function &func,
                 const Instruction &inst)
{
    auto v = [&](ValueId id) { return valueName(func, id); };

    if (inst.hasDst())
        os << v(inst.dst) << " = ";

    switch (inst.op) {
      case Opcode::ConstInt:
        os << "const " << inst.imm;
        break;
      case Opcode::ConstFloat:
        os << "fconst " << inst.fimm;
        break;
      case Opcode::ConstNull:
        os << "null";
        break;
      case Opcode::Move:
        os << "move " << v(inst.a);
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        os << inst.name() << "." << predName(inst.pred) << " " << v(inst.a)
           << ", " << v(inst.b);
        break;
      case Opcode::NullCheck:
        os << "nullcheck " << v(inst.a) << "  ; "
           << (inst.flavor == CheckFlavor::Implicit ? "implicit"
                                                    : "explicit");
        break;
      case Opcode::BoundCheck:
        os << "boundcheck " << v(inst.a) << ", " << v(inst.b);
        break;
      case Opcode::GetField:
        os << "getfield " << v(inst.a) << ", +" << inst.imm;
        break;
      case Opcode::PutField:
        os << "putfield " << v(inst.a) << ", +" << inst.imm << ", "
           << v(inst.b);
        break;
      case Opcode::ArrayLength:
        os << "arraylength " << v(inst.a);
        break;
      case Opcode::ArrayLoad:
        os << "aload." << typeName(inst.elemType) << " " << v(inst.a) << "["
           << v(inst.b) << "]";
        break;
      case Opcode::ArrayStore:
        os << "astore." << typeName(inst.elemType) << " " << v(inst.a) << "["
           << v(inst.b) << "], " << v(inst.c);
        break;
      case Opcode::NewObject:
        os << "new class#" << inst.imm;
        break;
      case Opcode::NewArray:
        os << "newarray." << typeName(inst.elemType) << " " << v(inst.a);
        break;
      case Opcode::Call: {
        const char *kind = inst.callKind == CallKind::Virtual  ? "virtual"
                           : inst.callKind == CallKind::Special ? "special"
                                                                 : "static";
        os << "call." << kind << " #" << inst.imm << " (";
        for (size_t i = 0; i < inst.args.size(); ++i)
            os << (i ? ", " : "") << v(inst.args[i]);
        os << ")";
        break;
      }
      case Opcode::Jump:
        os << "jump " << inst.imm;
        break;
      case Opcode::Branch:
        os << "branch " << v(inst.a) << " ? " << inst.imm << " : "
           << inst.imm2;
        break;
      case Opcode::IfNull:
        os << "ifnull " << v(inst.a) << " ? " << inst.imm << " : "
           << inst.imm2;
        break;
      case Opcode::Return:
        os << "return";
        if (inst.a != kNoValue)
            os << " " << v(inst.a);
        break;
      case Opcode::Throw:
        os << "throw " << excName(static_cast<ExcKind>(inst.imm));
        break;
      default:
        os << inst.name() << " " << v(inst.a);
        if (inst.b != kNoValue)
            os << ", " << v(inst.b);
        if (inst.c != kNoValue)
            os << ", " << v(inst.c);
        break;
    }

    if (inst.exceptionSite)
        os << "  ; exception-site";
}

void
printFunction(std::ostream &os, const Function &func)
{
    os << "function " << func.name() << " (" << func.numParams()
       << " params) -> " << typeName(func.returnType()) << "\n";
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        os << "  block " << bb.id();
        if (bb.tryRegion() != 0)
            os << " (try " << bb.tryRegion() << ")";
        if (!bb.preds().empty()) {
            os << ":  ; preds:";
            for (BlockId p : bb.preds())
                os << " " << p;
        } else {
            os << ":";
        }
        os << "\n";
        for (const Instruction &inst : bb.insts()) {
            os << "    ";
            printInstruction(os, func, inst);
            os << "\n";
        }
    }
}

void
printModule(std::ostream &os, const Module &mod)
{
    for (size_t f = 0; f < mod.numFunctions(); ++f) {
        printFunction(os, mod.function(static_cast<FunctionId>(f)));
        os << "\n";
    }
}

std::string
toString(const Function &func)
{
    std::ostringstream os;
    printFunction(os, func);
    return os.str();
}

} // namespace trapjit
