#ifndef TRAPJIT_IR_PRINTER_H_
#define TRAPJIT_IR_PRINTER_H_

/**
 * @file
 * Textual dumping of IR functions, used by the examples and for
 * debugging test failures.  The format mirrors the paper's listings:
 *
 *     block 2 (try 1):            ; preds: 0 1
 *         nullcheck a             ; explicit
 *         t3 = getfield a, +16    ; exception-site
 *         jump 4
 */

#include <ostream>
#include <string>

#include "ir/function.h"
#include "ir/module.h"

namespace trapjit
{

/** Print one instruction (no trailing newline). */
void printInstruction(std::ostream &os, const Function &func,
                      const Instruction &inst);

/** Print a whole function. */
void printFunction(std::ostream &os, const Function &func);

/** Print every function in the module. */
void printModule(std::ostream &os, const Module &mod);

/** Render a function to a string (convenient for gtest messages). */
std::string toString(const Function &func);

} // namespace trapjit

#endif // TRAPJIT_IR_PRINTER_H_
