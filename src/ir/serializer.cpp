#include "ir/serializer.h"

#include <array>
#include <charconv>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>

#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

// ---------------------------------------------------------------------
// Enum <-> name tables
// ---------------------------------------------------------------------

constexpr Opcode kAllOpcodes[] = {
    Opcode::ConstInt, Opcode::ConstFloat, Opcode::ConstNull, Opcode::Move,
    Opcode::IAdd, Opcode::ISub, Opcode::IMul, Opcode::IDiv, Opcode::IRem,
    Opcode::INeg, Opcode::IAnd, Opcode::IOr, Opcode::IXor, Opcode::IShl,
    Opcode::IShr, Opcode::IUshr, Opcode::FAdd, Opcode::FSub, Opcode::FMul,
    Opcode::FDiv, Opcode::FNeg, Opcode::FExp, Opcode::FSqrt, Opcode::FSin,
    Opcode::FCos, Opcode::FAbs, Opcode::FLog, Opcode::I2F, Opcode::F2I,
    Opcode::I2L, Opcode::L2I, Opcode::ICmp, Opcode::FCmp,
    Opcode::NullCheck, Opcode::BoundCheck, Opcode::GetField,
    Opcode::PutField, Opcode::ArrayLength, Opcode::ArrayLoad,
    Opcode::ArrayStore, Opcode::NewObject, Opcode::NewArray, Opcode::Call,
    Opcode::Jump, Opcode::Branch, Opcode::IfNull, Opcode::Return,
    Opcode::Throw, Opcode::Nop,
};

Opcode
opcodeFromName(std::string_view name)
{
    // Transparent comparator so lookups take string_views without
    // allocating a key — this runs once per instruction parsed.
    static const std::map<std::string, Opcode, std::less<>> table = [] {
        std::map<std::string, Opcode, std::less<>> t;
        for (Opcode op : kAllOpcodes)
            t[opcodeName(op)] = op;
        return t;
    }();
    auto it = table.find(name);
    if (it == table.end())
        TRAPJIT_FATAL("unknown opcode '", name, "'");
    return it->second;
}

const char *
typeToken(Type type)
{
    return typeName(type);
}

Type
typeFromName(std::string_view name)
{
    for (Type t : {Type::Void, Type::I32, Type::I64, Type::F64, Type::Ref})
        if (name == typeName(t))
            return t;
    TRAPJIT_FATAL("unknown type '", name, "'");
}

CmpPred
predFromName(std::string_view name)
{
    for (CmpPred p : {CmpPred::EQ, CmpPred::NE, CmpPred::LT, CmpPred::LE,
                      CmpPred::GT, CmpPred::GE})
        if (name == predName(p))
            return p;
    TRAPJIT_FATAL("unknown predicate '", name, "'");
}

ExcKind
excFromName(std::string_view name)
{
    for (ExcKind k :
         {ExcKind::None, ExcKind::NullPointer,
          ExcKind::ArrayIndexOutOfBounds, ExcKind::Arithmetic,
          ExcKind::NegativeArraySize, ExcKind::OutOfMemory, ExcKind::User,
          ExcKind::CatchAll})
        if (name == excName(k))
            return k;
    TRAPJIT_FATAL("unknown exception kind '", name, "'");
}

const char *
intrinsicToken(Intrinsic intrinsic)
{
    switch (intrinsic) {
      case Intrinsic::None: return "none";
      case Intrinsic::Exp:  return "exp";
      case Intrinsic::Sqrt: return "sqrt";
      case Intrinsic::Sin:  return "sin";
      case Intrinsic::Cos:  return "cos";
      case Intrinsic::Log:  return "log";
      case Intrinsic::Abs:  return "abs";
    }
    TRAPJIT_PANIC("bad intrinsic");
}

Intrinsic
intrinsicFromName(std::string_view name)
{
    for (Intrinsic i : {Intrinsic::None, Intrinsic::Exp, Intrinsic::Sqrt,
                        Intrinsic::Sin, Intrinsic::Cos, Intrinsic::Log,
                        Intrinsic::Abs})
        if (name == intrinsicToken(i))
            return i;
    TRAPJIT_FATAL("unknown intrinsic '", name, "'");
}

// ---------------------------------------------------------------------
// Write side: append-formatted into a std::string.  Serialization is
// the other half of the serving tier's snapshot/install path, so it
// avoids ostream formatting the same way the parser avoids streams.
// ---------------------------------------------------------------------

void
appendInt(std::string &out, int64_t value)
{
    char buf[24];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, ptr);
}

void
appendU64(std::string &out, uint64_t value)
{
    char buf[24];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, ptr);
}

void
appendId(std::string &out, uint32_t id)
{
    if (id == UINT32_MAX)
        out.push_back('-');
    else
        appendU64(out, id);
}

int64_t
parseInt(std::string_view token, int line_no)
{
    int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size())
        TRAPJIT_FATAL("line ", line_no, ": bad integer '", token, "'");
    return value;
}

uint64_t
parseU64(std::string_view token, int line_no)
{
    uint64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size())
        TRAPJIT_FATAL("line ", line_no, ": bad integer '", token, "'");
    return value;
}

uint32_t
idFromToken(std::string_view token, int line_no)
{
    if (token == "-")
        return UINT32_MAX;
    return static_cast<uint32_t>(parseU64(token, line_no));
}

/** Names must be whitespace-free to serialize on one line. */
void
checkName(const std::string &name)
{
    TRAPJIT_ASSERT(name.find_first_of(" \t\n") == std::string::npos,
                   "name with whitespace cannot be serialized: '", name,
                   "'");
}

/**
 * key=value field reader over the tokens of one line.
 *
 * This is the deserializer's inner loop — one Fields per record, one
 * record per IR instruction — so it allocates nothing: tokens are
 * string_views into the caller's line and land in fixed inline arrays
 * (the record grammar has at most 14 key=value fields and 2 flags).
 */
class Fields
{
  public:
    Fields(std::string_view line, int line_no) : lineNo_(line_no)
    {
        size_t pos = 0;
        kind_ = nextToken(line, pos);
        for (std::string_view token = nextToken(line, pos);
             !token.empty(); token = nextToken(line, pos)) {
            size_t eq = token.find('=');
            if (eq == std::string_view::npos) {
                TRAPJIT_ASSERT(numFlags_ < kMaxFlags, "line ", line_no,
                               ": too many flags");
                flags_[numFlags_++] = token;
            } else {
                TRAPJIT_ASSERT(numValues_ < kMaxValues, "line ", line_no,
                               ": too many fields");
                values_[numValues_++] = {token.substr(0, eq),
                                         token.substr(eq + 1)};
            }
        }
    }

    std::string_view kind() const { return kind_; }

    bool
    hasFlag(std::string_view flag) const
    {
        for (size_t i = 0; i < numFlags_; ++i)
            if (flags_[i] == flag)
                return true;
        return false;
    }

    std::string_view
    get(std::string_view key) const
    {
        // Readers request fields in emission order, so the rotating
        // cursor hits on the first probe; the wrap-around scan keeps
        // any order correct (hand-edited test fixtures reorder).
        for (size_t probe = 0; probe < numValues_; ++probe) {
            size_t i = (cursor_ + probe) % numValues_;
            if (values_[i].first == key) {
                cursor_ = i + 1;
                return values_[i].second;
            }
        }
        TRAPJIT_FATAL("line ", lineNo_, ": missing field '", key,
                      "' in '", kind_, "' record");
    }

    std::string_view
    getOr(std::string_view key, std::string_view fallback) const
    {
        for (size_t i = 0; i < numValues_; ++i)
            if (values_[i].first == key)
                return values_[i].second;
        return fallback;
    }

    int64_t getInt(std::string_view key) const
    {
        return parseInt(get(key), lineNo_);
    }

    uint64_t getU64(std::string_view key) const
    {
        return parseU64(get(key), lineNo_);
    }

    uint32_t getId(std::string_view key) const
    {
        return idFromToken(get(key), lineNo_);
    }

    int lineNo() const { return lineNo_; }

  private:
    static constexpr size_t kMaxValues = 16;
    static constexpr size_t kMaxFlags = 4;

    static std::string_view
    nextToken(std::string_view line, size_t &pos)
    {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t'))
            ++pos;
        size_t start = pos;
        while (pos < line.size() && line[pos] != ' ' &&
               line[pos] != '\t')
            ++pos;
        return line.substr(start, pos - start);
    }

    int lineNo_;
    std::string_view kind_;
    std::array<std::pair<std::string_view, std::string_view>, kMaxValues>
        values_;
    std::array<std::string_view, kMaxFlags> flags_;
    size_t numValues_ = 0;
    size_t numFlags_ = 0;
    mutable size_t cursor_ = 0;
};

/** Reads logical records off a text buffer in place: skips blank lines
 *  and '#' comments, hands out views, never copies a line. */
class LineReader
{
  public:
    explicit LineReader(std::string_view text) : text_(text) {}

    bool
    next(std::string_view &line)
    {
        while (pos_ < text_.size()) {
            size_t nl = text_.find('\n', pos_);
            std::string_view l =
                nl == std::string_view::npos
                    ? text_.substr(pos_)
                    : text_.substr(pos_, nl - pos_);
            pos_ = nl == std::string_view::npos ? text_.size() : nl + 1;
            ++lineNo_;
            size_t start = l.find_first_not_of(" \t");
            if (start == std::string_view::npos)
                continue;
            l.remove_prefix(start);
            if (l[0] == '#')
                continue;
            line = l;
            return true;
        }
        return false;
    }

    int lineNo() const { return lineNo_; }

  private:
    std::string_view text_;
    size_t pos_ = 0;
    int lineNo_ = 0;
};

/** Parse state inside one `func ... end` record group. */
struct FunctionParse
{
    Function *fn = nullptr;
    BasicBlock *bb = nullptr;
    uint32_t paramTarget = 0;
};

uint64_t
doubleToBits(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsToDouble(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/**
 * Positional fast path for `inst` records — the bulk of any function
 * text.  The writer emits instruction fields in one fixed order, so
 * the common case parses in a single left-to-right pass with no field
 * lookup at all; any deviation (a hand-edited fixture, a reordered
 * line) returns false and the caller retries through Fields.
 */
bool
parseInstLine(std::string_view line, int line_no, FunctionParse &parse)
{
    if (!parse.bb)
        return false; // let the generic path report the error

    size_t pos = 4; // past "inst"
    auto next = [&line, &pos]() -> std::string_view {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t'))
            ++pos;
        size_t start = pos;
        while (pos < line.size() && line[pos] != ' ' &&
               line[pos] != '\t')
            ++pos;
        return line.substr(start, pos - start);
    };
    auto field = [&next](std::string_view key) -> std::string_view {
        std::string_view token = next();
        if (token.size() <= key.size() ||
            token.compare(0, key.size(), key) != 0)
            return {};
        return token.substr(key.size());
    };

    std::string_view op = field("op=");
    std::string_view dst = field("dst=");
    std::string_view a = field("a=");
    std::string_view b = field("b=");
    std::string_view c = field("c=");
    std::string_view imm = field("imm=");
    std::string_view imm2 = field("imm2=");
    std::string_view fimm = field("fimm=");
    std::string_view elem = field("elem=");
    std::string_view pred = field("pred=");
    std::string_view flavor = field("flavor=");
    std::string_view callKind = field("kind=");
    std::string_view site = field("site=");
    if (op.empty() || dst.empty() || a.empty() || b.empty() ||
        c.empty() || imm.empty() || imm2.empty() || fimm.empty() ||
        elem.empty() || pred.empty() || flavor.empty() ||
        callKind.empty() || site.empty())
        return false;

    Instruction inst;
    inst.op = opcodeFromName(op);
    inst.dst = idFromToken(dst, line_no);
    inst.a = idFromToken(a, line_no);
    inst.b = idFromToken(b, line_no);
    inst.c = idFromToken(c, line_no);
    inst.imm = parseInt(imm, line_no);
    inst.imm2 = parseInt(imm2, line_no);
    inst.fimm = bitsToDouble(parseU64(fimm, line_no));
    inst.elemType = typeFromName(elem);
    inst.pred = predFromName(pred);
    inst.flavor = flavor == "implicit" ? CheckFlavor::Implicit
                                       : CheckFlavor::Explicit;
    inst.callKind = callKind == "virtual"   ? CallKind::Virtual
                    : callKind == "special" ? CallKind::Special
                                            : CallKind::Static;
    inst.site = static_cast<SiteId>(parseInt(site, line_no));

    for (std::string_view token = next(); !token.empty();
         token = next()) {
        if (token == "excsite") {
            inst.exceptionSite = true;
        } else if (token == "spec") {
            inst.speculative = true;
        } else if (token.rfind("args=", 0) == 0) {
            std::string_view args = token.substr(5);
            size_t apos = 0;
            while (apos < args.size()) {
                size_t comma = args.find(',', apos);
                if (comma == std::string_view::npos)
                    comma = args.size();
                inst.args.push_back(static_cast<ValueId>(parseU64(
                    args.substr(apos, comma - apos), line_no)));
                apos = comma + 1;
            }
        } else {
            return false; // unknown trailer: retry generically
        }
    }
    parse.bb->insts().push_back(std::move(inst));
    return true;
}

/**
 * Apply one record *inside* a function (value/region/block/inst/end) to
 * @p parse.  Returns false if the record kind is not a function-body
 * record.  An `end` record finalizes the function (recomputeCFG) and
 * clears parse.fn.
 */
bool
applyFunctionRecord(FunctionParse &parse, const Fields &fields)
{
    std::string_view kind = fields.kind();
    Function *fn = parse.fn;

    if (kind == "value") {
        TRAPJIT_ASSERT(fn, "value outside func");
        bool isLocal = fields.get("kind") == "local";
        Type type = typeFromName(fields.get("type"));
        ClassId cls = fields.getId("class");
        std::string name(fields.get("name"));
        // Parameters come first and are re-created as such.
        if (fn->numValues() < parse.paramTarget) {
            fn->addParam(type, std::move(name), cls);
        } else if (isLocal) {
            fn->addLocal(type, std::move(name), cls);
        } else {
            ValueId id = fn->addTemp(type, cls);
            fn->value(id).name = name;
        }
    } else if (kind == "region") {
        TRAPJIT_ASSERT(fn, "region outside func");
        fn->addTryRegion(
            static_cast<BlockId>(fields.getInt("handler")),
            excFromName(fields.get("catches")),
            static_cast<TryRegionId>(fields.getInt("parent")));
    } else if (kind == "block") {
        TRAPJIT_ASSERT(fn, "block outside func");
        parse.bb = &fn->newBlock(
            static_cast<TryRegionId>(fields.getInt("region")));
    } else if (kind == "inst") {
        TRAPJIT_ASSERT(parse.bb, "inst outside block");
        Instruction inst;
        inst.op = opcodeFromName(fields.get("op"));
        inst.dst = fields.getId("dst");
        inst.a = fields.getId("a");
        inst.b = fields.getId("b");
        inst.c = fields.getId("c");
        inst.imm = fields.getInt("imm");
        inst.imm2 = fields.getInt("imm2");
        inst.fimm = bitsToDouble(fields.getU64("fimm"));
        inst.elemType = typeFromName(fields.get("elem"));
        inst.pred = predFromName(fields.get("pred"));
        inst.flavor = fields.get("flavor") == "implicit"
                          ? CheckFlavor::Implicit
                          : CheckFlavor::Explicit;
        std::string_view callKind = fields.get("kind");
        inst.callKind = callKind == "virtual"   ? CallKind::Virtual
                        : callKind == "special" ? CallKind::Special
                                                : CallKind::Static;
        inst.site = static_cast<SiteId>(fields.getInt("site"));
        inst.exceptionSite = fields.hasFlag("excsite");
        inst.speculative = fields.hasFlag("spec");
        std::string_view args = fields.getOr("args", "");
        size_t pos = 0;
        while (pos < args.size()) {
            size_t comma = args.find(',', pos);
            if (comma == std::string_view::npos)
                comma = args.size();
            inst.args.push_back(static_cast<ValueId>(parseU64(
                args.substr(pos, comma - pos), fields.lineNo())));
            pos = comma + 1;
        }
        parse.bb->insts().push_back(std::move(inst));
    } else if (kind == "end") {
        TRAPJIT_ASSERT(fn, "end outside func");
        fn->recomputeCFG();
        parse.fn = nullptr;
        parse.bb = nullptr;
    } else {
        return false;
    }
    return true;
}

std::unique_ptr<Module>
deserializeModuleText(std::string_view text)
{
    auto mod = std::make_unique<Module>();
    LineReader reader(text);
    std::string_view line;

    if (!reader.next(line) || line.rfind("trapjit-module", 0) != 0)
        TRAPJIT_FATAL("line ", reader.lineNo(), ": missing module header");

    FunctionParse parse;
    ClassId curClass = kUnknownClass;

    while (reader.next(line)) {
        if (line.rfind("inst ", 0) == 0 &&
            parseInstLine(line, reader.lineNo(), parse))
            continue;
        Fields fields(line, reader.lineNo());
        std::string_view kind = fields.kind();

        if (kind == "class") {
            curClass = mod->addClass(std::string(fields.get("name")),
                                     fields.getId("super"));
            mod->cls(curClass).instanceSize = fields.getInt("size");
            // addClass copied the parent vtable; records override below.
            mod->cls(curClass).vtable.clear();
        } else if (kind == "field") {
            TRAPJIT_ASSERT(curClass != kUnknownClass, "field before class");
            mod->cls(curClass).fields.push_back(
                FieldInfo{std::string(fields.get("name")),
                          fields.getInt("offset"),
                          typeFromName(fields.get("type"))});
        } else if (kind == "vslot") {
            TRAPJIT_ASSERT(curClass != kUnknownClass, "vslot before class");
            auto &vtable = mod->cls(curClass).vtable;
            size_t index = static_cast<size_t>(fields.getInt("index"));
            if (vtable.size() <= index)
                vtable.resize(index + 1, kNoFunction);
            vtable[index] = fields.getId("fn");
        } else if (kind == "func") {
            parse.fn = &mod->addFunction(std::string(fields.get("name")),
                                         typeFromName(fields.get("ret")),
                                         fields.getInt("instance") != 0);
            parse.fn->setNeverInline(fields.getInt("neverinline") != 0);
            parse.fn->setIntrinsic(
                intrinsicFromName(fields.get("intrinsic")));
            parse.paramTarget =
                static_cast<uint32_t>(fields.getInt("params"));
            parse.bb = nullptr;
        } else if (!applyFunctionRecord(parse, fields)) {
            TRAPJIT_FATAL("line ", reader.lineNo(), ": unknown record '",
                          kind, "'");
        }
    }
    return mod;
}

} // namespace

namespace
{

void
appendClassTable(std::string &out, const Module &mod)
{
    for (ClassId c = 0; c < mod.numClasses(); ++c) {
        const ClassInfo &cls = mod.cls(c);
        checkName(cls.name);
        out += "class name=";
        out += cls.name;
        out += " super=";
        appendId(out, cls.superId);
        out += " size=";
        appendInt(out, cls.instanceSize);
        out += '\n';
        for (const FieldInfo &field : cls.fields) {
            checkName(field.name);
            out += "  field name=";
            out += field.name;
            out += " type=";
            out += typeToken(field.type);
            out += " offset=";
            appendInt(out, field.offset);
            out += '\n';
        }
        for (size_t slot = 0; slot < cls.vtable.size(); ++slot) {
            out += "  vslot index=";
            appendU64(out, slot);
            out += " fn=";
            appendId(out, cls.vtable[slot]);
            out += '\n';
        }
    }
}

void
appendFunction(std::string &out, const Function &fn)
{
    checkName(fn.name());
    out += "func name=";
    out += fn.name();
    out += " ret=";
    out += typeToken(fn.returnType());
    out += " params=";
    appendU64(out, fn.numParams());
    out += " instance=";
    out += fn.isInstanceMethod() ? '1' : '0';
    out += " neverinline=";
    out += fn.neverInline() ? '1' : '0';
    out += " intrinsic=";
    out += intrinsicToken(fn.intrinsic());
    out += '\n';

    for (ValueId v = 0; v < fn.numValues(); ++v) {
        const Value &value = fn.value(v);
        checkName(value.name);
        out += "  value kind=";
        out += value.kind == Value::Kind::Local ? "local" : "temp";
        out += " type=";
        out += typeToken(value.type);
        out += " class=";
        appendId(out, value.classId);
        out += " name=";
        out += value.name;
        out += '\n';
    }
    for (TryRegionId r = 1; r < fn.numTryRegions(); ++r) {
        const TryRegion &region = fn.tryRegion(r);
        out += "  region handler=";
        appendInt(out, region.handlerBlock);
        out += " catches=";
        out += excName(region.catches);
        out += " parent=";
        appendInt(out, region.parent);
        out += '\n';
    }
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock &bb = fn.block(b);
        out += "  block region=";
        appendInt(out, bb.tryRegion());
        out += '\n';
        for (const Instruction &inst : bb.insts()) {
            out += "    inst op=";
            out += opcodeName(inst.op);
            out += " dst=";
            appendId(out, inst.dst);
            out += " a=";
            appendId(out, inst.a);
            out += " b=";
            appendId(out, inst.b);
            out += " c=";
            appendId(out, inst.c);
            out += " imm=";
            appendInt(out, inst.imm);
            out += " imm2=";
            appendInt(out, inst.imm2);
            out += " fimm=";
            appendU64(out, doubleToBits(inst.fimm));
            out += " elem=";
            out += typeToken(inst.elemType);
            out += " pred=";
            out += predName(inst.pred);
            out += " flavor=";
            out += inst.flavor == CheckFlavor::Explicit ? "explicit"
                                                        : "implicit";
            out += " kind=";
            out += inst.callKind == CallKind::Static    ? "static"
                   : inst.callKind == CallKind::Special ? "special"
                                                        : "virtual";
            out += " site=";
            appendInt(out, inst.site);
            if (inst.exceptionSite)
                out += " excsite";
            if (inst.speculative)
                out += " spec";
            if (!inst.args.empty()) {
                out += " args=";
                for (size_t i = 0; i < inst.args.size(); ++i) {
                    if (i)
                        out += ',';
                    appendU64(out, inst.args[i]);
                }
            }
            out += '\n';
        }
    }
    out += "end\n";
}

} // namespace

void
serializeModule(std::ostream &os, const Module &mod)
{
    os << serializeModuleToString(mod);
}

void
serializeClassTable(std::ostream &os, const Module &mod)
{
    os << serializeClassTableToString(mod);
}

void
serializeFunction(std::ostream &os, const Function &fn)
{
    os << serializeFunctionToString(fn);
}

std::string
serializeModuleToString(const Module &mod)
{
    std::string out = "trapjit-module v1\n";
    appendClassTable(out, mod);
    for (FunctionId f = 0; f < mod.numFunctions(); ++f)
        appendFunction(out, mod.function(f));
    return out;
}

std::string
serializeClassTableToString(const Module &mod)
{
    std::string out;
    appendClassTable(out, mod);
    return out;
}

std::string
serializeFunctionToString(const Function &fn)
{
    std::string out;
    appendFunction(out, fn);
    return out;
}

std::unique_ptr<Module>
deserializeModule(std::istream &is)
{
    std::string text{std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>()};
    return deserializeModuleText(text);
}

std::unique_ptr<Module>
deserializeModuleFromString(const std::string &text)
{
    return deserializeModuleText(text);
}

std::unique_ptr<Function>
deserializeFunctionFromString(const std::string &text, FunctionId id)
{
    LineReader reader(text);
    std::string_view line;

    if (!reader.next(line))
        TRAPJIT_FATAL("empty function record");
    Fields header(line, reader.lineNo());
    if (header.kind() != "func")
        TRAPJIT_FATAL("line ", reader.lineNo(),
                      ": expected 'func' record, got '", header.kind(),
                      "'");

    auto fn = std::make_unique<Function>(
        id, std::string(header.get("name")),
        typeFromName(header.get("ret")),
        header.getInt("instance") != 0);
    fn->setNeverInline(header.getInt("neverinline") != 0);
    fn->setIntrinsic(intrinsicFromName(header.get("intrinsic")));

    FunctionParse parse;
    parse.fn = fn.get();
    parse.paramTarget = static_cast<uint32_t>(header.getInt("params"));

    while (parse.fn && reader.next(line)) {
        if (line.rfind("inst ", 0) == 0 &&
            parseInstLine(line, reader.lineNo(), parse))
            continue;
        Fields fields(line, reader.lineNo());
        if (!applyFunctionRecord(parse, fields))
            TRAPJIT_FATAL("line ", reader.lineNo(), ": unexpected '",
                          fields.kind(), "' record in function text");
    }
    TRAPJIT_ASSERT(!parse.fn, "function record group missing 'end'");
    return fn;
}

} // namespace trapjit
