#include "ir/serializer.h"

#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

// ---------------------------------------------------------------------
// Enum <-> name tables
// ---------------------------------------------------------------------

constexpr Opcode kAllOpcodes[] = {
    Opcode::ConstInt, Opcode::ConstFloat, Opcode::ConstNull, Opcode::Move,
    Opcode::IAdd, Opcode::ISub, Opcode::IMul, Opcode::IDiv, Opcode::IRem,
    Opcode::INeg, Opcode::IAnd, Opcode::IOr, Opcode::IXor, Opcode::IShl,
    Opcode::IShr, Opcode::IUshr, Opcode::FAdd, Opcode::FSub, Opcode::FMul,
    Opcode::FDiv, Opcode::FNeg, Opcode::FExp, Opcode::FSqrt, Opcode::FSin,
    Opcode::FCos, Opcode::FAbs, Opcode::FLog, Opcode::I2F, Opcode::F2I,
    Opcode::I2L, Opcode::L2I, Opcode::ICmp, Opcode::FCmp,
    Opcode::NullCheck, Opcode::BoundCheck, Opcode::GetField,
    Opcode::PutField, Opcode::ArrayLength, Opcode::ArrayLoad,
    Opcode::ArrayStore, Opcode::NewObject, Opcode::NewArray, Opcode::Call,
    Opcode::Jump, Opcode::Branch, Opcode::IfNull, Opcode::Return,
    Opcode::Throw, Opcode::Nop,
};

Opcode
opcodeFromName(const std::string &name)
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (Opcode op : kAllOpcodes)
            t[opcodeName(op)] = op;
        return t;
    }();
    auto it = table.find(name);
    if (it == table.end())
        TRAPJIT_FATAL("unknown opcode '", name, "'");
    return it->second;
}

const char *
typeToken(Type type)
{
    return typeName(type);
}

Type
typeFromName(const std::string &name)
{
    for (Type t : {Type::Void, Type::I32, Type::I64, Type::F64, Type::Ref})
        if (name == typeName(t))
            return t;
    TRAPJIT_FATAL("unknown type '", name, "'");
}

CmpPred
predFromName(const std::string &name)
{
    for (CmpPred p : {CmpPred::EQ, CmpPred::NE, CmpPred::LT, CmpPred::LE,
                      CmpPred::GT, CmpPred::GE})
        if (name == predName(p))
            return p;
    TRAPJIT_FATAL("unknown predicate '", name, "'");
}

ExcKind
excFromName(const std::string &name)
{
    for (ExcKind k :
         {ExcKind::None, ExcKind::NullPointer,
          ExcKind::ArrayIndexOutOfBounds, ExcKind::Arithmetic,
          ExcKind::NegativeArraySize, ExcKind::OutOfMemory, ExcKind::User,
          ExcKind::CatchAll})
        if (name == excName(k))
            return k;
    TRAPJIT_FATAL("unknown exception kind '", name, "'");
}

const char *
intrinsicToken(Intrinsic intrinsic)
{
    switch (intrinsic) {
      case Intrinsic::None: return "none";
      case Intrinsic::Exp:  return "exp";
      case Intrinsic::Sqrt: return "sqrt";
      case Intrinsic::Sin:  return "sin";
      case Intrinsic::Cos:  return "cos";
      case Intrinsic::Log:  return "log";
      case Intrinsic::Abs:  return "abs";
    }
    TRAPJIT_PANIC("bad intrinsic");
}

Intrinsic
intrinsicFromName(const std::string &name)
{
    for (Intrinsic i : {Intrinsic::None, Intrinsic::Exp, Intrinsic::Sqrt,
                        Intrinsic::Sin, Intrinsic::Cos, Intrinsic::Log,
                        Intrinsic::Abs})
        if (name == intrinsicToken(i))
            return i;
    TRAPJIT_FATAL("unknown intrinsic '", name, "'");
}

std::string
idToken(uint32_t id)
{
    return id == UINT32_MAX ? "-" : std::to_string(id);
}

uint32_t
idFromToken(const std::string &token)
{
    if (token == "-")
        return UINT32_MAX;
    return static_cast<uint32_t>(std::stoul(token));
}

/** Names must be whitespace-free to serialize on one line. */
void
checkName(const std::string &name)
{
    TRAPJIT_ASSERT(name.find_first_of(" \t\n") == std::string::npos,
                   "name with whitespace cannot be serialized: '", name,
                   "'");
}

/** key=value field reader over the tokens of one line. */
class Fields
{
  public:
    explicit Fields(const std::string &line, int line_no)
        : lineNo_(line_no)
    {
        std::istringstream is(line);
        std::string token;
        is >> kind_;
        while (is >> token) {
            auto eq = token.find('=');
            if (eq == std::string::npos)
                flags_.push_back(token);
            else
                values_[token.substr(0, eq)] = token.substr(eq + 1);
        }
    }

    const std::string &kind() const { return kind_; }

    bool
    hasFlag(const std::string &flag) const
    {
        for (const auto &f : flags_)
            if (f == flag)
                return true;
        return false;
    }

    std::string
    get(const std::string &key) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            TRAPJIT_FATAL("line ", lineNo_, ": missing field '", key,
                          "' in '", kind_, "' record");
        return it->second;
    }

    std::string
    getOr(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    int64_t getInt(const std::string &key) const
    {
        return std::stoll(get(key));
    }

    uint32_t getId(const std::string &key) const
    {
        return idFromToken(get(key));
    }

  private:
    int lineNo_;
    std::string kind_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> flags_;
};

uint64_t
doubleToBits(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsToDouble(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/** Reads logical records: skips blank lines and '#' comments. */
class LineReader
{
  public:
    explicit LineReader(std::istream &is) : is_(is) {}

    bool
    next(std::string &line)
    {
        while (std::getline(is_, line)) {
            ++lineNo_;
            size_t start = line.find_first_not_of(" \t");
            if (start == std::string::npos)
                continue;
            line = line.substr(start);
            if (line[0] == '#')
                continue;
            return true;
        }
        return false;
    }

    int lineNo() const { return lineNo_; }

  private:
    std::istream &is_;
    int lineNo_ = 0;
};

/** Parse state inside one `func ... end` record group. */
struct FunctionParse
{
    Function *fn = nullptr;
    BasicBlock *bb = nullptr;
    uint32_t paramTarget = 0;
};

/**
 * Apply one record *inside* a function (value/region/block/inst/end) to
 * @p parse.  Returns false if the record kind is not a function-body
 * record.  An `end` record finalizes the function (recomputeCFG) and
 * clears parse.fn.
 */
bool
applyFunctionRecord(FunctionParse &parse, const Fields &fields)
{
    const std::string &kind = fields.kind();
    Function *fn = parse.fn;

    if (kind == "value") {
        TRAPJIT_ASSERT(fn, "value outside func");
        bool isLocal = fields.get("kind") == "local";
        Type type = typeFromName(fields.get("type"));
        ClassId cls = fields.getId("class");
        std::string name = fields.get("name");
        // Parameters come first and are re-created as such.
        if (fn->numValues() < parse.paramTarget) {
            fn->addParam(type, std::move(name), cls);
        } else if (isLocal) {
            fn->addLocal(type, std::move(name), cls);
        } else {
            ValueId id = fn->addTemp(type, cls);
            fn->value(id).name = name;
        }
    } else if (kind == "region") {
        TRAPJIT_ASSERT(fn, "region outside func");
        fn->addTryRegion(
            static_cast<BlockId>(fields.getInt("handler")),
            excFromName(fields.get("catches")),
            static_cast<TryRegionId>(fields.getInt("parent")));
    } else if (kind == "block") {
        TRAPJIT_ASSERT(fn, "block outside func");
        parse.bb = &fn->newBlock(
            static_cast<TryRegionId>(fields.getInt("region")));
    } else if (kind == "inst") {
        TRAPJIT_ASSERT(parse.bb, "inst outside block");
        Instruction inst;
        inst.op = opcodeFromName(fields.get("op"));
        inst.dst = fields.getId("dst");
        inst.a = fields.getId("a");
        inst.b = fields.getId("b");
        inst.c = fields.getId("c");
        inst.imm = fields.getInt("imm");
        inst.imm2 = fields.getInt("imm2");
        inst.fimm = bitsToDouble(std::stoull(fields.get("fimm")));
        inst.elemType = typeFromName(fields.get("elem"));
        inst.pred = predFromName(fields.get("pred"));
        inst.flavor = fields.get("flavor") == "implicit"
                          ? CheckFlavor::Implicit
                          : CheckFlavor::Explicit;
        std::string callKind = fields.get("kind");
        inst.callKind = callKind == "virtual"   ? CallKind::Virtual
                        : callKind == "special" ? CallKind::Special
                                                : CallKind::Static;
        inst.site = static_cast<SiteId>(fields.getInt("site"));
        inst.exceptionSite = fields.hasFlag("excsite");
        inst.speculative = fields.hasFlag("spec");
        std::string args = fields.getOr("args", "");
        size_t pos = 0;
        while (pos < args.size()) {
            size_t comma = args.find(',', pos);
            if (comma == std::string::npos)
                comma = args.size();
            inst.args.push_back(static_cast<ValueId>(
                std::stoul(args.substr(pos, comma - pos))));
            pos = comma + 1;
        }
        parse.bb->insts().push_back(std::move(inst));
    } else if (kind == "end") {
        TRAPJIT_ASSERT(fn, "end outside func");
        fn->recomputeCFG();
        parse.fn = nullptr;
        parse.bb = nullptr;
    } else {
        return false;
    }
    return true;
}

} // namespace

void
serializeModule(std::ostream &os, const Module &mod)
{
    os << "trapjit-module v1\n";
    serializeClassTable(os, mod);
    for (FunctionId f = 0; f < mod.numFunctions(); ++f)
        serializeFunction(os, mod.function(f));
}

void
serializeClassTable(std::ostream &os, const Module &mod)
{
    for (ClassId c = 0; c < mod.numClasses(); ++c) {
        const ClassInfo &cls = mod.cls(c);
        checkName(cls.name);
        os << "class name=" << cls.name
           << " super=" << idToken(cls.superId)
           << " size=" << cls.instanceSize << "\n";
        for (const FieldInfo &field : cls.fields) {
            checkName(field.name);
            os << "  field name=" << field.name
               << " type=" << typeToken(field.type)
               << " offset=" << field.offset << "\n";
        }
        for (size_t slot = 0; slot < cls.vtable.size(); ++slot) {
            os << "  vslot index=" << slot
               << " fn=" << idToken(cls.vtable[slot]) << "\n";
        }
    }
}

void
serializeFunction(std::ostream &os, const Function &fn)
{
    checkName(fn.name());
    os << "func name=" << fn.name()
       << " ret=" << typeToken(fn.returnType())
       << " params=" << fn.numParams()
       << " instance=" << (fn.isInstanceMethod() ? 1 : 0)
       << " neverinline=" << (fn.neverInline() ? 1 : 0)
       << " intrinsic=" << intrinsicToken(fn.intrinsic()) << "\n";

    for (ValueId v = 0; v < fn.numValues(); ++v) {
        const Value &value = fn.value(v);
        checkName(value.name);
        os << "  value kind="
           << (value.kind == Value::Kind::Local ? "local" : "temp")
           << " type=" << typeToken(value.type)
           << " class=" << idToken(value.classId)
           << " name=" << value.name << "\n";
    }
    for (TryRegionId r = 1; r < fn.numTryRegions(); ++r) {
        const TryRegion &region = fn.tryRegion(r);
        os << "  region handler=" << region.handlerBlock
           << " catches=" << excName(region.catches)
           << " parent=" << region.parent << "\n";
    }
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock &bb = fn.block(b);
        os << "  block region=" << bb.tryRegion() << "\n";
        for (const Instruction &inst : bb.insts()) {
            os << "    inst op=" << opcodeName(inst.op)
               << " dst=" << idToken(inst.dst)
               << " a=" << idToken(inst.a)
               << " b=" << idToken(inst.b)
               << " c=" << idToken(inst.c) << " imm=" << inst.imm
               << " imm2=" << inst.imm2
               << " fimm=" << doubleToBits(inst.fimm)
               << " elem=" << typeToken(inst.elemType)
               << " pred=" << predName(inst.pred) << " flavor="
               << (inst.flavor == CheckFlavor::Explicit ? "explicit"
                                                        : "implicit")
               << " kind="
               << (inst.callKind == CallKind::Static    ? "static"
                   : inst.callKind == CallKind::Special ? "special"
                                                        : "virtual")
               << " site=" << inst.site;
            if (inst.exceptionSite)
                os << " excsite";
            if (inst.speculative)
                os << " spec";
            if (!inst.args.empty()) {
                os << " args=";
                for (size_t i = 0; i < inst.args.size(); ++i)
                    os << (i ? "," : "") << inst.args[i];
            }
            os << "\n";
        }
    }
    os << "end\n";
}

std::string
serializeModuleToString(const Module &mod)
{
    std::ostringstream os;
    serializeModule(os, mod);
    return os.str();
}

std::string
serializeClassTableToString(const Module &mod)
{
    std::ostringstream os;
    serializeClassTable(os, mod);
    return os.str();
}

std::string
serializeFunctionToString(const Function &fn)
{
    std::ostringstream os;
    serializeFunction(os, fn);
    return os.str();
}

std::unique_ptr<Module>
deserializeModule(std::istream &is)
{
    auto mod = std::make_unique<Module>();
    LineReader reader(is);
    std::string line;

    if (!reader.next(line) || line.rfind("trapjit-module", 0) != 0)
        TRAPJIT_FATAL("line ", reader.lineNo(), ": missing module header");

    FunctionParse parse;
    ClassId curClass = kUnknownClass;

    while (reader.next(line)) {
        Fields fields(line, reader.lineNo());
        const std::string &kind = fields.kind();

        if (kind == "class") {
            curClass = mod->addClass(fields.get("name"),
                                     fields.getId("super"));
            mod->cls(curClass).instanceSize = fields.getInt("size");
            // addClass copied the parent vtable; records override below.
            mod->cls(curClass).vtable.clear();
        } else if (kind == "field") {
            TRAPJIT_ASSERT(curClass != kUnknownClass, "field before class");
            mod->cls(curClass).fields.push_back(
                FieldInfo{fields.get("name"),
                          fields.getInt("offset"),
                          typeFromName(fields.get("type"))});
        } else if (kind == "vslot") {
            TRAPJIT_ASSERT(curClass != kUnknownClass, "vslot before class");
            auto &vtable = mod->cls(curClass).vtable;
            size_t index = static_cast<size_t>(fields.getInt("index"));
            if (vtable.size() <= index)
                vtable.resize(index + 1, kNoFunction);
            vtable[index] = fields.getId("fn");
        } else if (kind == "func") {
            parse.fn = &mod->addFunction(fields.get("name"),
                                         typeFromName(fields.get("ret")),
                                         fields.getInt("instance") != 0);
            parse.fn->setNeverInline(fields.getInt("neverinline") != 0);
            parse.fn->setIntrinsic(
                intrinsicFromName(fields.get("intrinsic")));
            parse.paramTarget =
                static_cast<uint32_t>(fields.getInt("params"));
            parse.bb = nullptr;
        } else if (!applyFunctionRecord(parse, fields)) {
            TRAPJIT_FATAL("line ", reader.lineNo(), ": unknown record '",
                          kind, "'");
        }
    }
    return mod;
}

std::unique_ptr<Module>
deserializeModuleFromString(const std::string &text)
{
    std::istringstream is(text);
    return deserializeModule(is);
}

std::unique_ptr<Function>
deserializeFunctionFromString(const std::string &text, FunctionId id)
{
    std::istringstream is(text);
    LineReader reader(is);
    std::string line;

    if (!reader.next(line))
        TRAPJIT_FATAL("empty function record");
    Fields header(line, reader.lineNo());
    if (header.kind() != "func")
        TRAPJIT_FATAL("line ", reader.lineNo(),
                      ": expected 'func' record, got '", header.kind(),
                      "'");

    auto fn = std::make_unique<Function>(
        id, header.get("name"), typeFromName(header.get("ret")),
        header.getInt("instance") != 0);
    fn->setNeverInline(header.getInt("neverinline") != 0);
    fn->setIntrinsic(intrinsicFromName(header.get("intrinsic")));

    FunctionParse parse;
    parse.fn = fn.get();
    parse.paramTarget = static_cast<uint32_t>(header.getInt("params"));

    while (parse.fn && reader.next(line)) {
        Fields fields(line, reader.lineNo());
        if (!applyFunctionRecord(parse, fields))
            TRAPJIT_FATAL("line ", reader.lineNo(), ": unexpected '",
                          fields.kind(), "' record in function text");
    }
    TRAPJIT_ASSERT(!parse.fn, "function record group missing 'end'");
    return fn;
}

} // namespace trapjit
