#ifndef TRAPJIT_IR_SERIALIZER_H_
#define TRAPJIT_IR_SERIALIZER_H_

/**
 * @file
 * Module serialization.
 *
 * A complete, line-based textual format for modules: classes with field
 * layouts and vtables, functions with values, try regions and
 * instructions.  Unlike the pretty-printer (ir/printer.h), which is for
 * humans, this format round-trips exactly — `deserializeModule` applied
 * to `serializeModule` output reproduces the module bit for bit — so
 * test cases and miscompile reproducers can be saved to disk.
 *
 * Format sketch:
 *
 *     trapjit-module v1
 *     class Obj super=- size=24
 *       field ival i32 @8
 *       vslot 0 fn=3
 *     func 0 name=sum ret=i32 params=2 instance=0 neverinline=1 \
 *         intrinsic=none
 *       value 0 kind=local type=ref class=- name=arr
 *       region 1 handler=2 catches=NullPointerException parent=0
 *       block 0 region=0
 *         inst op=nullcheck a=0 flavor=explicit site=1
 *     end
 */

#include <iosfwd>
#include <memory>
#include <string>

#include "ir/module.h"

namespace trapjit
{

/** Write @p mod to @p os in the round-trip text format. */
void serializeModule(std::ostream &os, const Module &mod);

/** Convenience: serialize to a string. */
std::string serializeModuleToString(const Module &mod);

/**
 * Write only the class-table records of @p mod (no module header, no
 * functions).  Together with serializeFunction this decomposes
 * serializeModule; the compile cache hashes the pieces separately.
 */
void serializeClassTable(std::ostream &os, const Module &mod);

/** Convenience: class table to a string. */
std::string serializeClassTableToString(const Module &mod);

/** Write one function (its `func ... end` record group). */
void serializeFunction(std::ostream &os, const Function &fn);

/** Convenience: one function to a string. */
std::string serializeFunctionToString(const Function &fn);

/**
 * Parse a module from @p is.  Throws UsageError with a line number on
 * malformed input.
 */
std::unique_ptr<Module> deserializeModule(std::istream &is);

/** Convenience: parse from a string. */
std::unique_ptr<Module> deserializeModuleFromString(
    const std::string &text);

/**
 * Parse one `func ... end` record group (as written by
 * serializeFunction) into a standalone Function carrying id @p id.
 * The function is not registered in any module; value class ids,
 * callee ids and vtable slots refer to whatever module the text was
 * serialized from, so the caller must only install the result into a
 * module with a compatible class/function table
 * (Module::replaceFunction).
 */
std::unique_ptr<Function> deserializeFunctionFromString(
    const std::string &text, FunctionId id);

} // namespace trapjit

#endif // TRAPJIT_IR_SERIALIZER_H_
