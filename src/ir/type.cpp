#include "ir/type.h"

#include "support/diagnostics.h"

namespace trapjit
{

const char *
typeName(Type type)
{
    switch (type) {
      case Type::Void: return "void";
      case Type::I32:  return "i32";
      case Type::I64:  return "i64";
      case Type::F64:  return "f64";
      case Type::Ref:  return "ref";
    }
    TRAPJIT_PANIC("bad type");
}

uint32_t
typeSize(Type type)
{
    switch (type) {
      case Type::Void: return 0;
      case Type::I32:  return 4;
      case Type::I64:  return 8;
      case Type::F64:  return 8;
      case Type::Ref:  return 8;
    }
    TRAPJIT_PANIC("bad type");
}

} // namespace trapjit
