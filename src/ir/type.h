#ifndef TRAPJIT_IR_TYPE_H_
#define TRAPJIT_IR_TYPE_H_

/**
 * @file
 * Value types of the JIT intermediate representation.
 *
 * The IR is deliberately small: a 32-bit integer type, a 64-bit integer
 * type, a double-precision float type, and an object-reference type.  That
 * is enough to express every workload shape the paper's evaluation uses
 * (integer kernels, FP kernels, object-graph programs) while keeping the
 * interpreter and verifier simple.
 */

#include <cstdint>
#include <string>

namespace trapjit
{

/** Static type of an IR value. */
enum class Type : uint8_t
{
    Void, ///< only valid as a function return type
    I32,  ///< 32-bit signed integer
    I64,  ///< 64-bit signed integer
    F64,  ///< IEEE double
    Ref,  ///< object or array reference (may be null)
};

/** Human-readable type name ("i32", "ref", ...). */
const char *typeName(Type type);

/** Size in bytes of a heap slot holding a value of @p type. */
uint32_t typeSize(Type type);

/** True for I32 / I64. */
inline bool
isIntType(Type type)
{
    return type == Type::I32 || type == Type::I64;
}

} // namespace trapjit

#endif // TRAPJIT_IR_TYPE_H_
