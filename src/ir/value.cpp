#include "ir/value.h"

namespace trapjit
{

// Value is a plain aggregate; helpers live in the header.  This file exists
// so the value unit has a translation unit of its own if helpers grow.

} // namespace trapjit
