#include "ir/verifier.h"

#include <sstream>

#include "ir/layout.h"

namespace trapjit
{

namespace
{

/** Collects errors with block/instruction context. */
class Checker
{
  public:
    explicit Checker(const Function &func) : func_(func) {}

    template <typename... Args>
    void
    error(Args &&...args)
    {
        std::ostringstream os;
        os << func_.name() << " block " << blockId_ << " inst " << instIdx_
           << ": ";
        (os << ... << args);
        errors_.push_back(os.str());
    }

    void setContext(BlockId block, size_t inst)
    {
        blockId_ = block;
        instIdx_ = inst;
    }

    std::vector<std::string> take() { return std::move(errors_); }

    bool
    validValue(ValueId id)
    {
        return id != kNoValue && id < func_.numValues();
    }

    /** Check an operand exists and, if typed, has the expected type. */
    void
    checkOperand(ValueId id, const char *role)
    {
        if (!validValue(id))
            error("invalid ", role, " value id ", id);
    }

    void
    checkOperandType(ValueId id, Type type, const char *role)
    {
        checkOperand(id, role);
        if (validValue(id) && func_.value(id).type != type)
            error(role, " has type ", typeName(func_.value(id).type),
                  ", expected ", typeName(type));
    }

  private:
    const Function &func_;
    BlockId blockId_ = 0;
    size_t instIdx_ = 0;
    std::vector<std::string> errors_;
};

void
verifyInstruction(Checker &chk, const Function &func,
                  const Instruction &inst)
{
    // Trap-model flag consistency.  An exception site is by definition
    // the instruction whose hardware trap implements a null check, so it
    // must access a slot of its base reference; the speculative marker
    // is only legal on reads (Section 3.3.1 — a write through null must
    // still fault); and a NullCheck is a pure guard producing nothing.
    if (inst.exceptionSite && inst.slotAccess() == SlotAccess::None)
        chk.error("exceptionSite on an instruction with no slot access");
    if (inst.speculative && inst.slotAccess() != SlotAccess::Read)
        chk.error("speculative flag on a non-read instruction");
    if (inst.op == Opcode::NullCheck && inst.hasDst())
        chk.error("nullcheck must not define a value");

    switch (inst.op) {
      case Opcode::ConstInt:
        if (!chk.validValue(inst.dst) || !isIntType(func.value(inst.dst).type))
            chk.error("const requires an integer dst");
        break;
      case Opcode::ConstFloat:
        chk.checkOperandType(inst.dst, Type::F64, "dst");
        break;
      case Opcode::ConstNull:
        chk.checkOperandType(inst.dst, Type::Ref, "dst");
        break;
      case Opcode::Move:
        chk.checkOperand(inst.dst, "dst");
        chk.checkOperand(inst.a, "src");
        if (chk.validValue(inst.dst) && chk.validValue(inst.a) &&
            func.value(inst.dst).type != func.value(inst.a).type) {
            chk.error("move between mismatched types");
        }
        break;
      case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
      case Opcode::IDiv: case Opcode::IRem: case Opcode::IAnd:
      case Opcode::IOr: case Opcode::IXor: case Opcode::IShl:
      case Opcode::IShr: case Opcode::IUshr:
        chk.checkOperand(inst.dst, "dst");
        chk.checkOperand(inst.a, "lhs");
        chk.checkOperand(inst.b, "rhs");
        if (chk.validValue(inst.dst) && !isIntType(func.value(inst.dst).type))
            chk.error("integer op with non-integer dst");
        break;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv:
        chk.checkOperandType(inst.dst, Type::F64, "dst");
        chk.checkOperandType(inst.a, Type::F64, "lhs");
        chk.checkOperandType(inst.b, Type::F64, "rhs");
        break;
      case Opcode::INeg:
        chk.checkOperand(inst.dst, "dst");
        chk.checkOperand(inst.a, "src");
        break;
      case Opcode::FNeg: case Opcode::FExp: case Opcode::FSqrt:
      case Opcode::FSin: case Opcode::FCos: case Opcode::FAbs:
      case Opcode::FLog:
        chk.checkOperandType(inst.dst, Type::F64, "dst");
        chk.checkOperandType(inst.a, Type::F64, "src");
        break;
      case Opcode::I2F:
        chk.checkOperandType(inst.dst, Type::F64, "dst");
        chk.checkOperand(inst.a, "src");
        break;
      case Opcode::F2I:
        chk.checkOperandType(inst.dst, Type::I32, "dst");
        chk.checkOperandType(inst.a, Type::F64, "src");
        break;
      case Opcode::I2L:
        chk.checkOperandType(inst.dst, Type::I64, "dst");
        chk.checkOperandType(inst.a, Type::I32, "src");
        break;
      case Opcode::L2I:
        chk.checkOperandType(inst.dst, Type::I32, "dst");
        chk.checkOperandType(inst.a, Type::I64, "src");
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        chk.checkOperandType(inst.dst, Type::I32, "dst");
        chk.checkOperand(inst.a, "lhs");
        chk.checkOperand(inst.b, "rhs");
        break;
      case Opcode::NullCheck:
        chk.checkOperandType(inst.a, Type::Ref, "checked ref");
        break;
      case Opcode::BoundCheck:
        chk.checkOperandType(inst.a, Type::I32, "index");
        chk.checkOperandType(inst.b, Type::I32, "length");
        break;
      case Opcode::GetField:
        chk.checkOperand(inst.dst, "dst");
        chk.checkOperandType(inst.a, Type::Ref, "object");
        if (inst.imm < kFieldBaseOffset || inst.imm > kMaxFieldOffset)
            chk.error("field offset ", inst.imm, " out of range");
        break;
      case Opcode::PutField:
        chk.checkOperandType(inst.a, Type::Ref, "object");
        chk.checkOperand(inst.b, "stored value");
        if (inst.imm < kFieldBaseOffset || inst.imm > kMaxFieldOffset)
            chk.error("field offset ", inst.imm, " out of range");
        break;
      case Opcode::ArrayLength:
        chk.checkOperandType(inst.dst, Type::I32, "dst");
        chk.checkOperandType(inst.a, Type::Ref, "array");
        break;
      case Opcode::ArrayLoad:
        chk.checkOperand(inst.dst, "dst");
        chk.checkOperandType(inst.a, Type::Ref, "array");
        chk.checkOperandType(inst.b, Type::I32, "index");
        break;
      case Opcode::ArrayStore:
        chk.checkOperandType(inst.a, Type::Ref, "array");
        chk.checkOperandType(inst.b, Type::I32, "index");
        chk.checkOperand(inst.c, "stored value");
        break;
      case Opcode::NewObject:
        chk.checkOperandType(inst.dst, Type::Ref, "dst");
        break;
      case Opcode::NewArray:
        chk.checkOperandType(inst.dst, Type::Ref, "dst");
        chk.checkOperandType(inst.a, Type::I32, "length");
        break;
      case Opcode::Call:
        for (ValueId arg : inst.args)
            chk.checkOperand(arg, "argument");
        if (inst.callKind != CallKind::Static) {
            if (inst.args.empty())
                chk.error("instance call without receiver");
            else if (func.value(inst.args[0]).type != Type::Ref)
                chk.error("receiver is not a reference");
        }
        break;
      case Opcode::Jump:
        if (static_cast<size_t>(inst.imm) >= func.numBlocks())
            chk.error("jump to invalid block ", inst.imm);
        break;
      case Opcode::Branch:
        chk.checkOperandType(inst.a, Type::I32, "condition");
        [[fallthrough]];
      case Opcode::IfNull:
        if (inst.op == Opcode::IfNull)
            chk.checkOperandType(inst.a, Type::Ref, "tested ref");
        if (static_cast<size_t>(inst.imm) >= func.numBlocks() ||
            static_cast<size_t>(inst.imm2) >= func.numBlocks()) {
            chk.error("branch to invalid block");
        }
        break;
      case Opcode::Return:
        if (func.returnType() == Type::Void) {
            if (inst.a != kNoValue)
                chk.error("void function returns a value");
        } else {
            chk.checkOperandType(inst.a, func.returnType(), "return value");
        }
        break;
      case Opcode::Throw:
      case Opcode::Nop:
        break;
    }
}

} // namespace

std::string
VerifyResult::message() const
{
    std::ostringstream os;
    for (const auto &err : errors)
        os << err << "\n";
    return os.str();
}

VerifyResult
verifyFunction(const Function &func)
{
    Checker chk(func);

    if (func.numBlocks() == 0) {
        chk.setContext(0, 0);
        chk.error("function has no blocks");
        return VerifyResult{chk.take()};
    }

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        if (bb.tryRegion() >= func.numTryRegions()) {
            chk.setContext(bb.id(), 0);
            chk.error("invalid try region ", bb.tryRegion());
        }
        if (!bb.isTerminated()) {
            chk.setContext(bb.id(), bb.insts().size());
            chk.error("block is not terminated");
            continue;
        }
        for (size_t i = 0; i < bb.insts().size(); ++i) {
            const Instruction &inst = bb.insts()[i];
            chk.setContext(bb.id(), i);
            if (inst.isTerminator() && i + 1 != bb.insts().size())
                chk.error("terminator in the middle of a block");
            verifyInstruction(chk, func, inst);
        }
    }

    for (size_t r = 1; r < func.numTryRegions(); ++r) {
        const TryRegion &region = func.tryRegion(static_cast<TryRegionId>(r));
        chk.setContext(0, 0);
        if (region.handlerBlock == kNoBlock ||
            region.handlerBlock >= func.numBlocks()) {
            chk.error("try region ", r, " has an invalid handler");
        }
        if (region.parent >= r)
            chk.error("try region ", r, " has a non-enclosing parent ",
                      region.parent);
    }

    return VerifyResult{chk.take()};
}

VerifyResult
verifyModule(const Module &mod)
{
    VerifyResult result;
    for (size_t f = 0; f < mod.numFunctions(); ++f) {
        VerifyResult sub = verifyFunction(
            mod.function(static_cast<FunctionId>(f)));
        for (auto &err : sub.errors)
            result.errors.push_back(std::move(err));
    }
    for (size_t c = 0; c < mod.numClasses(); ++c) {
        const ClassInfo &info = mod.cls(static_cast<ClassId>(c));
        for (FunctionId impl : info.vtable) {
            if (impl != kNoFunction && impl >= mod.numFunctions()) {
                result.errors.push_back("class " + info.name +
                                        ": vtable entry out of range");
            }
        }
    }
    return result;
}

} // namespace trapjit
