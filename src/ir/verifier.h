#ifndef TRAPJIT_IR_VERIFIER_H_
#define TRAPJIT_IR_VERIFIER_H_

/**
 * @file
 * Structural IR verifier.
 *
 * Every optimization pass must leave the IR in a state this verifier
 * accepts; the test suite runs it after each pass on every workload and
 * on every randomly generated program.  It checks block structure
 * (exactly one terminator, at the end), operand validity and typing,
 * branch-target validity, try-region consistency, and call shapes.
 */

#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/module.h"

namespace trapjit
{

/** Result of verification: empty errors means the IR is well-formed. */
struct VerifyResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    /** All errors joined with newlines (for gtest messages). */
    std::string message() const;
};

/** Verify one function. */
VerifyResult verifyFunction(const Function &func);

/** Verify every function of a module plus class-table consistency. */
VerifyResult verifyModule(const Module &mod);

} // namespace trapjit

#endif // TRAPJIT_IR_VERIFIER_H_
