#include "jit/compile_cache.h"

#include <mutex>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace trapjit
{

namespace
{

void
cpuRelax()
{
#if defined(__x86_64__) || defined(_M_X64)
    _mm_pause();
#endif
}

constexpr size_t kInitialCapacity = 64;

} // namespace

/** One shard: current table, retired tables, owned entries, spinlock.
 *  Cache-line aligned so one shard's counters and lock never share a
 *  line with a neighbor's. */
struct alignas(64) CompileCache::Shard
{
    Shard() : table(new Table(kInitialCapacity)) {}

    std::atomic<const Table *> table;

    /** Per-shard op counters (relaxed; stats() sums across shards) so
     *  the lock-free lookup path never touches a cache line shared by
     *  every other shard's readers. */
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> insertRaces{0};

    // Everything below is written only under `lock`.
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    size_t population = 0;
    std::vector<std::unique_ptr<Entry>> entries;
    std::vector<std::unique_ptr<const Table>> retired;

    void
    acquire()
    {
        // Bounded spin, then yield: on an oversubscribed (or single)
        // core the lock holder may be preempted, and a pure spin would
        // burn the rest of our timeslice waiting for it to run again.
        int spins = 0;
        while (lock.test_and_set(std::memory_order_acquire)) {
            if (++spins < 64) {
                cpuRelax();
            } else {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

    void release() { lock.clear(std::memory_order_release); }
};

CompileCache::Table::Table(size_t cap)
    : capacity(cap), mask(cap - 1),
      slots(new std::atomic<const Entry *>[cap])
{
    for (size_t i = 0; i < cap; ++i)
        slots[i].store(nullptr, std::memory_order_relaxed);
}

CompileCache::CompileCache() : shards_(new Shard[kNumShards]) {}

CompileCache::~CompileCache()
{
    for (size_t s = 0; s < kNumShards; ++s)
        delete shards_[s].table.load(std::memory_order_relaxed);
}

const CompileCache::Entry *
CompileCache::find(const Table &table, const Hash128 &key)
{
    // Probe position mixes the low bits (the shard already consumed the
    // top four of hi); linear probing matches the insert path.
    size_t idx = static_cast<size_t>(key.lo) & table.mask;
    for (size_t n = 0; n < table.capacity; ++n) {
        const Entry *e =
            table.slots[idx].load(std::memory_order_acquire);
        if (e == nullptr)
            return nullptr;
        if (e->key == key)
            return e;
        idx = (idx + 1) & table.mask;
    }
    return nullptr;
}

CompileCache::Value
CompileCache::lookup(const Hash128 &key) const
{
    const Shard &shard = shards_[shardIndex(key)];
    const Table *table = shard.table.load(std::memory_order_acquire);
    const Entry *e = find(*table, key);
    if (e != nullptr) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return e->value;
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

void
CompileCache::publishLocked(Shard &shard, const Entry *entry)
{
    const Table *table = shard.table.load(std::memory_order_relaxed);
    if ((shard.population + 1) * 4 > table->capacity * 3) {
        // Grow by retirement: build a doubled table, copy the published
        // slots (plain stores — nobody can see it yet), publish it with
        // a release store, and keep the old generation alive for
        // readers still probing it.
        auto grown = std::make_unique<Table>(table->capacity * 2);
        for (size_t i = 0; i < table->capacity; ++i) {
            const Entry *e =
                table->slots[i].load(std::memory_order_relaxed);
            if (e == nullptr)
                continue;
            size_t idx = static_cast<size_t>(e->key.lo) & grown->mask;
            while (grown->slots[idx].load(std::memory_order_relaxed) !=
                   nullptr)
                idx = (idx + 1) & grown->mask;
            grown->slots[idx].store(e, std::memory_order_relaxed);
        }
        shard.retired.emplace_back(table);
        table = grown.release();
        shard.table.store(table, std::memory_order_release);
    }
    size_t idx = static_cast<size_t>(entry->key.lo) & table->mask;
    while (table->slots[idx].load(std::memory_order_relaxed) != nullptr)
        idx = (idx + 1) & table->mask;
    // The release store is the publication point: it makes the fully
    // constructed Entry (and its string) visible to lock-free readers.
    table->slots[idx].store(entry, std::memory_order_release);
    ++shard.population;
}

CompileCache::Value
CompileCache::insert(const Hash128 &key, std::string compiled_ir)
{
    Shard &shard = shards_[shardIndex(key)];

    // Contended fast path: if an earlier writer already published this
    // key, return its value without allocating anything.
    {
        const Table *table = shard.table.load(std::memory_order_acquire);
        if (const Entry *e = find(*table, key)) {
            shard.insertRaces.fetch_add(1, std::memory_order_relaxed);
            return e->value;
        }
    }

    shard.acquire();
    // Re-check under the lock, still before allocating: a racer may
    // have published between the check above and lock acquisition.
    const Table *table = shard.table.load(std::memory_order_relaxed);
    if (const Entry *e = find(*table, key)) {
        shard.release();
        shard.insertRaces.fetch_add(1, std::memory_order_relaxed);
        return e->value;
    }
    auto entry = std::make_unique<Entry>();
    entry->key = key;
    entry->value =
        std::make_shared<const std::string>(std::move(compiled_ir));
    Value result = entry->value;
    const Entry *raw = entry.get();
    shard.entries.push_back(std::move(entry));
    publishLocked(shard, raw);
    shard.release();
    shard.inserts.fetch_add(1, std::memory_order_relaxed);
    return result;
}

CompileCache::Value
CompileCache::insertValue(const Hash128 &key, Value value)
{
    Shard &shard = shards_[shardIndex(key)];
    {
        const Table *table = shard.table.load(std::memory_order_acquire);
        if (const Entry *e = find(*table, key)) {
            shard.insertRaces.fetch_add(1, std::memory_order_relaxed);
            return e->value;
        }
    }
    shard.acquire();
    const Table *table = shard.table.load(std::memory_order_relaxed);
    if (const Entry *e = find(*table, key)) {
        shard.release();
        shard.insertRaces.fetch_add(1, std::memory_order_relaxed);
        return e->value;
    }
    auto entry = std::make_unique<Entry>();
    entry->key = key;
    entry->value = std::move(value);
    Value result = entry->value;
    const Entry *raw = entry.get();
    shard.entries.push_back(std::move(entry));
    publishLocked(shard, raw);
    shard.release();
    shard.inserts.fetch_add(1, std::memory_order_relaxed);
    return result;
}

size_t
CompileCache::size() const
{
    size_t total = 0;
    for (size_t s = 0; s < kNumShards; ++s) {
        Shard &shard = shards_[s];
        shard.acquire();
        total += shard.population;
        shard.release();
    }
    return total;
}

void
CompileCache::clear()
{
    for (size_t s = 0; s < kNumShards; ++s) {
        Shard &shard = shards_[s];
        shard.acquire();
        const Table *old = shard.table.load(std::memory_order_relaxed);
        shard.table.store(new Table(kInitialCapacity),
                          std::memory_order_release);
        delete old;
        shard.retired.clear();
        shard.entries.clear();
        shard.population = 0;
        shard.release();
    }
}

CompileCacheStats
CompileCache::stats() const
{
    CompileCacheStats s;
    for (size_t i = 0; i < kNumShards; ++i) {
        const Shard &shard = shards_[i];
        s.hits += shard.hits.load(std::memory_order_relaxed);
        s.misses += shard.misses.load(std::memory_order_relaxed);
        s.inserts += shard.inserts.load(std::memory_order_relaxed);
        s.insertRaces +=
            shard.insertRaces.load(std::memory_order_relaxed);
    }
    return s;
}

} // namespace trapjit
