#include "jit/compile_cache.h"

namespace trapjit
{

// Header-only component; this translation unit anchors it.

} // namespace trapjit
