#ifndef TRAPJIT_JIT_COMPILE_CACHE_H_
#define TRAPJIT_JIT_COMPILE_CACHE_H_

/**
 * @file
 * Function-level compile cache.
 *
 * The cache maps a content address of a compile job to the serialized
 * IR of its compiled function.  The key must cover *everything* the
 * pipeline reads while compiling a function (see
 * CompileService::jobKey in jit/compile_service.cpp):
 *
 *   - the target fingerprint (arch/target.h),
 *   - the config fingerprint (jit/pipeline.h),
 *   - the class table (devirtualization reads vtables and layouts),
 *   - the serialized pristine function itself, and
 *   - the serialized bodies of every function the inliner could read
 *     while compiling it (its call closure, widened by all vtable
 *     implementations when the closure contains a virtual call).
 *
 * Key equality therefore implies bit-identical compile output, which is
 * what makes cache hits safe regardless of worker count or scheduling
 * order — the determinism tests in tests/test_compile_service.cpp
 * enforce exactly that.
 *
 * Values are shared immutable strings: lookups hand out
 * shared_ptr<const string> so a hit never copies the IR text and an
 * insert racing a lookup is benign.
 */

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/hash.h"

namespace trapjit
{

/** Thread-safe content-addressed store of compiled-function IR. */
class CompileCache
{
  public:
    using Value = std::shared_ptr<const std::string>;

    /** The compiled IR for @p key, or nullptr on a miss. */
    Value
    lookup(const Hash128 &key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        return it == entries_.end() ? nullptr : it->second;
    }

    /**
     * Publish a compile result.  First writer wins: if @p key is
     * already present the stored value is returned unchanged, so every
     * caller ends up holding the same bytes even when two workers
     * compiled the same key concurrently.
     */
    Value
    insert(const Hash128 &key, std::string compiled_ir)
    {
        auto value =
            std::make_shared<const std::string>(std::move(compiled_ir));
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = entries_.emplace(key, std::move(value));
        return it->second;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<Hash128, Value, Hash128Hasher> entries_;
};

} // namespace trapjit

#endif // TRAPJIT_JIT_COMPILE_CACHE_H_
