#ifndef TRAPJIT_JIT_COMPILE_CACHE_H_
#define TRAPJIT_JIT_COMPILE_CACHE_H_

/**
 * @file
 * Function-level compile cache.
 *
 * The cache maps a content address of a compile job to the serialized
 * IR of its compiled function.  The key must cover *everything* the
 * pipeline reads while compiling a function (see
 * CompileService::jobKey in jit/compile_service.cpp):
 *
 *   - the target fingerprint (arch/target.h),
 *   - the config fingerprint (jit/pipeline.h),
 *   - the class table (devirtualization reads vtables and layouts),
 *   - the serialized pristine function itself, and
 *   - the serialized bodies of every function the inliner could read
 *     while compiling it (its call closure, widened by all vtable
 *     implementations when the closure contains a virtual call).
 *
 * Key equality therefore implies bit-identical compile output, which is
 * what makes cache hits safe regardless of worker count or scheduling
 * order — the determinism tests in tests/test_compile_service.cpp
 * enforce exactly that.
 *
 * Values are shared immutable strings: lookups hand out
 * shared_ptr<const string> so a hit never copies the IR text and an
 * insert racing a lookup is benign.
 *
 * Concurrency design (reader-mostly): the store is split into 16
 * shards selected by the top key bits.  Each shard is an open-addressed
 * table of atomic slot pointers.  lookup() takes no lock: it
 * acquire-loads the shard's table pointer and probes with acquire
 * loads, stopping at the first empty slot — published entries are
 * immutable, and a slot transitions exactly once, from null to a fully
 * constructed entry (release store), so a reader either sees null (a
 * benign miss for an entry being published concurrently) or the
 * complete entry.  insert() is first-writer-wins under a per-shard
 * spinlock; it re-checks under the lock *before* allocating the shared
 * string so a losing racer never pays the allocation.  Tables grow by
 * retirement: a full table is replaced by a doubled copy and the old
 * one is kept alive for the lifetime of the shard, so concurrent
 * readers holding the old pointer stay valid.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/hash.h"

namespace trapjit
{

/** Monotonic per-cache operation counters (approximate totals; each
 *  counter is individually atomic). */
struct CompileCacheStats
{
    uint64_t hits = 0;        ///< lookup() returned an entry
    uint64_t misses = 0;      ///< lookup() found nothing
    uint64_t inserts = 0;     ///< insert() published a new entry
    uint64_t insertRaces = 0; ///< insert() lost to an earlier writer
};

/** Thread-safe content-addressed store of compiled-function IR. */
class CompileCache
{
  public:
    using Value = std::shared_ptr<const std::string>;

    static constexpr size_t kNumShards = 16;

    CompileCache();
    ~CompileCache();

    CompileCache(const CompileCache &) = delete;
    CompileCache &operator=(const CompileCache &) = delete;

    /** The compiled IR for @p key, or nullptr on a miss.  Lock-free. */
    Value lookup(const Hash128 &key) const;

    /**
     * Publish a compile result.  First writer wins: if @p key is
     * already present the stored value is returned unchanged, so every
     * caller ends up holding the same bytes even when two workers
     * compiled the same key concurrently.  The shared string is only
     * allocated after the presence check, so a losing racer pays no
     * allocation.
     */
    Value insert(const Hash128 &key, std::string compiled_ir);

    /**
     * Publish an already-shared value (e.g. one loaded from the
     * persistent cache).  Same first-writer-wins contract as insert().
     */
    Value insertValue(const Hash128 &key, Value value);

    size_t size() const;

    /**
     * Drop every entry.  Requires quiescence: no concurrent lookup or
     * insert may be in flight (retired tables are freed here).
     */
    void clear();

    /** Snapshot of the operation counters. */
    CompileCacheStats stats() const;

  private:
    struct Entry
    {
        Hash128 key;
        Value value;
    };

    /** One open-addressed table generation.  Slots transition null ->
     *  entry exactly once; growth replaces the whole table. */
    struct Table
    {
        explicit Table(size_t cap);

        size_t capacity;
        size_t mask;
        std::unique_ptr<std::atomic<const Entry *>[]> slots;
    };

    struct Shard;

    static size_t shardIndex(const Hash128 &key)
    {
        return static_cast<size_t>(key.hi >> 60) & (kNumShards - 1);
    }

    /** Probe @p table for @p key with acquire loads. */
    static const Entry *find(const Table &table, const Hash128 &key);

    /** Publish @p entry into the shard, growing if needed.  Caller
     *  holds the shard spinlock. */
    void publishLocked(Shard &shard, const Entry *entry);

    std::unique_ptr<Shard[]> shards_;
};

} // namespace trapjit

#endif // TRAPJIT_JIT_COMPILE_CACHE_H_
