#include "jit/compile_service.h"

#include <exception>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "codegen/native/code_buffer_pool.h"
#include "ir/module.h"
#include "ir/serializer.h"
#include "jit/timing.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

size_t
resolveWorkerCount(size_t requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** Immutable per-module snapshot shared by that module's jobs. */
struct ModuleSnapshot
{
    Module *mod = nullptr;
    std::string classText;
    std::vector<std::string> funcTexts;

    /** FNV-1a/128 of classText / each funcTexts[i], hashed once per
     *  snapshot so per-job keys compose fixed-width digests instead of
     *  rehashing every closure body (jobKey is O(|closure|), not
     *  O(|closure| * |text|)). */
    Hash128 classDigest;
    std::vector<Hash128> funcDigests;

    /**
     * closures[f]: sorted ids of every function whose body the
     * pipeline may read while compiling f — f itself, its transitive
     * direct (Static/Special) callees, widened by every vtable
     * implementation once any reached function contains a virtual
     * call (devirtualization may rewrite it to any of them, and the
     * inliner may then read that body).
     */
    std::vector<std::vector<FunctionId>> closures;
};

ModuleSnapshot
snapshotModule(Module &mod)
{
    ModuleSnapshot snap;
    snap.mod = &mod;
    snap.classText = serializeClassTableToString(mod);

    snap.classDigest = hashBytes(snap.classText);

    size_t n = mod.numFunctions();
    snap.funcTexts.reserve(n);
    snap.funcDigests.reserve(n);
    std::vector<std::vector<FunctionId>> callees(n);
    std::vector<bool> hasVirtual(n, false);
    for (FunctionId f = 0; f < n; ++f) {
        const Function &fn = mod.function(f);
        snap.funcTexts.push_back(serializeFunctionToString(fn));
        snap.funcDigests.push_back(hashBytes(snap.funcTexts.back()));
        for (size_t b = 0; b < fn.numBlocks(); ++b) {
            for (const Instruction &inst :
                 fn.block(static_cast<BlockId>(b)).insts()) {
                if (inst.op != Opcode::Call)
                    continue;
                if (inst.callKind == CallKind::Virtual)
                    hasVirtual[f] = true;
                else
                    callees[f].push_back(
                        static_cast<FunctionId>(inst.imm));
            }
        }
    }

    std::vector<FunctionId> vtableFns;
    for (ClassId c = 0; c < mod.numClasses(); ++c)
        for (FunctionId impl : mod.cls(c).vtable)
            if (impl != kNoFunction)
                vtableFns.push_back(impl);

    snap.closures.resize(n);
    for (FunctionId f = 0; f < n; ++f) {
        std::set<FunctionId> closure;
        std::vector<FunctionId> worklist{f};
        bool virtualExpanded = false;
        while (!worklist.empty()) {
            FunctionId cur = worklist.back();
            worklist.pop_back();
            if (!closure.insert(cur).second)
                continue;
            for (FunctionId callee : callees[cur])
                worklist.push_back(callee);
            if (hasVirtual[cur] && !virtualExpanded) {
                virtualExpanded = true;
                for (FunctionId impl : vtableFns)
                    worklist.push_back(impl);
            }
        }
        snap.closures[f].assign(closure.begin(), closure.end());
    }
    return snap;
}

/**
 * Content address of one (function, config, target) compile job.
 *
 * Composed from per-text digests the snapshot computed once: every
 * variable-length text enters through its own FNV-1a/128 digest (a
 * fixed-width field, so no delimiters are needed), which keeps the
 * per-job cost at 16 bytes per closure member instead of rehashing
 * each closure body for every job that can read it.  Still a pure
 * function of the texts, so keys stay stable across processes.
 */
Hash128
jobKey(const ModuleSnapshot &snap, FunctionId f,
       const std::string &target_fp, const std::string &config_fp)
{
    Hasher hasher;
    auto feed = [&hasher](const std::string &text) {
        hasher.update(static_cast<uint64_t>(text.size()));
        hasher.update(text);
    };
    feed(target_fp);
    feed(config_fp);
    hasher.update(snap.classDigest.hi);
    hasher.update(snap.classDigest.lo);
    for (FunctionId id : snap.closures[f]) {
        hasher.update(static_cast<uint64_t>(id));
        hasher.update(snap.funcDigests[id].hi);
        hasher.update(snap.funcDigests[id].lo);
    }
    return hasher.digest();
}

/** Resolve the persistent tier per the CompileServiceOptions rules. */
std::shared_ptr<PersistentCache>
resolvePersistent(const CompileServiceOptions &options)
{
    if (!options.enablePersistent || !options.enableCache)
        return nullptr;
    if (options.persistent)
        return options.persistent;
    std::string dir =
        !options.cacheDir.empty() ? options.cacheDir : cacheDirFromEnv();
    if (dir.empty())
        return nullptr;
    return PersistentCache::open(dir); // null on failure: degrade
}

} // namespace

CompileService::CompileService(const Target &target,
                               CompileServiceOptions options)
    : target_(target),
      options_(options),
      cache_(options.cache ? options.cache
                           : std::make_shared<CompileCache>()),
      persistent_(resolvePersistent(options)),
      decodedCache_(options.decodedCache
                        ? options.decodedCache
                        : std::make_shared<DecodedProgramCache>()),
      nativeCodeCache_(options.nativeCodeCache
                           ? options.nativeCodeCache
                           : std::make_shared<NativeCodeCache>()),
      pool_(resolveWorkerCount(options.numWorkers))
{}

CompileService::~CompileService() = default;

ServiceReport
CompileService::compileModule(Module &mod, const PipelineConfig &config)
{
    std::vector<Module *> mods{&mod};
    return compileModules(mods, config);
}

ServiceReport
CompileService::compileModules(const std::vector<Module *> &mods,
                               const PipelineConfig &config)
{
    Stopwatch wall;
    ServiceReport report;

    // ---- Snapshot every module before any job may run ------------------
    std::vector<ModuleSnapshot> snaps;
    snaps.reserve(mods.size());
    size_t totalJobs = 0;
    for (Module *mod : mods) {
        TRAPJIT_ASSERT(mod != nullptr, "compileModules: null module");
        snaps.push_back(snapshotModule(*mod));
        totalJobs += mod->numFunctions();
    }
    if (totalJobs == 0) {
        report.wallSeconds = wall.elapsed();
        return report;
    }

    const std::string targetFp = targetFingerprint(target_);
    const std::string configFp = configFingerprint(config);

    // ---- Shared batch state --------------------------------------------
    std::vector<std::vector<CompileCache::Value>> results(mods.size());
    for (size_t m = 0; m < mods.size(); ++m)
        results[m].resize(mods[m]->numFunctions());

    TimingAggregator timing;
    std::mutex mergeMutex;
    std::exception_ptr firstError;
    CompletionLatch latch(totalJobs);

    // ---- One job per (module, function) --------------------------------
    for (size_t m = 0; m < snaps.size(); ++m) {
        for (FunctionId f = 0; f < snaps[m].funcTexts.size(); ++f) {
            pool_.submit([&, m, f] {
                Stopwatch jobWatch;
                ServiceCounters local;
                local.functionsRequested = 1;
                PassTimings jobTimings;
                try {
                    Hash128 key =
                        jobKey(snaps[m], f, targetFp, configFp);
                    CompileCache::Value compiled;
                    if (options_.enableCache)
                        compiled = cache_->lookup(key);
                    if (!compiled && persistent_) {
                        // Second-chance tier: compiles that another
                        // process (or an earlier run) already did.
                        // Promote hits into the in-memory cache so the
                        // next lookup of this key stays lock-free.
                        compiled = persistent_->lookup(key);
                        if (compiled) {
                            compiled =
                                cache_->insertValue(key, compiled);
                            local.persistentHits = 1;
                        } else {
                            local.persistentMisses = 1;
                        }
                    }
                    if (compiled) {
                        local.cacheHits = 1;
                    } else {
                        // Private function copy, private pipeline; the
                        // input module is only *read* (callee bodies,
                        // class table).
                        std::unique_ptr<Function> fn =
                            deserializeFunctionFromString(
                                snaps[m].funcTexts[f], f);
                        std::unique_ptr<PassManager> pm =
                            buildPipeline(config);
                        PassContext ctx{*snaps[m].mod, target_,
                                        config.enableSpeculation};
                        pm->run(*fn, ctx);
                        jobTimings = pm->timings();
                        local.solverSolves = jobTimings.solver.solves;
                        local.solverBlockVisits =
                            jobTimings.solver.blockVisits;
                        local.functionsAudited =
                            jobTimings.functionsAudited;
                        local.auditFindings = jobTimings.auditFindings;
                        local.auditSeconds = jobTimings.auditSeconds;
                        std::string text =
                            serializeFunctionToString(*fn);
                        compiled =
                            options_.enableCache
                                ? cache_->insert(key, std::move(text))
                                : std::make_shared<const std::string>(
                                      std::move(text));
                        if (persistent_)
                            persistent_->insert(key, compiled);
                        local.functionsCompiled = 1;
                    }
                    results[m][f] = std::move(compiled);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mergeMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                }
                // Merge-on-completion: one lock per job, no shared hot
                // counters while the job runs.
                timing.merge(jobTimings, jobWatch.elapsed());
                {
                    std::lock_guard<std::mutex> lock(mergeMutex);
                    report.counters += local;
                }
                latch.countDown();
            });
        }
    }
    latch.wait();
    if (firstError)
        std::rethrow_exception(firstError);

    // ---- Install results (single-threaded, after the barrier) ----------
    // First-writer-wins caching hands every job with the same key the
    // *same* shared string, so pointer identity spots duplicates:
    // each unique text parses once and later slots deep-copy the
    // already-installed function, which is several times cheaper.
    std::unordered_map<const std::string *, const Function *> installed;
    for (size_t m = 0; m < snaps.size(); ++m) {
        for (FunctionId f = 0; f < results[m].size(); ++f) {
            const std::string *text = results[m][f].get();
            auto it = installed.find(text);
            mods[m]->replaceFunction(
                f, it != installed.end()
                       ? it->second->cloneWithId(f)
                       : deserializeFunctionFromString(*text, f));
            installed.try_emplace(text, &mods[m]->function(f));
        }
    }

    // ---- Pre-decode for the fast interpreter ---------------------------
    // Decoding is content-addressed like compilation, so identical
    // functions across batches decode once; the time is reported apart
    // from compile time (ServiceCounters::decodeSeconds).
    if (options_.predecode) {
        DecodeOptions decodeOpts;
        for (Module *mod : mods) {
            for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
                const Function &fn = mod->function(f);
                Hash128 key =
                    decodedProgramKey(fn, target_, decodeOpts);
                if (decodedCache_->lookup(key))
                    continue;
                Stopwatch decodeWatch;
                auto df = decodeFunction(fn, target_, decodeOpts);
                report.counters.decodeSeconds += decodeWatch.elapsed();
                ++report.counters.functionsPredecoded;
                decodedCache_->insert(key, std::move(df));
            }
        }
    }

    // ---- Pre-compile the native tier -----------------------------------
    // Same content-addressed discipline as pre-decoding.  The bench
    // harnesses run without event tracing, so the no-trace variant is
    // the one worth having warm; NativeEngine compiles any other
    // variant it needs on first execution.  Unsupported results (e.g.
    // every function on a non-x86-64 build) are cached too so engines
    // don't retry the emitter, but count as neither compiled nor timed.
    if (options_.precompileNative && nativeTierSupported()) {
        DecodeOptions decodeOpts;
        NativeCompileOptions nativeOpts;
        nativeOpts.recordTrace = false;
        for (Module *mod : mods) {
            for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
                const Function &fn = mod->function(f);
                Hash128 key =
                    nativeCodeKey(fn, target_, decodeOpts, nativeOpts);
                if (nativeCodeCache_->lookup(key))
                    continue;
                Hash128 decodedKey =
                    decodedProgramKey(fn, target_, decodeOpts);
                std::shared_ptr<const DecodedFunction> df =
                    decodedCache_->lookup(decodedKey);
                if (!df)
                    df = decodedCache_->insert(
                        decodedKey,
                        decodeFunction(fn, target_, decodeOpts));
                Stopwatch nativeWatch;
                NativeCompileResult result =
                    compileNative(fn, *df, nativeOpts);
                if (result.code) {
                    report.counters.nativeCompileSeconds +=
                        nativeWatch.elapsed();
                    ++report.counters.functionsNativeCompiled;
                }
                nativeCodeCache_->insert(key, std::move(result));
            }
        }
    }

    // Gauges for the serving-tier counters: current persistent-cache
    // mapping size and live W^X pool bytes (merged with max upstream).
    if (persistent_)
        report.counters.bytesMapped = persistent_->bytesMapped();
    report.counters.codeBytesLive = globalCodeBufferPool().bytesLive();

    report.timings = timing.timings();
    report.busySeconds = timing.busySeconds();
    report.wallSeconds = wall.elapsed();
    return report;
}

} // namespace trapjit
