#ifndef TRAPJIT_JIT_COMPILE_SERVICE_H_
#define TRAPJIT_JIT_COMPILE_SERVICE_H_

/**
 * @file
 * Parallel compilation service.
 *
 * A CompileService owns a fixed pool of worker threads draining a queue
 * of (function, PipelineConfig) jobs.  A batch — compileModule() /
 * compileModules() — enqueues one job per function across every module
 * handed in, blocks until the pool has drained them, and only then
 * installs the results; until that point each input module is treated
 * as an immutable snapshot:
 *
 *   1. The batch serializes the class table and every pristine
 *      function once (ir/serializer.h).
 *   2. Each job compiles a *private* deserialized copy of its function
 *      with a *private* PassManager (buildPipeline per job — no shared
 *      pass state whatsoever), reading callee bodies and the class
 *      table from the untouched input module.  Since every pass may
 *      mutate only the function it compiles (the contract documented
 *      in opt/pass_manager.h), concurrent jobs never race.
 *   3. Results are published into a function-level CompileCache keyed
 *      by a content hash covering everything step 2 can read, then
 *      installed with Module::replaceFunction after the batch barrier.
 *
 * Consequences worth spelling out:
 *
 *  - Output is bit-deterministic: per-function serialized IR is
 *    identical at 1 worker and at 8, with the cache hot or cold,
 *    whatever the queue order.  (Sequential Compiler::compile differs
 *    slightly: it optimizes in place in function order, so its inliner
 *    can observe already-optimized callees.  The service's inliner
 *    always sees pristine callees — equally legal, and deterministic.)
 *  - Identical jobs compile once.  A warm batch over an identical
 *    module is pure cache hits.
 *  - Stats/timings aggregate by merge-on-completion: each job fills
 *    private counters and a private PassManager timing table, folded
 *    into the batch report under one mutex when the job finishes
 *    (jit/stats.h, jit/timing.h).
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "arch/target.h"
#include "codegen/native/native_compiler.h"
#include "interp/decoded_program.h"
#include "jit/compile_cache.h"
#include "jit/persistent_cache.h"
#include "jit/pipeline.h"
#include "jit/stats.h"
#include "opt/pass_manager.h"
#include "support/job_queue.h"

namespace trapjit
{

class Module;

/** Construction knobs for a CompileService. */
struct CompileServiceOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    size_t numWorkers = 0;

    /** Consult/fill the compile cache. */
    bool enableCache = true;

    /**
     * Pre-decode every installed function into the decoded-program
     * cache after each batch, so fast interpreters sharing
     * decodedCache() never decode on the execution path.
     */
    bool predecode = true;

    /**
     * Lower every installed function to x86-64 machine code into the
     * native code cache after each batch (piggybacking on predecode's
     * pass over the installed module), so NativeEngine runs sharing
     * nativeCodeCache() never hit the emitter on the execution path.
     * A no-op on hosts the native tier does not support.
     */
    bool precompileNative = true;

    /**
     * Consult/fill the persistent cross-run cache behind the in-memory
     * one.  Only effective while enableCache is set (the persistent
     * tier shares the in-memory tier's job keys and hit accounting).
     * Resolution order: this flag gates everything; an explicit
     * `persistent` handle wins; else a non-empty `cacheDir` is opened;
     * else TRAPJIT_CACHE_DIR is consulted; else the tier is off.
     */
    bool enablePersistent = true;

    /** Cache directory to open when no handle is supplied. */
    std::string cacheDir;

    /** Share an already-open persistent cache across services. */
    std::shared_ptr<PersistentCache> persistent;

    /**
     * Share a cache across services (e.g. across worker-count arms of
     * a bench).  When null the service creates a private cache.
     */
    std::shared_ptr<CompileCache> cache;

    /**
     * Share a decoded-program cache; when null the service creates a
     * private one.
     */
    std::shared_ptr<DecodedProgramCache> decodedCache;

    /**
     * Share a native-code cache; when null the service creates a
     * private one.
     */
    std::shared_ptr<NativeCodeCache> nativeCodeCache;
};

/** What one batch did: counters, merged timings, wall clock. */
struct ServiceReport
{
    ServiceCounters counters;
    PassTimings timings;     ///< merged per-job pass timings
    double busySeconds = 0.0; ///< sum of per-job compile seconds
    double wallSeconds = 0.0; ///< batch wall clock
};

/** Fixed-pool parallel compiler with a function-level compile cache. */
class CompileService
{
  public:
    explicit CompileService(const Target &target,
                            CompileServiceOptions options = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Compile every function of @p mod under @p config; blocks. */
    ServiceReport compileModule(Module &mod,
                                const PipelineConfig &config);

    /**
     * Compile every function of every module in one batch, so the
     * queue holds jobs from all of them at once — this is where the
     * pool actually scales when individual modules have few functions.
     */
    ServiceReport compileModules(const std::vector<Module *> &mods,
                                 const PipelineConfig &config);

    size_t numWorkers() const { return pool_.numWorkers(); }
    const Target &target() const { return target_; }
    CompileCache &cache() { return *cache_; }
    const CompileCache &cache() const { return *cache_; }

    /** The persistent tier, or null when disabled/unconfigured. */
    const std::shared_ptr<PersistentCache> &
    persistentCache() const
    {
        return persistent_;
    }

    /**
     * Decoded programs of everything this service compiled (one decode
     * per (function, target) content hash); hand it to FastInterpreter
     * or runWorkload so execution starts without a decode pass.
     */
    const std::shared_ptr<DecodedProgramCache> &
    decodedCache() const
    {
        return decodedCache_;
    }

    /**
     * Native machine code of everything this service compiled (one
     * emission per native-code content hash); hand it to NativeEngine
     * so execution starts without an emitter pass.
     */
    const std::shared_ptr<NativeCodeCache> &
    nativeCodeCache() const
    {
        return nativeCodeCache_;
    }

  private:
    Target target_;
    CompileServiceOptions options_;
    std::shared_ptr<CompileCache> cache_;
    std::shared_ptr<PersistentCache> persistent_;
    std::shared_ptr<DecodedProgramCache> decodedCache_;
    std::shared_ptr<NativeCodeCache> nativeCodeCache_;
    WorkerPool pool_;
};

} // namespace trapjit

#endif // TRAPJIT_JIT_COMPILE_SERVICE_H_
