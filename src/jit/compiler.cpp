#include "jit/compiler.h"

namespace trapjit
{

CompileReport
Compiler::compile(Module &mod) const
{
    std::unique_ptr<PassManager> pm = buildPipeline(config_);
    PassContext ctx{mod, target_, config_.enableSpeculation};

    CompileReport report;
    for (FunctionId f = 0; f < mod.numFunctions(); ++f) {
        Function &func = mod.function(f);
        func.recomputeCFG();
        pm->run(func, ctx);
        ++report.functionsCompiled;
    }
    report.timings = pm->timings();
    report.audit = pm->auditReport();
    return report;
}

} // namespace trapjit
