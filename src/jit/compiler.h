#ifndef TRAPJIT_JIT_COMPILER_H_
#define TRAPJIT_JIT_COMPILER_H_

/**
 * @file
 * The JIT compiler driver: applies a pipeline configuration to a module
 * and reports where the compile time went.
 */

#include "arch/target.h"
#include "ir/module.h"
#include "jit/pipeline.h"

namespace trapjit
{

/** Where the compile time went (regenerates Tables 4/5). */
struct CompileReport
{
    PassTimings timings;
    size_t functionsCompiled = 0;

    /**
     * Soundness-audit findings across all compiled functions; empty
     * unless the config runs with AuditMode::Collect (Panic dies on the
     * first error instead of reporting it here).
     */
    AuditReport audit;
};

/** Compiles modules under one (target, pipeline) pair. */
class Compiler
{
  public:
    /**
     * @param target the target the compiler optimizes for (for the
     *        Illegal Implicit experiment this is the lying AIX model)
     * @param config the pipeline configuration (experiment arm)
     */
    Compiler(const Target &target, PipelineConfig config)
        : target_(target), config_(std::move(config))
    {}

    const Target &target() const { return target_; }
    const PipelineConfig &config() const { return config_; }

    /** Optimize every function of @p mod in place. */
    CompileReport compile(Module &mod) const;

  private:
    Target target_;
    PipelineConfig config_;
};

} // namespace trapjit

#endif // TRAPJIT_JIT_COMPILER_H_
