#include "jit/persistent_cache.h"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace trapjit
{

namespace
{

// On-disk format v1.  The schema fingerprint folds in the serializer
// format tag, so changing either the cache layout or the IR text
// format self-invalidates old directories.
constexpr uint32_t kSegMagic = 0x47534A54;   // "TJSG"
constexpr uint32_t kEntryMagic = 0x4E454A54; // "TJEN"
constexpr uint32_t kIndexMagic = 0x58494A54; // "TJIX"
constexpr uint32_t kVersion = 1;

constexpr uint64_t kSegHeaderSize = 24;
constexpr uint64_t kEntryHeaderSize = 40;
constexpr uint64_t kIndexHeaderSize = 40;
constexpr uint64_t kIndexSlotSize = 32;
constexpr uint64_t kInitialIndexCapacity = 4096;

// Keep individual entries sane: a serialized function measured in
// hundreds of megabytes is corruption, not data.
constexpr uint32_t kMaxPayloadSize = 256u << 20;

Hash128
schemaFingerprint()
{
    return hashBytes("trapjit-pcache v1; trapjit-module v1");
}

uint32_t
loadU32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

uint64_t
loadU64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

void
storeU32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, sizeof v);
}

void
storeU64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, sizeof v);
}

/** Release-store a u64 inside a MAP_SHARED mapping (publication). */
void
storeU64Release(uint8_t *p, uint64_t v)
{
    __atomic_store_n(reinterpret_cast<uint64_t *>(p), v,
                     __ATOMIC_RELEASE);
}

uint64_t
loadU64Acquire(const uint8_t *p)
{
    return __atomic_load_n(reinterpret_cast<const uint64_t *>(p),
                           __ATOMIC_ACQUIRE);
}

bool
writeAll(int fd, const void *data, size_t size)
{
    const char *p = static_cast<const char *>(data);
    while (size > 0) {
        ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        size -= static_cast<size_t>(n);
    }
    return true;
}

std::string
segmentHeaderBytes()
{
    std::string h(kSegHeaderSize, '\0');
    uint8_t *p = reinterpret_cast<uint8_t *>(h.data());
    Hash128 fp = schemaFingerprint();
    storeU32(p + 0, kSegMagic);
    storeU32(p + 4, kVersion);
    storeU64(p + 8, fp.hi);
    storeU64(p + 16, fp.lo);
    return h;
}

} // namespace

std::string
cacheDirFromEnv()
{
    const char *dir = std::getenv("TRAPJIT_CACHE_DIR");
    return dir != nullptr ? std::string(dir) : std::string();
}

std::shared_ptr<PersistentCache>
PersistentCache::open(const std::string &dir)
{
    if (dir.empty())
        return nullptr;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // create_directories reports success-or-exists via ec; a failure
    // here (permissions, file in the way) degrades to no cache.
    if (ec)
        return nullptr;

    auto cache = std::shared_ptr<PersistentCache>(new PersistentCache);
    cache->dir_ = dir;
    cache->segmentPath_ = dir + "/segment.tjs";
    cache->indexPath_ = dir + "/index.tji";
    if (!cache->openFiles())
        return nullptr;
    return cache;
}

PersistentCache::~PersistentCache()
{
    if (segMap_ != nullptr)
        ::munmap(segMap_, segMapSize_);
    if (indexMap_ != nullptr)
        ::munmap(indexMap_, indexMapSize_);
    if (segFd_ >= 0)
        ::close(segFd_);
    if (indexFd_ >= 0)
        ::close(indexFd_);
}

void
PersistentCache::flockExclusive()
{
    while (::flock(segFd_, LOCK_EX) != 0 && errno == EINTR) {
    }
}

void
PersistentCache::flockRelease()
{
    ::flock(segFd_, LOCK_UN);
}

bool
PersistentCache::openFiles()
{
    segFd_ = ::open(segmentPath_.c_str(), O_RDWR | O_CREAT | O_APPEND,
                    0644);
    if (segFd_ < 0)
        return false;

    std::lock_guard<std::mutex> lock(mutex_);
    flockExclusive();

    struct stat st;
    if (::fstat(segFd_, &st) != 0) {
        flockRelease();
        return false;
    }
    segSize_ = static_cast<uint64_t>(st.st_size);

    bool fresh = false;
    if (segSize_ < kSegHeaderSize) {
        fresh = true;
    } else {
        if (!remapSegmentLocked(segSize_)) {
            flockRelease();
            return false;
        }
        Hash128 fp = schemaFingerprint();
        if (loadU32(segMap_ + 0) != kSegMagic ||
            loadU32(segMap_ + 4) != kVersion ||
            loadU64(segMap_ + 8) != fp.hi ||
            loadU64(segMap_ + 16) != fp.lo) {
            // Stale or foreign schema: self-invalidate both files.
            fresh = true;
        }
    }
    if (fresh) {
        selfInvalidateLocked();
    } else {
        if (!remapIndexByNameLocked()) {
            flockRelease();
            return false;
        }
        loadIndexSlotsLocked();
        reconcileLocked();
    }
    flockRelease();
    return true;
}

/** Truncate both files and write fresh headers.  Caller holds the
 *  mutex and the flock. */
void
PersistentCache::selfInvalidateLocked()
{
    map_.clear();
    if (::ftruncate(segFd_, 0) != 0)
        return;
    std::string header = segmentHeaderBytes();
    writeAll(segFd_, header.data(), header.size());
    segSize_ = kSegHeaderSize;
    remapSegmentLocked(segSize_);
    createFreshIndexLocked(kInitialIndexCapacity, kSegHeaderSize);
}

bool
PersistentCache::remapSegmentLocked(uint64_t newSize)
{
    if (segMap_ != nullptr) {
        ::munmap(segMap_, segMapSize_);
        segMap_ = nullptr;
        segMapSize_ = 0;
    }
    if (newSize == 0)
        return true;
    void *m = ::mmap(nullptr, newSize, PROT_READ, MAP_SHARED, segFd_,
                     0);
    if (m == MAP_FAILED)
        return false;
    segMap_ = static_cast<uint8_t *>(m);
    segMapSize_ = newSize;
    return true;
}

/** Write a zeroed index of @p capacity slots to a temp file and rename
 *  it into place, then map it.  Caller holds the flock. */
bool
PersistentCache::createFreshIndexLocked(uint64_t capacity,
                                        uint64_t coveredBytes)
{
    std::string tmpPath = indexPath_ + ".tmp";
    int fd = ::open(tmpPath.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    uint64_t fileSize = kIndexHeaderSize + capacity * kIndexSlotSize;
    std::string bytes(fileSize, '\0');
    uint8_t *p = reinterpret_cast<uint8_t *>(bytes.data());
    Hash128 fp = schemaFingerprint();
    storeU32(p + 0, kIndexMagic);
    storeU32(p + 4, kVersion);
    storeU64(p + 8, fp.hi);
    storeU64(p + 16, fp.lo);
    storeU64(p + 24, capacity);
    storeU64(p + 32, coveredBytes);
    bool ok = writeAll(fd, bytes.data(), bytes.size());
    ::close(fd);
    if (!ok || ::rename(tmpPath.c_str(), indexPath_.c_str()) != 0) {
        ::unlink(tmpPath.c_str());
        return false;
    }
    return remapIndexByNameLocked();
}

/**
 * (Re)map index.tji by name if our mapping is missing or stale (a
 * concurrent writer grew the index and renamed a new file over it).
 * Invalid or missing index files are recreated fresh, with
 * coveredBytes reset so the segment scan in reconcileLocked() rebuilds
 * the slots.  Caller holds the flock.
 */
bool
PersistentCache::remapIndexByNameLocked()
{
    struct stat byName;
    bool exists = ::stat(indexPath_.c_str(), &byName) == 0;
    if (exists && indexFd_ >= 0) {
        struct stat byFd;
        if (::fstat(indexFd_, &byFd) == 0 &&
            byFd.st_ino == byName.st_ino &&
            byFd.st_dev == byName.st_dev)
            return true; // mapping is current
    }
    if (indexMap_ != nullptr) {
        ::munmap(indexMap_, indexMapSize_);
        indexMap_ = nullptr;
        indexMapSize_ = 0;
    }
    if (indexFd_ >= 0) {
        ::close(indexFd_);
        indexFd_ = -1;
    }
    if (!exists)
        return createFreshIndexLocked(kInitialIndexCapacity,
                                      kSegHeaderSize);

    indexFd_ = ::open(indexPath_.c_str(), O_RDWR, 0644);
    if (indexFd_ < 0)
        return false;
    struct stat st;
    if (::fstat(indexFd_, &st) != 0)
        return false;
    uint64_t fileSize = static_cast<uint64_t>(st.st_size);
    if (fileSize >= kIndexHeaderSize) {
        void *m = ::mmap(nullptr, fileSize, PROT_READ | PROT_WRITE,
                         MAP_SHARED, indexFd_, 0);
        if (m != MAP_FAILED) {
            indexMap_ = static_cast<uint8_t *>(m);
            indexMapSize_ = fileSize;
            Hash128 fp = schemaFingerprint();
            uint64_t capacity = loadU64(indexMap_ + 24);
            if (loadU32(indexMap_ + 0) == kIndexMagic &&
                loadU32(indexMap_ + 4) == kVersion &&
                loadU64(indexMap_ + 8) == fp.hi &&
                loadU64(indexMap_ + 16) == fp.lo && capacity > 0 &&
                (capacity & (capacity - 1)) == 0 &&
                kIndexHeaderSize + capacity * kIndexSlotSize ==
                    fileSize) {
                indexCapacity_ = capacity;
                return true;
            }
            ::munmap(indexMap_, indexMapSize_);
            indexMap_ = nullptr;
            indexMapSize_ = 0;
        }
    }
    // Unusable index: rebuild fresh; the reconcile scan repopulates it
    // from the (authoritative) segment.
    ::close(indexFd_);
    indexFd_ = -1;
    return createFreshIndexLocked(kInitialIndexCapacity,
                                  kSegHeaderSize);
}

/**
 * Load every published index slot into the in-memory map with lazy
 * checksum validation.  Slots that fail the bounds or header checks
 * are dropped (corrupt).  Caller holds the flock.
 */
void
PersistentCache::loadIndexSlotsLocked()
{
    if (indexMap_ == nullptr)
        return;
    for (uint64_t i = 0; i < indexCapacity_; ++i) {
        const uint8_t *slot =
            indexMap_ + kIndexHeaderSize + i * kIndexSlotSize;
        uint64_t offset = loadU64Acquire(slot + 16);
        if (offset == 0)
            continue;
        Hash128 key{loadU64(slot + 0), loadU64(slot + 8)};
        uint64_t size = loadU64(slot + 24);
        if (size > kMaxPayloadSize || offset < kSegHeaderSize ||
            offset + kEntryHeaderSize + size < offset ||
            offset + kEntryHeaderSize + size > segSize_) {
            ++corrupt_;
            continue;
        }
        const uint8_t *hdr = segMap_ + offset;
        if (loadU32(hdr + 0) != kEntryMagic ||
            loadU32(hdr + 4) != static_cast<uint32_t>(size) ||
            loadU64(hdr + 8) != key.hi || loadU64(hdr + 16) != key.lo) {
            ++corrupt_;
            continue;
        }
        Rec rec;
        rec.offset = offset;
        rec.size = static_cast<uint32_t>(size);
        rec.validated = false; // checksum checked on first lookup
        map_.emplace(key, rec);
    }
}

/**
 * Bring this handle up to date with the segment file: remap if it
 * grew, then scan any tail beyond the index's coveredBytes watermark,
 * eagerly checksumming each entry and publishing it.  A torn entry can
 * only sit at EOF (appends are single writes under the flock), so the
 * scan repairs it by truncating.  Caller holds the flock.
 */
void
PersistentCache::reconcileLocked()
{
    struct stat st;
    if (::fstat(segFd_, &st) != 0)
        return;
    uint64_t segSize = static_cast<uint64_t>(st.st_size);
    if (segSize < kSegHeaderSize)
        return;
    if (segSize != segMapSize_ && !remapSegmentLocked(segSize))
        return;
    segSize_ = segSize;

    if (!remapIndexByNameLocked() || indexMap_ == nullptr)
        return;
    uint64_t covered = loadU64Acquire(indexMap_ + 32);
    if (covered < kSegHeaderSize)
        covered = kSegHeaderSize;
    if (covered > segSize_)
        covered = segSize_; // externally truncated segment
    uint64_t pos = covered;
    while (pos + kEntryHeaderSize <= segSize_) {
        const uint8_t *hdr = segMap_ + pos;
        uint32_t size = loadU32(hdr + 4);
        Hash128 key{loadU64(hdr + 8), loadU64(hdr + 16)};
        Hash128 sum{loadU64(hdr + 24), loadU64(hdr + 32)};
        if (loadU32(hdr + 0) != kEntryMagic || size > kMaxPayloadSize ||
            pos + kEntryHeaderSize + size > segSize_)
            break; // torn tail
        std::string_view payload(
            reinterpret_cast<const char *>(hdr + kEntryHeaderSize),
            size);
        if (hashBytes(payload) != sum) {
            ++corrupt_;
            break; // torn payload at EOF
        }
        Rec rec;
        rec.offset = pos;
        rec.size = size;
        rec.validated = true;
        map_.emplace(key, rec);
        publishIndexSlotLocked(key, pos, size);
        pos += kEntryHeaderSize + size;
    }
    if (pos < segSize_) {
        // Repair the torn tail so future appends produce a clean file.
        if (::ftruncate(segFd_, static_cast<off_t>(pos)) == 0) {
            segSize_ = pos;
            remapSegmentLocked(segSize_);
        }
    }
    storeU64Release(indexMap_ + 32, segSize_);
}

/** Publish (or refresh) an index slot.  First key writer wins; the
 *  offset field is stored last, with release.  Caller holds flock. */
void
PersistentCache::publishIndexSlotLocked(const Hash128 &key,
                                        uint64_t offset, uint32_t size)
{
    if (indexMap_ == nullptr || indexCapacity_ == 0)
        return;
    // Count occupied slots lazily via probe length: grow when the load
    // factor would pass ~70%.
    uint64_t population = 0;
    for (uint64_t i = 0; i < indexCapacity_; ++i) {
        const uint8_t *slot =
            indexMap_ + kIndexHeaderSize + i * kIndexSlotSize;
        if (loadU64Acquire(slot + 16) != 0)
            ++population;
    }
    if ((population + 1) * 10 > indexCapacity_ * 7)
        growIndexLocked();

    uint64_t mask = indexCapacity_ - 1;
    uint64_t idx = key.lo & mask;
    for (uint64_t n = 0; n < indexCapacity_; ++n) {
        uint8_t *slot =
            indexMap_ + kIndexHeaderSize + idx * kIndexSlotSize;
        uint64_t existing = loadU64Acquire(slot + 16);
        if (existing == 0) {
            storeU64(slot + 0, key.hi);
            storeU64(slot + 8, key.lo);
            storeU64(slot + 24, size);
            storeU64Release(slot + 16, offset); // publication point
            return;
        }
        if (loadU64(slot + 0) == key.hi && loadU64(slot + 8) == key.lo)
            return; // first writer won
        idx = (idx + 1) & mask;
    }
}

/** Double the index via write-temp-then-rename.  Caller holds flock. */
void
PersistentCache::growIndexLocked()
{
    uint64_t newCapacity = indexCapacity_ * 2;
    uint64_t covered = loadU64Acquire(indexMap_ + 32);

    // Snapshot current slots before the mapping is replaced.
    std::vector<std::array<uint64_t, 4>> live;
    live.reserve(indexCapacity_);
    for (uint64_t i = 0; i < indexCapacity_; ++i) {
        const uint8_t *slot =
            indexMap_ + kIndexHeaderSize + i * kIndexSlotSize;
        uint64_t offset = loadU64Acquire(slot + 16);
        if (offset == 0)
            continue;
        live.push_back({loadU64(slot + 0), loadU64(slot + 8), offset,
                        loadU64(slot + 24)});
    }
    if (!createFreshIndexLocked(newCapacity, covered))
        return;
    uint64_t mask = indexCapacity_ - 1;
    for (const auto &s : live) {
        uint64_t idx = s[1] & mask;
        while (true) {
            uint8_t *slot =
                indexMap_ + kIndexHeaderSize + idx * kIndexSlotSize;
            if (loadU64(slot + 16) == 0) {
                storeU64(slot + 0, s[0]);
                storeU64(slot + 8, s[1]);
                storeU64(slot + 24, s[3]);
                storeU64Release(slot + 16, s[2]);
                break;
            }
            idx = (idx + 1) & mask;
        }
    }
}

PersistentCache::Value
PersistentCache::lookup(const Hash128 &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    Rec &rec = it->second;
    if (rec.memValue == nullptr) {
        if (rec.offset + kEntryHeaderSize + rec.size > segMapSize_) {
            ++corrupt_;
            ++misses_;
            map_.erase(it);
            return nullptr;
        }
        const uint8_t *hdr = segMap_ + rec.offset;
        std::string_view payload(
            reinterpret_cast<const char *>(hdr + kEntryHeaderSize),
            rec.size);
        if (!rec.validated) {
            Hash128 sum{loadU64(hdr + 24), loadU64(hdr + 32)};
            if (hashBytes(payload) != sum) {
                ++corrupt_;
                ++misses_;
                map_.erase(it);
                return nullptr;
            }
            rec.validated = true;
        }
        rec.memValue =
            std::make_shared<const std::string>(payload.data(),
                                                payload.size());
    }
    ++hits_;
    return rec.memValue;
}

void
PersistentCache::insert(const Hash128 &key, const Value &value)
{
    if (value == nullptr || value->size() > kMaxPayloadSize)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_.find(key) != map_.end())
        return;

    flockExclusive();
    // Catch up with concurrent writers first — one of them may have
    // persisted this very key.
    reconcileLocked();
    if (map_.find(key) != map_.end()) {
        flockRelease();
        return;
    }

    // Append [header][payload] with a single write so a crash tears at
    // most the tail (repaired by the next reconcile scan).
    std::string record(kEntryHeaderSize + value->size(), '\0');
    uint8_t *p = reinterpret_cast<uint8_t *>(record.data());
    Hash128 sum = hashBytes(*value);
    storeU32(p + 0, kEntryMagic);
    storeU32(p + 4, static_cast<uint32_t>(value->size()));
    storeU64(p + 8, key.hi);
    storeU64(p + 16, key.lo);
    storeU64(p + 24, sum.hi);
    storeU64(p + 32, sum.lo);
    std::memcpy(p + kEntryHeaderSize, value->data(), value->size());

    uint64_t offset = segSize_;
    if (!writeAll(segFd_, record.data(), record.size())) {
        flockRelease();
        return;
    }
    segSize_ += record.size();

    publishIndexSlotLocked(key, offset,
                           static_cast<uint32_t>(value->size()));
    if (indexMap_ != nullptr)
        storeU64Release(indexMap_ + 32, segSize_);

    Rec rec;
    rec.offset = offset;
    rec.size = static_cast<uint32_t>(value->size());
    rec.validated = true;
    rec.memValue = value;
    map_.emplace(key, rec);
    ++inserts_;
    flockRelease();
}

size_t
PersistentCache::size()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

uint64_t
PersistentCache::bytesMapped()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return segMapSize_ + indexMapSize_;
}

PersistentCacheStats
PersistentCache::stats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    PersistentCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.inserts = inserts_;
    s.corruptEntries = corrupt_;
    s.bytesMapped = segMapSize_ + indexMapSize_;
    s.entries = map_.size();
    return s;
}

} // namespace trapjit
