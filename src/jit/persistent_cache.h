#ifndef TRAPJIT_JIT_PERSISTENT_CACHE_H_
#define TRAPJIT_JIT_PERSISTENT_CACHE_H_

/**
 * @file
 * Persistent cross-run compile cache.
 *
 * The in-memory CompileCache amortizes compilation across workers of
 * one process; this tier amortizes it across *processes and runs*.  It
 * is safe for exactly the same reason: the jobKey is a content address
 * covering the target fingerprint, the config fingerprint, the class
 * table, and the serialized call closure, so key equality implies
 * bit-identical compile output no matter which process produced it.
 *
 * On-disk layout inside the cache directory (see DESIGN.md §16):
 *
 *   segment.tjs   append-only record file.  A 24-byte header
 *                 (magic/version/schema fingerprint) followed by
 *                 entries of [40-byte EntryHeader][payload].  The
 *                 EntryHeader carries the jobKey, the payload size and
 *                 a 128-bit payload checksum, so torn tails and bit
 *                 rot are detected, never trusted.
 *   index.tji     open-addressed index page, mmap'd MAP_SHARED.  Slots
 *                 map jobKey -> (segment offset, payload size); a
 *                 slot's offset field is published *last* with a
 *                 release store (write-then-publish), so concurrent
 *                 mappers see either nothing or a complete slot.  The
 *                 header's coveredBytes watermark records how much of
 *                 the segment the index describes; openers scan any
 *                 uncovered tail (eagerly checksummed) and re-publish
 *                 it, which is also how crash recovery works.
 *
 * The index is an accelerator, never an authority: every payload read
 * is validated against the entry checksum before use, and any
 * corruption (bad magic, out-of-bounds slot, failed checksum) demotes
 * the entry to a miss.  A miss only costs a recompile — this is a
 * cache, not a database.
 *
 * Cross-process writers are serialized with flock(2) on the segment
 * file; flock is per-open-file-description, so two handles onto one
 * directory exclude each other even inside a single process (the
 * concurrency tests exploit exactly that).  Lookups take no file lock.
 * A version/fingerprint mismatch in the segment header (schema change)
 * self-invalidates: both files are truncated and rewritten fresh.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/hash.h"

namespace trapjit
{

/** Snapshot of a PersistentCache's operation counters. */
struct PersistentCacheStats
{
    uint64_t hits = 0;           ///< lookup() served a validated entry
    uint64_t misses = 0;         ///< lookup() found nothing usable
    uint64_t inserts = 0;        ///< entries appended by this handle
    uint64_t corruptEntries = 0; ///< entries rejected by validation
    uint64_t bytesMapped = 0;    ///< current segment+index mapping size
    uint64_t entries = 0;        ///< usable entries known to this handle
};

/**
 * One handle onto an on-disk cache directory.  Thread-safe; all
 * operations serialize on an internal mutex (the lock-free fast path
 * is the in-memory CompileCache in front of this tier).
 */
class PersistentCache
{
  public:
    using Value = std::shared_ptr<const std::string>;

    /**
     * Open (creating if needed) the cache in @p dir.  Returns nullptr
     * if the directory cannot be created or the files cannot be
     * opened — callers degrade to memory-only caching.
     */
    static std::shared_ptr<PersistentCache> open(const std::string &dir);

    ~PersistentCache();

    PersistentCache(const PersistentCache &) = delete;
    PersistentCache &operator=(const PersistentCache &) = delete;

    /** The compiled IR for @p key, or nullptr on a miss. */
    Value lookup(const Hash128 &key);

    /** Durably publish a compile result (first writer wins). */
    void insert(const Hash128 &key, const Value &value);

    /** Usable entries known to this handle. */
    size_t size();

    /** Bytes of this handle's current file mappings. */
    uint64_t bytesMapped();

    PersistentCacheStats stats();

    const std::string &dir() const { return dir_; }

  private:
    PersistentCache() = default;

    struct Rec
    {
        uint64_t offset = 0; ///< EntryHeader offset in the segment
        uint32_t size = 0;   ///< payload size
        bool validated = false;
        Value memValue; ///< decoded payload, cached after validation
    };

    bool openFiles();
    void selfInvalidateLocked();
    bool remapSegmentLocked(uint64_t newSize);
    bool createFreshIndexLocked(uint64_t capacity,
                                uint64_t coveredBytes);
    bool remapIndexByNameLocked();
    void loadIndexSlotsLocked();
    void reconcileLocked();
    void publishIndexSlotLocked(const Hash128 &key, uint64_t offset,
                                uint32_t size);
    void growIndexLocked();
    void flockExclusive();
    void flockRelease();

    std::string dir_;
    std::string segmentPath_;
    std::string indexPath_;

    std::mutex mutex_;

    int segFd_ = -1;
    uint8_t *segMap_ = nullptr;
    uint64_t segMapSize_ = 0;
    uint64_t segSize_ = 0;

    int indexFd_ = -1;
    uint8_t *indexMap_ = nullptr;
    uint64_t indexMapSize_ = 0;
    uint64_t indexCapacity_ = 0;

    std::unordered_map<Hash128, Rec, Hash128Hasher> map_;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t inserts_ = 0;
    uint64_t corrupt_ = 0;
};

/** TRAPJIT_CACHE_DIR, or empty when unset. */
std::string cacheDirFromEnv();

} // namespace trapjit

#endif // TRAPJIT_JIT_PERSISTENT_CACHE_H_
