#include "jit/pipeline.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "codegen/codegen_pass.h"
#include "codegen/scheduler.h"

#include "opt/bounds/bounds_check_elimination.h"
#include "opt/copy_propagation.h"
#include "opt/dead_code.h"
#include "opt/inliner/inliner.h"
#include "opt/local_cse.h"
#include "opt/nullcheck/local_trap_lowering.h"
#include "opt/nullcheck/phase1.h"
#include "opt/nullcheck/phase2.h"
#include "opt/nullcheck/whaley.h"
#include "opt/scalar/scalar_replacement.h"

namespace trapjit
{

namespace
{

/** TRAPJIT_VERIFY_EACH_PASS=1 forces verification into every pipeline. */
bool
envForcesVerification()
{
    static const bool forced = [] {
        const char *value = std::getenv("TRAPJIT_VERIFY_EACH_PASS");
        return value != nullptr && *value != '\0' &&
               std::strcmp(value, "0") != 0;
    }();
    return forced;
}

/** TRAPJIT_AUDIT=1 forces the soundness auditor into every pipeline. */
bool
envForcesAudit()
{
    static const bool forced = [] {
        const char *value = std::getenv("TRAPJIT_AUDIT");
        return value != nullptr && *value != '\0' &&
               std::strcmp(value, "0") != 0;
    }();
    return forced;
}

} // namespace

std::unique_ptr<PassManager>
buildPipeline(const PipelineConfig &config)
{
    AuditMode audit = config.audit;
    if (audit == AuditMode::Off && envForcesAudit())
        audit = AuditMode::Panic;
    auto pm = std::make_unique<PassManager>(config.verifyAfterEachPass ||
                                                envForcesVerification(),
                                            audit);

    if (config.enableInlining)
        pm->add(std::make_unique<Inliner>(config.inlineBudget, 4000,
                                          config.enableIntrinsics));

    // The Figure 2 iteration: null check phase 1 assists and is assisted
    // by bounds check optimization and scalar replacement, so the trio is
    // repeated a few times.
    for (int round = 0; round < config.rounds; ++round) {
        pm->add(std::make_unique<LocalCSE>());
        pm->add(std::make_unique<CopyPropagation>());
        if (config.usePhase1)
            pm->add(std::make_unique<NullCheckPhase1>());
        if (config.enableBounds)
            pm->add(std::make_unique<BoundsCheckElimination>());
        if (config.enableScalar)
            pm->add(std::make_unique<ScalarReplacement>());
        pm->add(std::make_unique<DeadCodeElimination>());
    }

    for (int i = 0; i < config.cleanupRepeat; ++i) {
        pm->add(std::make_unique<LocalCSE>());
        pm->add(std::make_unique<CopyPropagation>());
        pm->add(std::make_unique<DeadCodeElimination>());
    }

    if (config.useWhaley)
        pm->add(std::make_unique<WhaleyNullCheckElimination>());

    if (config.usePhase2)
        pm->add(std::make_unique<NullCheckPhase2>());
    else if (config.useLocalLowering)
        pm->add(std::make_unique<LocalTrapLowering>());

    // Back end: schedule, allocate registers, emit.
    if (config.enableBackend) {
        pm->add(std::make_unique<LocalScheduler>());
        pm->add(std::make_unique<CodegenPass>());
    }

    return pm;
}

std::string
configFingerprint(const PipelineConfig &config)
{
    std::ostringstream os;
    os << "whaley=" << config.useWhaley
       << ";phase1=" << config.usePhase1
       << ";phase2=" << config.usePhase2
       << ";locallower=" << config.useLocalLowering
       << ";inline=" << config.enableInlining
       << ";inlinebudget=" << config.inlineBudget
       << ";intrinsics=" << config.enableIntrinsics
       << ";scalar=" << config.enableScalar
       << ";bounds=" << config.enableBounds
       << ";speculation=" << config.enableSpeculation
       << ";rounds=" << config.rounds
       << ";cleanup=" << config.cleanupRepeat
       << ";backend=" << config.enableBackend;
    return os.str();
}

PipelineConfig
makeNoOptNoTrapConfig()
{
    PipelineConfig c;
    c.name = "No Null Opt. (No Hardware Trap)";
    return c;
}

PipelineConfig
makeNoOptTrapConfig()
{
    PipelineConfig c;
    c.name = "No Null Opt. (Hardware Trap)";
    c.useLocalLowering = true;
    return c;
}

PipelineConfig
makeOldNullCheckConfig()
{
    PipelineConfig c;
    c.name = "Old Null Check";
    c.useWhaley = true;
    c.useLocalLowering = true;
    return c;
}

PipelineConfig
makeNewPhase1OnlyConfig()
{
    PipelineConfig c;
    c.name = "New Null Check (Phase1 only)";
    c.usePhase1 = true;
    c.useLocalLowering = true;
    return c;
}

PipelineConfig
makeNewFullConfig()
{
    PipelineConfig c;
    c.name = "New Null Check (Phase1+Phase2)";
    c.usePhase1 = true;
    c.usePhase2 = true;
    return c;
}

PipelineConfig
makeAltVMConfig()
{
    PipelineConfig c;
    c.name = "AltVM (HotSpot-like)";
    c.useWhaley = true;
    c.useLocalLowering = true;
    c.inlineBudget = 42; // slightly larger inlining appetite ...
    c.enableIntrinsics = false; // no Math.* instruction selection
    c.rounds = 3;
    c.cleanupRepeat = 10; // ... and a far more expensive compile
    return c;
}

PipelineConfig
makeAIXSpeculationConfig()
{
    PipelineConfig c;
    c.name = "Speculation";
    c.usePhase1 = true;          // new null check optimization (phase 1)
    c.enableSpeculation = true;  // reads may move above their checks
    // Phase 2 is skipped on AIX; every remaining check stays an explicit
    // 1-cycle conditional trap.
    return c;
}

PipelineConfig
makeAIXNoSpeculationConfig()
{
    PipelineConfig c = makeAIXSpeculationConfig();
    c.name = "No Speculation";
    c.enableSpeculation = false;
    return c;
}

PipelineConfig
makeAIXNoOptConfig()
{
    PipelineConfig c;
    c.name = "No Null Check Optimization";
    return c;
}

PipelineConfig
makeAIXIllegalImplicitConfig()
{
    PipelineConfig c;
    c.name = "Illegal Implicit (No Speculation)";
    c.usePhase1 = true;
    c.usePhase2 = true; // the Intel phase 2, applied illegally on AIX
    return c;
}

} // namespace trapjit
