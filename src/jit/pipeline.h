#ifndef TRAPJIT_JIT_PIPELINE_H_
#define TRAPJIT_JIT_PIPELINE_H_

/**
 * @file
 * Pipeline configurations: the experiment arms of Section 5.
 *
 * Every configuration shares the non-null-check optimizations (inlining,
 * CSE, copy propagation, bounds check optimization, scalar replacement,
 * DCE); they differ only in how null checks are optimized and lowered,
 * exactly as the paper's measurement arms do:
 *
 *   "No Null Opt. (No Hardware Trap)"  -> makeNoOptNoTrapConfig()
 *   "No Null Opt. (Hardware Trap)"     -> makeNoOptTrapConfig()
 *   "Old Null Check" (Whaley [14])     -> makeOldNullCheckConfig()
 *   "New Null Check (Phase 1 only)"    -> makeNewPhase1OnlyConfig()
 *   "New Null Check (Phase1+Phase2)"   -> makeNewFullConfig()
 *   HotSpot stand-in                   -> makeAltVMConfig()
 *
 * and for the PowerPC/AIX experiments of Section 5.4 (phase 2 is skipped
 * on AIX; every check stays explicit via the conditional trap
 * instruction):
 *
 *   "Speculation"                      -> makeAIXSpeculationConfig()
 *   "No Speculation"                   -> makeAIXNoSpeculationConfig()
 *   "No Null Check Optimization"       -> makeAIXNoOptConfig()
 *   "Illegal Implicit (No Spec.)"      -> makeAIXIllegalImplicitConfig()
 *     (compiled against the lying target that claims reads trap)
 */

#include <memory>
#include <string>

#include "opt/pass_manager.h"

namespace trapjit
{

/** Knobs of one compilation pipeline. */
struct PipelineConfig
{
    std::string name;

    // Null check handling.
    bool useWhaley = false;        ///< forward-only elimination (baseline)
    bool usePhase1 = false;        ///< backward PRE (Section 4.1)
    bool usePhase2 = false;        ///< forward PRE + traps (Section 4.2)
    bool useLocalLowering = false; ///< peephole trap utilization

    // Shared optimizations.
    bool enableInlining = true;
    size_t inlineBudget = 40;
    bool enableIntrinsics = true; ///< Math.* -> native instruction
    bool enableScalar = true;
    bool enableBounds = true;
    bool enableSpeculation = false; ///< read speculation (Section 5.4)

    /** Iterations of the Figure 2 loop (phase 1 with bounds/scalar). */
    int rounds = 2;

    /** Extra cleanup repetitions (the AltVM burns compile time here). */
    int cleanupRepeat = 1;

    /** Run the back end (scheduler + register allocation + emission). */
    bool enableBackend = true;

    /**
     * Run the IR verifier before the first pass and after every pass,
     * panicking as soon as a pass breaks the IR.  Also forced on for
     * every pipeline when the TRAPJIT_VERIFY_EACH_PASS environment
     * variable is set to a non-zero value (the test suite sets it via
     * ctest so every arm of every test is verified pass-by-pass).
     */
    bool verifyAfterEachPass = false;

    /**
     * Run the null-check soundness auditor (analysis/audit/) alongside
     * the pipeline: translation validation after every null-check pass
     * plus a final whole-function audit.  Off by default; Panic is
     * forced for every pipeline when the TRAPJIT_AUDIT environment
     * variable is set to a non-zero value.  The trapjit-lint tool and
     * the mutation tests use Collect to gather findings instead of
     * dying on the first one.  Like verifyAfterEachPass, this is
     * excluded from configFingerprint(): auditing never changes the
     * generated code.
     */
    AuditMode audit = AuditMode::Off;
};

/** Build the ordered pass list realizing @p config. */
std::unique_ptr<PassManager> buildPipeline(const PipelineConfig &config);

/**
 * Stable fingerprint of every field of @p config that influences
 * generated code (the name is cosmetic and excluded, as is
 * verifyAfterEachPass).  Part of the compile-cache key: two configs
 * with equal fingerprints compile any function identically.
 */
std::string configFingerprint(const PipelineConfig &config);

PipelineConfig makeNoOptNoTrapConfig();
PipelineConfig makeNoOptTrapConfig();
PipelineConfig makeOldNullCheckConfig();
PipelineConfig makeNewPhase1OnlyConfig();
PipelineConfig makeNewFullConfig();
PipelineConfig makeAltVMConfig();

PipelineConfig makeAIXSpeculationConfig();
PipelineConfig makeAIXNoSpeculationConfig();
PipelineConfig makeAIXNoOptConfig();
PipelineConfig makeAIXIllegalImplicitConfig();

} // namespace trapjit

#endif // TRAPJIT_JIT_PIPELINE_H_
