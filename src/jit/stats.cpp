#include "jit/stats.h"

namespace trapjit
{

CheckStats &
CheckStats::operator+=(const CheckStats &other)
{
    explicitNullChecks += other.explicitNullChecks;
    implicitNullChecks += other.implicitNullChecks;
    markedExceptionSites += other.markedExceptionSites;
    speculativeReads += other.speculativeReads;
    boundChecks += other.boundChecks;
    instructions += other.instructions;
    blocks += other.blocks;
    return *this;
}

CheckStats
collectCheckStats(const Function &func)
{
    CheckStats stats;
    stats.blocks = func.numBlocks();
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            ++stats.instructions;
            switch (inst.op) {
              case Opcode::NullCheck:
                if (inst.flavor == CheckFlavor::Explicit)
                    ++stats.explicitNullChecks;
                else
                    ++stats.implicitNullChecks;
                break;
              case Opcode::BoundCheck:
                ++stats.boundChecks;
                break;
              default:
                break;
            }
            if (inst.exceptionSite)
                ++stats.markedExceptionSites;
            if (inst.speculative)
                ++stats.speculativeReads;
        }
    }
    return stats;
}

CheckStats
collectCheckStats(const Module &mod)
{
    CheckStats total;
    for (FunctionId f = 0; f < mod.numFunctions(); ++f)
        total += collectCheckStats(mod.function(f));
    return total;
}

double
ServiceCounters::hitRate() const
{
    size_t finished = total();
    return finished == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(finished);
}

ServiceCounters &
ServiceCounters::operator+=(const ServiceCounters &other)
{
    functionsRequested += other.functionsRequested;
    functionsCompiled += other.functionsCompiled;
    cacheHits += other.cacheHits;
    solverSolves += other.solverSolves;
    solverBlockVisits += other.solverBlockVisits;
    functionsPredecoded += other.functionsPredecoded;
    decodeSeconds += other.decodeSeconds;
    functionsNativeCompiled += other.functionsNativeCompiled;
    nativeCompileSeconds += other.nativeCompileSeconds;
    functionsAudited += other.functionsAudited;
    auditFindings += other.auditFindings;
    auditSeconds += other.auditSeconds;
    functionsPromoted += other.functionsPromoted;
    blocksLinked += other.blocksLinked;
    slotsPatched += other.slotsPatched;
    blocksInvalidated += other.blocksInvalidated;
    tierUpLatencySeconds += other.tierUpLatencySeconds;
    functionsRegalloc += other.functionsRegalloc;
    spillsEmitted += other.spillsEmitted;
    loadsSpeculated += other.loadsSpeculated;
    deoptsTaken += other.deoptsTaken;
    regallocSeconds += other.regallocSeconds;
    persistentHits += other.persistentHits;
    persistentMisses += other.persistentMisses;
    blocksEvicted += other.blocksEvicted;
    // Gauges: two snapshots of the same mapping/pool must not add.
    bytesMapped = bytesMapped > other.bytesMapped ? bytesMapped
                                                  : other.bytesMapped;
    codeBytesLive = codeBytesLive > other.codeBytesLive
                        ? codeBytesLive
                        : other.codeBytesLive;
    return *this;
}

} // namespace trapjit
