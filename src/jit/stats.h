#ifndef TRAPJIT_JIT_STATS_H_
#define TRAPJIT_JIT_STATS_H_

/**
 * @file
 * Static IR statistics: what a compiled module looks like on paper —
 * how many checks are left, of which flavor, how many accesses carry
 * implicit checks, how large the functions are.  Used by the static
 * check-count bench and handy when debugging a pipeline.
 */

#include <cstdint>

#include "ir/module.h"

namespace trapjit
{

/** Static counts over a function or module. */
struct CheckStats
{
    size_t explicitNullChecks = 0;
    size_t implicitNullChecks = 0;
    size_t markedExceptionSites = 0;
    size_t speculativeReads = 0;
    size_t boundChecks = 0;
    size_t instructions = 0;
    size_t blocks = 0;

    CheckStats &operator+=(const CheckStats &other);
};

/** Count checks in one function. */
CheckStats collectCheckStats(const Function &func);

/** Count checks over every function of a module. */
CheckStats collectCheckStats(const Module &mod);

/**
 * Per-job compile counters for the parallel compile service.
 *
 * Aggregation is merge-on-completion: every compile job fills its own
 * ServiceCounters without synchronization, and the service folds them
 * into the batch total under one mutex when the job finishes (see
 * jit/compile_service.cpp).  Nothing here is atomic on purpose — the
 * merge points are the only cross-thread edges.
 */
struct ServiceCounters
{
    size_t functionsRequested = 0; ///< jobs submitted
    size_t functionsCompiled = 0;  ///< cache misses: pipeline actually ran
    size_t cacheHits = 0;          ///< jobs satisfied from the cache

    // Dataflow solver convergence, summed over every solve the batch's
    // pipelines ran (see analysis/dataflow.h SolverStats).  Cache hits
    // contribute nothing: no pipeline ran.
    size_t solverSolves = 0;      ///< solve() calls across all jobs
    size_t solverBlockVisits = 0; ///< worklist pops across all solves

    // Pre-decoding for the fast interpreter (interp/decoded_program.h):
    // after the batch installs its results, the service decodes each
    // compiled function into its DecodedProgramCache so bench runs pay
    // for decoding once, not per interpreter instance.  These separate
    // that cost from compilation proper in the compile-time benches.
    size_t functionsPredecoded = 0; ///< decode-cache misses this batch
    double decodeSeconds = 0.0;     ///< host time spent pre-decoding

    // Native-tier pre-compilation (codegen/native/native_compiler.h):
    // on x86-64 hosts the service also lowers each compiled function to
    // machine code into its NativeCodeCache, again so bench runs never
    // pay the emitter on first execution.  Functions the tier rejects
    // (non-x86-64 builds) are counted as compiled attempts by neither.
    size_t functionsNativeCompiled = 0; ///< native-cache misses this batch
    double nativeCompileSeconds = 0.0;  ///< host time spent emitting

    // Null-check soundness auditor (analysis/audit/), summed over every
    // job whose pipeline ran with auditing enabled (TRAPJIT_AUDIT=1 or
    // PipelineConfig::audit).  Zero findings is the expected steady
    // state; any nonzero count is a soundness bug in a null-check pass.
    size_t functionsAudited = 0; ///< final whole-function audits run
    size_t auditFindings = 0;    ///< findings across all audits
    double auditSeconds = 0.0;   ///< host time spent auditing

    // Profile-guided tiering (jit/tier_controller.h + the code
    // registry): filled by TieredEngine::addTieringCounters after a
    // tiered run or batch; all monotonic totals.
    size_t functionsPromoted = 0;  ///< hot functions published native
    size_t blocksLinked = 0;       ///< publishes that patched >=1 slot
    size_t slotsPatched = 0;       ///< rel32 retargets, both directions
    size_t blocksInvalidated = 0;  ///< published blocks unlinked
    double tierUpLatencySeconds = 0.0; ///< request-to-publish, summed

    // Optimized native backend (codegen/native/optimized_compiler.cpp):
    // linear-scan register allocation + section-5.4 load speculation.
    // Compile-side totals come from the NativeCode blocks; deoptsTaken
    // is a runtime count filled by NativeEngine::addOptimizedCounters.
    size_t functionsRegalloc = 0; ///< functions through linear scan
    size_t spillsEmitted = 0;     ///< ranked values left slot-resident
    size_t loadsSpeculated = 0;   ///< loads hoisted above their checks
    size_t deoptsTaken = 0;       ///< side-exits into the interpreter
    double regallocSeconds = 0.0; ///< host time in the optimized backend

    // Serving-tier memory + persistence governance.  The first three
    // are monotonic event counts (summed on merge); the last two are
    // gauges — "how much is live/mapped right now" — merged with max,
    // since adding two snapshots of the same mapping would double
    // count it.
    size_t persistentHits = 0;   ///< jobs served from the on-disk cache
    size_t persistentMisses = 0; ///< jobs that missed the on-disk cache
    size_t blocksEvicted = 0;    ///< registry blocks evicted over budget
    uint64_t bytesMapped = 0;    ///< persistent-cache mapping bytes
    uint64_t codeBytesLive = 0;  ///< W^X pool bytes (loaned + pooled)

    size_t
    total() const
    {
        return cacheHits + functionsCompiled;
    }

    /** Hits / (hits + misses); 0 when nothing ran. */
    double hitRate() const;

    ServiceCounters &operator+=(const ServiceCounters &other);
};

} // namespace trapjit

#endif // TRAPJIT_JIT_STATS_H_
