#include "jit/tier_controller.h"

#include "analysis/audit/audit.h"
#include "codegen/native/native_compiler.h"
#include "jit/timing.h"

namespace trapjit
{

TierController::TierController(
    const Module &mod, const Target &target,
    std::shared_ptr<CodeRegistry> registry,
    std::shared_ptr<DecodedProgramCache> decodedCache,
    const DecodeOptions &decodeOptions,
    const TierControllerOptions &options)
    : mod_(mod), target_(target), registry_(std::move(registry)),
      decodedCache_(std::move(decodedCache)),
      decodeOptions_(decodeOptions), options_(options)
{
    if (!options_.synchronous)
        pool_ = std::make_unique<WorkerPool>(
            options_.workers > 0 ? options_.workers : 1);
}

TierController::~TierController()
{
    // WorkerPool destruction drains the backlog before joining, so
    // every accepted promotion settles before the controller dies.
    pool_.reset();
}

bool
TierController::requestPromotion(FunctionId fn)
{
    if (!registry_->tryBeginPromotion(fn))
        return false;
    if (!nativeTierSupported()) {
        registry_->markUnsupported(fn);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++inFlight_;
    }
    if (pool_ == nullptr) {
        compileAndPublish(fn);
        return true;
    }
    pool_->submit([this, fn] { compileAndPublish(fn); });
    return true;
}

void
TierController::compileAndPublish(FunctionId fn)
{
    Stopwatch watch;
    const Function &func = mod_.function(fn);

    Hash128 dkey = decodedProgramKey(func, target_, decodeOptions_);
    std::shared_ptr<const DecodedFunction> df =
        decodedCache_->lookup(dkey);
    if (df == nullptr)
        df = decodedCache_->insert(
            dkey, decodeFunction(func, target_, decodeOptions_));

    NativeCompileOptions nopts;
    nopts.recordTrace = options_.recordTrace;
    nopts.tiered = true;
    NativeCompileResult res = compileNative(func, *df, nopts);
    if (res.code == nullptr) {
        registry_->markUnsupported(fn);
        finishJob();
        return;
    }
    if (options_.audit) {
        AuditReport report =
            auditNativeTrapSites(func, target_, *df, *res.code);
        if (report.errorCount() > 0) {
            // A block that fails the trap-safety lint never runs; the
            // interpreter keeps executing the function instead.
            registry_->markUnsupported(fn);
            finishJob();
            return;
        }
    }
    registry_->publish(fn, std::move(res.code), df,
                       options_.linkBlocks);
    double seconds = watch.elapsed();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++functionsPromoted_;
        tierUpSeconds_ += seconds;
    }
    finishJob();
}

void
TierController::finishJob()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (--inFlight_ == 0)
        idle_.notify_all();
}

void
TierController::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

uint64_t
TierController::functionsPromoted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return functionsPromoted_;
}

double
TierController::tierUpLatencySeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tierUpSeconds_;
}

} // namespace trapjit
