#ifndef TRAPJIT_JIT_TIER_CONTROLLER_H_
#define TRAPJIT_JIT_TIER_CONTROLLER_H_

/**
 * @file
 * The promotion side of profile-guided tiering: accepts "this function
 * is hot" requests from interpreting engines, compiles the function to
 * a tiered native block on a background worker pool (or inline, for
 * deterministic tests), lints the block's trap-site tables with
 * auditNativeTrapSites, and publishes it into the CodeRegistry.
 *
 * Request deduplication is the registry's Cold -> Requested CAS, so a
 * function is compiled at most once per tier-up no matter how many
 * threads cross the hotness threshold simultaneously.  Functions the
 * tier rejects (non-x86-64 hosts, audit findings) are parked in
 * Unsupported so they are never re-requested; invalidate() on the
 * registry returns a function to Cold and the whole cycle can repeat.
 */

#include <cstdint>
#include <memory>
#include <mutex>

#include "arch/target.h"
#include "codegen/native/code_registry.h"
#include "interp/decoded_program.h"
#include "ir/module.h"
#include "support/job_queue.h"

namespace trapjit
{

/** Promotion-policy knobs. */
struct TierControllerOptions
{
    /**
     * Compile on the caller's thread inside requestPromotion() instead
     * of the pool (TRAPJIT_TIER_SYNC=1): deterministic promotion points
     * for the differential tests.
     */
    bool synchronous = false;
    /** Background compile workers (ignored when synchronous). */
    size_t workers = 2;
    /** Patch static call sites between published blocks. */
    bool linkBlocks = true;
    /** Run auditNativeTrapSites on every block before publishing. */
    bool audit = true;
    /** Must match the executing engine's InterpOptions::recordTrace. */
    bool recordTrace = true;
};

/** Background native promotion for one module. */
class TierController
{
  public:
    TierController(const Module &mod, const Target &target,
                   std::shared_ptr<CodeRegistry> registry,
                   std::shared_ptr<DecodedProgramCache> decodedCache,
                   const DecodeOptions &decodeOptions,
                   const TierControllerOptions &options = {});
    ~TierController();

    TierController(const TierController &) = delete;
    TierController &operator=(const TierController &) = delete;

    /**
     * Ask for @p fn to be tiered up.  Returns true when this call won
     * the compile (synchronous mode: the block is published on
     * return); false when it was already requested, published or
     * unsupported.  Safe from any thread.
     */
    bool requestPromotion(FunctionId fn);

    /** Block until every in-flight promotion has settled. */
    void drain();

    const std::shared_ptr<CodeRegistry> &registry() const
    {
        return registry_;
    }

    /** Blocks successfully published since construction. */
    uint64_t functionsPromoted() const;
    /** Total request-to-publish latency across those blocks. */
    double tierUpLatencySeconds() const;

  private:
    void compileAndPublish(FunctionId fn);
    void finishJob();

    const Module &mod_;
    Target target_;
    std::shared_ptr<CodeRegistry> registry_;
    std::shared_ptr<DecodedProgramCache> decodedCache_;
    DecodeOptions decodeOptions_;
    TierControllerOptions options_;
    std::unique_ptr<WorkerPool> pool_; ///< null in synchronous mode

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    size_t inFlight_ = 0;
    uint64_t functionsPromoted_ = 0;
    double tierUpSeconds_ = 0.0;
};

} // namespace trapjit

#endif // TRAPJIT_JIT_TIER_CONTROLLER_H_
