#include "jit/timing.h"

namespace trapjit
{

// Header-only helpers; this translation unit anchors the component.

} // namespace trapjit
