#ifndef TRAPJIT_JIT_TIMING_H_
#define TRAPJIT_JIT_TIMING_H_

/**
 * @file
 * Small wall-clock helpers for the benchmark harnesses, plus the
 * thread-safe merge point for per-worker pass timings.
 */

#include <chrono>
#include <cstddef>
#include <mutex>

#include "opt/pass_manager.h"

namespace trapjit
{

/** Steady-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    void restart() { start_ = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Run @p fn repeatedly until at least @p min_seconds have elapsed (and at
 * least @p min_reps times); return the average seconds per invocation.
 * Used to get stable compile-time measurements out of microsecond-scale
 * pipelines.
 */
template <typename Fn>
double
measureAverageSeconds(Fn &&fn, double min_seconds = 0.2,
                      size_t min_reps = 3)
{
    Stopwatch watch;
    size_t reps = 0;
    do {
        fn();
        ++reps;
    } while (reps < min_reps || watch.elapsed() < min_seconds);
    return watch.elapsed() / static_cast<double>(reps);
}

/**
 * Thread-safe accumulator for per-worker pass timings.
 *
 * Compile jobs time themselves with a private PassManager and merge the
 * result here exactly once, when the job completes — workers never
 * share a hot counter, so there is no contention on the timing path.
 */
class TimingAggregator
{
  public:
    /** Fold one job's timings (and its wall clock) into the total. */
    void
    merge(const PassTimings &timings, double busy_seconds)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        total_ += timings;
        busySeconds_ += busy_seconds;
    }

    /** Merged totals so far (copy: the aggregator keeps accumulating). */
    PassTimings
    timings() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return total_;
    }

    /** Sum of per-job busy seconds (exceeds wall clock when scaling). */
    double
    busySeconds() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return busySeconds_;
    }

  private:
    mutable std::mutex mutex_;
    PassTimings total_;
    double busySeconds_ = 0.0;
};

} // namespace trapjit

#endif // TRAPJIT_JIT_TIMING_H_
