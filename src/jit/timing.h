#ifndef TRAPJIT_JIT_TIMING_H_
#define TRAPJIT_JIT_TIMING_H_

/**
 * @file
 * Small wall-clock helpers for the benchmark harnesses.
 */

#include <chrono>
#include <cstddef>

namespace trapjit
{

/** Steady-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    void restart() { start_ = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Run @p fn repeatedly until at least @p min_seconds have elapsed (and at
 * least @p min_reps times); return the average seconds per invocation.
 * Used to get stable compile-time measurements out of microsecond-scale
 * pipelines.
 */
template <typename Fn>
double
measureAverageSeconds(Fn &&fn, double min_seconds = 0.2,
                      size_t min_reps = 3)
{
    Stopwatch watch;
    size_t reps = 0;
    do {
        fn();
        ++reps;
    } while (reps < min_reps || watch.elapsed() < min_seconds);
    return watch.elapsed() / static_cast<double>(reps);
}

} // namespace trapjit

#endif // TRAPJIT_JIT_TIMING_H_
