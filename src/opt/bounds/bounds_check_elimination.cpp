#include "opt/bounds/bounds_check_elimination.h"

#include <vector>

#include "analysis/dataflow.h"
#include "analysis/rpo.h"
#include "opt/bounds/bounds_facts.h"

namespace trapjit
{

namespace
{

/**
 * Barrier for bounds check motion: everything a null check may not cross
 * plus anything that can throw a different exception class (null checks
 * and implicit-check sites throw NPE); other bound checks are not
 * barriers (AIOOBE order among themselves may change, the class cannot).
 */
bool
isBoundsBarrier(const Function &func, const Instruction &inst, bool in_try)
{
    if (inst.op == Opcode::BoundCheck)
        return false;
    if (inst.op == Opcode::NullCheck || inst.exceptionSite)
        return true;
    if (inst.mayThrowOtherThanNull() || inst.writesMemory())
        return true;
    if (in_try && inst.hasDst() && func.value(inst.dst).isLocal())
        return true;
    return false;
}

Instruction
makeBoundCheck(Function &func, ValueId idx, ValueId len)
{
    Instruction check;
    check.op = Opcode::BoundCheck;
    check.a = idx;
    check.b = len;
    check.site = func.takeSiteId();
    return check;
}

} // namespace

bool
BoundsCheckElimination::runOnFunction(Function &func, PassContext &ctx)
{
    stats_ = Stats{};
    BoundsUniverse universe(func);
    const size_t numFacts = universe.numFacts();
    if (numFacts == 0)
        return false;
    const size_t numBlocks = func.numBlocks();
    const std::vector<bool> reachable = reachableBlocks(func);

    // ---- Backward anticipation ------------------------------------------
    DataflowSpec bwd;
    bwd.direction = DataflowSpec::Direction::Backward;
    bwd.confluence = DataflowSpec::Confluence::Intersect;
    bwd.numFacts = numFacts;
    bwd.gen.assign(numBlocks, BitSet(numFacts));
    bwd.kill.assign(numBlocks, BitSet(numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool inTry = bb.tryRegion() != 0;
        BitSet &gen = bwd.gen[b];
        BitSet &kill = bwd.kill[b];
        for (auto it = bb.insts().rbegin(); it != bb.insts().rend(); ++it) {
            const Instruction &inst = *it;
            if (inst.op == Opcode::BoundCheck) {
                gen.set(static_cast<size_t>(
                    universe.factOf(inst.a, inst.b)));
                continue;
            }
            if (isBoundsBarrier(func, inst, inTry)) {
                gen.clearAll();
                kill.setAll();
            }
            if (inst.hasDst()) {
                for (size_t fact : universe.factsUsing(inst.dst)) {
                    gen.reset(fact);
                    kill.set(fact);
                }
            }
        }
    }
    addTryBoundaryKills(func, bwd);
    // `ant` lives in solver_ and is overwritten by the availability
    // solve below; it is only read to derive `earliest` first.
    const DataflowResult &ant = solver_.solve(func, bwd);

    std::vector<BitSet> earliest(numBlocks, BitSet(numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        earliest[b] = ant.out[b];
        for (BlockId pred : func.block(static_cast<BlockId>(b)).preds())
            earliest[b].subtract(ant.out[pred]);
    }

    // ---- Forward availability, elimination, insertion -------------------
    const DataflowResult &avail =
        solveBoundsAvailability(func, universe, &earliest, solver_);

    bool changed = false;
    BitSet eliminatedFacts(numFacts);
    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        BitSet now = avail.in[b];
        auto &insts = bb.insts();
        for (size_t i = 0; i < insts.size();) {
            Instruction &inst = insts[i];
            if (inst.op == Opcode::BoundCheck) {
                size_t fact = static_cast<size_t>(
                    universe.factOf(inst.a, inst.b));
                if (now.test(fact)) {
                    eliminatedFacts.set(fact);
                    insts.erase(insts.begin() + static_cast<long>(i));
                    ++stats_.eliminated;
                    changed = true;
                    continue;
                }
                now.set(fact);
            } else if (inst.hasDst()) {
                for (size_t fact : universe.factsUsing(inst.dst))
                    now.reset(fact);
            }
            ++i;
        }
    }

    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        // Insert only where the fact paid for an elimination somewhere;
        // a pure insertion would only add dynamic checks.
        BitSet pending = earliest[b];
        pending.intersectWith(eliminatedFacts);
        pending.subtract(avail.out[b]);
        if (pending.empty())
            continue;
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        pending.forEach([&](size_t fact) {
            const auto &pair = universe.pairOf(fact);
            bb.insertBeforeTerminator(
                makeBoundCheck(func, pair.first, pair.second));
            ++stats_.inserted;
        });
        changed = true;
    }
    ctx.solverStats += solver_.takeStats();
    return changed;
}

} // namespace trapjit
