#ifndef TRAPJIT_OPT_BOUNDS_BOUNDS_CHECK_ELIMINATION_H_
#define TRAPJIT_OPT_BOUNDS_BOUNDS_CHECK_ELIMINATION_H_

/**
 * @file
 * Array bounds check optimization (the companion box of Figure 2).
 *
 * Structurally the same PRE scheme as null check phase 1, over facts
 * keyed by the (index, length) value pair of each `boundcheck`: a
 * backward anticipation analysis hoists checks to their earliest points
 * (out of loops once both operands are loop-invariant — which the
 * iterated pipeline arranges by first hoisting the `arraylength` via
 * CSE/scalar replacement), and a forward availability analysis removes
 * checks that are already covered (including the very common
 * read-modify-write pattern `b[i] += x`, whose second expansion repeats
 * the first one's checks).
 *
 * Motion barriers additionally include null checks and other
 * exception-throwing instructions, so the *class* of the thrown
 * exception is never changed by the motion, only AIOOBE-vs-AIOOBE order.
 */

#include "analysis/dataflow.h"
#include "opt/pass.h"

namespace trapjit
{

/** PRE-style bounds check hoisting and elimination. */
class BoundsCheckElimination : public Pass
{
  public:
    const char *name() const override { return "bounds-check-elim"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    struct Stats
    {
        size_t eliminated = 0;
        size_t inserted = 0;
    };

    const Stats &lastStats() const { return stats_; }

  private:
    Stats stats_;
    DataflowSolver solver_; ///< reused for anticipation + availability
};

} // namespace trapjit

#endif // TRAPJIT_OPT_BOUNDS_BOUNDS_CHECK_ELIMINATION_H_
