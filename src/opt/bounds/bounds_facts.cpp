#include "opt/bounds/bounds_facts.h"

#include "analysis/rpo.h"

namespace trapjit
{

BoundsUniverse::BoundsUniverse(const Function &func)
{
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            if (inst.op != Opcode::BoundCheck)
                continue;
            auto key = std::make_pair(inst.a, inst.b);
            if (factOf_.emplace(key, pairs_.size()).second)
                pairs_.push_back(key);
        }
    }
    byValue_.resize(func.numValues());
    for (size_t f = 0; f < pairs_.size(); ++f) {
        byValue_[pairs_[f].first].push_back(f);
        if (pairs_[f].second != pairs_[f].first)
            byValue_[pairs_[f].second].push_back(f);
    }
}

int
BoundsUniverse::factOf(ValueId idx, ValueId len) const
{
    auto it = factOf_.find(std::make_pair(idx, len));
    return it == factOf_.end() ? -1 : static_cast<int>(it->second);
}

DataflowResult
solveBoundsAvailability(const Function &func, const BoundsUniverse &universe,
                        const std::vector<BitSet> *earliest_per_block)
{
    DataflowSolver solver;
    return solveBoundsAvailability(func, universe, earliest_per_block,
                                   solver);
}

const DataflowResult &
solveBoundsAvailability(const Function &func, const BoundsUniverse &universe,
                        const std::vector<BitSet> *earliest_per_block,
                        DataflowSolver &solver)
{
    const size_t numFacts = universe.numFacts();
    const size_t numBlocks = func.numBlocks();
    const std::vector<bool> reachable = reachableBlocks(func);

    DataflowSpec fwd;
    fwd.direction = DataflowSpec::Direction::Forward;
    fwd.confluence = DataflowSpec::Confluence::Intersect;
    fwd.numFacts = numFacts;
    fwd.gen.assign(numBlocks, BitSet(numFacts));
    fwd.kill.assign(numBlocks, BitSet(numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        BitSet &gen = fwd.gen[b];
        BitSet &kill = fwd.kill[b];
        for (const Instruction &inst : bb.insts()) {
            if (inst.op == Opcode::BoundCheck) {
                size_t fact = static_cast<size_t>(
                    universe.factOf(inst.a, inst.b));
                gen.set(fact);
                kill.reset(fact);
                continue;
            }
            if (inst.hasDst()) {
                for (size_t fact : universe.factsUsing(inst.dst)) {
                    gen.reset(fact);
                    kill.set(fact);
                }
            }
        }
        if (reachable[b] && earliest_per_block &&
            !(*earliest_per_block)[b].empty()) {
            for (BlockId succ : bb.succs()) {
                auto &add =
                    fwd.edgeAdd[DataflowSpec::edgeKey(bb.id(), succ)];
                if (add.size() != numFacts)
                    add.resize(numFacts);
                add.unionWith((*earliest_per_block)[b]);
            }
        }
    }
    addExceptionEdgeKills(func, fwd);
    fwd.boundary.resize(numFacts);
    return solver.solve(func, fwd);
}

} // namespace trapjit
