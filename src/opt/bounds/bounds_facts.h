#ifndef TRAPJIT_OPT_BOUNDS_BOUNDS_FACTS_H_
#define TRAPJIT_OPT_BOUNDS_BOUNDS_FACTS_H_

/**
 * @file
 * Shared vocabulary of the bounds check analyses.
 *
 * A bounds fact is the (index value, length value) pair of a
 * `boundcheck`; it is established by executing the check and destroyed by
 * redefining either operand (never by side effects — array lengths are
 * immutable, so "idx < len" cannot be invalidated by memory writes).
 * Scalar replacement reuses the availability analysis to prove that a
 * loop-invariant element access is in bounds at the loop header before
 * hoisting its load.
 */

#include <map>
#include <utility>
#include <vector>

#include "analysis/dataflow.h"
#include "ir/function.h"

namespace trapjit
{

/** Dense numbering of the (index, length) pairs checked in a function. */
class BoundsUniverse
{
  public:
    explicit BoundsUniverse(const Function &func);

    size_t numFacts() const { return pairs_.size(); }

    /** Fact index of (idx, len), or -1 if never checked. */
    int factOf(ValueId idx, ValueId len) const;

    const std::pair<ValueId, ValueId> &pairOf(size_t fact) const
    {
        return pairs_[fact];
    }

    /** Facts that mention @p value as index or length. */
    const std::vector<size_t> &factsUsing(ValueId value) const
    {
        return byValue_[value];
    }

  private:
    std::vector<std::pair<ValueId, ValueId>> pairs_;
    std::map<std::pair<ValueId, ValueId>, size_t> factOf_;
    std::vector<std::vector<size_t>> byValue_;
};

/**
 * Forward availability of bounds facts (must-available, intersection):
 * fact (i, l) is available where a `boundcheck i, l` has executed on
 * every incoming path with neither operand redefined since.
 *
 * @param earliest_per_block  optional pending insertions at block exits,
 *        treated as available on out-edges (the bounds pass passes its
 *        Earliest sets; scalar replacement passes nullptr).
 */
DataflowResult solveBoundsAvailability(const Function &func,
                                       const BoundsUniverse &universe,
                                       const std::vector<BitSet>
                                           *earliest_per_block);

/**
 * Same, on a caller-owned solver arena (no per-call allocation once
 * warm).  The result references solver storage: valid until the next
 * solve on @p solver.
 */
const DataflowResult &solveBoundsAvailability(const Function &func,
                                              const BoundsUniverse
                                                  &universe,
                                              const std::vector<BitSet>
                                                  *earliest_per_block,
                                              DataflowSolver &solver);

} // namespace trapjit

#endif // TRAPJIT_OPT_BOUNDS_BOUNDS_FACTS_H_
