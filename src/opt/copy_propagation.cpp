#include "opt/copy_propagation.h"

#include <vector>

namespace trapjit
{

bool
CopyPropagation::runOnFunction(Function &func, PassContext &)
{
    bool changed = false;
    std::vector<ValueId> copyOf; // copyOf[v] = current source of v

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        copyOf.assign(func.numValues(), kNoValue);

        auto root = [&](ValueId v) {
            return copyOf[v] != kNoValue ? copyOf[v] : v;
        };
        auto rewrite = [&](ValueId &v) {
            if (v != kNoValue && copyOf[v] != kNoValue) {
                v = copyOf[v];
                changed = true;
            }
        };

        for (Instruction &inst : bb.insts()) {
            rewrite(inst.a);
            rewrite(inst.b);
            rewrite(inst.c);
            for (ValueId &arg : inst.args)
                rewrite(arg);

            if (inst.hasDst()) {
                // The definition invalidates every mapping involving dst.
                ValueId dst = inst.dst;
                copyOf[dst] = kNoValue;
                for (ValueId &src : copyOf)
                    if (src == dst)
                        src = kNoValue;
                if (inst.op == Opcode::Move && inst.a != dst)
                    copyOf[dst] = root(inst.a);
            }
        }
    }
    return changed;
}

} // namespace trapjit
