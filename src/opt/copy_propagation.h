#ifndef TRAPJIT_OPT_COPY_PROPAGATION_H_
#define TRAPJIT_OPT_COPY_PROPAGATION_H_

/**
 * @file
 * Block-local copy propagation.
 *
 * Scalar replacement and CSE leave `move` chains behind; this pass
 * rewrites uses to the copy source within each block so the moves become
 * dead (and are removed by dead-code elimination).  It also canonicalizes
 * null-check operands, which lets the null check analyses see two checks
 * of the same runtime value as the same fact.
 */

#include "opt/pass.h"

namespace trapjit
{

/** Rewrites uses of copies to their sources within each block. */
class CopyPropagation : public Pass
{
  public:
    const char *name() const override { return "copy-propagation"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_COPY_PROPAGATION_H_
