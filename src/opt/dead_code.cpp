#include "opt/dead_code.h"

#include <vector>

#include "analysis/liveness.h"

namespace trapjit
{

namespace
{

/** True if @p inst may be deleted when its result is unused. */
bool
isRemovableWhenDead(const Instruction &inst)
{
    if (!inst.hasDst() || inst.isTerminator() || inst.isSideEffecting())
        return false;
    if (inst.op == Opcode::NullCheck || inst.op == Opcode::BoundCheck)
        return false;
    if (inst.exceptionSite)
        return false; // carries an implicit null check
    return true;
}

} // namespace

bool
DeadCodeElimination::runOnFunction(Function &func, PassContext &ctx)
{
    const size_t numValues = func.numValues();
    const size_t numBlocks = func.numBlocks();
    if (numValues == 0)
        return false;

    const DataflowResult &live = solveLiveness(func, solver_);

    std::vector<ValueId> uses;
    bool changed = false;
    for (size_t b = 0; b < numBlocks; ++b) {
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool defsKill = bb.tryRegion() == 0;
        BitSet liveNow = live.out[b];
        auto &insts = bb.insts();
        std::vector<size_t> doomed;
        for (size_t ri = insts.size(); ri-- > 0;) {
            const Instruction &inst = insts[ri];
            if (isRemovableWhenDead(inst) && !liveNow.test(inst.dst)) {
                doomed.push_back(ri);
                continue; // its uses do not become live
            }
            if (inst.hasDst() && defsKill)
                liveNow.reset(inst.dst);
            uses.clear();
            inst.forEachUse(uses);
            for (ValueId u : uses)
                liveNow.set(u);
        }
        for (size_t idx : doomed)
            insts.erase(insts.begin() + static_cast<long>(idx));
        changed |= !doomed.empty();
    }
    ctx.solverStats += solver_.takeStats();
    return changed;
}

} // namespace trapjit
