#ifndef TRAPJIT_OPT_DEAD_CODE_H_
#define TRAPJIT_OPT_DEAD_CODE_H_

/**
 * @file
 * Global dead code elimination over a liveness analysis.
 *
 * Removes pure value-producing instructions whose result is dead.  It
 * never touches anything with observable behavior: terminators, checks
 * (they throw), side-effecting instructions, or accesses marked as
 * implicit-check exception sites (their hardware trap *is* the check).
 * Unmarked memory reads are removable — reads are unobservable.
 */

#include "analysis/dataflow.h"
#include "opt/pass.h"

namespace trapjit
{

/** Liveness-based dead code elimination. */
class DeadCodeElimination : public Pass
{
  public:
    const char *name() const override { return "dead-code-elimination"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

  private:
    DataflowSolver solver_; ///< liveness solver state, reused per function
};

} // namespace trapjit

#endif // TRAPJIT_OPT_DEAD_CODE_H_
