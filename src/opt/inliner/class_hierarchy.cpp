#include "opt/inliner/class_hierarchy.h"

namespace trapjit
{

ClassHierarchy::ClassHierarchy(const Module &mod)
    : mod_(mod), subclassesOf_(mod.numClasses())
{
    for (ClassId c = 0; c < mod.numClasses(); ++c) {
        for (ClassId up = c; up != kUnknownClass;
             up = mod.cls(up).superId) {
            subclassesOf_[up].push_back(c);
        }
    }
}

FunctionId
ClassHierarchy::uniqueImplementation(ClassId static_class,
                                     uint32_t slot) const
{
    if (static_class == kUnknownClass ||
        static_class >= mod_.numClasses()) {
        return kNoFunction;
    }
    FunctionId unique = kNoFunction;
    for (ClassId sub : subclassesOf_[static_class]) {
        const auto &vtable = mod_.cls(sub).vtable;
        if (slot >= vtable.size())
            return kNoFunction;
        FunctionId impl = vtable[slot];
        if (impl == kNoFunction)
            return kNoFunction; // abstract: a future subclass may differ
        if (unique == kNoFunction) {
            unique = impl;
        } else if (unique != impl) {
            return kNoFunction; // polymorphic
        }
    }
    return unique;
}

} // namespace trapjit
