#ifndef TRAPJIT_OPT_INLINER_CLASS_HIERARCHY_H_
#define TRAPJIT_OPT_INLINER_CLASS_HIERARCHY_H_

/**
 * @file
 * Class hierarchy analysis (CHA) for devirtualization.
 *
 * A virtual call through vtable slot s on a receiver statically typed C
 * can be devirtualized when every class that is C or derives from C
 * provides the same implementation for s.  The resulting direct call no
 * longer reads the receiver's method table — which is precisely why an
 * explicit null check must be materialized for it (Figure 1).
 */

#include "ir/module.h"

namespace trapjit
{

/** CHA over a module's class table. */
class ClassHierarchy
{
  public:
    explicit ClassHierarchy(const Module &mod);

    /**
     * The unique implementation of @p slot among @p static_class and its
     * subclasses, or kNoFunction if the receiver type is unknown or the
     * slot is polymorphic.
     */
    FunctionId uniqueImplementation(ClassId static_class,
                                    uint32_t slot) const;

  private:
    const Module &mod_;
    std::vector<std::vector<ClassId>> subclassesOf_;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_INLINER_CLASS_HIERARCHY_H_
