#include "opt/inliner/inliner.h"

#include <vector>

#include "opt/inliner/class_hierarchy.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

/** Native instruction for an intrinsic, if @p target provides one. */
bool
intrinsicOpcode(Intrinsic intrinsic, const Target &target, Opcode &op)
{
    switch (intrinsic) {
      case Intrinsic::Sqrt:
        op = Opcode::FSqrt;
        return true;
      case Intrinsic::Abs:
        op = Opcode::FAbs;
        return true;
      case Intrinsic::Exp:
        op = Opcode::FExp;
        return target.hasExpInstruction;
      case Intrinsic::Sin:
        op = Opcode::FSin;
        return target.hasExpInstruction;
      case Intrinsic::Cos:
        op = Opcode::FCos;
        return target.hasExpInstruction;
      case Intrinsic::Log:
        op = Opcode::FLog;
        return target.hasExpInstruction;
      case Intrinsic::None:
        return false;
    }
    return false;
}

/** Clone @p callee into @p caller at block @p site_block, index @p idx. */
void
inlineCallSite(Function &caller, BlockId site_block, size_t idx,
               const Function &callee)
{
    BasicBlock &bb = caller.block(site_block);
    const Instruction call = bb.insts()[idx];
    const TryRegionId siteRegion = bb.tryRegion();

    // Split: the continuation gets everything after the call.
    BasicBlock &cont = caller.newBlock(siteRegion);
    cont.insts().assign(bb.insts().begin() + static_cast<long>(idx) + 1,
                        bb.insts().end());
    bb.insts().erase(bb.insts().begin() + static_cast<long>(idx),
                     bb.insts().end());

    // Clone the callee's blocks (regions are fixed up below).
    std::vector<BlockId> blockMap(callee.numBlocks());
    for (BlockId cb = 0; cb < callee.numBlocks(); ++cb)
        blockMap[cb] = caller.newBlock(siteRegion).id();

    // Clone the callee's try regions; region 0 maps to the site's region
    // so exceptions escaping the callee land in the caller's handler
    // chain, and the callee's own nesting is preserved underneath it.
    std::vector<TryRegionId> regionMap(callee.numTryRegions());
    regionMap[0] = siteRegion;
    for (TryRegionId r = 1; r < callee.numTryRegions(); ++r) {
        const TryRegion &region = callee.tryRegion(r);
        regionMap[r] = caller.addTryRegion(blockMap[region.handlerBlock],
                                           region.catches,
                                           regionMap[region.parent]);
    }
    for (BlockId cb = 0; cb < callee.numBlocks(); ++cb) {
        TryRegionId mapped = regionMap[callee.block(cb).tryRegion()];
        caller.block(blockMap[cb]).setTryRegion(mapped);
    }

    // Fresh caller values for every callee value (kind preserved: callee
    // locals stay observable to the callee's own cloned handlers).
    std::vector<ValueId> valueMap(callee.numValues());
    for (ValueId v = 0; v < callee.numValues(); ++v) {
        const Value &val = callee.value(v);
        std::string name = callee.name() + "." + val.name;
        valueMap[v] = val.kind == Value::Kind::Local
                          ? caller.addLocal(val.type, std::move(name),
                                            val.classId)
                          : caller.addTemp(val.type, val.classId);
    }

    // Bind arguments and enter the inlined body.
    for (uint32_t p = 0; p < callee.numParams(); ++p) {
        Instruction move;
        move.op = Opcode::Move;
        move.dst = valueMap[p];
        move.a = call.args[p];
        move.site = caller.takeSiteId();
        bb.insts().push_back(std::move(move));
    }
    {
        Instruction jump;
        jump.op = Opcode::Jump;
        jump.imm = blockMap[0];
        jump.site = caller.takeSiteId();
        bb.insts().push_back(std::move(jump));
    }

    // Clone the instructions.
    auto mapValue = [&](ValueId v) {
        return v == kNoValue ? kNoValue : valueMap[v];
    };
    for (BlockId cb = 0; cb < callee.numBlocks(); ++cb) {
        BasicBlock &dst = caller.block(blockMap[cb]);
        for (const Instruction &src : callee.block(cb).insts()) {
            if (src.op == Opcode::Return) {
                if (call.dst != kNoValue) {
                    TRAPJIT_ASSERT(src.a != kNoValue,
                                   "value-returning call inlined from a "
                                   "void return");
                    Instruction move;
                    move.op = Opcode::Move;
                    move.dst = call.dst;
                    move.a = mapValue(src.a);
                    move.site = caller.takeSiteId();
                    dst.insts().push_back(std::move(move));
                }
                Instruction jump;
                jump.op = Opcode::Jump;
                jump.imm = cont.id();
                jump.site = caller.takeSiteId();
                dst.insts().push_back(std::move(jump));
                continue;
            }
            Instruction ni = src;
            ni.dst = mapValue(ni.dst);
            ni.a = mapValue(ni.a);
            ni.b = mapValue(ni.b);
            ni.c = mapValue(ni.c);
            for (ValueId &arg : ni.args)
                arg = mapValue(arg);
            ni.site = caller.takeSiteId();
            switch (ni.op) {
              case Opcode::Jump:
                ni.imm = blockMap[ni.imm];
                break;
              case Opcode::Branch:
              case Opcode::IfNull:
                ni.imm = blockMap[ni.imm];
                ni.imm2 = blockMap[ni.imm2];
                break;
              default:
                break;
            }
            dst.insts().push_back(std::move(ni));
        }
    }

    caller.recomputeCFG();
}

} // namespace

bool
Inliner::runOnFunction(Function &func, PassContext &ctx)
{
    stats_ = Stats{};
    ClassHierarchy cha(ctx.mod);
    bool changed = false;

    // ---- Devirtualize and intrinsify in place --------------------------
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (Instruction &inst : func.block(static_cast<BlockId>(b))
                                     .insts()) {
            if (inst.op != Opcode::Call)
                continue;
            if (inst.callKind == CallKind::Virtual) {
                ClassId cls = func.value(inst.args[0]).classId;
                FunctionId impl = cha.uniqueImplementation(
                    cls, static_cast<uint32_t>(inst.imm));
                if (impl != kNoFunction) {
                    inst.callKind = CallKind::Special;
                    inst.imm = impl;
                    ++stats_.devirtualized;
                    changed = true;
                }
            }
            if (inst.callKind == CallKind::Static) {
                const Function &callee = ctx.mod.function(
                    static_cast<FunctionId>(inst.imm));
                Opcode nativeOp;
                if (enableIntrinsics_ &&
                    callee.intrinsic() != Intrinsic::None &&
                    inst.args.size() == 1 && inst.dst != kNoValue &&
                    intrinsicOpcode(callee.intrinsic(), ctx.target,
                                    nativeOp)) {
                    ValueId dst = inst.dst;
                    ValueId arg = inst.args[0];
                    SiteId site = inst.site;
                    inst = Instruction{};
                    inst.op = nativeOp;
                    inst.dst = dst;
                    inst.a = arg;
                    inst.site = site;
                    ++stats_.intrinsified;
                    changed = true;
                }
            }
        }
    }

    // ---- Inline small direct callees ------------------------------------
    for (;;) {
        if (func.instructionCount() > growthLimit_)
            break;
        bool didInline = false;
        for (size_t b = 0; b < func.numBlocks() && !didInline; ++b) {
            BasicBlock &bb = func.block(static_cast<BlockId>(b));
            for (size_t i = 0; i < bb.insts().size(); ++i) {
                const Instruction &inst = bb.insts()[i];
                if (inst.op != Opcode::Call ||
                    inst.callKind == CallKind::Virtual) {
                    continue;
                }
                const Function &callee = ctx.mod.function(
                    static_cast<FunctionId>(inst.imm));
                if (callee.id() == func.id() ||
                    callee.intrinsic() != Intrinsic::None ||
                    callee.neverInline()) {
                    continue;
                }
                if (callee.instructionCount() > budget_)
                    continue;
                inlineCallSite(func, static_cast<BlockId>(b), i, callee);
                ++stats_.inlined;
                didInline = true;
                changed = true;
                break;
            }
        }
        if (!didInline)
            break;
    }

    return changed;
}

} // namespace trapjit
