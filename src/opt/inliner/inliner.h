#ifndef TRAPJIT_OPT_INLINER_INLINER_H_
#define TRAPJIT_OPT_INLINER_INLINER_H_

/**
 * @file
 * Devirtualization, intrinsification, and method inlining.
 *
 * Three transformations per call site, in order:
 *
 *  1. *Devirtualize*: a monomorphic virtual call (per CHA) becomes a
 *     direct (Special) call.  The receiver's method table is no longer
 *     read, so the explicit null check the front end emitted before the
 *     call must stay — this is the Figure 1 situation whose cost phase 2
 *     later minimizes.
 *  2. *Intrinsify*: a direct call to a math intrinsic becomes the native
 *     instruction when the target has it (Math.exp -> FExp on IA32,
 *     Section 5.4); otherwise the call remains opaque.
 *  3. *Inline*: small direct callees are cloned into the caller; the
 *     callee's exceptions must keep reaching the right handler, so a
 *     callee with try regions is only inlined at call sites outside any
 *     region, and an inlined body inherits the call site's region
 *     otherwise.
 */

#include "opt/pass.h"

namespace trapjit
{

/** Devirtualization + intrinsification + inlining. */
class Inliner : public Pass
{
  public:
    /** @param budget maximum callee size (instructions) to inline. */
    explicit Inliner(size_t budget = 40, size_t growth_limit = 4000,
                     bool enable_intrinsics = true)
        : budget_(budget), growthLimit_(growth_limit),
          enableIntrinsics_(enable_intrinsics)
    {}

    const char *name() const override { return "inliner"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    struct Stats
    {
        size_t devirtualized = 0;
        size_t intrinsified = 0;
        size_t inlined = 0;
    };

    const Stats &lastStats() const { return stats_; }

  private:
    size_t budget_;
    size_t growthLimit_;
    bool enableIntrinsics_;
    Stats stats_;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_INLINER_INLINER_H_
