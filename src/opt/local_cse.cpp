#include "opt/local_cse.h"

#include <map>
#include <tuple>
#include <vector>

namespace trapjit
{

namespace
{

/** Expression classes for invalidation purposes. */
enum class ExprClass : uint8_t
{
    PureValue,   ///< arithmetic, constants, conversions
    FieldRead,   ///< getfield: invalidated by putfield and calls
    ElementRead, ///< aload: invalidated by astore and calls
    LengthRead,  ///< arraylength: never invalidated (lengths are final)
};

/** Whether @p inst is CSE-eligible and its class. */
bool
classify(const Instruction &inst, ExprClass &cls)
{
    switch (inst.op) {
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::ConstNull:
      case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
      case Opcode::IDiv: case Opcode::IRem: case Opcode::INeg:
      case Opcode::IAnd: case Opcode::IOr: case Opcode::IXor:
      case Opcode::IShl: case Opcode::IShr: case Opcode::IUshr:
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FNeg:
      case Opcode::FExp: case Opcode::FSqrt: case Opcode::FSin:
      case Opcode::FCos: case Opcode::FAbs: case Opcode::FLog:
      case Opcode::I2F: case Opcode::F2I: case Opcode::I2L:
      case Opcode::L2I:
      case Opcode::ICmp: case Opcode::FCmp:
        cls = ExprClass::PureValue;
        return true;
      case Opcode::GetField:
        cls = ExprClass::FieldRead;
        return true;
      case Opcode::ArrayLoad:
        cls = ExprClass::ElementRead;
        return true;
      case Opcode::ArrayLength:
        cls = ExprClass::LengthRead;
        return true;
      default:
        return false;
    }
}

using ExprKey = std::tuple<uint8_t /*op*/, uint8_t /*pred*/, ValueId,
                           ValueId, ValueId, int64_t /*imm*/,
                           int64_t /*imm2*/, uint64_t /*fimm bits*/,
                           uint8_t /*elemType*/, uint8_t /*dst type*/>;

ExprKey
keyOf(const Function &func, const Instruction &inst)
{
    uint64_t fbits;
    static_assert(sizeof(fbits) == sizeof(inst.fimm));
    __builtin_memcpy(&fbits, &inst.fimm, sizeof(fbits));
    return ExprKey{static_cast<uint8_t>(inst.op),
                   static_cast<uint8_t>(inst.pred),
                   inst.a, inst.b, inst.c, inst.imm, inst.imm2, fbits,
                   static_cast<uint8_t>(inst.elemType),
                   static_cast<uint8_t>(func.value(inst.dst).type)};
}

} // namespace

bool
LocalCSE::runOnFunction(Function &func, PassContext &)
{
    bool changed = false;
    struct Entry
    {
        ValueId result;
        ExprClass cls;
    };

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        std::map<ExprKey, Entry> avail;

        for (Instruction &inst : bb.insts()) {
            ExprClass cls;
            const bool eligible = classify(inst, cls);

            bool replaced = false;
            if (eligible && !inst.exceptionSite) {
                auto it = avail.find(keyOf(func, inst));
                if (it != avail.end()) {
                    // Replace with a move from the previous result.
                    ValueId dst = inst.dst;
                    ValueId src = it->second.result;
                    SiteId site = inst.site;
                    inst = Instruction{};
                    inst.op = Opcode::Move;
                    inst.dst = dst;
                    inst.a = src;
                    inst.site = site;
                    changed = true;
                    replaced = true;
                }
            }

            // Invalidate by definition: any expression using or producing
            // the redefined value dies.
            if (inst.hasDst()) {
                ValueId dst = inst.dst;
                for (auto it = avail.begin(); it != avail.end();) {
                    const ExprKey &key = it->first;
                    if (std::get<2>(key) == dst ||
                        std::get<3>(key) == dst ||
                        std::get<4>(key) == dst ||
                        it->second.result == dst) {
                        it = avail.erase(it);
                    } else {
                        ++it;
                    }
                }
            }

            // Register after invalidation (so the fresh entry survives),
            // unless the expression reads its own destination.
            if (eligible && !replaced && !inst.exceptionSite &&
                inst.dst != inst.a && inst.dst != inst.b &&
                inst.dst != inst.c) {
                avail[keyOf(func, inst)] = Entry{inst.dst, cls};
            }

            // Invalidate by memory effect (type-based: fields and array
            // elements never alias; lengths are immutable).
            auto dropClass = [&](ExprClass dead) {
                for (auto it = avail.begin(); it != avail.end();) {
                    if (it->second.cls == dead)
                        it = avail.erase(it);
                    else
                        ++it;
                }
            };
            switch (inst.op) {
              case Opcode::PutField:
                dropClass(ExprClass::FieldRead);
                break;
              case Opcode::ArrayStore:
                dropClass(ExprClass::ElementRead);
                break;
              case Opcode::Call:
                dropClass(ExprClass::FieldRead);
                dropClass(ExprClass::ElementRead);
                break;
              default:
                break;
            }
        }
    }
    return changed;
}

} // namespace trapjit
