#ifndef TRAPJIT_OPT_LOCAL_CSE_H_
#define TRAPJIT_OPT_LOCAL_CSE_H_

/**
 * @file
 * Block-local common subexpression elimination ("commoning").
 *
 * The front end expands every array access into its own arraylength +
 * boundcheck + element access; CSE unifies the repeated pure
 * subexpressions (especially repeated `arraylength` of the same array —
 * array lengths are immutable, so they even survive calls and stores),
 * which in turn lets the bounds-check and null-check analyses see the
 * repeated checks as identical facts.  Type-based aliasing is used for
 * invalidation: object fields and array elements can never alias in
 * Java.
 */

#include "opt/pass.h"

namespace trapjit
{

/** Local value-numbering CSE. */
class LocalCSE : public Pass
{
  public:
    const char *name() const override { return "local-cse"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_LOCAL_CSE_H_
