#include "opt/nullcheck/check_coverage.h"

#include <sstream>

#include "analysis/rpo.h"
#include "opt/nullcheck/facts.h"
#include "support/bitset.h"

namespace trapjit
{

std::vector<CoverageViolation>
checkNullGuardCoverage(const Function &func, const Target &target)
{
    std::vector<CoverageViolation> violations;
    NullCheckUniverse universe(func);
    if (universe.numFacts() == 0)
        return violations;

    NonNullDomain domain(func, universe, &target);
    NonNullStates states =
        solveNonNullStates(func, domain, universe, nullptr);
    const std::vector<bool> reachable = reachableBlocks(func);

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        if (!reachable[b])
            continue;
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        BitSet now = states.in[b];
        for (size_t i = 0; i < bb.insts().size(); ++i) {
            const Instruction &inst = bb.insts()[i];
            ValueId ref = inst.checkedRef();
            if (ref != kNoValue && inst.op != Opcode::NullCheck) {
                bool guarded =
                    (inst.exceptionSite && target.trapCovers(inst)) ||
                    (inst.speculative &&
                     inst.slotAccess() == SlotAccess::Read &&
                     target.readIsSpeculationSafe(inst.slotOffset())) ||
                    now.test(domain.nonnullBit(ref));
                if (!guarded) {
                    std::ostringstream os;
                    os << func.name() << " block " << bb.id() << " inst "
                       << i << ": unguarded " << inst.name() << " of "
                       << func.value(ref).name;
                    violations.push_back(CoverageViolation{
                        bb.id(), i, ref, os.str()});
                }
            }
            domain.transfer(inst, now);
        }
    }
    return violations;
}

} // namespace trapjit
