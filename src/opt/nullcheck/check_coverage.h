#ifndef TRAPJIT_OPT_NULLCHECK_CHECK_COVERAGE_H_
#define TRAPJIT_OPT_NULLCHECK_CHECK_COVERAGE_H_

/**
 * @file
 * Static verification that every dereference is null-guarded.
 *
 * After any pipeline, every instruction that requires a non-null
 * reference must be (a) marked as an implicit-check exception site whose
 * access the target is guaranteed to trap, (b) a legally speculative
 * read, or (c) dominated by coverage of its reference: an explicit
 * check, a marked trapping access of the same value, an allocation, the
 * non-null `this`, or an `ifnonnull` edge — with no overwrite in
 * between.  The test suite runs this on every compiled workload and
 * random program; the interpreter enforces the same property dynamically
 * (HardFault).
 */

#include <string>
#include <vector>

#include "arch/target.h"
#include "ir/function.h"

namespace trapjit
{

/** One unguarded dereference. */
struct CoverageViolation
{
    BlockId block = kNoBlock;
    size_t instIndex = 0;
    ValueId ref = kNoValue;
    std::string description;
};

/**
 * Check @p func against @p target's trap model.  Returns every violation
 * found (empty means the function is fully guarded).
 */
std::vector<CoverageViolation> checkNullGuardCoverage(
    const Function &func, const Target &target);

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_CHECK_COVERAGE_H_
