#include "opt/nullcheck/facts.h"

#include "analysis/rpo.h"

namespace trapjit
{

NullCheckUniverse::NullCheckUniverse(const Function &func)
    : factOf_(func.numValues(), -1)
{
    for (ValueId v = 0; v < func.numValues(); ++v) {
        if (func.value(v).isRef()) {
            factOf_[v] = static_cast<int>(values_.size());
            values_.push_back(v);
        }
    }
}

RefAliasClasses::RefAliasClasses(const Function &func)
    : parent_(func.numValues())
{
    for (ValueId v = 0; v < parent_.size(); ++v)
        parent_[v] = v;

    auto findMut = [this](ValueId v) {
        while (parent_[v] != v) {
            parent_[v] = parent_[parent_[v]];
            v = parent_[v];
        }
        return v;
    };

    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            if (inst.op != Opcode::Move || inst.dst == kNoValue ||
                !func.value(inst.dst).isRef()) {
                continue;
            }
            ValueId ra = findMut(inst.dst);
            ValueId rb = findMut(inst.a);
            if (ra != rb)
                parent_[ra] = rb;
        }
    }

    members_.resize(parent_.size());
    for (ValueId v = 0; v < parent_.size(); ++v)
        if (func.value(v).isRef())
            members_[findMut(v)].push_back(v);
}

bool
isMotionBarrier(const Function &func, const Instruction &inst,
                bool in_try_region)
{
    if (inst.isSideEffecting())
        return true;
    // Inside a try region, even a local-variable write is observable by
    // the handler, so checks may not move across it.
    if (in_try_region && inst.hasDst() &&
        func.value(inst.dst).isLocal()) {
        return true;
    }
    return false;
}

Instruction
makeExplicitNullCheck(Function &func, ValueId value)
{
    Instruction check;
    check.op = Opcode::NullCheck;
    check.flavor = CheckFlavor::Explicit;
    check.a = value;
    check.site = func.takeSiteId();
    return check;
}

// ---------------------------------------------------------------------
// NonNullDomain
// ---------------------------------------------------------------------

NonNullDomain::NonNullDomain(const Function &func,
                             const NullCheckUniverse &universe,
                             const Target *target)
    : func_(func), universe_(universe), target_(target)
{
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        for (const Instruction &inst :
             func.block(static_cast<BlockId>(b)).insts()) {
            if (inst.op != Opcode::Move ||
                !func.value(inst.dst).isRef() || inst.a == inst.dst) {
                continue;
            }
            auto key = std::make_pair(inst.dst, inst.a);
            if (pairIndex_.emplace(key, pairs_.size()).second)
                pairs_.push_back(key);
        }
    }
    pairsUsing_.resize(func.numValues());
    for (size_t p = 0; p < pairs_.size(); ++p) {
        pairsUsing_[pairs_[p].first].push_back(p);
        if (pairs_[p].second != pairs_[p].first)
            pairsUsing_[pairs_[p].second].push_back(p);
    }
    copyMask_.resize(numBits());
    for (size_t p = 0; p < pairs_.size(); ++p)
        copyMask_.set(copyBit(p));
}

void
NonNullDomain::killValue(BitSet &set, ValueId v) const
{
    if (universe_.factOf(v) >= 0)
        set.reset(nonnullBit(v));
    if (v < pairsUsing_.size())
        for (size_t p : pairsUsing_[v])
            set.reset(copyBit(p));
}

void
NonNullDomain::establish(BitSet &set, ValueId v) const
{
    if (universe_.factOf(v) < 0)
        return;
    set.set(nonnullBit(v));
    // Fast path: no live copy bits, nothing to propagate through.
    if (pairs_.empty() || !set.intersects(copyMask_))
        return;
    // Transitive closure over live copies (the pair list is tiny).
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t p = 0; p < pairs_.size(); ++p) {
            if (!set.test(copyBit(p)))
                continue;
            size_t d = nonnullBit(pairs_[p].first);
            size_t s = nonnullBit(pairs_[p].second);
            if (set.test(d) != set.test(s)) {
                set.set(d);
                set.set(s);
                changed = true;
            }
        }
    }
}

bool
NonNullDomain::establishes(const Instruction &inst) const
{
    if (inst.op == Opcode::NullCheck)
        return inst.flavor == CheckFlavor::Explicit;
    return target_ != nullptr && inst.exceptionSite &&
           target_->trapCovers(inst);
}

void
NonNullDomain::transfer(const Instruction &inst, BitSet &now) const
{
    if (establishes(inst))
        establish(now, inst.checkedRef());

    if (!inst.hasDst() || !func_.value(inst.dst).isRef())
        return;
    switch (inst.op) {
      case Opcode::NewObject:
      case Opcode::NewArray:
        killValue(now, inst.dst);
        establish(now, inst.dst);
        break;
      case Opcode::Move: {
        if (inst.a == inst.dst)
            break;
        bool srcNonNull =
            tracked(inst.a) && now.test(nonnullBit(inst.a));
        killValue(now, inst.dst);
        auto it = pairIndex_.find(std::make_pair(inst.dst, inst.a));
        if (it != pairIndex_.end())
            now.set(copyBit(it->second));
        if (srcNonNull)
            establish(now, inst.dst);
        break;
      }
      default:
        killValue(now, inst.dst);
        break;
    }
}

bool
NonNullDomain::mustEqual(const BitSet &state, ValueId a, ValueId b) const
{
    if (a == b)
        return true;
    // BFS over the live copy pairs (the pair list is tiny).
    std::vector<ValueId> frontier{a};
    std::vector<bool> seen(func_.numValues(), false);
    seen[a] = true;
    while (!frontier.empty()) {
        ValueId cur = frontier.back();
        frontier.pop_back();
        if (cur >= pairsUsing_.size())
            continue;
        for (size_t p : pairsUsing_[cur]) {
            if (!state.test(copyBit(p)))
                continue;
            ValueId other = pairs_[p].first == cur ? pairs_[p].second
                                                   : pairs_[p].first;
            if (other == b)
                return true;
            if (!seen[other]) {
                seen[other] = true;
                frontier.push_back(other);
            }
        }
    }
    return false;
}

const NonNullStates &
NonNullSolver::solve(const Function &func, const NonNullDomain &domain,
                     const NullCheckUniverse &universe,
                     const std::vector<BitSet> *earliest_per_block)
{
    const size_t numBits = domain.numBits();
    const size_t numBlocks = func.numBlocks();

    ++stats_.solves;

    universal_.resize(numBits);
    universal_.setAll();
    meet_.resize(numBits);
    next_.resize(numBits);
    value_.resize(numBits);

    boundary_.resize(numBits);
    boundary_.clearAll();
    if (func.isInstanceMethod() && func.numParams() > 0 &&
        func.value(0).isRef()) {
        boundary_.set(domain.nonnullBit(0));
    }

    // Every block — including unreachable ones, never visited — starts
    // at the universal set; storage persists across solves.
    states_.in.resize(numBlocks);
    states_.out.resize(numBlocks);
    for (size_t b = 0; b < numBlocks; ++b) {
        states_.in[b].resize(numBits);
        states_.out[b].resize(numBits);
        states_.in[b].assignAndReport(universal_);
        states_.out[b].assignAndReport(universal_);
    }

    sched_.prepare(func, /*forward=*/true);

    while (!sched_.empty()) {
        const BlockId block = sched_.pop();
        ++stats_.blockVisits;
        const BasicBlock &bb = func.block(block);

        if (bb.preds().empty()) {
            meet_.assignAndReport(boundary_);
        } else {
            meet_.assignAndReport(universal_);
            for (BlockId pred : bb.preds()) {
                // Nothing flows along factored exception edges: a fact
                // established mid-block need not hold when an earlier
                // instruction of the block threw.
                if (func.isExceptionalEdge(pred, block)) {
                    meet_.clearAll();
                    continue;
                }
                const BasicBlock &pb = func.block(pred);
                const Instruction &term = pb.terminator();
                const bool ifnullEdge =
                    term.op == Opcode::IfNull && term.imm != term.imm2 &&
                    static_cast<BlockId>(term.imm2) == block;
                const bool hasEarliest =
                    earliest_per_block &&
                    !(*earliest_per_block)[pred].empty();
                if (!ifnullEdge && !hasEarliest) {
                    // Fast path: no per-edge facts, flow the exit state
                    // straight into the meet without a copy.
                    meet_.meetInto(states_.out[pred], /*intersect=*/true);
                    continue;
                }
                value_.assignAndReport(states_.out[pred]);
                if (ifnullEdge)
                    domain.establish(value_, term.a);
                if (hasEarliest) {
                    (*earliest_per_block)[pred].forEach([&](size_t fact) {
                        domain.establish(value_, universe.valueOf(fact));
                    });
                }
                meet_.meetInto(value_, /*intersect=*/true);
            }
        }

        next_.assignAndReport(meet_);
        for (const Instruction &inst : bb.insts())
            domain.transfer(inst, next_);

        states_.in[block].assignAndReport(meet_);
        if (states_.out[block].assignAndReport(next_)) {
            for (BlockId succ : bb.succs())
                sched_.push(succ);
        }
    }
    return states_;
}

NonNullStates
solveNonNullStates(const Function &func, const NonNullDomain &domain,
                   const NullCheckUniverse &universe,
                   const std::vector<BitSet> *earliest_per_block)
{
    NonNullSolver solver;
    return solver.solve(func, domain, universe, earliest_per_block);
}

size_t
eliminateCoveredChecks(Function &func, const NullCheckUniverse &universe,
                       const NonNullDomain &domain,
                       const std::vector<BitSet> &entry_states,
                       BitSet *eliminated_facts)
{
    const std::vector<bool> reachable = reachableBlocks(func);
    size_t eliminated = 0;
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        if (!reachable[b])
            continue;
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        BitSet now = entry_states[b];
        auto &insts = bb.insts();
        for (size_t i = 0; i < insts.size();) {
            Instruction &inst = insts[i];
            if (inst.op == Opcode::NullCheck &&
                now.test(domain.nonnullBit(inst.a))) {
                if (eliminated_facts) {
                    eliminated_facts->set(static_cast<size_t>(
                        universe.factOf(inst.a)));
                }
                insts.erase(insts.begin() + static_cast<long>(i));
                ++eliminated;
                continue;
            }
            domain.transfer(inst, now);
            ++i;
        }
    }
    return eliminated;
}

} // namespace trapjit
