#ifndef TRAPJIT_OPT_NULLCHECK_FACTS_H_
#define TRAPJIT_OPT_NULLCHECK_FACTS_H_

/**
 * @file
 * Shared vocabulary of the null check analyses.
 *
 * A *null check fact* is identified by the reference-typed value it
 * guards: `nullcheck a` and a later `nullcheck a` denote the same fact as
 * long as `a` is not overwritten in between.  NullCheckUniverse maps the
 * function's reference values to dense bit indices for the dataflow
 * solver.
 *
 * This header also centralizes the paper's side-effect rule: a null
 * check may not move across an instruction that can throw an exception
 * other than NullPointerException, that may write memory, or that writes
 * a local variable while inside a try region (a handler could observe
 * the local).
 */

#include <map>
#include <utility>
#include <vector>

#include "analysis/dataflow.h"
#include "arch/target.h"
#include "ir/function.h"
#include "support/bitset.h"

namespace trapjit
{

/** Dense numbering of the reference-typed values of one function. */
class NullCheckUniverse
{
  public:
    explicit NullCheckUniverse(const Function &func);

    /** Number of tracked facts. */
    size_t numFacts() const { return values_.size(); }

    /** Bit index of @p value, or -1 if it is not reference-typed. */
    int
    factOf(ValueId value) const
    {
        return value < factOf_.size() ? factOf_[value] : -1;
    }

    /** The value a bit index denotes. */
    ValueId valueOf(size_t fact) const { return values_[fact]; }

  private:
    std::vector<ValueId> values_;
    std::vector<int> factOf_;
};

/**
 * Flow-insensitive may-alias classes over reference values: two values
 * are in the same class if any `move` chain connects them anywhere in
 * the function.  Forward check motion (phase 2 and the lowering
 * peephole) must treat an access through a *copy* of the checked
 * variable as consuming the pending check — otherwise a check can float
 * below a dereference of the same runtime reference under another name
 * (a pattern inlining produces), which would fault unguarded.
 */
class RefAliasClasses
{
  public:
    explicit RefAliasClasses(const Function &func);

    /** True if @p a and @p b may hold the same reference via copies. */
    bool
    mayAlias(ValueId a, ValueId b) const
    {
        return find(a) == find(b);
    }

    /** Members of @p v's class (singleton classes return just {v}). */
    const std::vector<ValueId> &aliasesOf(ValueId v) const
    {
        return members_[find(v)];
    }

  private:
    ValueId
    find(ValueId v) const
    {
        while (parent_[v] != v)
            v = parent_[v];
        return v;
    }

    std::vector<ValueId> parent_;
    std::vector<std::vector<ValueId>> members_; ///< indexed by root
};

/**
 * The paper's Kill condition for check motion: true if a null check may
 * not move across @p inst when the enclosing block is (@p in_try_region)
 * inside a try region.
 */
bool isMotionBarrier(const Function &func, const Instruction &inst,
                     bool in_try_region);

/**
 * Make an explicit `nullcheck` instruction for @p value (used when an
 * analysis materializes a check at an insertion point).
 */
Instruction makeExplicitNullCheck(Function &func, ValueId value);

/**
 * Copy-aware must-non-nullness domain, shared by the elimination passes
 * (phase 1 and Whaley), scalar replacement's hoist-safety test, and the
 * test suite's coverage checker.
 *
 * The bit space is the universe's non-null facts plus one *copy* bit per
 * (dst, src) pair appearing in a reference-typed `move`: a live copy bit
 * means the two values are equal and neither has been redefined since,
 * so establishing either one establishes the other.  This is what lets
 * the analyses see through the copies that copy propagation and
 * inlining leave between a check and its uses.
 */
class NonNullDomain
{
  public:
    /**
     * @param target  if non-null, accesses marked as implicit-check
     *        exception sites count as establishing (they trap).  Passes
     *        running before any lowering can still encounter marks, in
     *        code inlined from already-compiled callees.
     */
    NonNullDomain(const Function &func, const NullCheckUniverse &universe,
                  const Target *target);

    /** Total bit-space size (non-null facts + copy facts). */
    size_t numBits() const { return universe_.numFacts() + pairs_.size(); }

    /** Bit of the "v is non-null" fact; v must be reference-typed. */
    size_t
    nonnullBit(ValueId v) const
    {
        return static_cast<size_t>(universe_.factOf(v));
    }

    /** True if @p v is a tracked reference value. */
    bool tracked(ValueId v) const { return universe_.factOf(v) >= 0; }

    /** Kill the non-null bit and every copy bit mentioning @p v. */
    void killValue(BitSet &set, ValueId v) const;

    /** Set non-null(@p v) and propagate through live copy bits. */
    void establish(BitSet &set, ValueId v) const;

    /** Apply one instruction's effect to @p now (establishes + kills). */
    void transfer(const Instruction &inst, BitSet &now) const;

    /** Does @p inst establish its checked reference (check or trap)? */
    bool establishes(const Instruction &inst) const;

    /**
     * True if @p a and @p b provably hold the same reference at a point
     * whose state is @p state (connected through live copy bits).
     * Phase 2 uses this to let a trapping access of a copy carry the
     * original variable's check implicitly.
     */
    bool mustEqual(const BitSet &state, ValueId a, ValueId b) const;

  private:
    size_t
    copyBit(size_t pair) const
    {
        return universe_.numFacts() + pair;
    }

    const Function &func_;
    const NullCheckUniverse &universe_;
    const Target *target_;
    std::vector<std::pair<ValueId, ValueId>> pairs_;
    std::map<std::pair<ValueId, ValueId>, size_t> pairIndex_;
    std::vector<std::vector<size_t>> pairsUsing_;
    BitSet copyMask_; ///< all copy bits, for the establish() fast path
};

/**
 * Solve forward must-non-nullness (Section 4.1.2) over the copy-aware
 * domain: returns the entry state of every block, given checks,
 * allocations, copies, `ifnull` edge facts, and the non-null `this`.
 * Nothing propagates along factored exception edges.
 *
 * @param earliest_per_block  if non-null, Earliest(m) — indexed by the
 *        universe's fact numbering — is treated as established on every
 *        non-exceptional out-edge of m (phase 1); Whaley's baseline and
 *        scalar replacement pass nullptr.
 */
struct NonNullStates
{
    std::vector<BitSet> in;  ///< entry state per block
    std::vector<BitSet> out; ///< exit state per block
};

/**
 * Reusable worklist engine for the non-nullness problem.  The domain's
 * transfer is not gen/kill-expressible (copy-bit closure, ifnull edge
 * facts), so this mirrors DataflowSolver's machinery — priority
 * worklist, persistent scratch and result arrays — around the custom
 * per-instruction transfer.  Hold one instance per pass; solve() returns
 * a reference to solver-owned storage, valid until the next solve().
 */
class NonNullSolver
{
  public:
    /** See solveNonNullStates for the semantics. */
    const NonNullStates &solve(const Function &func,
                               const NonNullDomain &domain,
                               const NullCheckUniverse &universe,
                               const std::vector<BitSet>
                                   *earliest_per_block);

    const SolverStats &stats() const { return stats_; }

    SolverStats
    takeStats()
    {
        SolverStats out = stats_;
        stats_ = SolverStats{};
        return out;
    }

  private:
    WorklistScheduler sched_;
    NonNullStates states_;
    BitSet boundary_;
    BitSet universal_;
    BitSet meet_;
    BitSet next_;
    BitSet value_;
    SolverStats stats_;
};

NonNullStates solveNonNullStates(const Function &func,
                                 const NonNullDomain &domain,
                                 const NullCheckUniverse &universe,
                                 const std::vector<BitSet>
                                     *earliest_per_block);

/**
 * Delete every null check the solved entry states prove redundant.
 * Returns the number of checks removed.
 *
 * @param eliminated_facts  if non-null (sized to the universe), the fact
 *        bit of every deleted check is set — phase 1 uses this to prune
 *        insertion points that paid for no elimination (a pure insertion
 *        would only add dynamic checks).
 */
size_t eliminateCoveredChecks(Function &func,
                              const NullCheckUniverse &universe,
                              const NonNullDomain &domain,
                              const std::vector<BitSet> &entry_states,
                              BitSet *eliminated_facts = nullptr);

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_FACTS_H_
