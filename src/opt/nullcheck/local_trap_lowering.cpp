#include "opt/nullcheck/local_trap_lowering.h"

#include "opt/nullcheck/facts.h"

namespace trapjit
{

bool
LocalTrapLowering::runOnFunction(Function &func, PassContext &ctx)
{
    converted_ = 0;
    RefAliasClasses aliases(func);
    for (size_t b = 0; b < func.numBlocks(); ++b) {
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool inTry = bb.tryRegion() != 0;
        auto &insts = bb.insts();
        for (size_t i = 0; i < insts.size(); ++i) {
            Instruction &check = insts[i];
            if (check.op != Opcode::NullCheck ||
                check.flavor != CheckFlavor::Explicit) {
                continue;
            }
            const ValueId guarded = check.a;
            // Scan forward for a trapping consumer of the same reference;
            // stop at anything that must not execute before the NPE is
            // raised or that redefines the reference.
            for (size_t j = i + 1; j < insts.size(); ++j) {
                Instruction &cand = insts[j];
                if (cand.checkedRef() == guarded) {
                    if (ctx.target.trapCovers(cand)) {
                        check.flavor = CheckFlavor::Implicit;
                        cand.exceptionSite = true;
                        ++converted_;
                    }
                    // A non-trapping access of the same reference needs
                    // the explicit check; either way stop here.
                    break;
                }
                // An access through a may-alias copy would dereference
                // the same runtime reference before the deferred check.
                if (cand.checkedRef() != kNoValue &&
                    aliases.mayAlias(cand.checkedRef(), guarded)) {
                    break;
                }
                if (isMotionBarrier(func, cand, inTry))
                    break;
                if (cand.hasDst() && cand.dst == guarded)
                    break;
                if (cand.isTerminator())
                    break;
            }
        }
    }
    return converted_ > 0;
}

} // namespace trapjit
