#ifndef TRAPJIT_OPT_NULLCHECK_LOCAL_TRAP_LOWERING_H_
#define TRAPJIT_OPT_NULLCHECK_LOCAL_TRAP_LOWERING_H_

/**
 * @file
 * Naive hardware-trap utilization (no data flow).
 *
 * This is how the paper's *non*-phase-2 configurations use the trap
 * ("No Null Opt (Hardware Trap)", "Old Null Check", "New Null Check
 * (Phase 1 only)"): an explicit check is converted to an implicit one
 * when, within the same basic block and before any side effect or
 * overwrite, the checked reference is consumed by an access that is
 * guaranteed to trap on null.  It captures the common front-end pattern
 * (check immediately followed by its access) but none of the cross-block
 * cases phase 2 handles (Figure 7).
 */

#include "opt/pass.h"

namespace trapjit
{

/** Peephole conversion of explicit checks to hardware traps. */
class LocalTrapLowering : public Pass
{
  public:
    const char *name() const override { return "local-trap-lowering"; }
    bool isNullCheckPass() const override { return true; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    size_t lastConverted() const { return converted_; }

  private:
    size_t converted_ = 0;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_LOCAL_TRAP_LOWERING_H_
