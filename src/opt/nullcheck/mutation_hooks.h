#ifndef TRAPJIT_OPT_NULLCHECK_MUTATION_HOOKS_H_
#define TRAPJIT_OPT_NULLCHECK_MUTATION_HOOKS_H_

/**
 * @file
 * Test-only fault injection for the null-check passes.
 *
 * The soundness auditor (analysis/audit/) exists to catch optimizer bugs,
 * so its own test suite must demonstrate that it actually does: each
 * enumerator below switches on one deliberate, realistic bug in Phase 1
 * or Phase 2 — a dropped kill, a skipped materialization, a mis-marked
 * trap site — and tests/test_audit_mutations.cpp asserts the auditor
 * flags every one of them.
 *
 * The hook is thread-local so a mutation armed by a test cannot leak
 * into concurrently compiling service threads; production code never
 * sets it, and every check sits on a pass-setup or rewrite path (not in
 * a solver inner loop), so the cost when disarmed is a thread-local
 * load per site.
 */

namespace trapjit
{

enum class NullCheckMutation
{
    None,

    // ---- Phase 1 (4.1.1 / 4.1.2) -------------------------------------
    /** Redefinitions are invisible to the backward anticipation. */
    P1DropRedefKillBwd,
    /** Side-effect barriers no longer stop the backward anticipation. */
    P1DropBarrierKillBwd,
    /** Anticipation flows freely across Edge_try boundaries. */
    P1DropTryBoundaryKills,
    /** Insertion skips the `Earliest -= Out_fwd` redundancy prune. */
    P1SkipEliminatedPrune,

    // ---- Phase 2 (4.2.1 / 4.2.2) -------------------------------------
    /** Pending checks are dropped at a barrier instead of materialized. */
    P2DropBarrierMaterialize,
    /** Motion flows across Edge_try boundaries and exception edges. */
    P2DropTryEdgeKills,
    /** A consuming access no longer consumes its own pending check. */
    P2SkipOwnConsume,
    /** Implicit conversion forgets to flag the access as a trap site. */
    P2SkipExceptionSiteMark,
    /** Accesses the target cannot trap on are converted anyway. */
    P2MarkWithoutTrapCover,
    /** 4.2.2 ignores consuming accesses when judging substitutability. */
    P2SubstIgnoresConsume,
};

/** The mutation armed on this thread (tests only; defaults to None). */
inline NullCheckMutation &
activeNullCheckMutation()
{
    thread_local NullCheckMutation active = NullCheckMutation::None;
    return active;
}

inline bool
mutationActive(NullCheckMutation m)
{
    return activeNullCheckMutation() == m;
}

/** RAII arm/disarm so a failing test cannot leave a mutation armed. */
class ScopedNullCheckMutation
{
  public:
    explicit ScopedNullCheckMutation(NullCheckMutation m)
    {
        activeNullCheckMutation() = m;
    }
    ~ScopedNullCheckMutation()
    {
        activeNullCheckMutation() = NullCheckMutation::None;
    }
    ScopedNullCheckMutation(const ScopedNullCheckMutation &) = delete;
    ScopedNullCheckMutation &
    operator=(const ScopedNullCheckMutation &) = delete;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_MUTATION_HOOKS_H_
