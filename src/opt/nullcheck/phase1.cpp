#include "opt/nullcheck/phase1.h"

#include "analysis/dataflow.h"
#include "analysis/rpo.h"
#include "opt/nullcheck/facts.h"
#include "opt/nullcheck/mutation_hooks.h"

namespace trapjit
{

namespace
{

/**
 * Gen/Kill of the backward anticipation analysis (4.1.1).
 *
 * Gen_bwd(n): checks located in n that can move up to n's entry — found
 * by scanning upward and dropping the moving set at each barrier and the
 * moving check at an overwrite of its variable.
 *
 * Kill_bwd(n): facts that cannot traverse the whole block upward — every
 * overwritten variable, and everything if the block contains a barrier.
 */
void
backwardGenKill(const Function &func, const NullCheckUniverse &universe,
                const BasicBlock &bb, BitSet &gen, BitSet &kill)
{
    const bool inTry = bb.tryRegion() != 0;
    for (auto it = bb.insts().rbegin(); it != bb.insts().rend(); ++it) {
        const Instruction &inst = *it;
        if (inst.op == Opcode::NullCheck) {
            gen.set(static_cast<size_t>(universe.factOf(inst.a)));
            continue;
        }
        if (isMotionBarrier(func, inst, inTry) &&
            !mutationActive(NullCheckMutation::P1DropBarrierKillBwd)) {
            gen.clearAll();
            kill.setAll();
        }
        if (inst.hasDst() &&
            !mutationActive(NullCheckMutation::P1DropRedefKillBwd)) {
            int fact = universe.factOf(inst.dst);
            if (fact >= 0) {
                gen.reset(static_cast<size_t>(fact));
                kill.set(static_cast<size_t>(fact));
            }
        }
    }
}

} // namespace

bool
NullCheckPhase1::runOnFunction(Function &func, PassContext &ctx)
{
    stats_ = Stats{};
    NullCheckUniverse universe(func);
    const size_t numFacts = universe.numFacts();
    if (numFacts == 0)
        return false;
    const size_t numBlocks = func.numBlocks();
    const std::vector<bool> reachable = reachableBlocks(func);

    // ---- 4.1.1: backward anticipation ----------------------------------
    DataflowSpec bwd;
    bwd.direction = DataflowSpec::Direction::Backward;
    bwd.confluence = DataflowSpec::Confluence::Intersect;
    bwd.numFacts = numFacts;
    bwd.gen.assign(numBlocks, BitSet(numFacts));
    bwd.kill.assign(numBlocks, BitSet(numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        backwardGenKill(func, universe, func.block(static_cast<BlockId>(b)),
                        bwd.gen[b], bwd.kill[b]);
    }
    if (!mutationActive(NullCheckMutation::P1DropTryBoundaryKills))
        addTryBoundaryKills(func, bwd);
    const DataflowResult &ant = solver_.solve(func, bwd);

    // Earliest(n) = Out_bwd(n) − U_{m in Pred(n)} Out_bwd(m):
    // anticipated at n's exit but at no predecessor's exit — these are
    // the insertion points.
    std::vector<BitSet> earliest(numBlocks, BitSet(numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        earliest[b] = ant.out[b];
        for (BlockId pred : func.block(static_cast<BlockId>(b)).preds())
            earliest[b].subtract(ant.out[pred]);
    }

    // ---- 4.1.2: forward non-nullness, elimination, insertion -----------
    NonNullDomain domain(func, universe, &ctx.target);
    const NonNullStates &nonnull =
        nonnullSolver_.solve(func, domain, universe, &earliest);

    BitSet eliminatedFacts(numFacts);
    stats_.eliminated = eliminateCoveredChecks(func, universe, domain,
                                               nonnull.in, &eliminatedFacts);
    bool changed = stats_.eliminated > 0;

    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        // Prune insertions already covered at the block's exit
        // (Earliest(n) -= Out_fwd(n)), and insertions of facts that
        // enabled no elimination anywhere — materializing those would
        // only add dynamic checks (the classic PRE pessimization on
        // partially anticipated paths).
        BitSet pending(numFacts);
        earliest[b].forEach([&](size_t fact) {
            if (eliminatedFacts.test(fact) &&
                (mutationActive(NullCheckMutation::P1SkipEliminatedPrune) ||
                 !nonnull.out[b].test(
                     domain.nonnullBit(universe.valueOf(fact))))) {
                pending.set(fact);
            }
        });
        if (pending.empty())
            continue;
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        pending.forEach([&](size_t fact) {
            bb.insertBeforeTerminator(
                makeExplicitNullCheck(func, universe.valueOf(fact)));
            ++stats_.inserted;
        });
        changed = true;
    }

    ctx.solverStats += solver_.takeStats();
    ctx.solverStats += nonnullSolver_.takeStats();
    return changed;
}

} // namespace trapjit
