#ifndef TRAPJIT_OPT_NULLCHECK_PHASE1_H_
#define TRAPJIT_OPT_NULLCHECK_PHASE1_H_

/**
 * @file
 * Architecture independent null check optimization (paper Section 4.1).
 *
 * The pass moves null checks *backward* to the earliest points they can
 * reach — which pulls loop-invariant checks in front of loops — and
 * eliminates checks that are then provably redundant.  It is a
 * partial-redundancy-elimination scheme specialized to null-check facts:
 *
 *  1. A backward anticipation analysis (4.1.1) computes, per block, the
 *     set of checks that can move up to the block's exit without crossing
 *     a side-effecting instruction, an overwrite of the checked variable,
 *     or a try-region boundary.  `Earliest(n)` — anticipated at n's exit
 *     but at no predecessor's exit — are the insertion points.
 *
 *  2. A forward non-nullness analysis (4.1.2), which treats the pending
 *     `Earliest` insertions as available on the corresponding edges plus
 *     the `ifnull`/`ifnonnull` edge facts and the non-null `this`
 *     parameter, then deletes every original check that is dominated by
 *     equivalent coverage, prunes insertions that are already covered
 *     (`Earliest(n) -= Out_fwd(n)`), and materializes the remainder at
 *     block exits.
 *
 * The motion is safe because insertion points are *anticipated*: on
 * every path from them, the original program performs the same check
 * before any observable effect, so a hoisted check throws the same
 * NullPointerException in the same visible state, merely earlier.
 */

#include "analysis/dataflow.h"
#include "opt/nullcheck/facts.h"
#include "opt/pass.h"

namespace trapjit
{

/** Phase 1 of the paper's two-phase null check optimization. */
class NullCheckPhase1 : public Pass
{
  public:
    const char *name() const override { return "nullcheck-phase1"; }
    bool isNullCheckPass() const override { return true; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    /** Telemetry of the last runOnFunction call. */
    struct Stats
    {
        size_t eliminated = 0;
        size_t inserted = 0;
    };

    const Stats &lastStats() const { return stats_; }

  private:
    Stats stats_;
    DataflowSolver solver_;       ///< arena reused across functions
    NonNullSolver nonnullSolver_; ///< dito, for the 4.1.2 analysis
};

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_PHASE1_H_
