#include "opt/nullcheck/phase2.h"

#include <vector>

#include "analysis/dataflow.h"
#include "analysis/rpo.h"
#include "opt/nullcheck/facts.h"
#include "opt/nullcheck/mutation_hooks.h"

namespace trapjit
{

namespace
{

/**
 * Gen/Kill of the forward motion analysis (4.2.1).  A check moves down
 * until it hits a side-effect barrier, an overwrite of its variable, or
 * *any* access requiring its variable (where it is consumed: as an
 * implicit check if the access traps, as a rematerialized explicit check
 * otherwise).
 */
void
motionGenKill(const Function &func, const NullCheckUniverse &universe,
              const RefAliasClasses &aliases, const BasicBlock &bb,
              BitSet &gen, BitSet &kill)
{
    const bool inTry = bb.tryRegion() != 0;
    BitSet moving(universe.numFacts());
    for (const Instruction &inst : bb.insts()) {
        if (inst.op == Opcode::NullCheck) {
            moving.set(static_cast<size_t>(universe.factOf(inst.a)));
            continue;
        }
        ValueId checked = inst.checkedRef();
        if (checked != kNoValue) {
            // The access consumes not only a pending check of its own
            // variable but any pending check of a may-alias copy: a
            // check must never float below a dereference of the same
            // runtime reference under another name.
            for (ValueId alias : aliases.aliasesOf(checked)) {
                size_t fact =
                    static_cast<size_t>(universe.factOf(alias));
                moving.reset(fact);
                kill.set(fact);
            }
        }
        if (isMotionBarrier(func, inst, inTry)) {
            moving.clearAll();
            kill.setAll();
        }
        if (inst.hasDst()) {
            int fact = universe.factOf(inst.dst);
            if (fact >= 0) {
                moving.reset(static_cast<size_t>(fact));
                kill.set(static_cast<size_t>(fact));
            }
        }
    }
    gen = moving;
}

/** Normal (non-exceptional) successors of a terminator. */
void
normalSuccs(const Instruction &term, std::vector<BlockId> &out)
{
    out.clear();
    switch (term.op) {
      case Opcode::Jump:
        out.push_back(static_cast<BlockId>(term.imm));
        break;
      case Opcode::Branch:
      case Opcode::IfNull:
        out.push_back(static_cast<BlockId>(term.imm));
        if (term.imm2 != term.imm)
            out.push_back(static_cast<BlockId>(term.imm2));
        break;
      default:
        break;
    }
}

/** An implicit `nullcheck` marker placed in front of a marked access. */
Instruction
makeImplicitNullCheck(Function &func, ValueId value)
{
    Instruction check = makeExplicitNullCheck(func, value);
    check.flavor = CheckFlavor::Implicit;
    return check;
}

} // namespace

bool
NullCheckPhase2::runOnFunction(Function &func, PassContext &ctx)
{
    stats_ = Stats{};
    NullCheckUniverse universe(func);
    const size_t numFacts = universe.numFacts();
    if (numFacts == 0)
        return false;
    const size_t numBlocks = func.numBlocks();
    const std::vector<bool> reachable = reachableBlocks(func);

    // ---- 4.2.1: forward motion -----------------------------------------
    DataflowSpec fwd;
    fwd.direction = DataflowSpec::Direction::Forward;
    fwd.confluence = DataflowSpec::Confluence::Intersect;
    fwd.numFacts = numFacts;
    fwd.gen.assign(numBlocks, BitSet(numFacts));
    fwd.kill.assign(numBlocks, BitSet(numFacts));
    RefAliasClasses aliases(func);
    for (size_t b = 0; b < numBlocks; ++b) {
        motionGenKill(func, universe, aliases,
                      func.block(static_cast<BlockId>(b)), fwd.gen[b],
                      fwd.kill[b]);
    }
    if (!mutationActive(NullCheckMutation::P2DropTryEdgeKills)) {
        addTryBoundaryKills(func, fwd);
        addExceptionEdgeKills(func, fwd);
    }
    // solver_ is reused for the 4.2.2 solve below, which overwrites this
    // result in place; `motion` is only read before that point.
    const DataflowResult &motion = solver_.solve(func, fwd);

    // Copy availability, for attaching a pending check implicitly to a
    // trapping access of a must-equal copy (the inlined-receiver shape of
    // Figure 1: the check guards the call-site variable, the slot access
    // uses the callee's cloned `this`).
    NonNullDomain domain(func, universe, &ctx.target);
    const NonNullStates &copyStates =
        nonnullSolver_.solve(func, domain, universe, nullptr);

    // ---- In-block insertion (the algorithm of Section 4.2.1) ----------
    bool changed = false;
    std::vector<BlockId> succs;
    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool inTry = bb.tryRegion() != 0;
        BitSet inner = motion.in[b];
        BitSet flow = copyStates.in[b];
        std::vector<Instruction> rebuilt;
        rebuilt.reserve(bb.insts().size());

        auto materialize = [&](size_t fact) {
            rebuilt.push_back(
                makeExplicitNullCheck(func, universe.valueOf(fact)));
            ++stats_.keptExplicit;
            changed = true;
        };

        for (size_t i = 0; i < bb.insts().size(); ++i) {
            Instruction inst = bb.insts()[i];
            const bool isTerm = (i + 1 == bb.insts().size());

            if (isTerm) {
                // Materialize every pending check that does not continue
                // into all normal successors (and everything at an exit).
                if (inst.op == Opcode::Return || inst.op == Opcode::Throw) {
                    inner.forEach(materialize);
                } else {
                    normalSuccs(inst, succs);
                    BitSet continuing = inner;
                    inner.forEach([&](size_t fact) {
                        for (BlockId s : succs) {
                            if (!motion.in[s].test(fact)) {
                                continuing.reset(fact);
                                break;
                            }
                        }
                    });
                    BitSet dying = inner;
                    dying.subtract(continuing);
                    dying.forEach(materialize);
                }
                rebuilt.push_back(std::move(inst));
                break;
            }

            if (inst.op == Opcode::NullCheck) {
                // Absorb the original check into the pending set; it is
                // rematerialized at its latest legal point.
                inner.set(static_cast<size_t>(universe.factOf(inst.a)));
                changed = true;
                domain.transfer(inst, flow);
                continue;
            }

            ValueId checked = inst.checkedRef();
            if (checked != kNoValue) {
                // A pending check of a copy is consumed here.  If the
                // copy provably equals the checked variable (must-copy)
                // and the access traps, the trap carries the copy's
                // check implicitly; otherwise it must become an explicit
                // check of its own variable (a may-alias only).
                for (ValueId alias : aliases.aliasesOf(checked)) {
                    if (alias == checked)
                        continue;
                    size_t afact =
                        static_cast<size_t>(universe.factOf(alias));
                    if (!inner.test(afact))
                        continue;
                    if (ctx.target.trapCovers(inst) &&
                        domain.mustEqual(flow, alias, checked)) {
                        rebuilt.push_back(
                            makeImplicitNullCheck(func, alias));
                        if (!mutationActive(
                                NullCheckMutation::P2SkipExceptionSiteMark))
                            inst.exceptionSite = true;
                        ++stats_.convertedToImplicit;
                    } else {
                        rebuilt.push_back(
                            makeExplicitNullCheck(func, alias));
                        ++stats_.keptExplicit;
                    }
                    inner.reset(afact);
                    changed = true;
                }
                size_t fact =
                    static_cast<size_t>(universe.factOf(checked));
                if (inner.test(fact) &&
                    !mutationActive(NullCheckMutation::P2SkipOwnConsume)) {
                    if (ctx.target.trapCovers(inst) ||
                        mutationActive(
                            NullCheckMutation::P2MarkWithoutTrapCover)) {
                        rebuilt.push_back(
                            makeImplicitNullCheck(func, checked));
                        if (!mutationActive(
                                NullCheckMutation::P2SkipExceptionSiteMark))
                            inst.exceptionSite = true;
                        ++stats_.convertedToImplicit;
                    } else {
                        rebuilt.push_back(
                            makeExplicitNullCheck(func, checked));
                        ++stats_.keptExplicit;
                    }
                    inner.reset(fact);
                    changed = true;
                }
            }

            if (isMotionBarrier(func, inst, inTry)) {
                if (!mutationActive(
                        NullCheckMutation::P2DropBarrierMaterialize))
                    inner.forEach(materialize);
                inner.clearAll();
            } else if (inst.hasDst()) {
                int fact = universe.factOf(inst.dst);
                if (fact >= 0 && inner.test(static_cast<size_t>(fact))) {
                    materialize(static_cast<size_t>(fact));
                    inner.reset(static_cast<size_t>(fact));
                }
            }

            domain.transfer(inst, flow);
            rebuilt.push_back(std::move(inst));
        }
        bb.insts() = std::move(rebuilt);
    }

    // ---- 4.2.2: substitutable elimination -------------------------------
    DataflowSpec bwd;
    bwd.direction = DataflowSpec::Direction::Backward;
    bwd.confluence = DataflowSpec::Confluence::Intersect;
    bwd.numFacts = numFacts;
    bwd.gen.assign(numBlocks, BitSet(numFacts));
    bwd.kill.assign(numBlocks, BitSet(numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        const BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool inTry = bb.tryRegion() != 0;
        BitSet &gen = bwd.gen[b];
        BitSet &kill = bwd.kill[b];
        BitSet killedSoFar(numFacts);
        for (const Instruction &inst : bb.insts()) {
            // A fact is generated at block entry if the check/trap occurs
            // before anything kills it on the way down.
            if (inst.op == Opcode::NullCheck) {
                size_t fact =
                    static_cast<size_t>(universe.factOf(inst.a));
                if (!killedSoFar.test(fact))
                    gen.set(fact);
                continue;
            }
            ValueId checked = inst.checkedRef();
            if (checked != kNoValue) {
                if (inst.exceptionSite && ctx.target.trapCovers(inst)) {
                    size_t fact =
                        static_cast<size_t>(universe.factOf(checked));
                    if (!killedSoFar.test(fact))
                        gen.set(fact);
                }
                // Any access requiring the variable (or a may-alias
                // copy) consumes the guard duty: a check above it may
                // not be substituted by a check *below* it, or the
                // access would execute unguarded.
                if (!mutationActive(
                        NullCheckMutation::P2SubstIgnoresConsume)) {
                    for (ValueId alias : aliases.aliasesOf(checked)) {
                        size_t fact =
                            static_cast<size_t>(universe.factOf(alias));
                        killedSoFar.set(fact);
                        kill.set(fact);
                    }
                }
            }
            if (isMotionBarrier(func, inst, inTry)) {
                killedSoFar.setAll();
                kill.setAll();
            }
            if (inst.hasDst()) {
                int fact = universe.factOf(inst.dst);
                if (fact >= 0) {
                    killedSoFar.set(static_cast<size_t>(fact));
                    kill.set(static_cast<size_t>(fact));
                }
            }
        }
    }
    addTryBoundaryKills(func, bwd);
    const DataflowResult &subst = solver_.solve(func, bwd);

    for (size_t b = 0; b < numBlocks; ++b) {
        if (!reachable[b])
            continue;
        BasicBlock &bb = func.block(static_cast<BlockId>(b));
        const bool inTry = bb.tryRegion() != 0;
        BitSet after = subst.out[b];
        std::vector<size_t> doomed;
        auto &insts = bb.insts();
        for (size_t ri = insts.size(); ri-- > 0;) {
            const Instruction &inst = insts[ri];
            if (inst.op == Opcode::NullCheck &&
                inst.flavor == CheckFlavor::Explicit) {
                size_t fact =
                    static_cast<size_t>(universe.factOf(inst.a));
                if (after.test(fact)) {
                    doomed.push_back(ri);
                    ++stats_.substitutableEliminated;
                }
            }
            // Transfer to the state before this instruction.
            if (isMotionBarrier(func, inst, inTry))
                after.clearAll();
            if (inst.hasDst()) {
                int fact = universe.factOf(inst.dst);
                if (fact >= 0)
                    after.reset(static_cast<size_t>(fact));
            }
            if (inst.op == Opcode::NullCheck) {
                after.set(static_cast<size_t>(universe.factOf(inst.a)));
            } else if (inst.checkedRef() != kNoValue) {
                if (!mutationActive(
                        NullCheckMutation::P2SubstIgnoresConsume)) {
                    for (ValueId alias :
                         aliases.aliasesOf(inst.checkedRef()))
                        after.reset(static_cast<size_t>(
                            universe.factOf(alias)));
                }
                if (inst.exceptionSite && ctx.target.trapCovers(inst)) {
                    after.set(static_cast<size_t>(
                        universe.factOf(inst.checkedRef())));
                }
            }
        }
        for (size_t idx : doomed)
            insts.erase(insts.begin() + static_cast<long>(idx));
        changed |= !doomed.empty();
    }

    ctx.solverStats += solver_.takeStats();
    ctx.solverStats += nonnullSolver_.takeStats();
    return changed;
}

} // namespace trapjit
