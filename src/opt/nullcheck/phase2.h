#ifndef TRAPJIT_OPT_NULLCHECK_PHASE2_H_
#define TRAPJIT_OPT_NULLCHECK_PHASE2_H_

/**
 * @file
 * Architecture dependent null check optimization (paper Section 4.2).
 *
 * The pass runs the PRE machinery in the opposite direction of phase 1:
 * checks move *forward* to the latest points they can reach, so that as
 * many as possible land directly on a memory access that hardware-traps
 * on null — there they become *implicit* (the access is marked as the
 * exception site and no check code is emitted).  Checks that reach a
 * point where no trap-covered access consumes them (a devirtualized call
 * that skips the receiver's slots, Figure 1; a field whose offset exceeds
 * the protected page, Figure 5; a read on a target whose OS only traps
 * writes) are rematerialized as explicit checks.  A final backward
 * "substitutable" analysis (4.2.2) deletes explicit checks that are
 * always re-checked (by a check or a trapping marked access) before any
 * side effect.
 *
 * Two deliberate deviations from the paper's pseudocode, both on the
 * sound side (documented in DESIGN.md):
 *  - a check may not float past *any* access that requires its variable,
 *    even a non-trapping one (the paper's Kill only lists trapping
 *    accesses, which would let a check float below a big-offset read);
 *  - at a block exit a pending check is materialized as soon as *some*
 *    successor does not continue it (the paper materializes only when no
 *    successor does, which can drop an obligation on a partially-
 *    anticipated edge).
 */

#include "analysis/dataflow.h"
#include "opt/nullcheck/facts.h"
#include "opt/pass.h"

namespace trapjit
{

/** Phase 2 of the paper's two-phase null check optimization. */
class NullCheckPhase2 : public Pass
{
  public:
    const char *name() const override { return "nullcheck-phase2"; }
    bool isNullCheckPass() const override { return true; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    /** Telemetry of the last runOnFunction call. */
    struct Stats
    {
        size_t convertedToImplicit = 0;
        size_t keptExplicit = 0;
        size_t substitutableEliminated = 0;
    };

    const Stats &lastStats() const { return stats_; }

  private:
    Stats stats_;
    DataflowSolver solver_;       ///< reused for the 4.2.1 + 4.2.2 solves
    NonNullSolver nonnullSolver_; ///< copy availability solver
};

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_PHASE2_H_
