#include "opt/nullcheck/whaley.h"

#include "opt/nullcheck/facts.h"

namespace trapjit
{

bool
WhaleyNullCheckElimination::runOnFunction(Function &func, PassContext &ctx)
{
    eliminated_ = 0;
    NullCheckUniverse universe(func);
    if (universe.numFacts() == 0)
        return false;

    NonNullDomain domain(func, universe, &ctx.target);
    const NonNullStates &nonnull =
        solver_.solve(func, domain, universe, nullptr);
    eliminated_ =
        eliminateCoveredChecks(func, universe, domain, nonnull.in);
    ctx.solverStats += solver_.takeStats();
    return eliminated_ > 0;
}

} // namespace trapjit
