#ifndef TRAPJIT_OPT_NULLCHECK_WHALEY_H_
#define TRAPJIT_OPT_NULLCHECK_WHALEY_H_

/**
 * @file
 * The previously known best algorithm, used as the paper's baseline
 * ("Old Null Check"): Whaley's forward dataflow null check elimination
 * [reference 14 in the paper].
 *
 * It deletes a null check when the variable is already known non-null on
 * every incoming path — i.e. the same forward analysis phase 1 ends with,
 * but with *no code motion*: a loop-invariant check whose first
 * occurrence is inside the loop stays inside the loop, which is exactly
 * the drawback (Section 2.2) the paper's phase 1 removes.
 */

#include "opt/nullcheck/facts.h"
#include "opt/pass.h"

namespace trapjit
{

/** Whaley-style forward-only null check elimination. */
class WhaleyNullCheckElimination : public Pass
{
  public:
    const char *name() const override { return "nullcheck-whaley"; }
    bool isNullCheckPass() const override { return true; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    size_t lastEliminated() const { return eliminated_; }

  private:
    size_t eliminated_ = 0;
    NonNullSolver solver_; ///< arena reused across functions
};

} // namespace trapjit

#endif // TRAPJIT_OPT_NULLCHECK_WHALEY_H_
