#include "opt/pass.h"

namespace trapjit
{

// Pass is an interface; this translation unit anchors its vtable.

} // namespace trapjit
