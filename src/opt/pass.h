#ifndef TRAPJIT_OPT_PASS_H_
#define TRAPJIT_OPT_PASS_H_

/**
 * @file
 * Optimization pass interface.
 *
 * Passes transform one function at a time (the inliner additionally reads
 * other functions of the module).  Each pass reports whether it changed
 * anything, and declares whether it is part of the *null check
 * optimization* — the pass manager uses that flag to attribute compile
 * time the way Table 4 of the paper does (null check optimization vs
 * everything else).
 */

#include <string>

#include "analysis/dataflow.h"
#include "arch/target.h"
#include "ir/module.h"

namespace trapjit
{

/** Shared state passed to every pass invocation. */
struct PassContext
{
    Module &mod;

    /**
     * The target the *compiler* believes in.  For the Illegal Implicit
     * experiment this differs from the honest target the interpreter
     * uses.
     */
    const Target &target;

    /** Allow read speculation in scalar replacement (Section 5.4). */
    bool enableSpeculation = false;

    /**
     * Dataflow convergence counters.  Every pass that runs a solver
     * folds its takeStats() here after runOnFunction; the pass manager
     * harvests the accumulator into PassTimings.
     */
    SolverStats solverStats = {};
};

/** Base class of all passes. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name for reports. */
    virtual const char *name() const = 0;

    /** True if this pass belongs to the null check optimization budget. */
    virtual bool isNullCheckPass() const { return false; }

    /**
     * Transform @p func.  The CFG is guaranteed current on entry; a pass
     * that mutates structure must leave it current (recomputeCFG).
     * @return true if anything changed.
     */
    virtual bool runOnFunction(Function &func, PassContext &ctx) = 0;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_PASS_H_
