#include "opt/pass_manager.h"

#include <chrono>

namespace trapjit
{

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

bool
PassManager::run(Function &func, PassContext &ctx)
{
    using Clock = std::chrono::steady_clock;
    bool changed = false;
    for (auto &pass : passes_) {
        auto start = Clock::now();
        changed |= pass->runOnFunction(func, ctx);
        double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        timings_.perPass[pass->name()] += seconds;
        if (pass->isNullCheckPass())
            timings_.nullCheckSeconds += seconds;
        else
            timings_.otherSeconds += seconds;
    }
    return changed;
}

} // namespace trapjit
