#include "opt/pass_manager.h"

#include <chrono>

#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace trapjit
{

PassTimings &
PassTimings::operator+=(const PassTimings &other)
{
    for (const auto &[name, seconds] : other.perPass)
        perPass[name] += seconds;
    nullCheckSeconds += other.nullCheckSeconds;
    otherSeconds += other.otherSeconds;
    solver += other.solver;
    return *this;
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

bool
PassManager::run(Function &func, PassContext &ctx)
{
    using Clock = std::chrono::steady_clock;

    auto verify = [&](const std::string &when) {
        VerifyResult result = verifyFunction(func);
        if (!result.ok())
            TRAPJIT_PANIC("IR verification failed in '", func.name(),
                          "' ", when, ":\n", result.message());
    };
    if (verifyAfterEachPass_)
        verify("before the first pass");

    bool changed = false;
    for (auto &pass : passes_) {
        auto start = Clock::now();
        changed |= pass->runOnFunction(func, ctx);
        double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        timings_.perPass[pass->name()] += seconds;
        if (pass->isNullCheckPass())
            timings_.nullCheckSeconds += seconds;
        else
            timings_.otherSeconds += seconds;
        if (verifyAfterEachPass_)
            verify(std::string("after pass '") + pass->name() + "'");
    }
    // Harvest the solver counters the passes accumulated on the context.
    timings_.solver += ctx.solverStats;
    ctx.solverStats = SolverStats{};
    return changed;
}

} // namespace trapjit
