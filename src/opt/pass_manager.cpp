#include "opt/pass_manager.h"

#include <chrono>
#include <cstring>

#include "analysis/audit/audit.h"
#include "ir/serializer.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace trapjit
{

PassTimings &
PassTimings::operator+=(const PassTimings &other)
{
    for (const auto &[name, seconds] : other.perPass)
        perPass[name] += seconds;
    nullCheckSeconds += other.nullCheckSeconds;
    otherSeconds += other.otherSeconds;
    solver += other.solver;
    functionsAudited += other.functionsAudited;
    auditFindings += other.auditFindings;
    auditSeconds += other.auditSeconds;
    return *this;
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

void
PassManager::absorbAudit(const AuditReport &report, const char *when)
{
    if (report.findings.empty())
        return;
    timings_.auditFindings += report.findings.size();
    if (auditMode_ == AuditMode::Panic && report.errorCount() > 0)
        TRAPJIT_PANIC("null-check soundness audit failed ", when, ":\n",
                      report.format());
    auditReport_ += report;
}

bool
PassManager::run(Function &func, PassContext &ctx)
{
    using Clock = std::chrono::steady_clock;

    auto verify = [&](const std::string &when) {
        VerifyResult result = verifyFunction(func);
        if (!result.ok())
            TRAPJIT_PANIC("IR verification failed in '", func.name(),
                          "' ", when, ":\n", result.message());
    };
    if (verifyAfterEachPass_)
        verify("before the first pass");

    bool changed = false;
    std::string preSnapshot;
    for (auto &pass : passes_) {
        const bool auditThis =
            auditMode_ != AuditMode::Off && pass->isNullCheckPass();
        if (auditThis)
            preSnapshot = serializeFunctionToString(func);
        auto start = Clock::now();
        changed |= pass->runOnFunction(func, ctx);
        double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        timings_.perPass[pass->name()] += seconds;
        if (pass->isNullCheckPass())
            timings_.nullCheckSeconds += seconds;
        else
            timings_.otherSeconds += seconds;
        if (verifyAfterEachPass_)
            verify(std::string("after pass '") + pass->name() + "'");
        if (auditThis) {
            auto auditStart = Clock::now();
            std::unique_ptr<Function> pre =
                deserializeFunctionFromString(preSnapshot, func.id());
            AuditOptions options;
            // Redundant surviving checks are only a finding for the
            // elimination passes; motion legitimately rematerializes
            // checks a direct solve re-proves.
            options.checkRedundancy =
                std::strcmp(pass->name(), "nullcheck-phase1") == 0 ||
                std::strcmp(pass->name(), "nullcheck-whaley") == 0;
            absorbAudit(auditTransformation(*pre, func, ctx.target,
                                            pass->name(), options),
                        pass->name());
            timings_.auditSeconds +=
                std::chrono::duration<double>(Clock::now() - auditStart)
                    .count();
        }
    }
    if (auditMode_ != AuditMode::Off) {
        auto auditStart = Clock::now();
        absorbAudit(auditFunction(func, ctx.target),
                    "in the final whole-function audit");
        ++timings_.functionsAudited;
        timings_.auditSeconds +=
            std::chrono::duration<double>(Clock::now() - auditStart)
                .count();
    }
    // Harvest the solver counters the passes accumulated on the context.
    timings_.solver += ctx.solverStats;
    ctx.solverStats = SolverStats{};
    return changed;
}

} // namespace trapjit
