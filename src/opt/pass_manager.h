#ifndef TRAPJIT_OPT_PASS_MANAGER_H_
#define TRAPJIT_OPT_PASS_MANAGER_H_

/**
 * @file
 * Ordered pass list with per-pass wall-clock accounting.
 *
 * The timing split (null check optimization vs everything else) is what
 * regenerates the paper's compile-time breakdown (Table 4 / Figure 13):
 * each pass declares which budget it belongs to via
 * Pass::isNullCheckPass().
 *
 * Thread-safety / re-entrancy contract (relied on by the parallel
 * compile service, jit/compile_service.h):
 *
 *  - A PassManager and the Pass objects it owns are *per-job* state:
 *    one worker builds its own manager via buildPipeline() and never
 *    shares it.  Pass member state (e.g. the inliner's Stats) therefore
 *    needs no synchronization.
 *  - Passes must not keep mutable static/global state.  The audit of
 *    src/opt, src/analysis and src/codegen found only immutable
 *    function-local statics (lookup tables); new passes must keep it
 *    that way.
 *  - A pass may mutate only the Function it was handed.  PassContext's
 *    Module may be *read* (the inliner reads callee bodies and the
 *    class table) but never written; the service compiles private
 *    function copies against a module treated as an immutable snapshot
 *    while any job is in flight.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "opt/pass.h"

namespace trapjit
{

/** Accumulated wall-clock time per pass. */
struct PassTimings
{
    /** name -> accumulated seconds. */
    std::map<std::string, double> perPass;
    double nullCheckSeconds = 0.0;
    double otherSeconds = 0.0;

    /** Dataflow solver convergence counters, harvested per run(). */
    SolverStats solver;

    double total() const { return nullCheckSeconds + otherSeconds; }
    void clear() { *this = PassTimings{}; }

    /** Merge another accounting into this one (per-worker merge). */
    PassTimings &operator+=(const PassTimings &other);
};

/** Runs an ordered list of passes over functions, accumulating timings. */
class PassManager
{
  public:
    /**
     * @param verify_after_each_pass run the IR verifier on the function
     *        before the first pass and after every pass, panicking on
     *        the first structural breakage (names the guilty pass).
     */
    explicit PassManager(bool verify_after_each_pass = false)
        : verifyAfterEachPass_(verify_after_each_pass)
    {}

    /** Append a pass; runs in insertion order. */
    void add(std::unique_ptr<Pass> pass);

    /** Run all passes once, in order, over @p func. */
    bool run(Function &func, PassContext &ctx);

    const PassTimings &timings() const { return timings_; }
    void clearTimings() { timings_.clear(); }

    bool verifiesAfterEachPass() const { return verifyAfterEachPass_; }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    PassTimings timings_;
    bool verifyAfterEachPass_ = false;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_PASS_MANAGER_H_
