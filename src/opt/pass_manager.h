#ifndef TRAPJIT_OPT_PASS_MANAGER_H_
#define TRAPJIT_OPT_PASS_MANAGER_H_

/**
 * @file
 * Ordered pass list with per-pass wall-clock accounting.
 *
 * The timing split (null check optimization vs everything else) is what
 * regenerates the paper's compile-time breakdown (Table 4 / Figure 13):
 * each pass declares which budget it belongs to via
 * Pass::isNullCheckPass().
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "opt/pass.h"

namespace trapjit
{

/** Accumulated wall-clock time per pass. */
struct PassTimings
{
    /** name -> accumulated seconds. */
    std::map<std::string, double> perPass;
    double nullCheckSeconds = 0.0;
    double otherSeconds = 0.0;

    double total() const { return nullCheckSeconds + otherSeconds; }
    void clear() { *this = PassTimings{}; }
};

/** Runs an ordered list of passes over functions, accumulating timings. */
class PassManager
{
  public:
    /** Append a pass; runs in insertion order. */
    void add(std::unique_ptr<Pass> pass);

    /** Run all passes once, in order, over @p func. */
    bool run(Function &func, PassContext &ctx);

    const PassTimings &timings() const { return timings_; }
    void clearTimings() { timings_.clear(); }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    PassTimings timings_;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_PASS_MANAGER_H_
